#!/bin/bash
# Final artifact pipeline: runs once `cargo bench` releases the lock.
set -x
until ! pgrep -x cargo >/dev/null 2>&1; do sleep 20; done
cd /root/repo
cargo test --workspace 2>&1 | tee /root/repo/test_output.txt | tail -5
cargo build --release -p kdv-bench --bin figures 2>&1 | tail -1
./target/release/figures --scale quick all > /root/repo/figures_quick.log 2>&1
echo FINALIZE_DONE

//! # kdv — QUAD: Quadratic-Bound-based Kernel Density Visualization
//!
//! A from-scratch Rust reproduction of *QUAD* (Chan, Cheng, Yiu —
//! SIGMOD 2020): fast approximate (εKDV) and thresholded (τKDV) kernel
//! density visualization via quadratic bound functions, together with
//! every baseline the paper compares against (EXACT, Scikit-style DFS,
//! Z-order coreset sampling, aKDE, tKDC, KARL) and the progressive
//! visualization framework.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`geom`] — point sets, bounding rectangles, vector math,
//! * [`index`] — kd-tree with augmented moment statistics,
//! * [`core`] — kernels, bound families, the refinement engine,
//!   methods, bandwidth selection, rasters, thresholds,
//! * [`sampling`] — Morton-curve coreset sampling,
//! * [`pca`] — PCA for dimensionality sweeps,
//! * [`data`] — synthetic dataset generators and CSV I/O,
//! * [`telemetry`] — render metrics: refinement-event counters,
//!   per-pixel histograms, cost maps, JSON export,
//! * [`viz`] — color maps, image output, progressive rendering,
//! * [`server`] — HTTP tile server: cached z/x/y pyramid, admission
//!   control, live `/metrics`.
//!
//! ## Quick start
//!
//! ```
//! use kdv::prelude::*;
//!
//! // 1. Data: a small synthetic hotspot map (use your own via kdv::data::csv).
//! let points = kdv::data::Dataset::Crime.generate(2_000, 42);
//!
//! // 2. Parameters: Scott's rule picks γ; weights default to 1.
//! let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
//!
//! // 3. Index once, query many pixels.
//! let tree = KdTree::build_default(&points);
//! let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
//!
//! // 4. Render an εKDV density map with a 1% deterministic guarantee.
//! let raster = RasterSpec::covering(&points, 64, 48, 0.05);
//! let grid = render_eps(&mut quad, &raster, 0.01);
//! assert_eq!(grid.values().len(), 64 * 48);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kdv_core as core;
pub use kdv_data as data;
pub use kdv_geom as geom;
pub use kdv_index as index;
pub use kdv_pca as pca;
pub use kdv_sampling as sampling;
pub use kdv_server as server;
pub use kdv_store as store;
pub use kdv_telemetry as telemetry;
pub use kdv_viz as viz;

/// One-stop imports for typical use.
pub mod prelude {
    pub use kdv_core::bandwidth::{scott_gamma, scott_gamma_for};
    pub use kdv_core::bounds::BoundFamily;
    pub use kdv_core::engine::RefineEvaluator;
    pub use kdv_core::kernel::{Kernel, KernelType};
    pub use kdv_core::method::{
        make_evaluator, ExactScan, MethodKind, MethodParams, PixelEvaluator, ScikitDfs, ZOrderScan,
    };
    pub use kdv_core::raster::{DensityGrid, RasterSpec};
    pub use kdv_core::threshold::{estimate_levels, TauLevels};
    pub use kdv_geom::{Mbr, PointSet};
    pub use kdv_index::{BuildConfig, KdTree};
    pub use kdv_telemetry::{EventCounters, LogHistogram, RenderMetrics};
    pub use kdv_viz::colormap::ColorMap;
    pub use kdv_viz::metered::{render_eps_metered, render_eps_parallel_metered};
    pub use kdv_viz::render::{render_eps, render_eps_progressive, render_tau, BinaryGrid};
}

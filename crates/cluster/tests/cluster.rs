//! Socket-level integration suite for the cluster tier: a real
//! [`Router`] in front of real in-process [`TileServer`] shards,
//! exercised over TCP exactly like production traffic.
//!
//! Covers the acceptance contract end to end:
//!
//! * a full z≤3 pyramid through the router, with per-shard cache
//!   partitioning visible in the merged `/metrics` rollup (a second
//!   sweep adds hits and zero misses — no tile is ever re-rendered on
//!   a different shard);
//! * killing a shard mid-traffic yields **zero 5xx** for its tiles:
//!   every one fails over to the ring's runner-up with
//!   `X-Kdv-Failover: 1`;
//! * ingest POSTs through the router land on the dataset's owner
//!   shard, ack durably (WAL on disk), pin the dataset, and subsequent
//!   tiles reflect the new points;
//! * bounded admission sheds `429 + Retry-After` when a shard's
//!   in-flight cap is full;
//! * `X-Kdv-Trace-Id` propagates client → router → shard and back.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use kdv_cluster::{Ring, Router, RouterConfig};
use kdv_core::bandwidth::scott_gamma;
use kdv_core::kernel::Kernel;
use kdv_data::Dataset;
use kdv_index::KdTree;
use kdv_server::{ServerConfig, TileServer};
use kdv_store::SnapshotWriter;
use kdv_telemetry::json::{self, Value};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdv-cluster-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mut points = Dataset::Crime.generate(400, 11);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let tree = KdTree::build_default(&points);
    SnapshotWriter::new(&tree, kernel)
        .write_to(dir.join("crime.kdvs"))
        .expect("write snapshot");
    dir
}

fn shard_config(store_budget: u64) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        tile_size: 32,
        max_z: 3,
        tau: 1e-3,
        workers: 4,
        queue: 64,
        store_budget_bytes: store_budget,
        debug_sleep: true,
        ..ServerConfig::default()
    }
}

fn start_shards(dir: &Path, n: usize) -> Vec<TileServer> {
    (0..n)
        .map(|_| TileServer::start_with_store(shard_config(0), dir).expect("start shard"))
        .collect()
}

fn start_router(shards: &[TileServer], max_inflight: usize) -> Router {
    Router::start(RouterConfig {
        shards: shards.iter().map(|s| s.local_addr().to_string()).collect(),
        max_inflight,
        probe_ms: 50,
        ..RouterConfig::default()
    })
    .expect("start router")
}

/// One HTTP exchange; returns status, headers, body.
fn exchange(addr: SocketAddr, raw: String) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect router");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("recv");
    let split = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("head/body split");
    let head = std::str::from_utf8(&bytes[..split]).expect("utf8 head");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .expect("status line")
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, bytes[split + 4..].to_vec())
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    exchange(addr, format!("GET {path} HTTP/1.1\r\nHost: kdv\r\n\r\n"))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn pyramid_paths(max_z: u8) -> Vec<String> {
    let mut paths = Vec::new();
    for kind in ["eps", "tau"] {
        for z in 0..=max_z {
            let side = 1u32 << z;
            for x in 0..side {
                for y in 0..side {
                    paths.push(format!("/tiles/crime/{kind}/{z}/{x}/{y}.png"));
                }
            }
        }
    }
    paths
}

fn metrics_doc(addr: SocketAddr) -> Value {
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200, "router /metrics");
    json::parse(std::str::from_utf8(&body).expect("utf8")).expect("metrics JSON")
}

fn rollup_cache(doc: &Value, key: &str) -> f64 {
    doc.get("rollup")
        .and_then(|r| r.get("cache"))
        .and_then(|c| c.get(key))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("rollup.cache.{key} in {doc:?}"))
}

#[test]
fn pyramid_through_router_partitions_caches_across_shards() {
    let dir = temp_store("pyramid");
    let shards = start_shards(&dir, 2);
    let router = start_router(&shards, 64);
    let addr = router.local_addr();

    let paths = pyramid_paths(3);
    let mut owners: Vec<usize> = Vec::new();
    for path in &paths {
        let (status, headers, body) = get(addr, path);
        assert_eq!(status, 200, "first sweep: {path}");
        assert!(!body.is_empty(), "empty tile body: {path}");
        assert!(
            header(&headers, "x-kdv-failover").is_none(),
            "healthy fleet must not fail over: {path}"
        );
        let shard: usize = header(&headers, "x-kdv-shard")
            .expect("X-Kdv-Shard header")
            .parse()
            .expect("numeric shard");
        owners.push(shard);
    }
    // Real partitioning: both shards own a material slice.
    let on_one = owners.iter().filter(|&&s| s == 1).count();
    assert!(
        on_one > paths.len() / 5 && on_one < paths.len() * 4 / 5,
        "suspicious split: {on_one}/{} tiles on shard 1",
        paths.len()
    );

    let after_first = metrics_doc(addr);
    let misses1 = rollup_cache(&after_first, "misses");
    assert!(
        misses1 >= paths.len() as f64,
        "each tile renders once: {misses1} misses < {} tiles",
        paths.len()
    );
    assert_eq!(
        after_first
            .get("schema")
            .and_then(Value::as_str)
            .expect("schema"),
        "kdv-cluster-metrics/1"
    );
    assert_eq!(
        after_first
            .get("rollup")
            .and_then(|r| r.get("shards_reporting"))
            .and_then(Value::as_f64),
        Some(2.0)
    );

    // Second sweep: same owner every time (deterministic hash), so the
    // fleet-wide miss count must not move — the partition is stable
    // and no shard re-renders another's tile.
    for (path, &owner) in paths.iter().zip(&owners) {
        let (status, headers, _) = get(addr, path);
        assert_eq!(status, 200, "second sweep: {path}");
        let shard: usize = header(&headers, "x-kdv-shard")
            .expect("X-Kdv-Shard header")
            .parse()
            .expect("numeric shard");
        assert_eq!(shard, owner, "ownership moved between sweeps: {path}");
    }
    let after_second = metrics_doc(addr);
    let misses2 = rollup_cache(&after_second, "misses");
    let hits2 = rollup_cache(&after_second, "hits");
    assert_eq!(misses2, misses1, "second sweep re-rendered tiles");
    assert!(
        hits2 >= paths.len() as f64,
        "second sweep must hit caches: {hits2} hits"
    );
    let rate = rollup_cache(&after_second, "hit_rate");
    assert!(
        rate > 0.0 && rate < 1.0,
        "rollup hit_rate must be recomputed, got {rate}"
    );

    router.stop();
    for s in shards {
        s.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_shard_fails_over_with_zero_5xx() {
    let dir = temp_store("failover");
    let mut shards = start_shards(&dir, 2);
    let router = start_router(&shards, 64);
    let addr = router.local_addr();

    let paths = pyramid_paths(2);
    for path in &paths {
        let (status, _, _) = get(addr, path);
        assert_eq!(status, 200, "warm sweep: {path}");
    }

    // Kill shard 1 (socket closes, all its tiles must fail over).
    shards.remove(1).stop();
    let ring = Ring::new(2);
    let mut failovers = 0usize;
    for path in &paths {
        let (status, headers, _) = get(addr, path);
        assert!(
            status < 500,
            "5xx after one-shard failure: {status} on {path}"
        );
        assert_eq!(status, 200, "failover must still serve: {path}");
        let shard: usize = header(&headers, "x-kdv-shard")
            .expect("X-Kdv-Shard header")
            .parse()
            .expect("numeric shard");
        assert_eq!(shard, 0, "only shard 0 is alive");
        // Tiles shard 1 owned must be flagged as failovers.
        let (kind, z, x, y) = parse_tile(path);
        let owner = ring.owner(Ring::tile_key("crime", kind, z, x, y));
        if owner == 1 {
            assert_eq!(
                header(&headers, "x-kdv-failover"),
                Some("1"),
                "missing failover marker: {path}"
            );
            failovers += 1;
        }
    }
    assert!(failovers > 0, "no tile was owned by the dead shard");
    let doc = metrics_doc(addr);
    let counted = doc
        .get("router")
        .and_then(|r| r.get("failovers"))
        .and_then(Value::as_f64)
        .expect("router.failovers");
    assert!(
        counted >= failovers as f64,
        "failover counter undercounts: {counted} < {failovers}"
    );

    router.stop();
    for s in shards {
        s.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn parse_tile(path: &str) -> (&str, u8, u32, u32) {
    let mut parts = path.trim_start_matches("/tiles/crime/").split('/');
    let kind = parts.next().expect("kind");
    let z = parts.next().expect("z").parse().expect("z");
    let x = parts.next().expect("x").parse().expect("x");
    let y = parts
        .next()
        .expect("y")
        .trim_end_matches(".png")
        .parse()
        .expect("y");
    (kind, z, x, y)
}

#[test]
fn ingest_pins_to_the_owner_and_tiles_reflect_new_points() {
    let dir = temp_store("ingest");
    let shards = start_shards(&dir, 2);
    let router = start_router(&shards, 64);
    let addr = router.local_addr();
    let owner = Ring::new(2).owner(Ring::dataset_key("crime"));

    let (_, _, tile_before) = get(addr, "/tiles/crime/eps/0/0/0.png");

    // A heavy cluster of new points inside the crime dataset's bbox
    // (Atlanta-ish lon/lat), POSTed through the router.
    let appends: Vec<String> = (0..20)
        .map(|i| format!("[{},33.75,0.05]", -84.4 + 0.001 * i as f64))
        .collect();
    let body = format!("{{\"append\":[{}]}}", appends.join(","));
    let raw = format!(
        "POST /datasets/crime/points HTTP/1.1\r\nHost: kdv\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, headers, _) = exchange(addr, raw);
    assert_eq!(status, 200, "ingest POST through router");
    let landed: usize = header(&headers, "x-kdv-shard")
        .expect("X-Kdv-Shard header")
        .parse()
        .expect("numeric shard");
    assert_eq!(landed, owner, "ingest must land on the dataset owner");
    assert!(
        dir.join("crime.wal").exists(),
        "durable ack without a WAL on disk"
    );

    // The dataset is now pinned: every request for it — stats, tiles,
    // any z/x/y — goes to the owner.
    for path in [
        "/datasets/crime/stats",
        "/tiles/crime/eps/0/0/0.png",
        "/tiles/crime/eps/2/1/3.png",
        "/tiles/crime/tau/1/0/1.png",
    ] {
        let (status, headers, _) = get(addr, path);
        assert_eq!(status, 200, "pinned request: {path}");
        let shard: usize = header(&headers, "x-kdv-shard")
            .expect("X-Kdv-Shard header")
            .parse()
            .expect("numeric shard");
        assert_eq!(shard, owner, "pinned dataset left the owner: {path}");
    }

    // And the density actually moved: the root tile re-rendered with
    // the appended mass.
    let (status, _, tile_after) = get(addr, "/tiles/crime/eps/0/0/0.png");
    assert_eq!(status, 200);
    assert_ne!(
        tile_before, tile_after,
        "tiles must reflect ingested points"
    );

    let (_, _, stats) = get(addr, "/datasets/crime/stats");
    let doc = json::parse(std::str::from_utf8(&stats).expect("utf8")).expect("stats JSON");
    let live = doc
        .get("points_live")
        .and_then(Value::as_f64)
        .expect("points_live");
    assert_eq!(live, 420.0, "400 base + 20 appended");

    router.stop();
    for s in shards {
        s.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ingest_does_not_fail_over_when_the_owner_is_down() {
    let dir = temp_store("ingest-down");
    let mut shards = start_shards(&dir, 2);
    let router = start_router(&shards, 64);
    let addr = router.local_addr();
    let owner = Ring::new(2).owner(Ring::dataset_key("crime"));

    shards.remove(owner).stop();
    let body = "{\"append\":[[-84.4,33.75,0.01]]}";
    let raw = format!(
        "POST /datasets/crime/points HTTP/1.1\r\nHost: kdv\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, headers, _) = exchange(addr, raw);
    assert_eq!(
        status, 503,
        "a write must never run on a non-owner (WAL single-writer)"
    );
    assert!(header(&headers, "x-kdv-failover").is_none());
    assert!(header(&headers, "retry-after").is_some());

    router.stop();
    for s in shards {
        s.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn inflight_cap_sheds_429_with_retry_after() {
    let dir = temp_store("shed");
    let shards = start_shards(&dir, 2);
    let router = start_router(&shards, 1);
    let addr = router.local_addr();

    // Park one request in the only admission slot of the shard owning
    // this path, then hit the *same path* (same hash key, same shard)
    // while it is still sleeping.
    let parked = std::thread::spawn(move || get(addr, "/debug/sleep/2000"));
    std::thread::sleep(Duration::from_millis(400));
    let (status, headers, _) = get(addr, "/debug/sleep/2000");
    assert_eq!(status, 429, "in-flight cap of 1 must shed the second");
    assert!(header(&headers, "retry-after").is_some(), "429 Retry-After");
    let (status, _, _) = parked.join().expect("parked thread");
    assert_eq!(status, 200, "parked request completes");

    router.stop();
    for s in shards {
        s.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_ids_propagate_client_to_shard_and_back() {
    let dir = temp_store("trace");
    let shards = start_shards(&dir, 1);
    let router = start_router(&shards, 64);
    let addr = router.local_addr();

    let id = "00000000deadbeef";
    let raw = format!(
        "GET /tiles/crime/eps/0/0/0.png HTTP/1.1\r\nHost: kdv\r\nX-Kdv-Trace-Id: {id}\r\n\r\n"
    );
    let (status, headers, _) = exchange(addr, raw);
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "x-kdv-trace-id"),
        Some(id),
        "the shard must adopt and echo the client's trace ID"
    );

    // Router-local responses stamp a trace ID too.
    let (_, headers, _) = get(addr, "/healthz");
    let stamped = header(&headers, "x-kdv-trace-id").expect("router trace id");
    assert_eq!(stamped.len(), 16);

    router.stop();
    for s in shards {
        s.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

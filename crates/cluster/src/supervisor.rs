//! Shard process supervision: spawn N `kdv serve` children, discover
//! their ports, respawn crashed shards, and tear the fleet down
//! cleanly.
//!
//! The supervisor never routes traffic itself — it owns the child
//! `Child` handles and feeds address updates to whoever does (the
//! router, via a callback). Shards bind port 0 and write their actual
//! address to a per-shard port file; the supervisor polls that file
//! rather than parsing child stdout, so shard logging stays free-form.
//!
//! A respawned shard keeps its index, and the rendezvous ring hashes
//! by index, so a crash-and-respawn cycle never moves tile ownership —
//! the other shards' caches stay hot and the replacement re-warms only
//! its own slice of the pyramid.

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a freshly spawned shard gets to write its port file.
const SPAWN_DEADLINE: Duration = Duration::from_secs(30);

/// Pause between respawn attempts after a child dies.
const RESPAWN_BACKOFF: Duration = Duration::from_millis(500);

/// How the supervisor launches shards.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Binary to exec (normally `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Number of shard children.
    pub shards: usize,
    /// Arguments after `serve`, shared by every shard (store dir,
    /// bandwidth, cache size...). `--addr` and `--port-file` are
    /// appended per shard.
    pub shard_args: Vec<String>,
    /// Directory for `shard-{i}.port` files.
    pub port_dir: PathBuf,
}

/// Why the fleet could not start.
#[derive(Debug)]
pub enum SpawnError {
    /// exec / port-file I/O failure.
    Io(io::Error),
    /// A shard exited before writing its port file.
    Died { shard: usize, status: String },
    /// A shard never wrote its port file within the deadline.
    Timeout { shard: usize },
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::Io(e) => write!(f, "spawn io: {e}"),
            SpawnError::Died { shard, status } => {
                write!(f, "shard {shard} exited during startup ({status})")
            }
            SpawnError::Timeout { shard } => {
                write!(f, "shard {shard} did not report a port in time")
            }
        }
    }
}

impl std::error::Error for SpawnError {}

impl From<io::Error> for SpawnError {
    fn from(e: io::Error) -> Self {
        SpawnError::Io(e)
    }
}

struct ShardProc {
    child: Child,
    addr: String,
}

/// A running fleet of shard children plus the babysitter thread.
pub struct Supervisor {
    config: SupervisorConfig,
    children: Arc<Mutex<Vec<ShardProc>>>,
    stopping: Arc<AtomicBool>,
    babysitter: Option<JoinHandle<()>>,
}

fn port_file(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.port"))
}

/// Spawns one shard and waits for its port file.
fn spawn_shard(config: &SupervisorConfig, shard: usize) -> Result<ShardProc, SpawnError> {
    let file = port_file(&config.port_dir, shard);
    let _ = std::fs::remove_file(&file);
    let mut child = Command::new(&config.exe)
        .arg("serve")
        .args(&config.shard_args)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--port-file")
        .arg(&file)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()?;
    let deadline = Instant::now() + SPAWN_DEADLINE;
    loop {
        if let Ok(text) = std::fs::read_to_string(&file) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return Ok(ShardProc { child, addr });
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Err(SpawnError::Died {
                shard,
                status: status.to_string(),
            });
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err(SpawnError::Timeout { shard });
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

impl Supervisor {
    /// Spawns the full fleet (failing fast and killing already-started
    /// shards if any child cannot come up), then starts the babysitter
    /// that respawns crashed shards and reports new addresses through
    /// `on_addr(shard_index, new_addr)`.
    pub fn start(
        config: SupervisorConfig,
        on_addr: Box<dyn Fn(usize, String) + Send + Sync>,
    ) -> Result<Self, SpawnError> {
        assert!(config.shards >= 1, "a fleet needs at least one shard");
        std::fs::create_dir_all(&config.port_dir)?;
        let mut fleet = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            match spawn_shard(&config, shard) {
                Ok(proc) => fleet.push(proc),
                Err(e) => {
                    for mut proc in fleet {
                        let _ = proc.child.kill();
                        let _ = proc.child.wait();
                    }
                    return Err(e);
                }
            }
        }
        let children = Arc::new(Mutex::new(fleet));
        let stopping = Arc::new(AtomicBool::new(false));
        let babysitter = {
            let config = config.clone();
            let children = Arc::clone(&children);
            let stopping = Arc::clone(&stopping);
            std::thread::Builder::new()
                .name("kdv-babysitter".into())
                .spawn(move || babysit(&config, &children, &stopping, on_addr.as_ref()))?
        };
        Ok(Self {
            config,
            children,
            stopping,
            babysitter: Some(babysitter),
        })
    }

    /// Current shard addresses, index-ordered.
    pub fn addrs(&self) -> Vec<String> {
        self.children
            .lock()
            .expect("fleet poisoned")
            .iter()
            .map(|p| p.addr.clone())
            .collect()
    }

    /// SIGKILLs one shard — fault-injection hook for tests and the
    /// smoke harness.
    pub fn kill_shard(&self, shard: usize) {
        let mut fleet = self.children.lock().expect("fleet poisoned");
        if let Some(proc) = fleet.get_mut(shard) {
            let _ = proc.child.kill();
            let _ = proc.child.wait();
        }
    }

    /// Stops the babysitter, asks every shard to drain (SIGTERM), and
    /// reaps them — escalating to SIGKILL for stragglers.
    pub fn stop(mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(h) = self.babysitter.take() {
            let _ = h.join();
        }
        let mut fleet = self.children.lock().expect("fleet poisoned");
        for proc in fleet.iter_mut() {
            terminate(&proc.child);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        for proc in fleet.iter_mut() {
            loop {
                match proc.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() > deadline => {
                        let _ = proc.child.kill();
                        let _ = proc.child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                    Err(_) => break,
                }
            }
        }
        for shard in 0..self.config.shards {
            let _ = std::fs::remove_file(port_file(&self.config.port_dir, shard));
        }
    }
}

/// Respawn loop: poll children, respawn any that died, publish the
/// replacement's address.
fn babysit(
    config: &SupervisorConfig,
    children: &Mutex<Vec<ShardProc>>,
    stopping: &AtomicBool,
    on_addr: &(dyn Fn(usize, String) + Send + Sync),
) {
    while !stopping.load(Ordering::SeqCst) {
        let mut dead = Vec::new();
        {
            let mut fleet = children.lock().expect("fleet poisoned");
            for (shard, proc) in fleet.iter_mut().enumerate() {
                if let Ok(Some(_)) = proc.child.try_wait() {
                    dead.push(shard);
                }
            }
        }
        for shard in dead {
            if stopping.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(RESPAWN_BACKOFF);
            match spawn_shard(config, shard) {
                Ok(proc) => {
                    let addr = proc.addr.clone();
                    children.lock().expect("fleet poisoned")[shard] = proc;
                    on_addr(shard, addr);
                }
                Err(_) => {
                    // Leave the corpse in place; the next sweep
                    // retries after another backoff.
                }
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Graceful termination: SIGTERM on unix (the shard drains in-flight
/// requests and fsyncs its WAL), plain kill elsewhere.
#[cfg(unix)]
fn terminate(child: &Child) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;
    // SAFETY: kill(2) with a PID we own from `Child::id`; worst case
    // (already-reaped PID) it returns ESRCH, which we ignore.
    unsafe {
        let _ = kill(child.id() as i32, SIGTERM);
    }
}

#[cfg(not(unix))]
fn terminate(child: &Child) {
    // No SIGTERM semantics: rely on Supervisor::stop's kill escalation.
    let _ = child;
}

//! The router process: a dependency-free HTTP/1.1 reverse proxy with
//! rendezvous-hash routing, bounded admission, and one-hop failover.
//!
//! Same process shape as the shard server it fronts — an accept
//! thread feeding a bounded queue, a fixed worker pool, `429 +
//! Retry-After` shed at the door — so the two tiers degrade the same
//! way under overload. Per request the router:
//!
//! 1. picks the owner shard by rendezvous hash over the tile key
//!    `(dataset, kind, z, x, y)` (or the dataset key alone for pinned
//!    ingest-mutable datasets and `/datasets/` requests),
//! 2. reserves a bounded in-flight slot on the target (full → `429`),
//! 3. proxies over a pooled keep-alive connection (`TCP_NODELAY`,
//!    reused read buffers, one stale-connection retry),
//! 4. on shard failure retries the hash ring's runner-up once, marking
//!    the response `X-Kdv-Failover` — except ingest POSTs and pinned
//!    datasets, which must never run on a non-owner (the owner holds
//!    the dataset's WAL and memtable), and so answer `503` instead.
//!
//! Every proxied request carries `X-Kdv-Trace-Id` downstream, so the
//! shard adopts the router's ID and the two tiers' traces stitch.

use std::collections::HashSet;
use std::io::{self, Read as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kdv_server::http::{read_request_from, text_response, Request, RequestError, Response};
use kdv_server::{parse_tile_path, valid_dataset_name};
use kdv_telemetry::{RouterCounters, TraceId};

use crate::health::ShardSlot;
use crate::metrics;
use crate::ring::Ring;

/// Client-side socket budget (same as the shard server's).
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// Keep-alive idle window for client connections (mirrors the shard).
const KEEPALIVE_IDLE: Duration = Duration::from_secs(2);

/// Upstream connect budget. Loopback/LAN shards either accept fast or
/// are down; waiting longer just stalls the failover retry.
const UPSTREAM_CONNECT: Duration = Duration::from_secs(1);

/// Upstream response budget: must cover a cold tile render on a busy
/// shard, not just the round trip.
const UPSTREAM_READ: Duration = Duration::from_secs(30);

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Shard addresses; index in this list is the shard's permanent
    /// ring identity.
    pub shards: Vec<String>,
    /// Proxy worker threads.
    pub workers: usize,
    /// Accept-queue depth (overflow sheds `429` at the door).
    pub queue: usize,
    /// Per-shard in-flight cap (admission control).
    pub max_inflight: usize,
    /// Health probe period in milliseconds.
    pub probe_ms: u64,
    /// Deepest zoom accepted in tile paths (routing only; shards
    /// enforce their own pyramid depth).
    pub max_z: u8,
    /// Largest accepted request body (ingest POSTs pass through).
    pub max_body: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            workers: 8,
            queue: 128,
            max_inflight: 64,
            probe_ms: 250,
            max_z: 24,
            max_body: 1 << 20,
        }
    }
}

/// Why a router could not start.
#[derive(Debug)]
pub enum RouterError {
    /// Invalid configuration.
    Config(String),
    /// Socket-level failure.
    Io(io::Error),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Config(m) => write!(f, "router configuration: {m}"),
            RouterError::Io(e) => write!(f, "router io: {e}"),
        }
    }
}

impl std::error::Error for RouterError {}

pub(crate) struct RouterInner {
    pub(crate) shards: Vec<Arc<ShardSlot>>,
    pub(crate) ring: Ring,
    pub(crate) counters: RouterCounters,
    /// Datasets that have received an ingest POST through this router:
    /// all their traffic — tiles included — is pinned to the dataset
    /// owner so memtable deltas stay coherent and no two processes
    /// ever write one WAL.
    mutable: Mutex<HashSet<String>>,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    pub(crate) started: Instant,
    max_inflight: usize,
    max_z: u8,
    max_body: u64,
}

/// A running router (see [`Router::start`]).
pub struct Router {
    inner: Arc<RouterInner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds the listen socket, spawns the accept/worker/prober
    /// threads, and starts routing.
    pub fn start(config: RouterConfig) -> Result<Self, RouterError> {
        if config.shards.is_empty() {
            return Err(RouterError::Config("need at least one shard".into()));
        }
        if config.workers == 0 {
            return Err(RouterError::Config("need at least one worker".into()));
        }
        if config.queue == 0 || config.max_inflight == 0 {
            return Err(RouterError::Config(
                "queue depth and in-flight cap must be at least 1".into(),
            ));
        }
        let listener = TcpListener::bind(&config.addr).map_err(RouterError::Io)?;
        let local_addr = listener.local_addr().map_err(RouterError::Io)?;
        let shards: Vec<Arc<ShardSlot>> = config
            .shards
            .iter()
            .enumerate()
            .map(|(i, addr)| Arc::new(ShardSlot::new(i, addr.clone())))
            .collect();
        let inner = Arc::new(RouterInner {
            ring: Ring::new(shards.len()),
            shards,
            counters: RouterCounters::default(),
            mutable: Mutex::new(HashSet::new()),
            shutdown: AtomicBool::new(false),
            local_addr,
            started: Instant::now(),
            max_inflight: config.max_inflight,
            max_z: config.max_z,
            max_body: config.max_body,
        });

        let probe_every = Duration::from_millis(config.probe_ms.max(10));
        let prober = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("kdv-router-probe".into())
                .spawn(move || {
                    while !inner.shutdown.load(Ordering::SeqCst) {
                        for slot in &inner.shards {
                            slot.probe();
                        }
                        std::thread::sleep(probe_every);
                    }
                })
                .map_err(RouterError::Io)?
        };

        let (tx, rx) = sync_channel::<(TcpStream, Instant)>(config.queue);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let inner = Arc::clone(&inner);
            let rx = Arc::clone(&rx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kdv-router-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .map_err(RouterError::Io)?,
            );
        }
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("kdv-router-accept".into())
                .spawn(move || accept_loop(&inner, &listener, tx))
                .map_err(RouterError::Io)?
        };
        Ok(Self {
            inner,
            addr: local_addr,
            accept: Some(accept),
            workers,
            prober: Some(prober),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Points shard `index` at a new address (supervisor respawn).
    pub fn set_shard_addr(&self, index: usize, addr: String) {
        if let Some(slot) = self.inner.shards.get(index) {
            slot.set_addr(addr);
        }
    }

    /// Initiates shutdown and joins every thread.
    pub fn stop(mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    inner: &RouterInner,
    listener: &TcpListener,
    tx: std::sync::mpsc::SyncSender<(TcpStream, Instant)>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
        let _ = stream.set_nodelay(true);
        match tx.try_send((stream, Instant::now())) {
            Ok(()) => {}
            Err(TrySendError::Full((mut stream, _))) => {
                inner.counters.shed();
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut scratch = [0u8; 1024];
                let _ = stream.read(&mut scratch);
                let resp = text_response(429, "Too Many Requests", "router queue is full")
                    .header("Retry-After", "1");
                let _ = resp.write_to(&mut stream);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn worker_loop(inner: &Arc<RouterInner>, rx: &Mutex<Receiver<(TcpStream, Instant)>>) {
    loop {
        let stream = {
            let guard = rx.lock().expect("router queue poisoned");
            guard.recv()
        };
        match stream {
            Ok((stream, _accepted)) => handle_connection(inner, stream),
            Err(_) => break,
        }
    }
}

fn handle_connection(inner: &Arc<RouterInner>, mut stream: TcpStream) {
    let mut carry = Vec::new();
    loop {
        if !handle_request(inner, &mut stream, &mut carry) {
            break;
        }
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        if carry.is_empty() {
            let _ = stream.set_read_timeout(Some(KEEPALIVE_IDLE));
            let mut first = [0u8; 1];
            match stream.peek(&mut first) {
                Ok(n) if n > 0 => {}
                _ => break,
            }
            let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        }
    }
    if inner.shutdown.load(Ordering::SeqCst) {
        let _ = TcpStream::connect(inner.local_addr);
    }
}

/// Serves one client request; returns whether to keep the connection.
fn handle_request(inner: &Arc<RouterInner>, stream: &mut TcpStream, carry: &mut Vec<u8>) -> bool {
    let request = match read_request_from(stream, inner.max_body, carry) {
        Ok(Ok(request)) => request,
        Ok(Err(reject)) => {
            let response = match reject {
                RequestError::Bad(message) => text_response(400, "Bad Request", &message),
                RequestError::TooLarge { declared, cap } => text_response(
                    413,
                    "Payload Too Large",
                    &format!("declared body of {declared} bytes exceeds the {cap}-byte cap"),
                )
                .header("Retry-After", "1"),
            };
            let _ = response.write_to(stream);
            let _ = stream.shutdown(std::net::Shutdown::Write);
            return false;
        }
        Err(_) => return false,
    };
    inner.counters.request();
    // Adopt the client's trace ID when it forwarded a valid one
    // (router behind router, or a client correlating its own logs);
    // otherwise draw a fresh ID for the whole downstream story.
    let trace_id = request
        .trace_id
        .as_deref()
        .and_then(TraceId::from_hex)
        .unwrap_or_else(TraceId::next);
    let keep = request.keep_alive && !inner.shutdown.load(Ordering::SeqCst);
    let response = route(inner, &request, trace_id).keep_alive(keep);
    let wrote = response.write_to(stream).is_ok();
    let keep = keep && wrote;
    if !keep {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    if wrote {
        inner.counters.sent(response.body_len() as u64);
    }
    keep
}

/// A parsed upstream response.
pub(crate) struct Upstream {
    pub(crate) status: u16,
    pub(crate) headers: Vec<(String, String)>,
    pub(crate) body: Vec<u8>,
    keep: bool,
}

fn other(message: &str) -> io::Error {
    io::Error::other(message.to_string())
}

/// Reads one `Content-Length`-framed response off an upstream socket.
fn read_upstream(stream: &mut TcpStream) -> io::Result<Upstream> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 64 * 1024 {
            return Err(other("upstream response head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(other("upstream closed before a response head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| other("non-UTF-8 head"))?;
    let mut lines = head.lines();
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| other("malformed status line"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut keep = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("Content-Length") {
                content_length = value.parse().ok();
            } else if name.eq_ignore_ascii_case("Connection") {
                keep = value.eq_ignore_ascii_case("keep-alive");
            }
            headers.push((name.to_string(), value.to_string()));
        }
    }
    let len = content_length.ok_or_else(|| other("missing Content-Length"))?;
    if len > 64 << 20 {
        return Err(other("upstream body too large"));
    }
    let mut body = buf.split_off(head_end);
    while body.len() < len {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(other("upstream closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(len);
    Ok(Upstream {
        status,
        headers,
        body,
        keep,
    })
}

/// Serializes the upstream copy of `request` with the proxy headers
/// (`Connection: keep-alive`, the forwarded trace ID) attached.
fn upstream_request_bytes(request: &Request, trace_id: TraceId) -> Vec<u8> {
    let mut head = String::with_capacity(256);
    head.push_str(&request.method);
    head.push(' ');
    head.push_str(&request.path);
    if let Some(q) = &request.query {
        head.push('?');
        head.push_str(q);
    }
    head.push_str(" HTTP/1.1\r\nConnection: keep-alive\r\nX-Kdv-Trace-Id: ");
    head.push_str(&trace_id.to_hex());
    head.push_str("\r\n");
    if !request.body.is_empty() {
        head.push_str(&format!("Content-Length: {}\r\n", request.body.len()));
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(&request.body);
    bytes
}

fn try_once(mut conn: TcpStream, bytes: &[u8]) -> io::Result<(Upstream, TcpStream)> {
    io::Write::write_all(&mut conn, bytes)?;
    io::Write::flush(&mut conn)?;
    let upstream = read_upstream(&mut conn)?;
    Ok((upstream, conn))
}

fn connect_fresh(slot: &ShardSlot) -> io::Result<TcpStream> {
    let addr: SocketAddr = slot
        .addr()
        .parse()
        .map_err(|_| other("unparseable shard address"))?;
    let conn = TcpStream::connect_timeout(&addr, UPSTREAM_CONNECT)?;
    conn.set_read_timeout(Some(UPSTREAM_READ))?;
    conn.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let _ = conn.set_nodelay(true);
    Ok(conn)
}

/// One shard attempt: pooled keep-alive connection first (with a
/// single stale-connection retry on a fresh one), else a fresh
/// connection. Non-idempotent requests (ingest POSTs) skip the pool
/// entirely — a reused connection that dies mid-exchange leaves "did
/// the shard commit?" unanswerable, and a fresh connect's failure
/// modes are unambiguous.
pub(crate) fn fetch(
    inner: &RouterInner,
    slot: &ShardSlot,
    bytes: &[u8],
    idempotent: bool,
) -> Option<Upstream> {
    if idempotent {
        if let Some(conn) = slot.pooled() {
            inner.counters.proxied();
            match try_once(conn, bytes) {
                Ok((upstream, conn)) => {
                    if upstream.keep {
                        slot.pool_push(conn);
                    }
                    slot.mark_ok();
                    return Some(upstream);
                }
                // The pooled connection idled out shard-side between
                // requests; not the shard's fault. Retry fresh.
                Err(_) => inner.counters.retry(),
            }
        }
    }
    inner.counters.proxied();
    match connect_fresh(slot).and_then(|conn| try_once(conn, bytes)) {
        Ok((upstream, conn)) => {
            if upstream.keep {
                slot.pool_push(conn);
            }
            slot.mark_ok();
            Some(upstream)
        }
        Err(_) => {
            inner.counters.upstream_error();
            slot.mark_failure();
            None
        }
    }
}

/// Canonical reason phrases for forwarded statuses.
fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Upstream",
    }
}

/// Rebuilds a client-facing [`Response`] from an upstream response:
/// status and body forwarded, hop-by-hop headers dropped, provenance
/// (`X-Kdv-Shard`, `X-Kdv-Failover`) attached.
fn client_response(upstream: Upstream, shard: usize, failover: bool) -> Response {
    let mut content_type = "application/octet-stream".to_string();
    let mut response = Response::new(upstream.status, reason_for(upstream.status));
    for (name, value) in &upstream.headers {
        if name.eq_ignore_ascii_case("Content-Type") {
            content_type = value.clone();
        } else if name.eq_ignore_ascii_case("Content-Length")
            || name.eq_ignore_ascii_case("Connection")
        {
            // Rebuilt for the client hop.
        } else {
            response = response.header(name, value.clone());
        }
    }
    response = response.header("X-Kdv-Shard", shard.to_string());
    if failover {
        response = response.header("X-Kdv-Failover", "1");
    }
    response.body(&content_type, upstream.body)
}

/// Where one request should go.
struct Route {
    key: u64,
    /// Pinned routes (ingest, mutable datasets) must not fail over.
    pinned: bool,
    /// Idempotent requests may retry and use pooled connections.
    idempotent: bool,
}

fn route(inner: &Arc<RouterInner>, request: &Request, trace_id: TraceId) -> Response {
    let local = |response: Response| response.header("X-Kdv-Trace-Id", trace_id.to_hex());
    match request.path.as_str() {
        "/healthz" => return local(text_response(200, "OK", "ok")),
        "/readyz" => {
            let up = inner.shards.iter().filter(|s| s.is_up()).count();
            return if up > 0 {
                local(text_response(200, "OK", &format!("{up} shards up")))
            } else {
                local(
                    text_response(503, "Service Unavailable", "no shard is up")
                        .header("Retry-After", "1"),
                )
            };
        }
        "/metrics" => return local(metrics::respond(inner, request.query.as_deref())),
        _ => {}
    }

    let decision = match decide(inner, request) {
        Ok(d) => d,
        Err(response) => return local(response),
    };
    let owner = inner.ring.owner(decision.key);
    let fallback = if decision.pinned || !decision.idempotent {
        None
    } else {
        inner.ring.fallback(decision.key)
    };

    // Attempt order: the owner first — unless probes already marked it
    // down and the fallback looks alive, in which case skipping the
    // owner saves a connect timeout on every request of the outage.
    let mut order = vec![owner];
    if let Some(fb) = fallback {
        if !inner.shards[owner].is_up() && inner.shards[fb].is_up() {
            order = vec![fb, owner];
        } else {
            order.push(fb);
        }
    }

    let bytes = upstream_request_bytes(request, trace_id);
    for &shard in &order {
        let slot = &inner.shards[shard];
        if !slot.try_admit(inner.max_inflight) {
            inner.counters.shed();
            return local(
                text_response(429, "Too Many Requests", "shard in-flight cap reached")
                    .header("Retry-After", "1"),
            );
        }
        let result = fetch(inner, slot, &bytes, decision.idempotent);
        slot.release();
        if let Some(upstream) = result {
            let failover = shard != owner;
            if failover {
                inner.counters.failover();
            }
            return client_response(upstream, shard, failover);
        }
    }
    inner.counters.no_upstream();
    local(
        text_response(
            503,
            "Service Unavailable",
            "no shard could serve the request",
        )
        .header("Retry-After", "1"),
    )
}

/// Classifies a request into its routing key. `Err` carries the
/// response for requests the router answers itself.
fn decide(inner: &Arc<RouterInner>, request: &Request) -> Result<Route, Response> {
    let path = request.path.as_str();
    if let Some(rest) = path.strip_prefix("/datasets/") {
        let name = rest.split('/').next().unwrap_or("");
        if !valid_dataset_name(name) {
            return Err(text_response(400, "Bad Request", "invalid dataset name"));
        }
        let ingest = request.method == "POST";
        if ingest {
            // Pin the dataset *before* forwarding the first write, so
            // no tile request can race to a non-owner afterwards.
            inner
                .mutable
                .lock()
                .expect("mutable set poisoned")
                .insert(name.to_string());
        }
        return Ok(Route {
            key: Ring::dataset_key(name),
            pinned: true,
            idempotent: !ingest,
        });
    }
    if path.starts_with("/tiles/") {
        let parsed = parse_tile_path(path, inner.max_z, true)
            .map(|(dataset, addr)| (dataset.unwrap_or_default(), addr))
            .or_else(|_| {
                parse_tile_path(path, inner.max_z, false).map(|(_, addr)| (String::new(), addr))
            });
        let (dataset, addr) = match parsed {
            Ok(parts) => parts,
            Err(e) => return Err(text_response(400, "Bad Request", &e.to_string())),
        };
        let pinned = !dataset.is_empty()
            && inner
                .mutable
                .lock()
                .expect("mutable set poisoned")
                .contains(&dataset);
        let key = if pinned {
            Ring::dataset_key(&dataset)
        } else {
            Ring::tile_key(&dataset, addr.kind.as_str(), addr.z, addr.x, addr.y)
        };
        return Ok(Route {
            key,
            pinned,
            idempotent: request.method == "GET",
        });
    }
    // Anything else (debug endpoints, /shutdown, unknown paths) routes
    // by path hash: deterministic, spreads debug load, and lets the
    // shard answer its own 404s.
    Ok(Route {
        key: Ring::dataset_key(path),
        pinned: false,
        idempotent: request.method == "GET",
    })
}

//! Per-shard liveness: `/readyz` probes, passive failure marking, and
//! the bounded in-flight admission counter.
//!
//! Health here is deliberately coarse — a shard is `up` or it is not —
//! because the proxy path has its own second chance (retry the
//! hash-ring fallback once). The prober flips a shard down after
//! [`DOWN_AFTER`] consecutive probe failures and back up after one
//! success; proxy failures count as probe failures too, so a crashed
//! shard stops receiving first-choice traffic after at most one
//! in-flight round even between probe ticks.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Consecutive failures before a shard is marked down.
pub const DOWN_AFTER: u32 = 2;

/// Probe socket budget: connect + readyz round trip.
const PROBE_TIMEOUT: Duration = Duration::from_millis(500);

/// Upper bound on pooled idle connections per shard. Shard workers
/// block (briefly) on idle kept-alive connections, so the pool must
/// stay well under the shard's worker count.
const POOL_PER_SHARD: usize = 2;

/// One shard as the router sees it: address (respawns may move it),
/// health state, admission counter, and the keep-alive connection
/// pool.
#[derive(Debug)]
pub struct ShardSlot {
    /// Shard index — the identity rendezvous hashing ranks. Stable
    /// across respawns.
    pub index: usize,
    addr: Mutex<String>,
    up: AtomicBool,
    fails: AtomicU32,
    inflight: AtomicUsize,
    pool: Mutex<Vec<TcpStream>>,
}

impl ShardSlot {
    /// A slot that assumes the shard is up until a probe says
    /// otherwise (optimistic start: the first requests race the first
    /// probe tick, and the proxy path handles a dead shard anyway).
    pub fn new(index: usize, addr: String) -> Self {
        Self {
            index,
            addr: Mutex::new(addr),
            up: AtomicBool::new(true),
            fails: AtomicU32::new(0),
            inflight: AtomicUsize::new(0),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The shard's current address.
    pub fn addr(&self) -> String {
        self.addr.lock().expect("shard addr poisoned").clone()
    }

    /// Points the slot at a respawned shard's new address and drops
    /// every pooled connection to the old incarnation.
    pub fn set_addr(&self, addr: String) {
        *self.addr.lock().expect("shard addr poisoned") = addr;
        self.pool.lock().expect("shard pool poisoned").clear();
        // Give the respawn the benefit of the doubt immediately: the
        // supervisor only rewrites the address once the child wrote
        // its port file, i.e. once it is accepting.
        self.fails.store(0, Ordering::Relaxed);
        self.up.store(true, Ordering::Relaxed);
    }

    /// Whether the shard is currently believed up.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::Relaxed)
    }

    /// Current in-flight proxied requests.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Tries to reserve an admission slot; false when `cap` is
    /// already saturated (the caller sheds `429`).
    pub fn try_admit(&self, cap: usize) -> bool {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Releases an admission slot.
    pub fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a successful probe or proxied request.
    pub fn mark_ok(&self) {
        self.fails.store(0, Ordering::Relaxed);
        self.up.store(true, Ordering::Relaxed);
    }

    /// Records a failed probe or proxied request; flips the shard
    /// down after [`DOWN_AFTER`] consecutive failures.
    pub fn mark_failure(&self) {
        let fails = self.fails.fetch_add(1, Ordering::Relaxed) + 1;
        if fails >= DOWN_AFTER {
            self.up.store(false, Ordering::Relaxed);
        }
    }

    /// Pops a pooled keep-alive connection, if any survive.
    pub fn pooled(&self) -> Option<TcpStream> {
        self.pool.lock().expect("shard pool poisoned").pop()
    }

    /// Returns a still-healthy keep-alive connection to the pool
    /// (dropped instead when the pool is full — the shard's worker
    /// pool is finite and an idle pooled connection pins a worker).
    pub fn pool_push(&self, conn: TcpStream) {
        let mut pool = self.pool.lock().expect("shard pool poisoned");
        if pool.len() < POOL_PER_SHARD {
            pool.push(conn);
        }
    }

    /// One active `/readyz` probe: TCP connect, minimal GET, status
    /// check. Any failure — connect, write, read, non-200 — counts
    /// against the shard.
    pub fn probe(&self) {
        if self.probe_once().is_some() {
            self.mark_ok();
        } else {
            self.mark_failure();
        }
    }

    fn probe_once(&self) -> Option<()> {
        let addr: SocketAddr = self.addr().parse().ok()?;
        let mut stream = TcpStream::connect_timeout(&addr, PROBE_TIMEOUT).ok()?;
        stream.set_read_timeout(Some(PROBE_TIMEOUT)).ok()?;
        stream.set_write_timeout(Some(PROBE_TIMEOUT)).ok()?;
        let _ = stream.set_nodelay(true);
        stream.write_all(b"GET /readyz HTTP/1.1\r\n\r\n").ok()?;
        let mut head = [0u8; 16];
        let mut filled = 0;
        while filled < head.len() {
            match stream.read(&mut head[filled..]) {
                Ok(0) | Err(_) => break,
                Ok(n) => filled += n,
            }
        }
        let text = std::str::from_utf8(&head[..filled]).ok()?;
        if text.starts_with("HTTP/1.1 200") {
            Some(())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn admission_counter_is_bounded_and_releases() {
        let slot = ShardSlot::new(0, "127.0.0.1:1".into());
        assert!(slot.try_admit(2));
        assert!(slot.try_admit(2));
        assert!(!slot.try_admit(2));
        assert_eq!(slot.inflight(), 2);
        slot.release();
        assert!(slot.try_admit(2));
    }

    #[test]
    fn consecutive_failures_flip_down_and_one_success_recovers() {
        let slot = ShardSlot::new(0, "127.0.0.1:1".into());
        assert!(slot.is_up());
        slot.mark_failure();
        assert!(slot.is_up(), "one failure is not enough");
        slot.mark_failure();
        assert!(!slot.is_up());
        slot.mark_ok();
        assert!(slot.is_up());
    }

    #[test]
    fn probe_accepts_200_and_rejects_503_or_dead() {
        // A hand-rolled one-shot "shard" answering 200.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            for status in ["200 OK", "503 Unavailable"] {
                let (mut conn, _) = listener.accept().expect("accept");
                let mut scratch = [0u8; 256];
                let _ = std::io::Read::read(&mut conn, &mut scratch);
                conn.write_all(
                    format!("HTTP/1.1 {status}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
                        .as_bytes(),
                )
                .expect("write");
            }
        });
        let slot = ShardSlot::new(0, addr.to_string());
        slot.probe();
        assert!(slot.is_up());
        slot.probe(); // the 503 round
        slot.probe(); // listener dropped: connect refused
        assert!(!slot.is_up());
        server.join().expect("server");

        slot.set_addr(addr.to_string());
        assert!(slot.is_up(), "respawn resets health optimistically");
    }
}

//! Rendezvous (highest-random-weight) hashing: which shard owns a
//! tile, and which shard is its failover.
//!
//! Every router process must agree on ownership without coordination —
//! across restarts, across machines — so the hash is a **fixed**
//! dependency-free mixer (FNV-1a over the key bytes, then a
//! SplitMix64 finalizer per shard), never `RandomState` or anything
//! seeded per-process. For each key, every shard index gets a pseudo-
//! random weight `mix(key_hash, shard)`; the shard with the highest
//! weight owns the key and the runner-up is the failover target.
//!
//! Rendezvous hashing gives the two properties the cluster tier is
//! built on:
//!
//! * **balance** — weights are i.i.d.-ish across keys, so each of N
//!   shards owns ~1/N of the key space (the test suite bounds the max
//!   shard's share at 1/N + 5 percentage points over 10k tile keys);
//! * **minimal reshuffle** — adding or removing a shard only moves
//!   the keys whose top weight involved that shard: ~1/N of them.
//!   Every other key keeps its owner, so N−1 LRU caches stay hot
//!   through a membership change.

/// The fixed 64-bit avalanche finalizer (SplitMix64). Public domain
/// constants from Steele et al.; chosen because it is tiny, fast, and
/// statistically strong enough that per-shard weights behave
/// independently.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string: the key-bytes → u64 step. Fixed offset
/// basis and prime, so the same key hashes identically in every
/// process forever.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One key's pseudo-random weight at one shard.
fn weight(key: u64, shard: usize) -> u64 {
    mix(key ^ mix(shard as u64 ^ 0x6b64_765f_7368_6172)) // "kdv_shar"
}

/// The rendezvous ring over shard indices `0..n`.
///
/// The ring knows *indices*, not addresses or health: membership is
/// the configured shard count (stable across respawns — a restarted
/// shard keeps its index, so ownership never moves), and the router
/// layers liveness on top by skipping dead candidates in rank order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring {
    n: usize,
}

impl Ring {
    /// A ring over `n ≥ 1` shards.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a ring needs at least one shard");
        Self { n }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate zero-shard ring (unreachable via
    /// [`Ring::new`], present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The canonical key of one tile. `dataset` is `""` in
    /// single-dataset mode; `kind` is the tile kind string (`"eps"` /
    /// `"tau"`). NUL separators keep distinct field tuples from
    /// colliding as byte strings.
    pub fn tile_key(dataset: &str, kind: &str, z: u8, x: u32, y: u32) -> u64 {
        let mut bytes = Vec::with_capacity(dataset.len() + kind.len() + 16);
        bytes.extend_from_slice(dataset.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(kind.as_bytes());
        bytes.push(0);
        bytes.push(z);
        bytes.extend_from_slice(&x.to_le_bytes());
        bytes.extend_from_slice(&y.to_le_bytes());
        fnv1a(&bytes)
    }

    /// The canonical key of one dataset (ingest pinning routes every
    /// request for a mutable dataset through this key).
    pub fn dataset_key(dataset: &str) -> u64 {
        fnv1a(dataset.as_bytes())
    }

    /// The owning shard index for `key`.
    pub fn owner(&self, key: u64) -> usize {
        (0..self.n)
            .max_by_key(|&s| weight(key, s))
            .expect("ring is non-empty")
    }

    /// The failover shard for `key` — the runner-up by weight — or
    /// `None` on a single-shard ring.
    pub fn fallback(&self, key: u64) -> Option<usize> {
        if self.n < 2 {
            return None;
        }
        let owner = self.owner(key);
        (0..self.n)
            .filter(|&s| s != owner)
            .max_by_key(|&s| weight(key, s))
    }

    /// All shard indices ranked by descending weight for `key`: the
    /// order a router walks when shards are down.
    pub fn ranked(&self, key: u64) -> Vec<usize> {
        let mut shards: Vec<usize> = (0..self.n).collect();
        shards.sort_by_key(|&s| std::cmp::Reverse(weight(key, s)));
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 10k synthetic tile keys shaped like real pyramid traffic:
    /// every tile of a z≤5 pyramid across a few datasets and both
    /// kinds, padded with deep-zoom singles.
    fn synthetic_tile_keys() -> Vec<u64> {
        let mut keys = Vec::new();
        for dataset in ["", "crime", "taxi", "quake"] {
            for kind in ["eps", "tau"] {
                for z in 0u8..=5 {
                    let side = 1u32 << z;
                    for x in 0..side {
                        for y in 0..side {
                            keys.push(Ring::tile_key(dataset, kind, z, x, y));
                        }
                    }
                }
            }
        }
        let mut x = 7u32;
        while keys.len() < 10_000 {
            // Cheap LCG walk over deep-zoom coordinates.
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            keys.push(Ring::tile_key("crime", "eps", 9, x % 512, (x >> 9) % 512));
        }
        keys.truncate(10_000);
        keys
    }

    #[test]
    fn ownership_is_deterministic_across_processes() {
        // Golden pins: these exact assignments must hold forever — a
        // hash change silently reshuffles every cache in a live fleet
        // and breaks mixed-version routers. If this test fails, the
        // change is wrong, not the pins.
        let ring = Ring::new(4);
        let pins = [
            (Ring::tile_key("", "eps", 0, 0, 0), 1usize),
            (Ring::tile_key("", "tau", 3, 4, 5), 0),
            (Ring::tile_key("crime", "eps", 2, 1, 3), 0),
            (Ring::tile_key("crime", "tau", 5, 17, 9), 1),
            (Ring::dataset_key("crime"), 0),
            (Ring::dataset_key("taxi"), 1),
        ];
        for (key, owner) in pins {
            assert_eq!(ring.owner(key), owner, "key {key:#x}");
        }
        // And the raw hash itself is pinned (FNV-1a is a published
        // constant; this guards the byte-layout of the key tuple).
        assert_eq!(Ring::dataset_key(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn fields_are_framed_not_concatenated() {
        // ("ab", "c") and ("a", "bc") must not collide.
        assert_ne!(
            Ring::tile_key("ab", "c", 1, 0, 0),
            Ring::tile_key("a", "bc", 1, 0, 0)
        );
        assert_ne!(Ring::dataset_key("a"), Ring::tile_key("a", "", 0, 0, 0));
    }

    #[test]
    fn load_skew_stays_under_five_points_over_fair_share() {
        let keys = synthetic_tile_keys();
        for n in [2usize, 3, 4, 8] {
            let ring = Ring::new(n);
            let mut counts = vec![0usize; n];
            for &k in &keys {
                counts[ring.owner(k)] += 1;
            }
            let max_share = *counts.iter().max().unwrap() as f64 / keys.len() as f64;
            let bound = 1.0 / n as f64 + 0.05;
            assert!(
                max_share <= bound,
                "n={n}: max share {max_share:.4} exceeds {bound:.4} (counts {counts:?})"
            );
        }
    }

    #[test]
    fn membership_change_remaps_about_one_nth() {
        let keys = synthetic_tile_keys();
        // Shard N joins: only keys whose new top weight is the new
        // shard move, and they move *to* the new shard.
        for n in [2usize, 4, 8] {
            let before = Ring::new(n);
            let after = Ring::new(n + 1);
            let mut moved = 0usize;
            for &k in &keys {
                let (was, is) = (before.owner(k), after.owner(k));
                if was != is {
                    moved += 1;
                    assert_eq!(is, n, "a key moved to an old shard on join");
                }
            }
            let frac = moved as f64 / keys.len() as f64;
            let expect = 1.0 / (n + 1) as f64;
            assert!(
                (frac - expect).abs() <= 0.03,
                "join at n={n}: moved {frac:.4}, expected ~{expect:.4}"
            );
        }
    }

    #[test]
    fn fallback_is_the_runner_up_and_never_the_owner() {
        let ring = Ring::new(4);
        for &k in synthetic_tile_keys().iter().take(500) {
            let owner = ring.owner(k);
            let fb = ring.fallback(k).expect("n>1 has a fallback");
            assert_ne!(owner, fb);
            let ranked = ring.ranked(k);
            assert_eq!(ranked[0], owner);
            assert_eq!(ranked[1], fb);
            assert_eq!(ranked.len(), 4);
        }
        assert_eq!(Ring::new(1).fallback(42), None);
        assert_eq!(Ring::new(1).owner(42), 0);
    }
}

//! kdv-cluster: the sharded serving tier.
//!
//! One `kdv serve` process is a complete tile server, but a single
//! process is one crash away from an outage and one core short of a
//! deadline. This crate scales the server *out* instead of up, with
//! three cooperating pieces:
//!
//! * [`ring`] — rendezvous (highest-random-weight) hashing over tile
//!   keys `(dataset, kind, z, x, y)`: every router agrees which shard
//!   owns which tile with zero coordination, each shard's LRU cache
//!   holds a disjoint slice of the pyramid, and membership changes
//!   remap only ~1/N of the keys.
//! * [`proxy`] — the router process: a dependency-free HTTP/1.1
//!   reverse proxy with per-shard health probes, bounded in-flight
//!   admission (`429 + Retry-After` shed), pooled keep-alive upstream
//!   connections, one-hop failover to the hash ring's runner-up
//!   (`X-Kdv-Failover`), and trace-ID propagation end to end.
//! * [`supervisor`] — spawns and babysits the shard children,
//!   discovers their ports, respawns crashes without moving ownership,
//!   and turns SIGTERM into a fleet-wide graceful drain.
//!
//! [`metrics`] merges the fleet's observability into one scrape:
//! per-shard documents plus a summed rollup (JSON schema
//! `kdv-cluster-metrics/1`) and a Prometheus exposition.
//!
//! Ingest-mutable datasets are **pinned**: the first `POST
//! /datasets/{name}/points` through the router pins every later
//! request for that dataset — tiles included — to its per-dataset
//! owner shard, so exactly one process appends the dataset's WAL and
//! reads its memtable. Pinned requests never fail over (the fallback
//! shard's view would be stale and its WAL handle would race the
//! owner's); they answer `503` while the owner is down and the
//! supervisor respawns it.

pub mod health;
pub mod metrics;
pub mod proxy;
pub mod ring;
pub mod supervisor;

pub use health::ShardSlot;
pub use proxy::{Router, RouterConfig, RouterError};
pub use ring::Ring;
pub use supervisor::{SpawnError, Supervisor, SupervisorConfig};

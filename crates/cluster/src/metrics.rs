//! Aggregated observability: the router's own `/metrics` endpoint.
//!
//! Two formats, mirroring the shard server:
//!
//! * **JSON** (default) — schema `kdv-cluster-metrics/1`: router
//!   counters, one entry per shard (health + that shard's full
//!   `/metrics` document, fetched live), and a `rollup` section that
//!   sums the fleet's `http`, `cache`, and `ingest` counters so a
//!   dashboard needs one scrape, not N.
//! * **Prometheus** (`?format=prometheus`) — router counters plus
//!   per-shard up/in-flight gauges via the shared [`PromWriter`].
//!
//! Rollup semantics: numeric leaves sum, nested objects recurse, and
//! derived ratios (the cache `hit_rate`) are **recomputed** from the
//! summed numerators — a mean of per-shard ratios would weight an
//! idle shard the same as a busy one.

use std::sync::Arc;

use kdv_server::http::Response;
use kdv_telemetry::json::{self, Value};
use kdv_telemetry::{sum_objects, PromWriter};

use crate::proxy::{fetch, RouterInner};

/// Serves `GET /metrics` (and `?format=prometheus`) on the router.
pub(crate) fn respond(inner: &Arc<RouterInner>, query: Option<&str>) -> Response {
    if query == Some("format=prometheus") {
        Response::new(200, "OK").body(
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus(inner).into_bytes(),
        )
    } else {
        Response::new(200, "OK").body(
            "application/json",
            metrics_json(inner).render().into_bytes(),
        )
    }
}

/// Pulls one shard's `/metrics` JSON, bypassing admission control —
/// observability must work on a saturated fleet.
fn shard_metrics(inner: &RouterInner, index: usize) -> Value {
    let slot = &inner.shards[index];
    let bytes = b"GET /metrics HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
    match fetch(inner, slot, bytes, true) {
        Some(upstream) if upstream.status == 200 => std::str::from_utf8(&upstream.body)
            .ok()
            .and_then(|text| json::parse(text).ok())
            .unwrap_or(Value::Null),
        _ => Value::Null,
    }
}

/// The merged document (schema `kdv-cluster-metrics/1`).
pub(crate) fn metrics_json(inner: &Arc<RouterInner>) -> Value {
    let docs: Vec<Value> = (0..inner.shards.len())
        .map(|i| shard_metrics(inner, i))
        .collect();
    let shards: Vec<Value> = inner
        .shards
        .iter()
        .zip(&docs)
        .map(|(slot, doc)| {
            Value::obj(vec![
                ("id", json::num_u(slot.index as u64)),
                ("addr", Value::Str(slot.addr())),
                ("up", Value::Bool(slot.is_up())),
                ("inflight", json::num_u(slot.inflight() as u64)),
                ("metrics", doc.clone()),
            ])
        })
        .collect();
    let rollup = rollup(&docs);
    Value::obj(vec![
        ("schema", Value::Str("kdv-cluster-metrics/1".to_string())),
        (
            "uptime_ms",
            json::num_u(inner.started.elapsed().as_millis() as u64),
        ),
        ("router", inner.counters.snapshot().to_json()),
        ("shards", Value::Arr(shards)),
        ("rollup", rollup),
    ])
}

/// Sums the reachable shards' `http` / `cache` / `ingest` sections.
fn rollup(docs: &[Value]) -> Value {
    let section = |key: &str| -> Value {
        let parts: Vec<&Value> = docs.iter().filter_map(|d| d.get(key)).collect();
        let mut summed = sum_objects(&parts);
        // hit_rate is a ratio, not a counter: replace the summed
        // nonsense with hits / (hits + misses) over the fleet.
        if key == "cache" {
            if let Value::Obj(fields) = &mut summed {
                let hits = fields
                    .iter()
                    .find(|(k, _)| k == "hits")
                    .and_then(|(_, v)| v.as_f64())
                    .unwrap_or(0.0);
                let misses = fields
                    .iter()
                    .find(|(k, _)| k == "misses")
                    .and_then(|(_, v)| v.as_f64())
                    .unwrap_or(0.0);
                let rate = if hits + misses > 0.0 {
                    hits / (hits + misses)
                } else {
                    0.0
                };
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == "hit_rate") {
                    slot.1 = json::num_f(rate);
                }
            }
        }
        summed
    };
    Value::obj(vec![
        ("shards_reporting", {
            let n = docs.iter().filter(|d| !matches!(d, Value::Null)).count();
            json::num_u(n as u64)
        }),
        ("http", section("http")),
        ("cache", section("cache")),
        ("ingest", section("ingest")),
    ])
}

/// Router counters and shard gauges in text exposition 0.0.4.
fn prometheus(inner: &Arc<RouterInner>) -> String {
    let snap = inner.counters.snapshot();
    let mut w = PromWriter::new();
    w.gauge(
        "kdv_router_uptime_seconds",
        "Router uptime.",
        inner.started.elapsed().as_secs_f64(),
    );
    w.counter(
        "kdv_router_requests_total",
        "Client requests accepted by the router.",
        snap.requests as f64,
    );
    w.counter(
        "kdv_router_proxied_total",
        "Upstream exchange attempts.",
        snap.proxied as f64,
    );
    w.counter(
        "kdv_router_retries_total",
        "Stale pooled-connection retries.",
        snap.retries as f64,
    );
    w.counter(
        "kdv_router_failovers_total",
        "Requests answered by a non-owner shard.",
        snap.failovers as f64,
    );
    w.counter(
        "kdv_router_shed_total",
        "Requests shed with 429 (queue or in-flight cap).",
        snap.shed as f64,
    );
    w.counter(
        "kdv_router_upstream_errors_total",
        "Failed upstream exchanges.",
        snap.upstream_errors as f64,
    );
    w.counter(
        "kdv_router_no_upstream_total",
        "Requests that exhausted every candidate shard.",
        snap.no_upstream as f64,
    );
    w.counter(
        "kdv_router_sent_bytes_total",
        "Response body bytes returned to clients.",
        snap.bytes_sent as f64,
    );
    let up: Vec<(String, f64)> = inner
        .shards
        .iter()
        .map(|s| {
            (
                format!("shard=\"{}\"", s.index),
                if s.is_up() { 1.0 } else { 0.0 },
            )
        })
        .collect();
    w.gauge_family("kdv_router_shard_up", "Shard liveness (1 = up).", &up);
    let inflight: Vec<(String, f64)> = inner
        .shards
        .iter()
        .map(|s| (format!("shard=\"{}\"", s.index), s.inflight() as f64))
        .collect();
    w.gauge_family(
        "kdv_router_shard_inflight",
        "In-flight proxied requests per shard.",
        &inflight,
    );
    w.finish()
}

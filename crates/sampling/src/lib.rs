//! Z-order (Morton curve) coreset sampling for kernel density estimates.
//!
//! This crate reimplements the "Z-Order" baseline of the QUAD paper's
//! experiments — the dataset-sampling method of Zheng et al.
//! (SIGMOD 2013 / VDS 2017, paper refs [54, 55]):
//!
//! 1. sort the 2-D points along the Morton (Z-order) space-filling
//!    curve ([`morton`]),
//! 2. take a strided sample of size `s` ([`coreset`]) — the curve
//!    ordering makes the strides spatially stratified, cutting variance
//!    versus uniform sampling,
//! 3. scale each sampled weight by `n/s` so the sample's kernel
//!    aggregation estimates the full set's (the weight update of the
//!    paper's §2, footnote 5),
//! 4. answer εKDV by running EXACT on the (much smaller) sample.
//!
//! The guarantee is probabilistic — per query,
//! `|F_sample(q) − F_P(q)| ≤ ε·W` with probability `1 − δ` for
//! `s = Θ(ε⁻²·ln(1/δ))` — in contrast to the deterministic guarantees
//! of the bound-based methods (paper §2, "second camp").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coreset;
pub mod morton;

pub use coreset::{sample_size_for, sampling_eps_for, zorder_sample};
pub use morton::{morton2, sort_indices_by_morton};

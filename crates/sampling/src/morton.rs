//! Morton (Z-order) codes for 2-D points.
//!
//! Coordinates are scaled into a `2²¹ × 2²¹` integer grid over the
//! dataset's bounding box, then bit-interleaved into one 42-bit code.
//! Sorting by that code linearizes the plane along the Z-order curve,
//! which preserves spatial locality well enough for stratified
//! sampling.

use kdv_geom::{Mbr, PointSet};

/// Bits per axis in the Morton grid.
pub const MORTON_BITS: u32 = 21;

/// Interleaves the low 21 bits of `x` and `y` (x in the even positions).
///
/// Classic "split by 2" bit tricks; `O(1)`.
#[inline]
pub fn morton2(x: u32, y: u32) -> u64 {
    part1by1(x as u64) | (part1by1(y as u64) << 1)
}

/// Spreads the low 21 bits of `v` so consecutive bits land two apart.
#[inline]
fn part1by1(v: u64) -> u64 {
    let mut v = v & 0x1f_ffff; // keep 21 bits
    v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
    v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
    v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Maps a coordinate into the `[0, 2²¹)` grid over `[lo, hi]`.
#[inline]
fn to_grid(v: f64, lo: f64, hi: f64) -> u32 {
    let span = hi - lo;
    if span <= 0.0 {
        return 0;
    }
    let max = ((1u32 << MORTON_BITS) - 1) as f64;
    ((v - lo) / span * max).round().clamp(0.0, max) as u32
}

/// The Morton code of point `i` of a 2-D set, scaled to `bbox`.
#[inline]
pub fn morton_of(ps: &PointSet, i: usize, bbox: &Mbr) -> u64 {
    let p = ps.point(i);
    morton2(
        to_grid(p[0], bbox.lo()[0], bbox.hi()[0]),
        to_grid(p[1], bbox.lo()[1], bbox.hi()[1]),
    )
}

/// Returns point indices sorted by Morton code (ties broken by index,
/// keeping the sort deterministic).
///
/// # Panics
/// Panics if the set is empty or not 2-dimensional.
pub fn sort_indices_by_morton(ps: &PointSet) -> Vec<usize> {
    assert_eq!(ps.dim(), 2, "Morton codes are 2-D");
    let bbox = Mbr::of_set(ps).expect("non-empty set");
    let mut keyed: Vec<(u64, usize)> = (0..ps.len())
        .map(|i| (morton_of(ps, i, &bbox), i))
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn morton2_small_cases() {
        assert_eq!(morton2(0, 0), 0);
        assert_eq!(morton2(1, 0), 0b01);
        assert_eq!(morton2(0, 1), 0b10);
        assert_eq!(morton2(1, 1), 0b11);
        assert_eq!(morton2(2, 3), 0b1110);
        assert_eq!(morton2(7, 7), 0b111111);
    }

    #[test]
    fn morton2_is_monotone_per_axis() {
        // Fixing one axis, the code grows with the other.
        for y in [0u32, 5, 100] {
            let mut prev = morton2(0, y);
            for x in 1..64 {
                let code = morton2(x, y);
                assert!(code > prev || x == 0);
                prev = code;
            }
        }
    }

    #[test]
    fn quadrant_ordering_matches_z_curve() {
        // The four quadrants of a 2×2 grid appear in Z order:
        // (0,0) < (1,0) < (0,1) < (1,1) — for the high bit.
        let top = 1u32 << 20;
        let a = morton2(0, 0);
        let b = morton2(top, 0);
        let c = morton2(0, top);
        let d = morton2(top, top);
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn sort_handles_degenerate_bbox() {
        let ps = PointSet::from_rows(2, &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let order = sort_indices_by_morton(&ps);
        assert_eq!(order, vec![0, 1, 2]);
    }

    proptest! {
        /// part1by1 round-trips: de-interleaving even bits recovers x.
        #[test]
        fn interleave_roundtrip(x in 0u32..(1 << 21), y in 0u32..(1 << 21)) {
            let code = morton2(x, y);
            let mut rx = 0u32;
            let mut ry = 0u32;
            for bit in 0..MORTON_BITS {
                rx |= (((code >> (2 * bit)) & 1) as u32) << bit;
                ry |= (((code >> (2 * bit + 1)) & 1) as u32) << bit;
            }
            prop_assert_eq!(rx, x);
            prop_assert_eq!(ry, y);
        }

        /// Sorting yields a permutation of all indices.
        #[test]
        fn sort_is_permutation(flat in proptest::collection::vec(-100.0..100.0f64, 2..80)) {
            let n = flat.len() / 2 * 2;
            let ps = PointSet::from_rows(2, &flat[..n]);
            let mut order = sort_indices_by_morton(&ps);
            order.sort_unstable();
            let expect: Vec<usize> = (0..ps.len()).collect();
            prop_assert_eq!(order, expect);
        }
    }
}

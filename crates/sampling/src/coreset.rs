//! Strided Z-order coreset extraction and the (ε, δ) sample-size rule.

use crate::morton::sort_indices_by_morton;
use kdv_geom::PointSet;

/// Sample size giving, per query, `|F̂(q) − F(q)| ≤ ε·W` with
/// probability at least `1 − δ` under uniform sampling of unit-weight
/// points (Hoeffding: kernel responses lie in `[0, 1]`):
///
/// `s = ⌈ ln(2/δ) / (2 ε²) ⌉`.
///
/// The Z-order stratification only reduces variance relative to this,
/// so the bound remains valid as a budget.
///
/// # Panics
/// Panics unless `0 < ε` and `0 < δ < 1`.
pub fn sample_size_for(eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && eps.is_finite(), "ε must be positive");
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1)");
    ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as usize
}

/// Inverse of [`sample_size_for`]: the tightest per-query error budget
/// `ε` a sample of `size` points certifies at confidence `1 − δ`:
///
/// `ε = √( ln(2/δ) / (2 s) )`.
///
/// Round-tripping through [`sample_size_for`] never loses budget:
/// `sample_size_for(sampling_eps_for(s, δ), δ) ≤ s` (the ceiling in the
/// forward direction only ever asks for *more* points than `ε` needs).
///
/// # Panics
/// Panics unless `size > 0` and `0 < δ < 1`.
pub fn sampling_eps_for(size: usize, delta: f64) -> f64 {
    assert!(size > 0, "sample size must be positive");
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1)");
    let mut eps = ((2.0 / delta).ln() / (2.0 * size as f64)).sqrt();
    // Floating-point guard: when `ln(2/δ)/(2ε²)` lands a hair past an
    // integer, the forward rule's ceiling would ask for `size + 1`
    // points. Inflating ε by parts in 10¹² (conservative — a looser
    // certificate) restores the round-trip invariant exactly.
    while sample_size_for(eps, delta) > size {
        eps *= 1.0 + 1e-12;
    }
    eps
}

/// Draws a Z-order stratified sample of (at most) `size` points and
/// rescales weights by `n/s` so kernel aggregations over the sample
/// estimate aggregations over the full set.
///
/// `phase` rotates the strided positions (pass a random value in
/// `[0, 1)` for an unbiased estimator; the figure harness fixes it for
/// reproducibility). If `size ≥ n` the original set is returned
/// unchanged.
///
/// # Examples
/// ```
/// use kdv_geom::PointSet;
/// use kdv_sampling::zorder_sample;
///
/// let flat: Vec<f64> = (0..200).map(|i| i as f64).collect();
/// let ps = PointSet::from_rows(2, &flat);
/// let coreset = zorder_sample(&ps, 10, 0.5);
/// assert_eq!(coreset.len(), 10);
/// // Reweighting preserves the total kernel mass.
/// assert!((coreset.total_weight() - ps.total_weight()).abs() < 1e-9);
/// ```
///
/// # Panics
/// Panics if the set is empty or not 2-D, `size == 0`, or `phase` is
/// outside `[0, 1)`.
pub fn zorder_sample(ps: &PointSet, size: usize, phase: f64) -> PointSet {
    assert!(!ps.is_empty(), "cannot sample an empty set");
    assert!(size > 0, "sample size must be positive");
    assert!((0.0..1.0).contains(&phase), "phase must be in [0, 1)");
    let n = ps.len();
    if size >= n {
        return ps.clone();
    }

    let order = sort_indices_by_morton(ps);
    // One expression, two roles: `n/s` is both the stride between
    // sampled curve positions and the weight rescale. Taking every
    // `n/s`-th point and multiplying its weight by `n/s` keeps the
    // total kernel mass: for uniform weights `w` the sample's mass is
    // `s · w · n/s = n·w = W` exactly, and for non-uniform weights the
    // stratified estimator's expected mass is `W` (each point is
    // selected with probability `s/n` and up-weighted by `n/s`).
    let stride = n as f64 / size as f64;

    let mut out = PointSet::with_capacity(ps.dim(), size);
    for k in 0..size {
        let pos = ((k as f64 + phase) * stride) as usize;
        let idx = order[pos.min(n - 1)];
        out.push_weighted(ps.point(idx), ps.weight(idx) * stride);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_geom::vecmath::dist2;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    #[test]
    fn sample_size_formula() {
        // ε = 0.1, δ = 0.2: ln(10)/0.02 ≈ 115.13 → 116.
        assert_eq!(sample_size_for(0.1, 0.2), 116);
        // Smaller ε → quadratically more samples.
        assert!(sample_size_for(0.01, 0.2) > 90 * sample_size_for(0.1, 0.2));
    }

    #[test]
    #[should_panic(expected = "δ must be in (0, 1)")]
    fn bad_delta_panics() {
        sample_size_for(0.1, 1.5);
    }

    #[test]
    fn eps_for_size_inverts_without_losing_budget() {
        for delta in [0.5, 0.1, 1e-3, 1e-6] {
            for size in [1usize, 7, 116, 4096, 1 << 20] {
                let eps = sampling_eps_for(size, delta);
                assert!(eps > 0.0 && eps.is_finite());
                // The ε a size certifies must, fed back through the
                // forward rule, ask for at most that many points.
                assert!(
                    sample_size_for(eps, delta) <= size,
                    "size {size} δ {delta}: round-trip inflated the sample"
                );
            }
        }
    }

    #[test]
    fn sample_preserves_total_weight() {
        let mut rng = StdRng::seed_from_u64(3);
        let flat: Vec<f64> = (0..2000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let ps = PointSet::from_rows(2, &flat);
        let s = zorder_sample(&ps, 100, 0.0);
        assert_eq!(s.len(), 100);
        assert!(
            (s.total_weight() - ps.total_weight()).abs() < 1e-6,
            "reweighting must preserve ΣW: {} vs {}",
            s.total_weight(),
            ps.total_weight()
        );
    }

    #[test]
    fn oversized_request_returns_original() {
        let ps = PointSet::from_rows(2, &[0.0, 0.0, 1.0, 1.0]);
        let s = zorder_sample(&ps, 10, 0.5);
        assert_eq!(s, ps);
    }

    #[test]
    fn sampled_kde_estimates_full_kde() {
        // Clustered data; the stratified estimator's error at a dense
        // query point must be well within the Hoeffding budget.
        let mut rng = StdRng::seed_from_u64(9);
        let mut flat = Vec::new();
        for _ in 0..5000 {
            // Two clusters.
            let (cx, cy) = if rng.gen_bool(0.7) {
                (0.0, 0.0)
            } else {
                (5.0, 5.0)
            };
            flat.push(cx + rng.gen_range(-1.0..1.0));
            flat.push(cy + rng.gen_range(-1.0..1.0));
        }
        let ps = PointSet::from_rows(2, &flat);
        let gamma = 0.5;
        let kde = |set: &PointSet, q: &[f64]| -> f64 {
            set.iter()
                .map(|p| p.weight * (-gamma * dist2(q, p.coords)).exp())
                .sum()
        };
        let eps = 0.05;
        let s = zorder_sample(&ps, sample_size_for(eps, 0.1), 0.25);
        let q = [0.0, 0.0];
        let err = (kde(&s, &q) - kde(&ps, &q)).abs() / ps.total_weight();
        assert!(err <= eps, "normalized error {err} exceeds ε = {eps}");
    }
}

//! Runtime-dispatched SIMD kernels for the leaf-scan hot path.
//!
//! The refinement engine's exact leaf scans reduce to one primitive:
//! squared distances from a single query point to a block of points
//! stored column-major ([`PointColumns`]). That primitive lives here
//! twice — a scalar loop and an explicit AVX2 `f64x4` path — behind
//! runtime feature detection (`is_x86_feature_detected!`) and a
//! process-wide kill switch (the server's `--no-simd` flag).
//!
//! ## Bit-identical by construction
//!
//! The vector path performs exactly the per-element operation chain of
//! the scalar one — `d = q[j] − p[j]; acc += d·d`, dimensions in
//! ascending order, no FMA, no reassociation — with four points in
//! flight instead of one. Each lane therefore produces the same bits
//! as the scalar loop for its point, which lets the engine treat SIMD
//! as a pure throughput knob: certified ε/τ results are identical with
//! it on or off, and the scalar-vs-SIMD property suite pins exactly
//! that.
//!
//! The same discipline extends to the Gaussian profile: [`exp_neg`] is
//! a fixed Cephes-style polynomial `exp(−x)` whose scalar and 4-lane
//! forms execute the identical operation sequence (floor-based range
//! reduction, one Horner chain per lane, exponent-bit scaling), so
//! [`gaussian_weighted_sum`] — the engine's exact-leaf primitive
//! `Σ wᵢ·exp(−γ·d²ᵢ)` — is also bit-identical between the scalar and
//! AVX2 paths. The polynomial differs from libm's `exp` by ≲1 ulp;
//! every certified interval the engine reports is widened by its
//! tracked floating-point error, which dominates that difference.

use crate::point::PointColumns;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide kill switch; `true` means "never take vector paths".
static SIMD_DISABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables the SIMD paths process-wide. Disabling is the
/// `--no-simd` escape hatch; because scalar and vector paths are
/// bit-identical, flipping this mid-flight changes throughput only.
pub fn set_simd_enabled(on: bool) {
    SIMD_DISABLED.store(!on, Ordering::Relaxed);
}

/// Whether this host supports the AVX2 path at all (regardless of the
/// kill switch). Recorded in bench sidecars so numbers from different
/// machines stay comparable.
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether vector paths are live right now (supported and not killed).
pub fn simd_enabled() -> bool {
    simd_supported() && !SIMD_DISABLED.load(Ordering::Relaxed)
}

/// Lane width the leaf-scan primitive is currently using: 4 on the
/// AVX2 path, 1 scalar. Exposed to `RefineStats`/`/metrics`.
pub fn simd_lanes() -> usize {
    if simd_enabled() {
        4
    } else {
        1
    }
}

/// Squared distances from `q` to points `start..end` of `cols`:
/// `out[i] = Σ_j (q[j] − p_{start+i}[j])²`, bit-identical between the
/// scalar and AVX2 paths.
///
/// # Panics
/// Panics if `q.len() != cols.dim()`, the range is out of bounds, or
/// `out` is not exactly `end - start` long.
pub fn dist2_block(cols: &PointColumns, start: usize, end: usize, q: &[f64], out: &mut [f64]) {
    assert_eq!(q.len(), cols.dim(), "query dimensionality mismatch");
    assert!(
        start <= end && end <= cols.len(),
        "point range out of bounds"
    );
    assert_eq!(out.len(), end - start, "output length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        x86::dist2_block_avx2_checked(cols, start, end, q, out);
        return;
    }
    dist2_block_scalar(cols, start, end, q, out);
}

/// Scalar reference path, written column-pass style so the per-element
/// operation chain matches the vector path exactly (and so LLVM can
/// autovectorize it where profitable without changing results: the
/// pass order is already lane-parallel).
fn dist2_block_scalar(cols: &PointColumns, start: usize, end: usize, q: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    for (j, &qj) in q.iter().enumerate() {
        let col = cols.col_slice(j, start, end);
        for (o, &x) in out.iter_mut().zip(col) {
            let d = qj - x;
            *o += d * d;
        }
    }
}

/// Cephes-style `exp(−x)` for `x ≥ 0`: floor-based power-of-two range
/// reduction, a degree-(2,3) rational Horner core, exponent-bit
/// scaling. Accurate to ≲1 ulp of libm's `exp`, and — the property the
/// engine actually relies on — **bit-identical** to the AVX2 lanes of
/// [`gaussian_weighted_sum`], which execute this exact operation
/// sequence four elements at a time.
///
/// Arguments beyond `EXP_NEG_CUTOFF` flush to `0.0` (the true value is
/// below ~1e-304; the vector path cannot scale into the subnormal
/// range, so both paths cut off at the same point).
#[inline]
pub fn exp_neg(x: f64) -> f64 {
    debug_assert!(
        x.is_nan() || x >= 0.0,
        "exp_neg takes the *magnitude* of the exponent"
    );
    let v = 0.0 - x;
    if v < -EXP_NEG_CUTOFF {
        return 0.0;
    }
    let n = (LOG2E * v + 0.5).floor();
    let r = v - n * EXP_C1 - n * EXP_C2;
    let rr = r * r;
    let px = r * ((EXP_P0 * rr + EXP_P1) * rr + EXP_P2);
    let q = ((EXP_Q0 * rr + EXP_Q1) * rr + EXP_Q2) * rr + EXP_Q3;
    let e = px / (q - px);
    let y = 1.0 + (e + e);
    let scale = f64::from_bits((((n as i64) + 1023) << 52) as u64);
    y * scale
}

/// Largest exponent magnitude before [`exp_neg`] flushes to zero.
pub const EXP_NEG_CUTOFF: f64 = 700.0;

const LOG2E: f64 = std::f64::consts::LOG2_E;
const EXP_C1: f64 = 6.931_457_519_531_25e-1;
const EXP_C2: f64 = 1.428_606_820_309_417_2e-6;
const EXP_P0: f64 = 1.261_771_930_748_105_9e-4;
const EXP_P1: f64 = 3.029_944_077_074_419_6e-2;
const EXP_P2: f64 = 9.999_999_999_999_999e-1;
const EXP_Q0: f64 = 3.001_985_051_386_644_6e-6;
const EXP_Q1: f64 = 2.524_483_403_496_841e-3;
const EXP_Q2: f64 = 2.272_655_482_081_550_3e-1;
const EXP_Q3: f64 = 2.0;

/// The exact-leaf primitive: `Σᵢ wᵢ · exp(−γ·d2ᵢ)`, bit-identical
/// between the scalar and AVX2 paths (both accumulate four interleaved
/// partial sums combined as `((s₀+s₁)+(s₂+s₃)) + tail`).
///
/// # Panics
/// Panics if `weights` and `d2` differ in length.
pub fn gaussian_weighted_sum(weights: &[f64], d2: &[f64], gamma: f64) -> f64 {
    assert_eq!(weights.len(), d2.len(), "weights/d2 length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        return x86::gaussian_sum_avx2_checked(weights, d2, gamma);
    }
    gaussian_weighted_sum_scalar(weights, d2, gamma)
}

/// Element-wise `exp(−x)` over a slice: `dst[i] = exp_neg(src[i])`.
/// Bit-identical between the scalar loop and the AVX2 path — both run
/// the same polynomial per element — so callers (the batched bound
/// evaluator) produce identical output with SIMD on or off.
///
/// # Panics
/// Panics if `src` and `dst` differ in length.
pub fn exp_neg_map(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "exp_neg_map length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        x86::exp_neg_map_avx2_checked(src, dst);
        return;
    }
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = exp_neg(x);
    }
}

/// Constants for [`gauss_quad_assemble`]. Geom executes the
/// arithmetic; the *caller* owns the certification story these numbers
/// encode (one-sided ulp covers for the polynomial exp, an absolute
/// pad for the parabola candidates, the cutoff substitute, the
/// degeneracy threshold), so they are parameters, not policy baked in
/// here.
#[derive(Debug, Clone, Copy)]
pub struct QuadAssembleConsts {
    /// One-sided relative cover applied to the base interval's exps.
    pub ulp: f64,
    /// Pad on the parabola candidates, relative to the base upper
    /// bound.
    pub pad: f64,
    /// Upper substitute for `exp(−x)` when `x` is past
    /// [`EXP_NEG_CUTOFF`] (where [`exp_neg`] flushes to zero).
    pub cutoff_ceil: f64,
    /// Spans below this fall back to the base interval.
    pub degenerate_span: f64,
}

/// Batched assembly of QUAD's Gaussian quadratic bounds from
/// pre-evaluated exps: for each element, the padded endpoint-parabola
/// upper / tangent-parabola lower candidates intersected with the
/// padded base interval `w·[e_max, e_min]`. Inputs are SoA slices of
/// equal length — exp arguments `x_min ≤ x_max`, tangency point `t`,
/// their exps, and the moment contractions `sx`, `sx2`.
///
/// The AVX2 path runs four elements per iteration with the branches
/// turned into blends; every lane executes the same mul/add/div
/// sequence as the scalar per-element path, so with SIMD on or off
/// the results are identical (no FMA contraction, no reassociation).
///
/// # Panics
/// Panics if the slices differ in length.
#[allow(clippy::too_many_arguments)]
pub fn gauss_quad_assemble(
    w: f64,
    x_min: &[f64],
    x_max: &[f64],
    t: &[f64],
    e_min: &[f64],
    e_max: &[f64],
    e_t: &[f64],
    sx: &[f64],
    sx2: &[f64],
    c: &QuadAssembleConsts,
    lb: &mut [f64],
    ub: &mut [f64],
) {
    let n = lb.len();
    assert!(
        [
            x_min.len(),
            x_max.len(),
            t.len(),
            e_min.len(),
            e_max.len(),
            e_t.len(),
            sx.len(),
            sx2.len(),
            ub.len(),
        ]
        .iter()
        .all(|&l| l == n),
        "gauss_quad_assemble length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        x86::quad_assemble_avx2_checked(w, x_min, x_max, t, e_min, e_max, e_t, sx, sx2, c, lb, ub);
        return;
    }
    for k in 0..n {
        let (l, u) = quad_assemble_one(
            w, x_min[k], x_max[k], t[k], e_min[k], e_max[k], e_t[k], sx[k], sx2[k], c,
        );
        lb[k] = l;
        ub[k] = u;
    }
}

/// One element of [`gauss_quad_assemble`], in the exact operation
/// order of the AVX2 lanes.
#[allow(clippy::too_many_arguments)]
#[inline]
fn quad_assemble_one(
    w: f64,
    xmin: f64,
    xmax: f64,
    t: f64,
    emin: f64,
    emax: f64,
    et: f64,
    sx: f64,
    sx2: f64,
    c: &QuadAssembleConsts,
) -> (f64, f64) {
    let ub0 = w * if xmin > EXP_NEG_CUTOFF {
        c.cutoff_ceil
    } else {
        emin * (1.0 + c.ulp)
    };
    let lb0 = (w * emax * (1.0 - c.ulp)).max(0.0);
    let span = xmax - xmin;
    if span < c.degenerate_span {
        return (lb0, ub0);
    }
    let inv = 1.0 / span;
    let au = (emin - (span + 1.0) * emax) * inv * inv;
    let bu = (emax - emin) * inv - au * (xmin + xmax);
    let cu = (emin * xmax - emax * xmin) * inv + au * (xmin * xmax);
    let cub = au * sx2 + bu * sx + cu * w;
    let s = xmax - t;
    let clb = if s < c.degenerate_span {
        f64::NEG_INFINITY
    } else {
        let inv_s = 1.0 / s;
        let al = (emax + (s - 1.0) * et) * inv_s * inv_s;
        let bl = -et - (2.0 * t) * al;
        let cl = (1.0 + t) * et + (t * t) * al;
        al * sx2 + bl * sx + cl * w
    };
    let pad = c.pad * ub0;
    (lb0.max(clb - pad), ub0.min(cub + pad))
}

/// Scalar reference path, written in the vector path's lane pattern so
/// the two are bit-identical.
fn gaussian_weighted_sum_scalar(weights: &[f64], d2: &[f64], gamma: f64) -> f64 {
    let n = d2.len();
    let wide = n - n % 4;
    let mut s = [0.0f64; 4];
    let mut i = 0;
    while i < wide {
        for l in 0..4 {
            s[l] += weights[i + l] * exp_neg(gamma * d2[i + l]);
        }
        i += 4;
    }
    let mut tail = 0.0;
    for j in wide..n {
        tail += weights[j] * exp_neg(gamma * d2[j]);
    }
    ((s[0] + s[1]) + (s[2] + s[3])) + tail
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use crate::point::PointColumns;
    use std::arch::x86_64::{
        __m256d, _mm256_add_epi64, _mm256_add_pd, _mm256_andnot_pd, _mm256_blendv_pd,
        _mm256_castsi256_pd, _mm256_cmp_pd, _mm256_cvtepi32_epi64, _mm256_cvtpd_epi32,
        _mm256_div_pd, _mm256_floor_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_min_pd,
        _mm256_mul_pd, _mm256_set1_epi64x, _mm256_set1_pd, _mm256_setzero_pd, _mm256_slli_epi64,
        _mm256_storeu_pd, _mm256_sub_pd, _mm256_xor_pd, _CMP_LT_OQ,
    };

    /// Safe wrapper: the caller already range-checked the slices, and
    /// [`super::simd_enabled`] verified AVX2 support at runtime.
    pub(super) fn dist2_block_avx2_checked(
        cols: &PointColumns,
        start: usize,
        end: usize,
        q: &[f64],
        out: &mut [f64],
    ) {
        debug_assert!(super::simd_supported());
        // SAFETY: AVX2 support was verified at runtime by the caller.
        unsafe { dist2_block_avx2(cols, start, end, q, out) }
    }

    /// Four points per iteration. Explicit intrinsics (sub, mul, add —
    /// never FMA) keep each lane's rounding identical to the scalar
    /// loop; the tail runs the same scalar ops.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    unsafe fn dist2_block_avx2(
        cols: &PointColumns,
        start: usize,
        end: usize,
        q: &[f64],
        out: &mut [f64],
    ) {
        let n = end - start;
        let wide = n - n % 4;
        let mut i = 0;
        while i < wide {
            let mut acc = _mm256_setzero_pd();
            for (j, &qj) in q.iter().enumerate() {
                let col = cols.col_slice(j, start, end);
                // SAFETY: i + 4 <= wide <= n == col.len().
                let v = unsafe { _mm256_loadu_pd(col.as_ptr().add(i)) };
                let d = _mm256_sub_pd(_mm256_set1_pd(qj), v);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
            }
            // SAFETY: out.len() == n and i + 4 <= wide <= n.
            unsafe { _mm256_storeu_pd(out.as_mut_ptr().add(i), acc) };
            i += 4;
        }
        for (i, o) in out.iter_mut().enumerate().skip(wide) {
            let mut acc = 0.0;
            for (j, &qj) in q.iter().enumerate() {
                let d = qj - cols.col_slice(j, start, end)[i];
                acc += d * d;
            }
            *o = acc;
        }
    }

    /// Safe wrapper: [`super::simd_enabled`] verified AVX2 support.
    pub(super) fn gaussian_sum_avx2_checked(weights: &[f64], d2: &[f64], gamma: f64) -> f64 {
        debug_assert!(super::simd_supported());
        // SAFETY: AVX2 support was verified at runtime by the caller.
        unsafe { gaussian_sum_avx2(weights, d2, gamma) }
    }

    /// Four lanes of [`super::exp_neg`]'s exact operation sequence —
    /// same floor-based reduction, same Horner chains, same
    /// exponent-bit scaling — so each lane's bits match the scalar
    /// path. Lanes beyond the cutoff are masked to `+0.0`, mirroring
    /// the scalar early return.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    unsafe fn exp_neg_avx2(x: __m256d) -> __m256d {
        let v = _mm256_sub_pd(_mm256_setzero_pd(), x);
        let n = _mm256_floor_pd(_mm256_add_pd(
            _mm256_mul_pd(_mm256_set1_pd(super::LOG2E), v),
            _mm256_set1_pd(0.5),
        ));
        let r = _mm256_sub_pd(v, _mm256_mul_pd(n, _mm256_set1_pd(super::EXP_C1)));
        let r = _mm256_sub_pd(r, _mm256_mul_pd(n, _mm256_set1_pd(super::EXP_C2)));
        let rr = _mm256_mul_pd(r, r);
        let px = _mm256_mul_pd(
            r,
            _mm256_add_pd(
                _mm256_mul_pd(
                    _mm256_add_pd(
                        _mm256_mul_pd(_mm256_set1_pd(super::EXP_P0), rr),
                        _mm256_set1_pd(super::EXP_P1),
                    ),
                    rr,
                ),
                _mm256_set1_pd(super::EXP_P2),
            ),
        );
        let q = _mm256_add_pd(
            _mm256_mul_pd(
                _mm256_add_pd(
                    _mm256_mul_pd(
                        _mm256_add_pd(
                            _mm256_mul_pd(_mm256_set1_pd(super::EXP_Q0), rr),
                            _mm256_set1_pd(super::EXP_Q1),
                        ),
                        rr,
                    ),
                    _mm256_set1_pd(super::EXP_Q2),
                ),
                rr,
            ),
            _mm256_set1_pd(super::EXP_Q3),
        );
        let e = _mm256_div_pd(px, _mm256_sub_pd(q, px));
        let y = _mm256_add_pd(_mm256_set1_pd(1.0), _mm256_add_pd(e, e));
        // 2^n via the exponent field; `n` is exactly integral and,
        // inside the cutoff, within the normal-exponent range.
        let n64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n));
        let scale = _mm256_castsi256_pd(_mm256_slli_epi64(
            _mm256_add_epi64(n64, _mm256_set1_epi64x(1023)),
            52,
        ));
        let res = _mm256_mul_pd(y, scale);
        let under = _mm256_cmp_pd::<_CMP_LT_OQ>(v, _mm256_set1_pd(-super::EXP_NEG_CUTOFF));
        _mm256_andnot_pd(under, res)
    }

    /// Safe wrapper: [`super::simd_enabled`] verified AVX2 support.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn quad_assemble_avx2_checked(
        w: f64,
        x_min: &[f64],
        x_max: &[f64],
        t: &[f64],
        e_min: &[f64],
        e_max: &[f64],
        e_t: &[f64],
        sx: &[f64],
        sx2: &[f64],
        c: &super::QuadAssembleConsts,
        lb: &mut [f64],
        ub: &mut [f64],
    ) {
        debug_assert!(super::simd_supported());
        // SAFETY: AVX2 support was verified at runtime by the caller.
        unsafe { quad_assemble_avx2(w, x_min, x_max, t, e_min, e_max, e_t, sx, sx2, c, lb, ub) }
    }

    /// Four lanes of [`super::quad_assemble_one`]: branches become
    /// blends (both sides are computed, the discarded side may be
    /// inf/NaN — the blend masks exactly the lanes where the scalar
    /// path would not have evaluated it), every kept lane runs the
    /// scalar path's exact operation sequence.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn quad_assemble_avx2(
        w: f64,
        x_min: &[f64],
        x_max: &[f64],
        t: &[f64],
        e_min: &[f64],
        e_max: &[f64],
        e_t: &[f64],
        sx: &[f64],
        sx2: &[f64],
        c: &super::QuadAssembleConsts,
        lb: &mut [f64],
        ub: &mut [f64],
    ) {
        let n = lb.len();
        let wide = n - n % 4;
        let vw = _mm256_set1_pd(w);
        let vone = _mm256_set1_pd(1.0);
        let vulp_hi = _mm256_set1_pd(1.0 + c.ulp);
        let vulp_lo = _mm256_set1_pd(1.0 - c.ulp);
        let vceil = _mm256_set1_pd(c.cutoff_ceil);
        let vcut = _mm256_set1_pd(super::EXP_NEG_CUTOFF);
        let vdeg = _mm256_set1_pd(c.degenerate_span);
        let vpad = _mm256_set1_pd(c.pad);
        let vtwo = _mm256_set1_pd(2.0);
        let vneg0 = _mm256_set1_pd(-0.0);
        let vninf = _mm256_set1_pd(f64::NEG_INFINITY);
        let vzero = _mm256_setzero_pd();
        let mut i = 0;
        while i < wide {
            // SAFETY: i + 4 <= wide <= n == every slice's length.
            unsafe {
                let vxmin = _mm256_loadu_pd(x_min.as_ptr().add(i));
                let vxmax = _mm256_loadu_pd(x_max.as_ptr().add(i));
                let vt = _mm256_loadu_pd(t.as_ptr().add(i));
                let vemin = _mm256_loadu_pd(e_min.as_ptr().add(i));
                let vemax = _mm256_loadu_pd(e_max.as_ptr().add(i));
                let vet = _mm256_loadu_pd(e_t.as_ptr().add(i));
                let vsx = _mm256_loadu_pd(sx.as_ptr().add(i));
                let vsx2 = _mm256_loadu_pd(sx2.as_ptr().add(i));

                // Base interval with the exp-error covers.
                let m_cut = _mm256_cmp_pd::<_CMP_LT_OQ>(vcut, vxmin);
                let ub0 = _mm256_mul_pd(
                    vw,
                    _mm256_blendv_pd(_mm256_mul_pd(vemin, vulp_hi), vceil, m_cut),
                );
                let lb0 = _mm256_max_pd(_mm256_mul_pd(_mm256_mul_pd(vw, vemax), vulp_lo), vzero);

                // Endpoint-parabola upper candidate.
                let span = _mm256_sub_pd(vxmax, vxmin);
                let inv = _mm256_div_pd(vone, span);
                let au = _mm256_mul_pd(
                    _mm256_mul_pd(
                        _mm256_sub_pd(vemin, _mm256_mul_pd(_mm256_add_pd(span, vone), vemax)),
                        inv,
                    ),
                    inv,
                );
                let bu = _mm256_sub_pd(
                    _mm256_mul_pd(_mm256_sub_pd(vemax, vemin), inv),
                    _mm256_mul_pd(au, _mm256_add_pd(vxmin, vxmax)),
                );
                let cu = _mm256_add_pd(
                    _mm256_mul_pd(
                        _mm256_sub_pd(_mm256_mul_pd(vemin, vxmax), _mm256_mul_pd(vemax, vxmin)),
                        inv,
                    ),
                    _mm256_mul_pd(au, _mm256_mul_pd(vxmin, vxmax)),
                );
                let cub = _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(au, vsx2), _mm256_mul_pd(bu, vsx)),
                    _mm256_mul_pd(cu, vw),
                );

                // Tangent-parabola lower candidate.
                let s = _mm256_sub_pd(vxmax, vt);
                let inv_s = _mm256_div_pd(vone, s);
                let al = _mm256_mul_pd(
                    _mm256_mul_pd(
                        _mm256_add_pd(vemax, _mm256_mul_pd(_mm256_sub_pd(s, vone), vet)),
                        inv_s,
                    ),
                    inv_s,
                );
                let bl = _mm256_sub_pd(
                    _mm256_xor_pd(vet, vneg0),
                    _mm256_mul_pd(_mm256_mul_pd(vtwo, vt), al),
                );
                let cl = _mm256_add_pd(
                    _mm256_mul_pd(_mm256_add_pd(vone, vt), vet),
                    _mm256_mul_pd(_mm256_mul_pd(vt, vt), al),
                );
                let clb_raw = _mm256_add_pd(
                    _mm256_add_pd(_mm256_mul_pd(al, vsx2), _mm256_mul_pd(bl, vsx)),
                    _mm256_mul_pd(cl, vw),
                );
                let m_degs = _mm256_cmp_pd::<_CMP_LT_OQ>(s, vdeg);
                let clb = _mm256_blendv_pd(clb_raw, vninf, m_degs);

                // Intersect the padded candidates with the base; lanes
                // with a degenerate span keep the base interval.
                let pad = _mm256_mul_pd(vpad, ub0);
                let vlb = _mm256_max_pd(lb0, _mm256_sub_pd(clb, pad));
                let vub = _mm256_min_pd(ub0, _mm256_add_pd(cub, pad));
                let m_deg = _mm256_cmp_pd::<_CMP_LT_OQ>(span, vdeg);
                _mm256_storeu_pd(lb.as_mut_ptr().add(i), _mm256_blendv_pd(vlb, lb0, m_deg));
                _mm256_storeu_pd(ub.as_mut_ptr().add(i), _mm256_blendv_pd(vub, ub0, m_deg));
            }
            i += 4;
        }
        for j in wide..n {
            let (l, u) = super::quad_assemble_one(
                w, x_min[j], x_max[j], t[j], e_min[j], e_max[j], e_t[j], sx[j], sx2[j], c,
            );
            lb[j] = l;
            ub[j] = u;
        }
    }

    /// Safe wrapper: [`super::simd_enabled`] verified AVX2 support.
    pub(super) fn exp_neg_map_avx2_checked(src: &[f64], dst: &mut [f64]) {
        debug_assert!(super::simd_supported());
        // SAFETY: AVX2 support was verified at runtime by the caller.
        unsafe { exp_neg_map_avx2(src, dst) }
    }

    /// Element-wise [`exp_neg_avx2`] over a slice, scalar tail — each
    /// element's bits match the scalar [`super::exp_neg`].
    ///
    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    unsafe fn exp_neg_map_avx2(src: &[f64], dst: &mut [f64]) {
        let n = src.len();
        let wide = n - n % 4;
        let mut i = 0;
        while i < wide {
            // SAFETY: i + 4 <= wide <= n == src.len() == dst.len().
            unsafe {
                let x = _mm256_loadu_pd(src.as_ptr().add(i));
                _mm256_storeu_pd(dst.as_mut_ptr().add(i), exp_neg_avx2(x));
            }
            i += 4;
        }
        for j in wide..n {
            dst[j] = super::exp_neg(src[j]);
        }
    }

    /// `Σ wᵢ·exp(−γ·d2ᵢ)`, four elements per iteration; the scalar
    /// path accumulates in the same four interleaved partial sums, so
    /// the total matches bit-for-bit.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    unsafe fn gaussian_sum_avx2(weights: &[f64], d2: &[f64], gamma: f64) -> f64 {
        let n = d2.len();
        let wide = n - n % 4;
        let g = _mm256_set1_pd(gamma);
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < wide {
            // SAFETY: i + 4 <= wide <= n == d2.len() == weights.len().
            let d = unsafe { _mm256_loadu_pd(d2.as_ptr().add(i)) };
            let w = unsafe { _mm256_loadu_pd(weights.as_ptr().add(i)) };
            let e = exp_neg_avx2(_mm256_mul_pd(g, d));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(w, e));
            i += 4;
        }
        let mut s = [0.0f64; 4];
        // SAFETY: `s` is exactly four f64 wide.
        unsafe { _mm256_storeu_pd(s.as_mut_ptr(), acc) };
        let mut tail = 0.0;
        for j in wide..n {
            tail += weights[j] * super::exp_neg(gamma * d2[j]);
        }
        ((s[0] + s[1]) + (s[2] + s[3])) + tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::PointSet;
    use crate::vecmath::dist2;
    use proptest::prelude::*;

    fn scan(ps: &PointSet, q: &[f64]) -> Vec<f64> {
        (0..ps.len()).map(|i| dist2(q, ps.point(i))).collect()
    }

    #[test]
    fn dist2_block_matches_rowwise_dist2_bitwise() {
        let flat: Vec<f64> = (0..42).map(|i| (i as f64).sin() * 13.7).collect();
        let ps = PointSet::from_rows(2, &flat);
        let cols = PointColumns::from_points(&ps);
        let q = [0.3, -7.1];
        let mut out = vec![0.0; ps.len()];
        dist2_block(&cols, 0, ps.len(), &q, &mut out);
        for (got, want) in out.iter().zip(scan(&ps, &q)) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn scalar_and_dispatch_paths_are_bit_identical() {
        let flat: Vec<f64> = (0..61 * 3).map(|i| (i as f64 * 0.77).cos() * 1e3).collect();
        let ps = PointSet::from_rows(3, &flat);
        let cols = PointColumns::from_points(&ps);
        let q = [1.0, -2.0, 0.5];
        // Odd-length sub-range exercises the vector tail.
        let (start, end) = (3, 58);
        let mut fast = vec![0.0; end - start];
        let mut slow = vec![0.0; end - start];
        dist2_block(&cols, start, end, &q, &mut fast);
        dist2_block_scalar(&cols, start, end, &q, &mut slow);
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn kill_switch_flips_lanes() {
        // Serialize against other tests touching the global switch.
        set_simd_enabled(false);
        assert_eq!(simd_lanes(), 1);
        assert!(!simd_enabled());
        set_simd_enabled(true);
        assert_eq!(simd_enabled(), simd_supported());
        if simd_supported() {
            assert_eq!(simd_lanes(), 4);
        }
    }

    #[test]
    fn exp_neg_map_is_bit_identical_to_scalar() {
        // Lengths straddling the 4-lane width, values straddling the
        // cutoff: both dispatch paths must emit the scalar bits.
        let src: Vec<f64> = (0..23)
            .map(|i| (i as f64 * 37.3) % 720.0)
            .chain([0.0, 699.9, 700.1, f64::INFINITY])
            .collect();
        let want: Vec<f64> = src.iter().map(|&x| exp_neg(x)).collect();
        for on in [false, true] {
            set_simd_enabled(on);
            let mut dst = vec![f64::NAN; src.len()];
            exp_neg_map(&src, &mut dst);
            for (d, w) in dst.iter().zip(&want) {
                assert_eq!(d.to_bits(), w.to_bits());
            }
        }
        set_simd_enabled(true);
    }

    #[test]
    fn quad_assemble_is_bit_identical_to_scalar() {
        // 27 elements (vector tail of 3) covering the regular regime,
        // a cutoff-crossing x_min, a degenerate span, and a degenerate
        // tangent gap (t == x_max).
        let c = QuadAssembleConsts {
            ulp: 8.0 * f64::EPSILON,
            pad: 256.0 * f64::EPSILON,
            cutoff_ceil: 9.86e-305,
            degenerate_span: 1e-12,
        };
        let w = 0.83;
        let n = 27;
        let mut xmin = Vec::new();
        let mut xmax = Vec::new();
        let mut t = Vec::new();
        let (mut sx, mut sx2) = (Vec::new(), Vec::new());
        for i in 0..n {
            let a = (i as f64 * 0.917).sin().abs() * 30.0;
            let span = match i {
                5 => 0.0,
                11 => 1e-13,
                _ => (i as f64 * 0.37).cos().abs() * 5.0 + 1e-6,
            };
            let lo = if i == 7 { 701.0 } else { a };
            xmin.push(lo);
            xmax.push(lo + span);
            let tt = if i == 13 {
                lo + span // degenerate tangent gap
            } else {
                lo + span * 0.4
            };
            // Moments of a point mass at distance-argument `tt` —
            // exactly realizable, so the assembled interval must be
            // proper.
            t.push(tt);
            sx.push(w * tt);
            sx2.push(w * tt * tt);
        }
        let e = |v: &[f64]| v.iter().map(|&x| exp_neg(x)).collect::<Vec<_>>();
        let (emin, emax, et) = (e(&xmin), e(&xmax), e(&t));
        let mut res = Vec::new();
        for on in [false, true] {
            set_simd_enabled(on);
            let mut lb = vec![f64::NAN; n];
            let mut ub = vec![f64::NAN; n];
            gauss_quad_assemble(
                w, &xmin, &xmax, &t, &emin, &emax, &et, &sx, &sx2, &c, &mut lb, &mut ub,
            );
            for (l, u) in lb.iter().zip(&ub) {
                assert!(l.is_finite() && u.is_finite() && l <= u, "[{l}, {u}]");
            }
            res.push((lb, ub));
        }
        set_simd_enabled(true);
        for ((l0, u0), (l1, u1)) in res[0]
            .0
            .iter()
            .zip(&res[0].1)
            .zip(res[1].0.iter().zip(&res[1].1))
        {
            assert_eq!(l0.to_bits(), l1.to_bits());
            assert_eq!(u0.to_bits(), u1.to_bits());
        }
    }

    #[test]
    fn exp_neg_tracks_libm_exp() {
        // ≲1 ulp of libm across the whole useful range, exact at 0,
        // and a hard 0 past the cutoff.
        assert_eq!(exp_neg(0.0), 1.0);
        assert_eq!(exp_neg(701.0), 0.0);
        assert_eq!(exp_neg(f64::INFINITY), 0.0);
        let mut x = 1e-12;
        while x < 690.0 {
            let got = exp_neg(x);
            let want = (-x).exp();
            assert!(
                (got - want).abs() <= 4.0 * f64::EPSILON * want,
                "exp_neg({x}) = {got:e} vs libm {want:e}"
            );
            x *= 1.37;
        }
    }

    #[test]
    fn gaussian_sum_paths_are_bit_identical() {
        let d2: Vec<f64> = (0..123)
            .map(|i| (i as f64 * 0.613).sin().abs() * 40.0)
            .collect();
        let w: Vec<f64> = (0..123)
            .map(|i| 0.01 + (i as f64 * 0.17).cos().abs())
            .collect();
        for gamma in [1e-3, 0.25, 7.0, 300.0] {
            let fast = gaussian_weighted_sum(&w, &d2, gamma);
            let slow = gaussian_weighted_sum_scalar(&w, &d2, gamma);
            assert_eq!(fast.to_bits(), slow.to_bits(), "gamma {gamma}");
        }
    }

    proptest! {
        #[test]
        fn gaussian_sum_agrees_with_libm_reference(
            rows in proptest::collection::vec((0.0..1e4f64, 1e-3..10.0f64), 1..200),
            gamma in 1e-6..100.0f64,
        ) {
            let (d2, w): (Vec<f64>, Vec<f64>) = rows.into_iter().unzip();
            let got = gaussian_weighted_sum(&w, &d2, gamma);
            let slow = gaussian_weighted_sum_scalar(&w, &d2, gamma);
            prop_assert_eq!(got.to_bits(), slow.to_bits());
            let want: f64 = w.iter().zip(&d2).map(|(&w, &d)| w * (-gamma * d).exp()).sum();
            prop_assert!((got - want).abs() <= 1e-12 * (1.0 + want.abs()),
                "poly sum {got:e} vs libm sum {want:e}");
        }

        #[test]
        fn block_agrees_with_scalar_reference(
            flat in proptest::collection::vec(-1e6..1e6f64, 2..240),
            qx in -1e6..1e6f64,
            qy in -1e6..1e6f64,
        ) {
            let n = flat.len() / 2;
            let ps = PointSet::from_rows(2, &flat[..n * 2]);
            let cols = PointColumns::from_points(&ps);
            let q = [qx, qy];
            let mut out = vec![0.0; n];
            dist2_block(&cols, 0, n, &q, &mut out);
            for (got, want) in out.iter().zip(scan(&ps, &q)) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }
}

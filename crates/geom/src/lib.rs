//! Geometric primitives for kernel density visualization.
//!
//! This crate is the lowest layer of the QUAD reproduction workspace. It
//! provides:
//!
//! * [`PointSet`] — a flat, cache-friendly, dynamically-dimensioned
//!   collection of weighted points (row-major `Vec<f64>` storage),
//! * [`Mbr`] — axis-aligned minimum bounding rectangles with the
//!   minimum/maximum distance computations that every bound function in
//!   the paper's §3–§5 is built on,
//! * [`vecmath`] — small dense-vector helpers (dot products, squared
//!   norms, squared distances) shared by the index and bound layers.
//!
//! Everything here is deliberately dependency-free and allocation-averse:
//! the per-pixel hot loops of the KDV engine call
//! [`Mbr::min_dist2`]/[`Mbr::max_dist2`] millions of times.
//!
//! The one exception to "no unsafe" is [`simd`]: the leaf-scan
//! distance primitive carries an explicit AVX2 path behind runtime
//! feature detection. The unsafety is confined to that module (the
//! crate otherwise denies it) and every caller goes through its safe,
//! bounds-checked wrappers.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod mbr;
pub mod point;
pub mod simd;
pub mod vecmath;

pub use mbr::Mbr;
pub use point::{PointColumns, PointRef, PointSet};

//! Axis-aligned minimum bounding rectangles (MBRs).
//!
//! Every bound function in the paper (§3.3 interval bounds, §4 Gaussian
//! quadratic bounds, §5 distance-kernel bounds) derives its bounding
//! interval `[x_min, x_max]` from the minimum and maximum Euclidean
//! distances between the query pixel `q` and the MBR of an index node's
//! points. Those two distance computations are `O(d)` and sit on the
//! hot path of the refinement engine.

use crate::point::PointSet;

/// An axis-aligned bounding rectangle in `d` dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Mbr {
    /// Creates an MBR from explicit corner vectors.
    ///
    /// # Panics
    /// Panics if the corners disagree in length, are empty, or if any
    /// `lo[i] > hi[i]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(!lo.is_empty(), "MBR must have positive dimensionality");
        for i in 0..lo.len() {
            assert!(lo[i] <= hi[i], "inverted MBR on axis {i}");
        }
        Self { lo, hi }
    }

    /// Computes the MBR of points `indices` within `ps`.
    ///
    /// Returns `None` if `indices` is empty.
    pub fn of_points(ps: &PointSet, indices: &[usize]) -> Option<Self> {
        let first = *indices.first()?;
        let mut lo = ps.point(first).to_vec();
        let mut hi = lo.clone();
        for &i in &indices[1..] {
            let p = ps.point(i);
            for j in 0..p.len() {
                if p[j] < lo[j] {
                    lo[j] = p[j];
                }
                if p[j] > hi[j] {
                    hi[j] = p[j];
                }
            }
        }
        Some(Self { lo, hi })
    }

    /// Computes the MBR of an entire point set. `None` if empty.
    pub fn of_set(ps: &PointSet) -> Option<Self> {
        if ps.is_empty() {
            return None;
        }
        let mut lo = ps.point(0).to_vec();
        let mut hi = lo.clone();
        for i in 1..ps.len() {
            let p = ps.point(i);
            for j in 0..p.len() {
                if p[j] < lo[j] {
                    lo[j] = p[j];
                }
                if p[j] > hi[j] {
                    hi[j] = p[j];
                }
            }
        }
        Some(Self { lo, hi })
    }

    /// Dimensionality of the rectangle.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Whether `q` lies inside (or on the boundary of) the rectangle.
    pub fn contains(&self, q: &[f64]) -> bool {
        debug_assert_eq!(q.len(), self.dim());
        (0..self.dim()).all(|i| self.lo[i] <= q[i] && q[i] <= self.hi[i])
    }

    /// Squared minimum distance from `q` to any point of the rectangle
    /// (zero when `q` is inside).
    #[inline]
    pub fn min_dist2(&self, q: &[f64]) -> f64 {
        debug_assert_eq!(q.len(), self.dim());
        let mut acc = 0.0;
        for (i, &v) in q.iter().enumerate() {
            let d = if v < self.lo[i] {
                self.lo[i] - v
            } else if v > self.hi[i] {
                v - self.hi[i]
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }

    /// Squared maximum distance from `q` to any point of the rectangle
    /// (attained at the corner farthest from `q` on every axis).
    #[inline]
    pub fn max_dist2(&self, q: &[f64]) -> f64 {
        debug_assert_eq!(q.len(), self.dim());
        let mut acc = 0.0;
        for (i, &v) in q.iter().enumerate() {
            let a = (v - self.lo[i]).abs();
            let b = (v - self.hi[i]).abs();
            let d = if a > b { a } else { b };
            acc += d * d;
        }
        acc
    }

    /// Minimum distance (not squared) from `q` to the rectangle.
    #[inline]
    pub fn min_dist(&self, q: &[f64]) -> f64 {
        self.min_dist2(q).sqrt()
    }

    /// Maximum distance (not squared) from `q` to the rectangle.
    #[inline]
    pub fn max_dist(&self, q: &[f64]) -> f64 {
        self.max_dist2(q).sqrt()
    }

    /// Length of the rectangle on axis `i`.
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        self.hi[i] - self.lo[i]
    }

    /// Index of the axis with the largest extent (the split axis for the
    /// kd-tree builder).
    pub fn widest_axis(&self) -> usize {
        let mut best = 0;
        let mut best_ext = self.extent(0);
        for i in 1..self.dim() {
            let e = self.extent(i);
            if e > best_ext {
                best_ext = e;
                best = i;
            }
        }
        best
    }

    /// Squared minimum distance between any point of `self` and any
    /// point of `other` (zero when the rectangles intersect).
    ///
    /// This powers tile-level KDV pruning: it lower-bounds
    /// `dist(q, p)` for *every* query in one box and every point in the
    /// other.
    ///
    /// # Panics
    /// Debug-panics on dimensionality mismatch.
    pub fn min_dist2_box(&self, other: &Mbr) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        let mut acc = 0.0;
        for i in 0..self.dim() {
            let gap = if other.hi[i] < self.lo[i] {
                self.lo[i] - other.hi[i]
            } else if self.hi[i] < other.lo[i] {
                other.lo[i] - self.hi[i]
            } else {
                0.0
            };
            acc += gap * gap;
        }
        acc
    }

    /// Squared maximum distance between any point of `self` and any
    /// point of `other` (attained corner-to-corner).
    ///
    /// # Panics
    /// Debug-panics on dimensionality mismatch.
    pub fn max_dist2_box(&self, other: &Mbr) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        let mut acc = 0.0;
        for i in 0..self.dim() {
            let a = (self.hi[i] - other.lo[i]).abs();
            let b = (other.hi[i] - self.lo[i]).abs();
            let d = if a > b { a } else { b };
            acc += d * d;
        }
        acc
    }

    /// Smallest rectangle containing both `self` and `other`.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn union(&self, other: &Mbr) -> Mbr {
        assert_eq!(self.dim(), other.dim(), "MBR dimensionality mismatch");
        let lo = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(&a, &b)| a.min(b))
            .collect();
        let hi = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(&a, &b)| a.max(b))
            .collect();
        Mbr { lo, hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecmath::dist2;
    use proptest::prelude::*;

    #[test]
    fn of_points_covers_selection() {
        let ps = PointSet::from_rows(2, &[0.0, 0.0, 2.0, 3.0, -1.0, 1.0]);
        let mbr = Mbr::of_points(&ps, &[0, 2]).unwrap();
        assert_eq!(mbr.lo(), &[-1.0, 0.0]);
        assert_eq!(mbr.hi(), &[0.0, 1.0]);
    }

    #[test]
    fn of_points_empty_is_none() {
        let ps = PointSet::from_rows(2, &[0.0, 0.0]);
        assert!(Mbr::of_points(&ps, &[]).is_none());
        assert!(Mbr::of_set(&PointSet::new(2)).is_none());
    }

    #[test]
    fn inside_query_has_zero_min_dist() {
        let mbr = Mbr::new(vec![0.0, 0.0], vec![2.0, 2.0]);
        assert_eq!(mbr.min_dist2(&[1.0, 1.5]), 0.0);
        assert!(mbr.contains(&[1.0, 1.5]));
        assert!(!mbr.contains(&[3.0, 1.0]));
    }

    #[test]
    fn min_dist_outside_matches_hand_computation() {
        let mbr = Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        // query at (4, 5): nearest corner is (1,1) → distance² = 9 + 16.
        assert_eq!(mbr.min_dist2(&[4.0, 5.0]), 25.0);
        assert_eq!(mbr.min_dist(&[4.0, 5.0]), 5.0);
    }

    #[test]
    fn max_dist_inside_reaches_far_corner() {
        let mbr = Mbr::new(vec![0.0, 0.0], vec![4.0, 4.0]);
        // from (1,1) the far corner is (4,4): distance² = 9 + 9.
        assert_eq!(mbr.max_dist2(&[1.0, 1.0]), 18.0);
    }

    #[test]
    fn widest_axis_picks_largest_extent() {
        let mbr = Mbr::new(vec![0.0, 0.0, 0.0], vec![1.0, 5.0, 2.0]);
        assert_eq!(mbr.widest_axis(), 1);
    }

    #[test]
    fn union_covers_both() {
        let a = Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = Mbr::new(vec![-1.0, 0.5], vec![0.5, 3.0]);
        let u = a.union(&b);
        assert_eq!(u.lo(), &[-1.0, 0.0]);
        assert_eq!(u.hi(), &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "inverted MBR")]
    fn inverted_corners_panic() {
        Mbr::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn box_distances_hand_cases() {
        let a = Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = Mbr::new(vec![4.0, 1.0], vec![5.0, 2.0]);
        // x-gap 3, y-gap 0.
        assert_eq!(a.min_dist2_box(&b), 9.0);
        // farthest corners: (0,0) ↔ (5,2): 25 + 4.
        assert_eq!(a.max_dist2_box(&b), 29.0);
        // Overlapping boxes have zero min distance.
        let c = Mbr::new(vec![0.5, 0.5], vec![2.0, 2.0]);
        assert_eq!(a.min_dist2_box(&c), 0.0);
    }

    fn arb_points(n: usize) -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-100.0..100.0f64, n * 2)
    }

    proptest! {
        /// The defining property of the bounding interval used by every
        /// bound function in the paper: for each indexed point p and any
        /// query q, min_dist(q, MBR) ≤ dist(q, p) ≤ max_dist(q, MBR).
        #[test]
        fn min_max_dist_bracket_every_point(
            flat in arb_points(12),
            q in proptest::collection::vec(-150.0..150.0f64, 2),
        ) {
            let ps = PointSet::from_rows(2, &flat);
            let mbr = Mbr::of_set(&ps).unwrap();
            let dmin2 = mbr.min_dist2(&q);
            let dmax2 = mbr.max_dist2(&q);
            prop_assert!(dmin2 <= dmax2 + 1e-12);
            for i in 0..ps.len() {
                let d2 = dist2(&q, ps.point(i));
                prop_assert!(dmin2 <= d2 + 1e-9, "min_dist2 {} > d2 {}", dmin2, d2);
                prop_assert!(d2 <= dmax2 + 1e-9, "d2 {} > max_dist2 {}", d2, dmax2);
            }
        }

        /// Box-to-box distances bracket every point-to-point distance —
        /// the soundness property tile pruning relies on.
        #[test]
        fn box_distances_bracket_pointwise(
            flat_a in arb_points(8),
            flat_b in arb_points(8),
        ) {
            let pa = PointSet::from_rows(2, &flat_a);
            let pb = PointSet::from_rows(2, &flat_b);
            let a = Mbr::of_set(&pa).unwrap();
            let b = Mbr::of_set(&pb).unwrap();
            let dmin2 = a.min_dist2_box(&b);
            let dmax2 = a.max_dist2_box(&b);
            prop_assert_eq!(dmin2.total_cmp(&0.0) == std::cmp::Ordering::Less, false);
            for i in 0..pa.len() {
                for j in 0..pb.len() {
                    let d2 = dist2(pa.point(i), pb.point(j));
                    prop_assert!(dmin2 <= d2 + 1e-9);
                    prop_assert!(d2 <= dmax2 + 1e-9);
                }
            }
            // Symmetry.
            prop_assert!((a.min_dist2_box(&b) - b.min_dist2_box(&a)).abs() < 1e-12);
            prop_assert!((a.max_dist2_box(&b) - b.max_dist2_box(&a)).abs() < 1e-12);
        }

        /// max_dist2 is attained at one of the rectangle corners.
        #[test]
        fn max_dist_attained_at_corner(
            lo0 in -50.0..0.0f64, hi0 in 0.0..50.0f64,
            lo1 in -50.0..0.0f64, hi1 in 0.0..50.0f64,
            q in proptest::collection::vec(-80.0..80.0f64, 2),
        ) {
            let mbr = Mbr::new(vec![lo0, lo1], vec![hi0, hi1]);
            let corners = [
                [lo0, lo1], [lo0, hi1], [hi0, lo1], [hi0, hi1],
            ];
            let best = corners
                .iter()
                .map(|c| dist2(&q, c))
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((mbr.max_dist2(&q) - best).abs() < 1e-9);
        }
    }
}

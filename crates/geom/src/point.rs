//! Weighted, dynamically-dimensioned point sets in flat storage.
//!
//! The QUAD paper evaluates KDV on 2-dimensional datasets but sweeps the
//! dimensionality up to 10 in its KDE experiment (Fig 24), so dimension
//! is a runtime value. Coordinates live in one row-major `Vec<f64>` —
//! point `i` occupies `coords[i*dim .. (i+1)*dim]` — which keeps tree
//! construction and leaf scans sequential in memory.
//!
//! Every point carries a weight `wᵢ`. The paper's Equation 1 uses one
//! global `w`; per-point weights generalize this so that Z-order coreset
//! samples (whose points are re-weighted, paper §2 footnote 5) run
//! through exactly the same engine.

use crate::vecmath;

/// A borrowed view of a single weighted point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointRef<'a> {
    /// Coordinates of the point (`dim` values).
    pub coords: &'a [f64],
    /// Weight of the point in the kernel aggregation.
    pub weight: f64,
}

/// A set of weighted points of uniform dimensionality.
///
/// # Examples
/// ```
/// use kdv_geom::PointSet;
/// let ps = PointSet::from_rows(2, &[0.0, 0.0, 1.0, 1.0, 2.0, 0.5]);
/// assert_eq!(ps.len(), 3);
/// assert_eq!(ps.point(1), &[1.0, 1.0]);
/// assert_eq!(ps.weight(1), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    dim: usize,
    coords: Vec<f64>,
    weights: Vec<f64>,
}

impl PointSet {
    /// Creates an empty point set of dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "point dimensionality must be positive");
        Self {
            dim,
            coords: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Creates an empty point set with room for `n` points.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "point dimensionality must be positive");
        Self {
            dim,
            coords: Vec::with_capacity(n * dim),
            weights: Vec::with_capacity(n),
        }
    }

    /// Builds a unit-weight point set from row-major flat coordinates.
    ///
    /// # Panics
    /// Panics if `flat.len()` is not a multiple of `dim` or `dim == 0`.
    pub fn from_rows(dim: usize, flat: &[f64]) -> Self {
        assert!(dim > 0, "point dimensionality must be positive");
        assert!(
            flat.len().is_multiple_of(dim),
            "flat coordinate buffer length {} is not a multiple of dim {}",
            flat.len(),
            dim
        );
        let n = flat.len() / dim;
        Self {
            dim,
            coords: flat.to_vec(),
            weights: vec![1.0; n],
        }
    }

    /// Builds a point set from flat coordinates and per-point weights.
    ///
    /// # Panics
    /// Panics on shape mismatch, `dim == 0`, or a non-finite/negative
    /// weight.
    pub fn from_rows_weighted(dim: usize, flat: &[f64], weights: &[f64]) -> Self {
        assert!(dim > 0, "point dimensionality must be positive");
        assert!(
            flat.len().is_multiple_of(dim),
            "flat buffer not a multiple of dim"
        );
        assert_eq!(flat.len() / dim, weights.len(), "weight count mismatch");
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and ≥ 0");
        }
        Self {
            dim,
            coords: flat.to_vec(),
            weights: weights.to_vec(),
        }
    }

    /// Builds a point set by taking ownership of pre-assembled flat
    /// buffers — the zero-copy sibling of [`PointSet::from_rows_weighted`]
    /// for callers (snapshot loading, bulk decoders) that already hold
    /// the data in the final layout and would otherwise pay a
    /// multi-megabyte copy per million points.
    ///
    /// # Panics
    /// Panics on shape mismatch, `dim == 0`, or a non-finite/negative
    /// weight.
    pub fn from_vecs(dim: usize, coords: Vec<f64>, weights: Vec<f64>) -> Self {
        assert!(dim > 0, "point dimensionality must be positive");
        assert!(
            coords.len().is_multiple_of(dim),
            "flat buffer not a multiple of dim"
        );
        assert_eq!(coords.len() / dim, weights.len(), "weight count mismatch");
        for &w in &weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and ≥ 0");
        }
        Self {
            dim,
            coords,
            weights,
        }
    }

    /// Appends one point with weight 1.
    ///
    /// # Panics
    /// Panics if `coords.len() != self.dim()`.
    pub fn push(&mut self, coords: &[f64]) {
        self.push_weighted(coords, 1.0);
    }

    /// Appends one weighted point.
    ///
    /// # Panics
    /// Panics if `coords.len() != self.dim()` or the weight is invalid.
    pub fn push_weighted(&mut self, coords: &[f64], weight: f64) {
        assert_eq!(coords.len(), self.dim, "coordinate dimensionality mismatch");
        assert!(weight.is_finite() && weight >= 0.0, "invalid weight");
        self.coords.extend_from_slice(coords);
        self.weights.push(weight);
    }

    /// Dimensionality of every point in the set.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the set contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Weight of point `i`.
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Borrowed view of point `i`.
    #[inline]
    pub fn point_ref(&self, i: usize) -> PointRef<'_> {
        PointRef {
            coords: self.point(i),
            weight: self.weights[i],
        }
    }

    /// The raw row-major coordinate buffer.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The per-point weight buffer.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Sum of all point weights (`W = Σ wᵢ`, the paper's `w·|P|` for
    /// uniform weights).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Iterates over borrowed point views.
    pub fn iter(&self) -> impl Iterator<Item = PointRef<'_>> + '_ {
        (0..self.len()).map(move |i| self.point_ref(i))
    }

    /// Multiplies every weight by `s` (used to apply the kernel
    /// normalization constant from bandwidth selection).
    ///
    /// # Panics
    /// Panics if `s` is negative or non-finite.
    pub fn scale_weights(&mut self, s: f64) {
        assert!(s.is_finite() && s >= 0.0, "invalid weight scale");
        for w in &mut self.weights {
            *w *= s;
        }
    }

    /// Returns a new point set containing the selected indices, in order.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> PointSet {
        let mut out = PointSet::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.push_weighted(self.point(i), self.weight(i));
        }
        out
    }

    /// Returns a new point set keeping only the first `k` coordinates of
    /// every point (used after PCA orders dimensions by variance).
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > self.dim()`.
    pub fn truncate_dims(&self, k: usize) -> PointSet {
        assert!(k > 0 && k <= self.dim, "invalid target dimensionality");
        let mut out = PointSet::with_capacity(k, self.len());
        for i in 0..self.len() {
            out.push_weighted(&self.point(i)[..k], self.weight(i));
        }
        out
    }

    /// Per-dimension mean of the points, ignoring weights (as used by
    /// Scott's rule, which is defined on the raw sample).
    ///
    /// Returns `None` for an empty set.
    pub fn mean(&self) -> Option<Vec<f64>> {
        if self.is_empty() {
            return None;
        }
        let mut mean = vec![0.0; self.dim];
        for i in 0..self.len() {
            vecmath::axpy(&mut mean, 1.0, self.point(i));
        }
        let inv = 1.0 / self.len() as f64;
        for m in &mut mean {
            *m *= inv;
        }
        Some(mean)
    }

    /// Per-dimension sample standard deviation (denominator `n − 1`;
    /// `n = 1` yields zeros). Returns `None` for an empty set.
    pub fn std_dev(&self) -> Option<Vec<f64>> {
        let mean = self.mean()?;
        let n = self.len();
        let mut var = vec![0.0; self.dim];
        for i in 0..n {
            let p = self.point(i);
            for (j, v) in var.iter_mut().enumerate() {
                let d = p[j] - mean[j];
                *v += d * d;
            }
        }
        let denom = if n > 1 { (n - 1) as f64 } else { 1.0 };
        for v in &mut var {
            *v = (*v / denom).sqrt();
        }
        Some(var)
    }
}

/// A column-major (structure-of-arrays) view of a [`PointSet`]:
/// coordinate `j` of every point lives in one contiguous run, so a
/// block of consecutive points exposes each dimension as a dense
/// `&[f64]` — the layout SIMD leaf scans and autovectorized moment
/// loops want. Weights stay in the owning `PointSet` (already
/// contiguous there).
///
/// The view is derived data: it duplicates the coordinate storage
/// (`dim · len` doubles) and must be rebuilt whenever the point order
/// changes. The kd-tree builds it once after its physical leaf
/// reorder, which makes every leaf a contiguous column block.
#[derive(Debug, Clone, PartialEq)]
pub struct PointColumns {
    dim: usize,
    len: usize,
    /// `data[j*len + i]` = coordinate `j` of point `i`.
    data: Vec<f64>,
}

impl PointColumns {
    /// Transposes `points` into column-major storage.
    pub fn from_points(points: &PointSet) -> Self {
        let dim = points.dim();
        let len = points.len();
        let coords = points.coords();
        let mut data = vec![0.0; dim * len];
        for (j, col) in data.chunks_exact_mut(len.max(1)).enumerate().take(dim) {
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = coords[i * dim + j];
            }
        }
        Self { dim, len, data }
    }

    /// Dimensionality of the underlying points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The full column for coordinate `j`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.len..(j + 1) * self.len]
    }

    /// Coordinate `j` of points `start..end` as one dense slice.
    #[inline]
    pub fn col_slice(&self, j: usize, start: usize, end: usize) -> &[f64] {
        &self.data[j * self.len + start..j * self.len + end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_set() -> PointSet {
        PointSet::from_rows(2, &[0.0, 0.0, 1.0, 2.0, -1.0, 4.0])
    }

    #[test]
    fn from_rows_basic_shape() {
        let ps = sample_set();
        assert_eq!(ps.dim(), 2);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.point(2), &[-1.0, 4.0]);
        assert!(!ps.is_empty());
    }

    #[test]
    fn unit_weights_by_default() {
        let ps = sample_set();
        assert!(ps.weights().iter().all(|&w| w == 1.0));
        assert_eq!(ps.total_weight(), 3.0);
    }

    #[test]
    fn push_weighted_roundtrip() {
        let mut ps = PointSet::new(3);
        ps.push_weighted(&[1.0, 2.0, 3.0], 0.5);
        ps.push(&[4.0, 5.0, 6.0]);
        assert_eq!(ps.weight(0), 0.5);
        assert_eq!(ps.weight(1), 1.0);
        assert_eq!(ps.point_ref(0).coords, &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_wrong_dim_panics() {
        let mut ps = PointSet::new(2);
        ps.push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_panics() {
        let mut ps = PointSet::new(2);
        ps.push_weighted(&[0.0, 0.0], -1.0);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_flat_buffer_panics() {
        PointSet::from_rows(2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn select_reorders() {
        let ps = sample_set();
        let sel = ps.select(&[2, 0]);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.point(0), &[-1.0, 4.0]);
        assert_eq!(sel.point(1), &[0.0, 0.0]);
    }

    #[test]
    fn truncate_dims_keeps_prefix() {
        let ps = PointSet::from_rows(3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = ps.truncate_dims(2);
        assert_eq!(t.dim(), 2);
        assert_eq!(t.point(1), &[4.0, 5.0]);
    }

    #[test]
    fn mean_and_std_small_case() {
        let ps = PointSet::from_rows(1, &[1.0, 3.0]);
        assert_eq!(ps.mean().unwrap(), vec![2.0]);
        // sample std of {1, 3} is sqrt(2).
        assert!((ps.std_dev().unwrap()[0] - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_set_has_no_moments() {
        let ps = PointSet::new(2);
        assert!(ps.mean().is_none());
        assert!(ps.std_dev().is_none());
    }

    #[test]
    fn scale_weights_scales_total() {
        let mut ps = sample_set();
        ps.scale_weights(0.5);
        assert!((ps.total_weight() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn columns_transpose_roundtrip() {
        let ps = PointSet::from_rows(3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let cols = PointColumns::from_points(&ps);
        assert_eq!((cols.dim(), cols.len()), (3, 3));
        assert_eq!(cols.col(0), &[1.0, 4.0, 7.0]);
        assert_eq!(cols.col(2), &[3.0, 6.0, 9.0]);
        assert_eq!(cols.col_slice(1, 1, 3), &[5.0, 8.0]);
        for i in 0..ps.len() {
            for j in 0..ps.dim() {
                assert_eq!(cols.col(j)[i], ps.point(i)[j]);
            }
        }
    }

    #[test]
    fn columns_of_empty_set() {
        let cols = PointColumns::from_points(&PointSet::new(2));
        assert!(cols.is_empty());
        assert_eq!(cols.col(1), &[] as &[f64]);
    }

    proptest! {
        #[test]
        fn iter_agrees_with_indexing(flat in proptest::collection::vec(-1e3..1e3f64, 0..60)) {
            let n = flat.len() / 2 * 2;
            let ps = PointSet::from_rows(2, &flat[..n]);
            for (i, pr) in ps.iter().enumerate() {
                prop_assert_eq!(pr.coords, ps.point(i));
                prop_assert_eq!(pr.weight, ps.weight(i));
            }
        }

        #[test]
        fn total_weight_matches_sum(ws in proptest::collection::vec(0.0..10.0f64, 1..50)) {
            let flat: Vec<f64> = ws.iter().flat_map(|&w| [w, -w]).collect();
            let ps = PointSet::from_rows_weighted(2, &flat, &ws);
            let sum: f64 = ws.iter().sum();
            prop_assert!((ps.total_weight() - sum).abs() < 1e-9);
        }
    }
}

//! Dense-vector helpers used by index statistics and bound evaluation.
//!
//! All functions operate on `&[f64]` slices of equal length. They are the
//! innermost kernels of the whole system, so they are written as plain
//! indexed loops that LLVM auto-vectorizes well for the small `d`
//! (typically 2–10) used in KDV.

/// Dot product `a · b`.
///
/// # Panics
/// Panics in debug builds if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Squared Euclidean norm `‖a‖²`.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a)
}

/// Squared Euclidean distance `‖a − b‖²`.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// Euclidean distance `‖a − b‖`.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist2(a, b).sqrt()
}

/// `out += s * a`, the fused accumulate used when building node moments.
#[inline]
pub fn axpy(out: &mut [f64], s: f64, a: &[f64]) {
    debug_assert_eq!(out.len(), a.len());
    for i in 0..a.len() {
        out[i] += s * a[i];
    }
}

/// Quadratic form `qᵀ C q` for a symmetric matrix `C` stored row-major as
/// a flat `d × d` slice.
///
/// This is the `O(d²)` step of Lemma 3 in the paper: evaluating the
/// fourth-moment term `Σ (qᵀ pᵢ)² = qᵀ C q` with `C = Σ pᵢ pᵢᵀ`.
#[inline]
pub fn quadratic_form(c: &[f64], q: &[f64]) -> f64 {
    let d = q.len();
    debug_assert_eq!(c.len(), d * d);
    let mut acc = 0.0;
    for i in 0..d {
        let row = &c[i * d..(i + 1) * d];
        let mut rowdot = 0.0;
        for j in 0..d {
            rowdot += row[j] * q[j];
        }
        acc += q[i] * rowdot;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_manual() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_matches_dot() {
        let v = [3.0, -4.0];
        assert_eq!(norm2(&v), 25.0);
    }

    #[test]
    fn dist2_symmetry() {
        let a = [1.0, 2.0, -1.5];
        let b = [0.5, -2.0, 3.0];
        assert_eq!(dist2(&a, &b), dist2(&b, &a));
    }

    #[test]
    fn dist_is_sqrt_of_dist2() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(dist(&a, &b), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = vec![1.0, 1.0];
        axpy(&mut out, 2.0, &[3.0, -1.0]);
        assert_eq!(out, vec![7.0, -1.0]);
    }

    #[test]
    fn quadratic_form_identity_is_norm2() {
        let q = [1.5, -2.0, 0.5];
        let mut c = vec![0.0; 9];
        for i in 0..3 {
            c[i * 3 + i] = 1.0;
        }
        assert!((quadratic_form(&c, &q) - norm2(&q)).abs() < 1e-12);
    }

    #[test]
    fn quadratic_form_outer_product() {
        // C = p pᵀ  ⇒  qᵀCq = (q·p)².
        let p = [2.0, -1.0];
        let q = [0.5, 3.0];
        let c = [p[0] * p[0], p[0] * p[1], p[1] * p[0], p[1] * p[1]];
        let expected = dot(&q, &p) * dot(&q, &p);
        assert!((quadratic_form(&c, &q) - expected).abs() < 1e-12);
    }
}

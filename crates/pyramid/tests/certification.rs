//! Property tests for the pyramid's certified sampling bounds
//! (ISSUE 9 satellite #3).
//!
//! Over random clustered datasets, the empirical max
//! `|F_coreset(q) − F_exact(q)|` on a probe grid must stay below the
//! level's claimed `ε_s · W`; and the Hoeffding sample-size rule must
//! be monotone in both ε and δ.

use kdv_core::kernel::Kernel;
use kdv_core::raster::RasterSpec;
use kdv_data::synthetic::{gaussian_mixture, MixtureComponent};
use kdv_geom::vecmath::dist2;
use kdv_geom::PointSet;
use kdv_index::KdTree;
use kdv_pyramid::{PyramidBuilder, PyramidConfig};
use kdv_sampling::{sample_size_for, sampling_eps_for};
use proptest::prelude::*;

/// Brute-force KDE at `q` over `set`.
fn exact_kde(set: &PointSet, kernel: Kernel, q: &[f64]) -> f64 {
    set.iter()
        .map(|p| p.weight * kernel.eval_dist2(dist2(q, p.coords)))
        .sum()
}

/// A random clustered dataset: 2–4 Gaussian blobs with varying spread
/// and mixture weight.
fn clustered_dataset(n: usize, seed: u64, spread: f64) -> PointSet {
    let k = 2 + (seed % 3) as usize;
    let comps: Vec<MixtureComponent> = (0..k)
        .map(|i| {
            let angle = i as f64 * 2.4 + seed as f64 * 0.01;
            MixtureComponent::isotropic(
                vec![4.0 * angle.cos(), 4.0 * angle.sin()],
                spread * (1.0 + 0.5 * i as f64),
                1.0 + i as f64,
            )
        })
        .collect();
    gaussian_mixture(n, &comps, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The certificate a build emits is honest: on a *fresh* probe
    /// grid (denser than the builder's own), brute-force coreset KDE
    /// stays within `ε_s · W` of brute-force exact KDE.
    #[test]
    fn certified_bound_holds_empirically(
        seed in 0u64..1000,
        spread in 0.4f64..1.6,
        gamma in 0.05f64..0.8,
    ) {
        let n = 6_000;
        let ps = clustered_dataset(n, seed, spread);
        let tree = KdTree::try_build_default(&ps).expect("index");
        let kernel = Kernel::gaussian(gamma);
        let (pyramid, report) = PyramidBuilder::new(&tree, kernel)
            .with_config(PyramidConfig {
                sizes: vec![300, 1200],
                probe_res: 12,
                ..PyramidConfig::default()
            })
            .build()
            .expect("build");
        prop_assert_eq!(pyramid.len(), 2);

        let w = ps.total_weight();
        // An independent probe grid, finer and with a different margin
        // than the builder used, so the check is not circular.
        let res = 20u32;
        let spec = RasterSpec::try_covering(&ps, res, res, 0.02).expect("probe grid");
        for (level, rep) in pyramid.levels().iter().zip(&report.levels) {
            prop_assert!(level.eps_s >= rep.hoeffding_eps);
            let mut worst = 0.0f64;
            for row in 0..res {
                for col in 0..res {
                    let q = spec.pixel_center(col, row);
                    let err = (exact_kde(level.tree.points(), kernel, &q)
                        - exact_kde(&ps, kernel, &q))
                        .abs();
                    worst = worst.max(err);
                }
            }
            prop_assert!(
                worst <= level.eps_s * w,
                "level {}: empirical max err {} exceeds certificate {}",
                rep.size, worst, level.eps_s * w
            );
        }
    }

    /// `sample_size_for` is monotone: tightening ε or δ never asks for
    /// fewer points, and its inverse is consistent.
    #[test]
    fn sample_size_monotone(
        eps in 0.005f64..0.5,
        delta in 1e-8f64..0.5,
        shrink in 0.1f64..0.99,
    ) {
        let s = sample_size_for(eps, delta);
        // Tighter ε → at least as many points.
        prop_assert!(sample_size_for(eps * shrink, delta) >= s);
        // Tighter δ → at least as many points.
        prop_assert!(sample_size_for(eps, delta * shrink) >= s);
        // Inverse round trip never loses budget.
        prop_assert!(sample_size_for(sampling_eps_for(s, delta), delta) <= s);
        // And the inverse is monotone decreasing in size.
        prop_assert!(sampling_eps_for(s + 1, delta) <= sampling_eps_for(s, delta));
    }
}

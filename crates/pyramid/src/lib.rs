//! Certified coreset pyramid: a geometric ladder of Z-order coresets,
//! each carrying a **certified sampling error bound**, that lets a tile
//! server answer planet-scale low-zoom queries at small-dataset cost.
//!
//! The idea (Phillips & Tai, "Improved Coresets for Kernel Density
//! Estimates"; Zheng et al., "Visualization of Big Spatial Data using
//! Coresets for KDE") is that a reweighted sample of size `O(1/ε²)`
//! approximates the full kernel density within `ε·W` everywhere, where
//! `W = Σᵢ wᵢ` is the total kernel mass (every kernel profile this
//! engine ships peaks at `K(0) = 1`, so `F(q) ∈ [0, W]` and `ε·W` is
//! the natural absolute-error unit). A server that knows a level's
//! certified bound `ε_s` can split its per-pixel guarantee `ε` into a
//! sampling share and a refinement share and render from the *coreset*
//! whenever `ε_s + ε_r ≤ ε` — paying for thousands of points instead
//! of millions.
//!
//! Construction is three steps per level:
//!
//! 1. **sample** — [`kdv_sampling::zorder_sample`] draws a spatially
//!    stratified strided sample along the Morton curve and rescales
//!    weights by `n/s`, preserving total kernel mass,
//! 2. **index** — a full kd-tree + QUAD moment arena is built over the
//!    level, so the same branch-and-bound engine serves it,
//! 3. **certify** — the level's sampling bound starts at the Hoeffding
//!    budget `ε_h = √(ln(2/δ)/2s)` ([`kdv_sampling::sampling_eps_for`])
//!    and is **validated empirically** against the full KDE on a probe
//!    grid: the certified `ε_s` is `max(ε_h, margin · measured)`, so a
//!    stratified sampler that beats the iid bound keeps the
//!    conservative certificate, and one that (pathologically) exceeds
//!    it is certified at what was actually observed, inflated by a
//!    safety margin — never silently optimistic.
//!
//! The ladder persists through the KDVS `CORE`/`PYRA` sections (see
//! `kdv-store`); `Pyramid::from_parts` rebuilds the per-level trees at
//! load time, which for coreset-sized levels costs milliseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use kdv_core::engine::{RefineEvaluator, RenderBudget};
use kdv_core::kernel::Kernel;
use kdv_core::raster::RasterSpec;
use kdv_geom::PointSet;
use kdv_index::KdTree;
use kdv_sampling::{sampling_eps_for, zorder_sample};

use kdv_core::bounds::BoundFamily;

/// Smallest level the default geometric ladder materializes.
pub const DEFAULT_BASE_SIZE: usize = 1024;

/// Geometric growth factor between ladder levels (1k/4k/16k/…).
pub const DEFAULT_GROWTH: usize = 4;

/// Default Hoeffding confidence parameter δ.
pub const DEFAULT_DELTA: f64 = 1e-6;

/// Safety margin applied to the *measured* probe-grid error when it is
/// taken as the certificate (the strided Z-order sampler is not iid, so
/// the empirical check is what actually backs the bound).
pub const MEASURED_SAFETY: f64 = 1.25;

/// Fraction of the Hoeffding budget spent on evaluation slack during
/// validation (both the full-index and the coreset densities are
/// themselves evaluated to this absolute tolerance; the slack is added
/// back into the measured error before certifying).
const VALIDATE_SLACK: f64 = 0.05;

/// Why a pyramid could not be built or reassembled.
#[derive(Debug, Clone, PartialEq)]
pub enum PyramidError {
    /// The dataset is not 2-D (the Morton sampler is planar).
    NotPlanar {
        /// Dimensionality found.
        dim: usize,
    },
    /// A requested level size is invalid (zero, or ≥ the dataset).
    BadLevelSize {
        /// The offending size.
        size: usize,
        /// Dataset size.
        n: usize,
    },
    /// A stored certified bound is out of range.
    BadBound {
        /// Level index.
        level: usize,
        /// The offending value.
        eps_s: f64,
    },
    /// Level sizes must be strictly increasing (smallest first).
    UnsortedLevels,
    /// The underlying engine rejected the data (degenerate geometry,
    /// index build failure, …).
    Engine(String),
}

impl fmt::Display for PyramidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyramidError::NotPlanar { dim } => {
                write!(f, "coreset pyramids require 2-D data, got {dim}-D")
            }
            PyramidError::BadLevelSize { size, n } => {
                write!(f, "level size {size} invalid for a {n}-point dataset")
            }
            PyramidError::BadBound { level, eps_s } => {
                write!(f, "level {level}: certified ε_s = {eps_s} out of range")
            }
            PyramidError::UnsortedLevels => {
                write!(f, "pyramid levels must be strictly increasing in size")
            }
            PyramidError::Engine(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for PyramidError {}

/// One rung of the ladder: a fully indexed coreset plus the certified
/// normalized sampling bound it serves under.
pub struct PyramidLevel {
    /// kd-tree + QUAD moments over the coreset (weights carry the
    /// `n/s` rescale, so kernel sums estimate the full set's).
    pub tree: KdTree,
    /// Certified normalized sampling error: on the build-time probe
    /// grid, `|F_coreset(q) − F_full(q)| ≤ ε_s · W` (and the Hoeffding
    /// budget for the level's size is a lower bound on `ε_s`, so the
    /// certificate is never tighter than theory).
    pub eps_s: f64,
}

impl PyramidLevel {
    /// Points in this level.
    pub fn len(&self) -> usize {
        self.tree.points().len()
    }

    /// Whether the level is empty (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.tree.points().is_empty()
    }
}

/// The ladder, smallest level first.
pub struct Pyramid {
    levels: Vec<PyramidLevel>,
}

impl Pyramid {
    /// An empty pyramid (dataset too small for any level).
    pub fn empty() -> Self {
        Self { levels: Vec::new() }
    }

    /// The levels, smallest first.
    pub fn levels(&self) -> &[PyramidLevel] {
        &self.levels
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the ladder has no levels.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The cheapest (smallest) level whose certified sampling bound
    /// fits `budget`, as `(index, level)`. Levels are sorted smallest
    /// first and `ε_s` shrinks as size grows, so the first fit is the
    /// cheapest admissible one. `None` means no level is certified
    /// tightly enough — the caller must fall back to the full index.
    pub fn pick(&self, budget: f64) -> Option<(usize, &PyramidLevel)> {
        self.levels
            .iter()
            .enumerate()
            .find(|(_, lv)| lv.eps_s <= budget)
    }

    /// Reassembles a pyramid from persisted `(coreset, ε_s)` pairs
    /// (the KDVS `CORE` + `PYRA` sections), rebuilding each level's
    /// kd-tree. Levels must arrive smallest first with in-range bounds.
    pub fn from_parts(parts: Vec<(PointSet, f64)>) -> Result<Self, PyramidError> {
        let mut levels = Vec::with_capacity(parts.len());
        let mut prev = 0usize;
        for (i, (points, eps_s)) in parts.into_iter().enumerate() {
            if !(eps_s.is_finite() && eps_s > 0.0 && eps_s <= 8.0) {
                return Err(PyramidError::BadBound { level: i, eps_s });
            }
            if points.len() <= prev {
                return Err(PyramidError::UnsortedLevels);
            }
            prev = points.len();
            let tree = KdTree::try_build_default(&points)
                .map_err(|e| PyramidError::Engine(format!("level {i}: {e}")))?;
            levels.push(PyramidLevel { tree, eps_s });
        }
        Ok(Self { levels })
    }
}

/// Per-level construction record (what `kdv index build --pyramid`
/// prints and the builder's tests assert on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelReport {
    /// Points in the level.
    pub size: usize,
    /// The iid Hoeffding budget for this size and the build δ.
    pub hoeffding_eps: f64,
    /// Empirical max normalized error observed on the probe grid
    /// (evaluation slack already folded in).
    pub measured_eps: f64,
    /// The certified bound actually persisted:
    /// `max(hoeffding_eps, MEASURED_SAFETY · measured_eps)`.
    pub certified_eps: f64,
}

/// The whole build's record.
#[derive(Debug, Clone, Default)]
pub struct BuildReport {
    /// One entry per materialized level, smallest first.
    pub levels: Vec<LevelReport>,
}

/// Tunables for [`PyramidBuilder`].
#[derive(Debug, Clone)]
pub struct PyramidConfig {
    /// Explicit level sizes (smallest first). Empty selects the
    /// geometric default ladder ([`geometric_ladder`]).
    pub sizes: Vec<usize>,
    /// Hoeffding confidence parameter δ.
    pub delta: f64,
    /// Probe-grid resolution (per side) for empirical validation.
    pub probe_res: u32,
    /// Margin around the data window for the probe grid, as a fraction
    /// of each axis span.
    pub margin_frac: f64,
    /// Morton stride phase in `[0, 1)` (fixed for reproducible builds).
    pub phase: f64,
}

impl Default for PyramidConfig {
    fn default() -> Self {
        Self {
            sizes: Vec::new(),
            delta: DEFAULT_DELTA,
            probe_res: 32,
            margin_frac: 0.05,
            phase: 0.25,
        }
    }
}

/// The default geometric ladder for an `n`-point dataset:
/// `1k, 4k, 16k, …` while each level stays at most `n/4` — a level
/// must be meaningfully smaller than the dataset to be worth its
/// bytes. Empty when `n < 4·1024`.
pub fn geometric_ladder(n: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut size = DEFAULT_BASE_SIZE;
    while size.saturating_mul(4) <= n {
        sizes.push(size);
        let Some(next) = size.checked_mul(DEFAULT_GROWTH) else {
            break;
        };
        size = next;
    }
    sizes
}

/// Builds a certified ladder over one dataset's full index.
pub struct PyramidBuilder<'a> {
    tree: &'a KdTree,
    kernel: Kernel,
    config: PyramidConfig,
}

impl<'a> PyramidBuilder<'a> {
    /// A builder over the full index (the tree's points are the ground
    /// truth every level is validated against).
    pub fn new(tree: &'a KdTree, kernel: Kernel) -> Self {
        Self {
            tree,
            kernel,
            config: PyramidConfig::default(),
        }
    }

    /// Overrides the default configuration.
    pub fn with_config(mut self, config: PyramidConfig) -> Self {
        self.config = config;
        self
    }

    /// Materializes and certifies every level. An empty ladder (the
    /// dataset is too small for the configured sizes) is `Ok`, not an
    /// error — serving simply never leaves the full index.
    pub fn build(&self) -> Result<(Pyramid, BuildReport), PyramidError> {
        let points = self.tree.points();
        if points.dim() != 2 {
            return Err(PyramidError::NotPlanar { dim: points.dim() });
        }
        let n = points.len();
        let sizes = if self.config.sizes.is_empty() {
            geometric_ladder(n)
        } else {
            let mut prev = 0usize;
            for &size in &self.config.sizes {
                if size == 0 || size >= n {
                    return Err(PyramidError::BadLevelSize { size, n });
                }
                if size <= prev {
                    return Err(PyramidError::UnsortedLevels);
                }
                prev = size;
            }
            self.config.sizes.clone()
        };
        if sizes.is_empty() {
            return Ok((Pyramid::empty(), BuildReport::default()));
        }

        let w = points.total_weight();
        let probes = self.probe_points()?;
        let mut levels = Vec::with_capacity(sizes.len());
        let mut report = BuildReport::default();
        for size in sizes {
            let coreset = zorder_sample(points, size, self.config.phase);
            let tree = KdTree::try_build_default(&coreset)
                .map_err(|e| PyramidError::Engine(format!("level of {size} points: {e}")))?;
            let hoeffding_eps = sampling_eps_for(size, self.config.delta);
            let measured_eps = self.measure(&tree, &probes, hoeffding_eps, w)?;
            let certified_eps = hoeffding_eps.max(MEASURED_SAFETY * measured_eps);
            report.levels.push(LevelReport {
                size,
                hoeffding_eps,
                measured_eps,
                certified_eps,
            });
            levels.push(PyramidLevel {
                tree,
                eps_s: certified_eps,
            });
        }
        Ok((Pyramid { levels }, report))
    }

    /// Probe-grid pixel centers over the (margined) data window — the
    /// same geometry tiles are rendered on, so the validation measures
    /// error exactly where serving will read it.
    fn probe_points(&self) -> Result<Vec<[f64; 2]>, PyramidError> {
        let res = self.config.probe_res.max(2);
        let spec = RasterSpec::try_covering(self.tree.points(), res, res, self.config.margin_frac)
            .map_err(|e| PyramidError::Engine(format!("probe grid: {e}")))?;
        let mut probes = Vec::with_capacity((res * res) as usize);
        for row in 0..res {
            for col in 0..res {
                probes.push(spec.pixel_center(col, row));
            }
        }
        Ok(probes)
    }

    /// Max normalized `|F_level − F_full|` over the probe grid. Both
    /// densities are evaluated through the branch-and-bound engine to
    /// an absolute slack of `VALIDATE_SLACK · ε_h · W` each; the slack
    /// is added back so the returned figure upper-bounds the true
    /// probe-grid error.
    fn measure(
        &self,
        level_tree: &KdTree,
        probes: &[[f64; 2]],
        hoeffding_eps: f64,
        w: f64,
    ) -> Result<f64, PyramidError> {
        let slack = VALIDATE_SLACK * hoeffding_eps * w;
        let family = BoundFamily::Quadratic;
        let mut full = RefineEvaluator::new(self.tree, self.kernel, family);
        let mut level = RefineEvaluator::new(level_tree, self.kernel, family);
        let mut budget = RenderBudget::unlimited();
        let mut worst = 0.0f64;
        for q in probes {
            let f = full
                .eval_abs_budgeted(q, slack, &mut budget)
                .map_err(|e| PyramidError::Engine(format!("validation probe: {e}")))?;
            let s = level
                .eval_abs_budgeted(q, slack, &mut budget)
                .map_err(|e| PyramidError::Engine(format!("validation probe: {e}")))?;
            worst = worst.max((s.estimate() - f.estimate()).abs());
        }
        Ok((worst + 2.0 * slack) / w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_geom::vecmath::dist2;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn clustered(n: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flat = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let (cx, cy) = if rng.gen_bool(0.6) {
                (0.0, 0.0)
            } else {
                (6.0, 4.0)
            };
            flat.push(cx + rng.gen_range(-1.5..1.5));
            flat.push(cy + rng.gen_range(-1.5..1.5));
        }
        let mut ps = PointSet::from_rows(2, &flat);
        ps.scale_weights(1.0 / n as f64);
        ps
    }

    #[test]
    fn geometric_ladder_shape() {
        assert!(geometric_ladder(1000).is_empty());
        assert_eq!(geometric_ladder(4096), vec![1024]);
        assert_eq!(geometric_ladder(70_000), vec![1024, 4096, 16384]);
        // 262144·4 > 1M, so the 262k level does not materialize.
        assert_eq!(geometric_ladder(1_000_000), vec![1024, 4096, 16384, 65536]);
        assert_eq!(
            geometric_ladder(1 << 21),
            vec![1024, 4096, 16384, 65536, 262144]
        );
    }

    #[test]
    fn builder_certifies_each_level() {
        let ps = clustered(20_000, 7);
        let tree = KdTree::build_default(&ps);
        let kernel = Kernel::gaussian(0.4);
        let (pyramid, report) = PyramidBuilder::new(&tree, kernel)
            .with_config(PyramidConfig {
                sizes: vec![256, 1024, 4096],
                probe_res: 16,
                ..PyramidConfig::default()
            })
            .build()
            .expect("build");
        assert_eq!(pyramid.len(), 3);
        let w = ps.total_weight();
        for (level, rep) in pyramid.levels().iter().zip(&report.levels) {
            assert_eq!(level.len(), rep.size);
            assert!(level.eps_s >= rep.hoeffding_eps, "never below theory");
            assert!(level.eps_s >= MEASURED_SAFETY * rep.measured_eps);
            // The certificate holds against a brute-force exact check
            // on a fresh probe grid point.
            let q = [0.3, -0.2];
            let kde = |set: &PointSet| -> f64 {
                set.iter()
                    .map(|p| p.weight * kernel.eval_dist2(dist2(&q, p.coords)))
                    .sum()
            };
            let err = (kde(level.tree.points()) - kde(&ps)).abs();
            assert!(
                err <= level.eps_s * w,
                "level {}: err {err} exceeds certificate {}",
                rep.size,
                level.eps_s * w
            );
        }
        // Bigger levels certify tighter bounds.
        for pair in pyramid.levels().windows(2) {
            assert!(pair[1].eps_s <= pair[0].eps_s * 1.001);
        }
    }

    #[test]
    fn pick_returns_cheapest_admissible_level() {
        let ps = clustered(20_000, 8);
        let tree = KdTree::build_default(&ps);
        let (pyramid, _) = PyramidBuilder::new(&tree, Kernel::gaussian(0.4))
            .with_config(PyramidConfig {
                sizes: vec![512, 4096],
                probe_res: 8,
                ..PyramidConfig::default()
            })
            .build()
            .expect("build");
        let loose = pyramid.levels()[0].eps_s;
        let tight = pyramid.levels()[1].eps_s;
        assert!(tight < loose);
        let (idx, _) = pyramid.pick(loose).expect("loose budget fits level 0");
        assert_eq!(idx, 0);
        let (idx, _) = pyramid.pick((tight + loose) / 2.0).expect("mid budget");
        assert_eq!(idx, 1);
        assert!(pyramid.pick(tight / 2.0).is_none(), "too tight for any");
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let ps = clustered(8_000, 9);
        let tree = KdTree::build_default(&ps);
        let (pyramid, _) = PyramidBuilder::new(&tree, Kernel::gaussian(0.4))
            .with_config(PyramidConfig {
                sizes: vec![256, 1024],
                probe_res: 8,
                ..PyramidConfig::default()
            })
            .build()
            .expect("build");
        let parts: Vec<(PointSet, f64)> = pyramid
            .levels()
            .iter()
            .map(|lv| (lv.tree.points().clone(), lv.eps_s))
            .collect();
        let back = Pyramid::from_parts(parts.clone()).expect("round trip");
        assert_eq!(back.len(), 2);
        for (a, b) in back.levels().iter().zip(pyramid.levels()) {
            assert_eq!(a.eps_s, b.eps_s);
            assert_eq!(a.len(), b.len());
            // Tree construction may permute storage order; compare the
            // point sets as multisets.
            let key = |set: &PointSet| {
                let mut rows: Vec<(u64, u64, u64)> = set
                    .iter()
                    .map(|p| {
                        (
                            p.coords[0].to_bits(),
                            p.coords[1].to_bits(),
                            p.weight.to_bits(),
                        )
                    })
                    .collect();
                rows.sort_unstable();
                rows
            };
            assert_eq!(key(a.tree.points()), key(b.tree.points()));
        }
        // Bad bounds and misordered levels are structural errors.
        let mut bad = parts.clone();
        bad[0].1 = f64::NAN;
        assert!(matches!(
            Pyramid::from_parts(bad),
            Err(PyramidError::BadBound { level: 0, .. })
        ));
        let swapped = vec![parts[1].clone(), parts[0].clone()];
        assert!(matches!(
            Pyramid::from_parts(swapped),
            Err(PyramidError::UnsortedLevels)
        ));
    }

    #[test]
    fn builder_rejects_bad_configs() {
        let ps = clustered(1000, 10);
        let tree = KdTree::build_default(&ps);
        let build = |sizes: Vec<usize>| {
            PyramidBuilder::new(&tree, Kernel::gaussian(0.4))
                .with_config(PyramidConfig {
                    sizes,
                    probe_res: 4,
                    ..PyramidConfig::default()
                })
                .build()
        };
        assert!(matches!(
            build(vec![0]),
            Err(PyramidError::BadLevelSize { .. })
        ));
        assert!(matches!(
            build(vec![1000]),
            Err(PyramidError::BadLevelSize { .. })
        ));
        assert!(matches!(
            build(vec![512, 128]),
            Err(PyramidError::UnsortedLevels)
        ));
        // A small dataset with the default ladder: empty, not an error.
        let (pyramid, report) = PyramidBuilder::new(&tree, Kernel::gaussian(0.4))
            .build()
            .expect("small dataset");
        assert!(pyramid.is_empty());
        assert!(report.levels.is_empty());
    }
}

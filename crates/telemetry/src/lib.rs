//! Render-wide observability for the QUAD engine.
//!
//! The paper's entire evaluation (§7, Figs 14–24) argues about *where
//! the work goes* — heap pops, bound evaluations, exact leaf scans per
//! pixel. This crate turns the per-query [`kdv_core::engine::Probe`]
//! hooks and [`kdv_core::engine::RefineStats`] diagnostics into
//! render-scale artifacts:
//!
//! * [`EventCounters`] — a [`kdv_core::engine::Probe`] implementation
//!   accumulating raw event counts across any number of queries,
//! * [`LogHistogram`] — power-of-two-bucketed distributions of
//!   per-pixel iteration counts and latencies,
//! * [`RenderMetrics`] — the full per-render aggregate: counters,
//!   histograms, wall time, time-to-quality checkpoints, and an
//!   optional per-pixel **cost map** ([`kdv_core::raster::DensityGrid`]
//!   of refinement work — a renderable "where is the time going"
//!   raster alongside the density raster),
//! * [`json`] — a dependency-free JSON writer/parser pair so metrics
//!   export as a stable machine-readable document
//!   (`kdv render --metrics out.json`) and tests can round-trip it,
//! * [`fault`] — a deterministic fault-injecting probe (forced
//!   resyncs, slow nodes, poisoned bound evaluations) driving the
//!   workspace's chaos-test suite,
//! * [`serve`] — lock-free cache and HTTP traffic counters for the
//!   long-running tile server (`kdv-server`), scrape-friendly via the
//!   same JSON writer,
//! * [`cluster`] — router-tier traffic counters (sheds, failovers,
//!   upstream errors) and the structural JSON rollup that merges N
//!   shard metric documents into one fleet view,
//! * [`ingest`] — the streaming-ingest ledger (WAL appends, durable
//!   acks, backpressure rejections, compactions, boot-time replays)
//!   backing the server's durability contract,
//! * [`trace`] — end-to-end request tracing: named spans against one
//!   monotonic origin, bounded rings of recent and slow traces, and a
//!   per-depth refinement work profile teed off the same probe hooks,
//! * [`prom`] — Prometheus text exposition of the same counters and
//!   histograms, so standard scrapers can consume the server without
//!   a JSON adapter.
//!
//! Everything here is pay-as-you-go: the engine's refinement loop is
//! monomorphized over the probe, so un-instrumented renders (the
//! default `NoProbe`) compile to exactly the code they had before this
//! crate existed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod counters;
pub mod fault;
pub mod hist;
pub mod ingest;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod pyramid;
pub mod serve;
pub mod store;
pub mod trace;

pub use cluster::{sum_objects, RouterCounters, RouterSnapshot};
pub use counters::EventCounters;
pub use fault::{FaultPlan, FaultProbe};
pub use hist::LogHistogram;
pub use ingest::{IngestCounters, IngestSnapshot};
pub use metrics::{Checkpoint, RenderMetrics, RenderStatus};
pub use prom::PromWriter;
pub use pyramid::{PyramidCounters, PyramidSnapshot, MAX_TRACKED_LEVELS};
pub use serve::{CacheCounters, CacheSnapshot, HttpCounters, HttpSnapshot};
pub use store::{StoreCounters, StoreSnapshot};
pub use trace::{
    DepthProfile, Span, TagValue, Trace, TraceBuilder, TraceId, TraceMeta, TraceRing, TracingProbe,
};

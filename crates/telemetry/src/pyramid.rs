//! Pyramid-serving counters: which coreset level answered each tile.
//!
//! A pyramid-enabled tile server routes every render through a level
//! pick (coreset level k, or the full index). Operators need to see
//! that routing actually happens — a pyramid that exists but never
//! serves is a silent regression — so this block counts renders per
//! level with the same lock-free `AtomicU64` discipline as
//! [`crate::serve`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::{self, Value};

/// Fixed number of per-level slots. Ladders are geometric (1k·4^k), so
/// eight levels already covers ~4 billion points; deeper levels fold
/// into the last slot rather than growing the struct.
pub const MAX_TRACKED_LEVELS: usize = 8;

/// Lock-free per-level render counters for the coreset pyramid.
#[derive(Debug, Default)]
pub struct PyramidCounters {
    /// Renders served from pyramid level k (slot-capped).
    level_renders: [AtomicU64; MAX_TRACKED_LEVELS],
    /// Renders that fell back to the full index (deep zoom, no
    /// admissible level, or no pyramid at all).
    full_renders: AtomicU64,
    /// τKDV pixels inside the `τ ∓ ε_s·W` band that were re-decided
    /// exactly against the full index.
    tau_exact_fallback_pixels: AtomicU64,
}

/// One reading of [`PyramidCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PyramidSnapshot {
    /// Renders served per pyramid level (index = level).
    pub level_renders: [u64; MAX_TRACKED_LEVELS],
    /// Renders served by the full index.
    pub full_renders: u64,
    /// τ-band pixels re-decided exactly.
    pub tau_exact_fallback_pixels: u64,
}

impl PyramidCounters {
    /// Records one render served from pyramid level `level` (levels
    /// beyond the tracked range fold into the last slot).
    pub fn level_render(&self, level: usize) {
        let slot = level.min(MAX_TRACKED_LEVELS - 1);
        self.level_renders[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one render served by the full index.
    pub fn full_render(&self) {
        self.full_renders.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` τ-band pixels re-decided against the full index.
    pub fn tau_exact_fallback(&self, n: u64) {
        self.tau_exact_fallback_pixels
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Reads every counter.
    pub fn snapshot(&self) -> PyramidSnapshot {
        let mut level_renders = [0u64; MAX_TRACKED_LEVELS];
        for (out, c) in level_renders.iter_mut().zip(&self.level_renders) {
            *out = c.load(Ordering::Relaxed);
        }
        PyramidSnapshot {
            level_renders,
            full_renders: self.full_renders.load(Ordering::Relaxed),
            tau_exact_fallback_pixels: self.tau_exact_fallback_pixels.load(Ordering::Relaxed),
        }
    }
}

impl PyramidSnapshot {
    /// Total renders that went through a pyramid level.
    pub fn pyramid_renders(&self) -> u64 {
        self.level_renders.iter().sum()
    }

    /// JSON object: per-level counts (trailing always-zero slots
    /// trimmed, but the array never renders empty), full-index count,
    /// and the τ fallback tally.
    pub fn to_json(&self) -> Value {
        let used = self
            .level_renders
            .iter()
            .rposition(|&c| c > 0)
            .map_or(1, |i| i + 1);
        let levels: Vec<Value> = self.level_renders[..used]
            .iter()
            .map(|&c| json::num_u(c))
            .collect();
        Value::obj(vec![
            ("level_renders", Value::Arr(levels)),
            ("pyramid_renders", json::num_u(self.pyramid_renders())),
            ("full_renders", json::num_u(self.full_renders)),
            (
                "tau_exact_fallback_pixels",
                json::num_u(self.tau_exact_fallback_pixels),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_level() {
        let c = PyramidCounters::default();
        c.level_render(0);
        c.level_render(0);
        c.level_render(2);
        c.level_render(99); // folds into the last slot
        c.full_render();
        c.tau_exact_fallback(17);
        let s = c.snapshot();
        assert_eq!(s.level_renders[0], 2);
        assert_eq!(s.level_renders[2], 1);
        assert_eq!(s.level_renders[MAX_TRACKED_LEVELS - 1], 1);
        assert_eq!(s.pyramid_renders(), 4);
        assert_eq!(s.full_renders, 1);
        assert_eq!(s.tau_exact_fallback_pixels, 17);
    }

    #[test]
    fn json_trims_trailing_zero_slots() {
        let c = PyramidCounters::default();
        c.level_render(1);
        let doc = c.snapshot().to_json();
        let back = crate::json::parse(&doc.render()).expect("parses");
        let levels = back.get("level_renders").expect("levels");
        match levels {
            Value::Arr(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(back.get("full_renders").and_then(Value::as_f64), Some(0.0));

        // All-zero counters still render a non-empty array.
        let empty = PyramidCounters::default().snapshot().to_json();
        let back = crate::json::parse(&empty.render()).expect("parses");
        match back.get("level_renders").expect("levels") {
            Value::Arr(items) => assert_eq!(items.len(), 1),
            other => panic!("expected array, got {other:?}"),
        }
    }
}

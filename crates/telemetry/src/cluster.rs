//! Cluster-tier telemetry: router traffic counters and cross-shard
//! metric rollups.
//!
//! The cluster router fronts N shard processes, each already exporting
//! a `kdv-serve-metrics` JSON document. Aggregated observability needs
//! two things this module provides:
//!
//! * [`RouterCounters`] — the router's own lock-free traffic counters
//!   (admission sheds, failovers, upstream errors), the same
//!   `AtomicU64`-bundle shape as [`crate::serve::HttpCounters`] so the
//!   scrape path never takes a lock.
//! * [`sum_objects`] — a structural rollup over parsed shard metric
//!   documents: numeric leaves sum, nested objects merge recursively,
//!   and everything else (strings, bools, arrays) keeps the first
//!   shard's value. Derived ratios (a `hit_rate` amid its counters) do
//!   **not** sum meaningfully — callers recompute those from the
//!   summed counters after merging.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::{self, Value};

/// Lock-free router traffic counters, bumped by every proxy worker.
#[derive(Debug, Default)]
pub struct RouterCounters {
    requests: AtomicU64,
    proxied: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    shed: AtomicU64,
    upstream_errors: AtomicU64,
    no_upstream: AtomicU64,
    bytes_sent: AtomicU64,
}

/// One reading of [`RouterCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterSnapshot {
    /// Client requests that reached routing (parsed request line).
    pub requests: u64,
    /// Upstream shard requests attempted (includes retries and
    /// failover attempts, so this can exceed `requests`).
    pub proxied: u64,
    /// Same-shard retries after a stale pooled connection died under
    /// a request (not failovers — the shard itself was fine).
    pub retries: u64,
    /// Requests answered by the fallback shard after the owner failed
    /// (the responses carrying `X-Kdv-Failover`).
    pub failovers: u64,
    /// `429` admission sheds (per-shard in-flight cap reached).
    pub shed: u64,
    /// Upstream attempts that failed (connect, write, read, or parse).
    pub upstream_errors: u64,
    /// Requests no shard could answer (`502`/`503` to the client).
    pub no_upstream: u64,
    /// Response payload bytes written to clients (bodies only).
    pub bytes_sent: u64,
}

impl RouterCounters {
    /// Records a routed client request.
    pub fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one upstream attempt.
    pub fn proxied(&self) {
        self.proxied.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a same-shard stale-connection retry.
    pub fn retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request answered by the fallback shard.
    pub fn failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `429` admission shed.
    pub fn shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a failed upstream attempt.
    pub fn upstream_error(&self) {
        self.upstream_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request no shard could answer.
    pub fn no_upstream(&self) {
        self.no_upstream.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds response body bytes.
    pub fn sent(&self, bytes: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Reads every counter.
    pub fn snapshot(&self) -> RouterSnapshot {
        RouterSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            proxied: self.proxied.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            upstream_errors: self.upstream_errors.load(Ordering::Relaxed),
            no_upstream: self.no_upstream.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
        }
    }
}

impl RouterSnapshot {
    /// JSON object with every counter.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("requests", json::num_u(self.requests)),
            ("proxied", json::num_u(self.proxied)),
            ("retries", json::num_u(self.retries)),
            ("failovers", json::num_u(self.failovers)),
            ("shed", json::num_u(self.shed)),
            ("upstream_errors", json::num_u(self.upstream_errors)),
            ("no_upstream", json::num_u(self.no_upstream)),
            ("bytes_sent", json::num_u(self.bytes_sent)),
        ])
    }
}

/// Structurally sums a set of parsed JSON documents.
///
/// Keys appear in the order they are first seen across the inputs.
/// For each key: numeric values sum (a document missing the key
/// contributes zero), objects merge recursively, and any other type
/// keeps the first document's value. This is exactly what a fleet
/// rollup of monotone counter blocks wants; derived ratios embedded in
/// a block (e.g. a cache `hit_rate`) come out as meaningless sums, so
/// callers recompute those from the merged counters.
pub fn sum_objects(docs: &[&Value]) -> Value {
    let mut keys: Vec<&str> = Vec::new();
    for doc in docs {
        if let Value::Obj(fields) = doc {
            for (k, _) in fields {
                if !keys.iter().any(|seen| seen == k) {
                    keys.push(k);
                }
            }
        }
    }
    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let present: Vec<&Value> = docs.iter().filter_map(|d| d.get(key)).collect();
        let merged = if present.iter().all(|v| matches!(v, Value::Num(_))) {
            Value::Num(present.iter().filter_map(|v| v.as_f64()).sum())
        } else if present.iter().all(|v| matches!(v, Value::Obj(_))) {
            sum_objects(&present)
        } else {
            (*present[0]).clone()
        };
        out.push((key.to_string(), merged));
    }
    Value::Obj(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn router_counters_accumulate_and_export_json() {
        let c = RouterCounters::default();
        c.request();
        c.request();
        c.proxied();
        c.proxied();
        c.proxied();
        c.retry();
        c.failover();
        c.shed();
        c.upstream_error();
        c.no_upstream();
        c.sent(512);
        let s = c.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.proxied, 3);
        assert_eq!(s.retries, 1);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.upstream_errors, 1);
        assert_eq!(s.no_upstream, 1);
        assert_eq!(s.bytes_sent, 512);

        let doc = s.to_json();
        let back = json::parse(&doc.render()).expect("parses");
        assert_eq!(back.get("proxied").and_then(Value::as_f64), Some(3.0));
        assert_eq!(back.get("failovers").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn router_counters_survive_concurrent_hammering() {
        let c = Arc::new(RouterCounters::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.request();
                    c.proxied();
                    c.sent(2);
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        let s = c.snapshot();
        assert_eq!(s.requests, 40_000);
        assert_eq!(s.proxied, 40_000);
        assert_eq!(s.bytes_sent, 80_000);
    }

    #[test]
    fn sum_objects_sums_numbers_and_recurses() {
        let a =
            json::parse(r#"{"http":{"ok":2,"bytes":10},"name":"shard-0","up":true}"#).expect("a");
        let b = json::parse(r#"{"http":{"ok":3,"bytes":5,"bad":1},"name":"shard-1"}"#).expect("b");
        let merged = sum_objects(&[&a, &b]);
        let http = merged.get("http").expect("http");
        assert_eq!(http.get("ok").and_then(Value::as_f64), Some(5.0));
        assert_eq!(http.get("bytes").and_then(Value::as_f64), Some(15.0));
        // Key present in only one document still sums (missing = 0).
        assert_eq!(http.get("bad").and_then(Value::as_f64), Some(1.0));
        // Non-numeric leaves keep the first document's value.
        assert_eq!(merged.get("name").and_then(Value::as_str), Some("shard-0"));
        assert_eq!(merged.get("up"), Some(&Value::Bool(true)));
    }

    #[test]
    fn sum_objects_handles_empty_and_singleton_inputs() {
        assert_eq!(sum_objects(&[]), Value::Obj(Vec::new()));
        let a = json::parse(r#"{"x":7}"#).expect("a");
        let merged = sum_objects(&[&a]);
        assert_eq!(merged.get("x").and_then(Value::as_f64), Some(7.0));
    }

    #[test]
    fn sum_objects_mixed_types_keep_the_first_value() {
        let a = json::parse(r#"{"v":1}"#).expect("a");
        let b = json::parse(r#"{"v":"two"}"#).expect("b");
        let merged = sum_objects(&[&a, &b]);
        assert_eq!(merged.get("v").and_then(Value::as_f64), Some(1.0));
    }
}

//! Streaming-ingest telemetry: WAL appends, acks, backpressure,
//! compaction, and recovery.
//!
//! The durability contract (DESIGN.md §12) is only auditable if every
//! step of it is counted: a point is *acked* exactly once its WAL
//! record reaches the configured durability device, so `acks` versus
//! `rejected_*` is the ingest success ledger, `wal_bytes` tracks how
//! much history a crash would replay, and `replayed_records` after a
//! boot says the recovery path actually ran. Same construction as the
//! other serving counters ([`crate::serve`]): lock-free monotone
//! atomics for the hot path, mutex-guarded [`LogHistogram`]s for the
//! per-request ack latency and the rarer compaction/replay wall times.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hist::LogHistogram;
use crate::json::{self, Value};

/// Telemetry for the WAL + memtable ingest pipeline.
#[derive(Debug, Default)]
pub struct IngestCounters {
    appends: AtomicU64,
    append_points: AtomicU64,
    tombstones: AtomicU64,
    tombstone_points: AtomicU64,
    acks: AtomicU64,
    rejected_too_large: AtomicU64,
    rejected_backpressure: AtomicU64,
    wal_bytes: AtomicU64,
    fsyncs: AtomicU64,
    compactions: AtomicU64,
    compaction_failures: AtomicU64,
    replays: AtomicU64,
    replayed_records: AtomicU64,
    torn_tails: AtomicU64,
    invalidated_tiles: AtomicU64,
    ack_ns: Mutex<LogHistogram>,
    compact_ns: Mutex<LogHistogram>,
    replay_ns: Mutex<LogHistogram>,
}

/// One reading of [`IngestCounters`], histograms included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestSnapshot {
    /// Append records durably written and acked.
    pub appends: u64,
    /// Points carried by those append records.
    pub append_points: u64,
    /// Tombstone records durably written and acked.
    pub tombstones: u64,
    /// Coordinates carried by those tombstone records.
    pub tombstone_points: u64,
    /// Writes acknowledged (each after its WAL record reached the
    /// configured durability point).
    pub acks: u64,
    /// Requests refused with `413` (body over the configured cap).
    pub rejected_too_large: u64,
    /// Requests refused with `429` (memtable full; retry after
    /// compaction catches up).
    pub rejected_backpressure: u64,
    /// WAL bytes appended (records only, not the header).
    pub wal_bytes: u64,
    /// WAL fsync calls issued (group commit batches several acks into
    /// one of these under `--fsync batch`).
    pub fsyncs: u64,
    /// Memtable→snapshot compactions completed.
    pub compactions: u64,
    /// Compactions that failed and left the WAL untouched (every acked
    /// record is still replayable).
    pub compaction_failures: u64,
    /// Boot-time WAL replays performed.
    pub replays: u64,
    /// Records recovered by those replays.
    pub replayed_records: u64,
    /// Replays that found a torn tail (records past the valid prefix
    /// were discarded — unacked by construction).
    pub torn_tails: u64,
    /// Cached tiles invalidated because an ingest batch's dilated MBR
    /// intersected them.
    pub invalidated_tiles: u64,
    /// Wall-clock nanoseconds from request receipt to durable ack.
    pub ack_ns: LogHistogram,
    /// Wall-clock nanoseconds per compaction.
    pub compact_ns: LogHistogram,
    /// Wall-clock nanoseconds per boot-time replay.
    pub replay_ns: LogHistogram,
}

impl IngestCounters {
    /// Records one durably-acked append of `points` points whose ack
    /// took `ns` nanoseconds end to end.
    pub fn append(&self, points: u64, ns: u64) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.append_points.fetch_add(points, Ordering::Relaxed);
        self.ack(ns);
    }

    /// Records one durably-acked tombstone of `points` coordinates.
    pub fn tombstone(&self, points: u64, ns: u64) {
        self.tombstones.fetch_add(1, Ordering::Relaxed);
        self.tombstone_points.fetch_add(points, Ordering::Relaxed);
        self.ack(ns);
    }

    fn ack(&self, ns: u64) {
        self.acks.fetch_add(1, Ordering::Relaxed);
        self.ack_ns.lock().expect("histogram lock").record(ns);
    }

    /// Records a `413` (body too large).
    pub fn reject_too_large(&self) {
        self.rejected_too_large.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `429` (memtable backpressure).
    pub fn reject_backpressure(&self) {
        self.rejected_backpressure.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `bytes` of WAL record payload written.
    pub fn wal_written(&self, bytes: u64) {
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one fsync of the WAL file.
    pub fn fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed compaction taking `ns` nanoseconds.
    pub fn compaction(&self, ns: u64) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.compact_ns.lock().expect("histogram lock").record(ns);
    }

    /// Records a failed compaction (WAL left intact).
    pub fn compaction_failure(&self) {
        self.compaction_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one boot-time replay that recovered `records` records,
    /// found (or not) a torn tail, and took `ns` nanoseconds.
    pub fn replay(&self, records: u64, torn: bool, ns: u64) {
        self.replays.fetch_add(1, Ordering::Relaxed);
        self.replayed_records.fetch_add(records, Ordering::Relaxed);
        if torn {
            self.torn_tails.fetch_add(1, Ordering::Relaxed);
        }
        self.replay_ns.lock().expect("histogram lock").record(ns);
    }

    /// Adds `tiles` cache entries invalidated by an ingest batch.
    pub fn invalidated(&self, tiles: u64) {
        self.invalidated_tiles.fetch_add(tiles, Ordering::Relaxed);
    }

    /// Reads every counter and clones the histograms.
    pub fn snapshot(&self) -> IngestSnapshot {
        IngestSnapshot {
            appends: self.appends.load(Ordering::Relaxed),
            append_points: self.append_points.load(Ordering::Relaxed),
            tombstones: self.tombstones.load(Ordering::Relaxed),
            tombstone_points: self.tombstone_points.load(Ordering::Relaxed),
            acks: self.acks.load(Ordering::Relaxed),
            rejected_too_large: self.rejected_too_large.load(Ordering::Relaxed),
            rejected_backpressure: self.rejected_backpressure.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            compaction_failures: self.compaction_failures.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            replayed_records: self.replayed_records.load(Ordering::Relaxed),
            torn_tails: self.torn_tails.load(Ordering::Relaxed),
            invalidated_tiles: self.invalidated_tiles.load(Ordering::Relaxed),
            ack_ns: self.ack_ns.lock().expect("histogram lock").clone(),
            compact_ns: self.compact_ns.lock().expect("histogram lock").clone(),
            replay_ns: self.replay_ns.lock().expect("histogram lock").clone(),
        }
    }
}

impl IngestSnapshot {
    /// JSON object with counters and histogram summaries.
    pub fn to_json(&self) -> Value {
        let hist_json = |h: &LogHistogram| {
            Value::obj(vec![
                ("count", json::num_u(h.count())),
                ("mean", json::num_f(h.mean())),
                ("p50_le", json::num_u(h.quantile_le(0.5))),
                ("p99_le", json::num_u(h.quantile_le(0.99))),
                ("max", json::num_u(h.max())),
            ])
        };
        Value::obj(vec![
            ("appends", json::num_u(self.appends)),
            ("append_points", json::num_u(self.append_points)),
            ("tombstones", json::num_u(self.tombstones)),
            ("tombstone_points", json::num_u(self.tombstone_points)),
            ("acks", json::num_u(self.acks)),
            ("rejected_too_large", json::num_u(self.rejected_too_large)),
            (
                "rejected_backpressure",
                json::num_u(self.rejected_backpressure),
            ),
            ("wal_bytes", json::num_u(self.wal_bytes)),
            ("fsyncs", json::num_u(self.fsyncs)),
            ("compactions", json::num_u(self.compactions)),
            ("compaction_failures", json::num_u(self.compaction_failures)),
            ("replays", json::num_u(self.replays)),
            ("replayed_records", json::num_u(self.replayed_records)),
            ("torn_tails", json::num_u(self.torn_tails)),
            ("invalidated_tiles", json::num_u(self.invalidated_tiles)),
            ("ack_ns", hist_json(&self.ack_ns)),
            ("compact_ns", hist_json(&self.compact_ns)),
            ("replay_ns", hist_json(&self.replay_ns)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = IngestCounters::default();
        c.append(3, 1_000);
        c.append(2, 2_000);
        c.tombstone(1, 500);
        c.reject_too_large();
        c.reject_backpressure();
        c.reject_backpressure();
        c.wal_written(128);
        c.fsync();
        c.compaction(5_000_000);
        c.compaction_failure();
        c.replay(7, true, 40_000);
        c.invalidated(12);
        let s = c.snapshot();
        assert_eq!(s.appends, 2);
        assert_eq!(s.append_points, 5);
        assert_eq!(s.tombstones, 1);
        assert_eq!(s.tombstone_points, 1);
        assert_eq!(s.acks, 3);
        assert_eq!(s.rejected_too_large, 1);
        assert_eq!(s.rejected_backpressure, 2);
        assert_eq!(s.wal_bytes, 128);
        assert_eq!(s.fsyncs, 1);
        assert_eq!(s.compactions, 1);
        assert_eq!(s.compaction_failures, 1);
        assert_eq!(s.replays, 1);
        assert_eq!(s.replayed_records, 7);
        assert_eq!(s.torn_tails, 1);
        assert_eq!(s.invalidated_tiles, 12);
        assert_eq!(s.ack_ns.count(), 3);
        assert_eq!(s.compact_ns.count(), 1);
        assert_eq!(s.replay_ns.count(), 1);
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let c = IngestCounters::default();
        c.append(4, 900);
        c.replay(2, false, 100);
        let doc = c.snapshot().to_json();
        let back = crate::json::parse(&doc.render()).expect("parses");
        assert_eq!(back.get("appends").and_then(Value::as_f64), Some(1.0));
        assert_eq!(back.get("append_points").and_then(Value::as_f64), Some(4.0));
        assert_eq!(back.get("torn_tails").and_then(Value::as_f64), Some(0.0));
        assert!(back
            .get("ack_ns")
            .and_then(|h| h.get("p99_le"))
            .and_then(Value::as_f64)
            .is_some());
    }

    #[test]
    fn concurrent_hammering_loses_nothing() {
        let c = Arc::new(IngestCounters::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000 {
                    c.append(2, i + 1);
                    c.wal_written(10);
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        let s = c.snapshot();
        assert_eq!(s.appends, 8_000);
        assert_eq!(s.append_points, 16_000);
        assert_eq!(s.wal_bytes, 80_000);
        assert_eq!(s.ack_ns.count(), 8_000);
    }
}

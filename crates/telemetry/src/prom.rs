//! Prometheus text exposition (format 0.0.4), dependency-free.
//!
//! The JSON `/metrics` document is the workspace's own artifact; this
//! writer renders the same counters and histograms in the line
//! protocol every standard scraper understands: `# HELP`/`# TYPE`
//! headers before samples, cumulative `le` histogram buckets ending in
//! `+Inf`, `_sum`/`_count` companions, and base units (seconds, bytes)
//! per the Prometheus naming conventions. Metric names carry the
//! `kdv_` prefix at the call sites; this module enforces the
//! structural rules — each name emitted once, header before samples —
//! so the exposition always passes a format lint.

use crate::hist::LogHistogram;
use std::fmt::Write as _;

/// Incremental builder of one exposition document.
///
/// A metric name may only be registered once; a duplicate registration
/// is skipped wholesale (header and samples) rather than corrupting
/// the document, since a scrape must never 500 over a server-side
/// naming slip.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
    names: Vec<String>,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name`; false (skip the metric) when already emitted.
    fn claim(&mut self, name: &str) -> bool {
        if self.names.iter().any(|n| n == name) {
            return false;
        }
        self.names.push(name.to_string());
        true
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// A single-sample counter.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        if !self.claim(name) {
            return;
        }
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name} {}", num(value));
    }

    /// A counter family: one sample per `(label, value)` pair, where
    /// `label` is a full `key="value"` clause.
    pub fn counter_family(&mut self, name: &str, help: &str, series: &[(String, f64)]) {
        if !self.claim(name) {
            return;
        }
        self.header(name, help, "counter");
        for (label, value) in series {
            let _ = writeln!(self.out, "{name}{{{label}}} {}", num(*value));
        }
    }

    /// A single-sample gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        if !self.claim(name) {
            return;
        }
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name} {}", num(value));
    }

    /// A gauge family: one sample per `(label, value)` pair, where
    /// `label` is a full `key="value"` clause (the cluster router emits
    /// per-shard `shard="N"` health and in-flight gauges this way).
    pub fn gauge_family(&mut self, name: &str, help: &str, series: &[(String, f64)]) {
        if !self.claim(name) {
            return;
        }
        self.header(name, help, "gauge");
        for (label, value) in series {
            let _ = writeln!(self.out, "{name}{{{label}}} {}", num(*value));
        }
    }

    /// A [`LogHistogram`] as a Prometheus histogram. Recorded values
    /// are multiplied by `scale` (e.g. `1e-9` for nanoseconds →
    /// seconds). Only non-empty buckets are emitted — `le` edges are
    /// cumulative and end at `+Inf`, so sparse emission stays valid.
    pub fn histogram(&mut self, name: &str, help: &str, hist: &LogHistogram, scale: f64) {
        self.histogram_family(name, help, &[("", hist)], scale);
    }

    /// A histogram family, one series per `(label, histogram)` pair
    /// (`label` a full `key="value"` clause, or `""` for none).
    pub fn histogram_family(
        &mut self,
        name: &str,
        help: &str,
        series: &[(&str, &LogHistogram)],
        scale: f64,
    ) {
        if !self.claim(name) {
            return;
        }
        self.header(name, help, "histogram");
        for (label, hist) in series {
            let sep = if label.is_empty() { "" } else { "," };
            let mut cumulative = 0u64;
            for (edge, count) in hist.nonzero_buckets() {
                cumulative += count;
                let _ = writeln!(
                    self.out,
                    "{name}_bucket{{{label}{sep}le=\"{}\"}} {cumulative}",
                    num(edge as f64 * scale)
                );
            }
            let _ = writeln!(
                self.out,
                "{name}_bucket{{{label}{sep}le=\"+Inf\"}} {}",
                hist.count()
            );
            let sum_label = if label.is_empty() {
                String::new()
            } else {
                format!("{{{label}}}")
            };
            let _ = writeln!(
                self.out,
                "{name}_sum{sum_label} {}",
                num(hist.sum() as f64 * scale)
            );
            let _ = writeln!(self.out, "{name}_count{sum_label} {}", hist.count());
        }
    }

    /// The finished exposition document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Sample-value formatting: integers without a fraction, everything
/// else through Rust's shortest-roundtrip float rendering.
fn num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal exposition-format lint: `# TYPE` precedes samples of
    /// its metric, no metric family appears twice, every sample line
    /// is `name{labels} value`.
    fn lint(text: &str) {
        let mut typed: Vec<String> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split(' ').next().expect("type name").to_string();
                assert!(!typed.contains(&name), "duplicate family {name}");
                typed.push(name);
            } else if !line.starts_with('#') && !line.is_empty() {
                let name_part = line
                    .split([' ', '{'])
                    .next()
                    .expect("sample name")
                    .to_string();
                let family = typed.iter().any(|t| {
                    name_part == *t
                        || name_part == format!("{t}_bucket")
                        || name_part == format!("{t}_sum")
                        || name_part == format!("{t}_count")
                });
                assert!(family, "sample {name_part} before its # TYPE");
                let value = line.rsplit(' ').next().expect("value");
                assert!(
                    value.parse::<f64>().is_ok(),
                    "unparseable sample value {value:?} in {line:?}"
                );
            }
        }
    }

    #[test]
    fn counters_and_gauges_have_headers_before_samples() {
        let mut w = PromWriter::new();
        w.counter("kdv_http_requests_total", "Requests routed.", 42.0);
        w.gauge("kdv_cache_bytes_used", "Bytes resident.", 1.5e6);
        w.counter_family(
            "kdv_http_responses_total",
            "Responses by class.",
            &[
                ("class=\"ok\"".to_string(), 40.0),
                ("class=\"not_found\"".to_string(), 2.0),
            ],
        );
        let text = w.finish();
        lint(&text);
        assert!(text.contains("# TYPE kdv_http_requests_total counter"));
        assert!(text.contains("kdv_http_requests_total 42"));
        assert!(text.contains("kdv_http_responses_total{class=\"ok\"} 40"));
        assert!(text.contains("# TYPE kdv_cache_bytes_used gauge"));
        assert!(text.contains("kdv_cache_bytes_used 1500000"));
    }

    #[test]
    fn gauge_families_emit_one_sample_per_label() {
        let mut w = PromWriter::new();
        w.gauge_family(
            "kdv_router_shard_up",
            "Shard health by index.",
            &[
                ("shard=\"0\"".to_string(), 1.0),
                ("shard=\"1\"".to_string(), 0.0),
            ],
        );
        let text = w.finish();
        lint(&text);
        assert!(text.contains("# TYPE kdv_router_shard_up gauge"));
        assert!(text.contains("kdv_router_shard_up{shard=\"0\"} 1"));
        assert!(text.contains("kdv_router_shard_up{shard=\"1\"} 0"));
    }

    #[test]
    fn duplicate_names_are_dropped_not_doubled() {
        let mut w = PromWriter::new();
        w.counter("kdv_x_total", "First registration wins.", 1.0);
        w.counter("kdv_x_total", "Second is dropped.", 2.0);
        let text = w.finish();
        lint(&text);
        assert_eq!(text.matches("# TYPE kdv_x_total").count(), 1);
        assert!(text.contains("kdv_x_total 1"));
        assert!(!text.contains("kdv_x_total 2"));
    }

    #[test]
    fn histograms_emit_cumulative_buckets_and_inf() {
        let mut h = LogHistogram::new();
        for v in [100u64, 200, 200, 3_000_000] {
            h.record(v);
        }
        let mut w = PromWriter::new();
        // Values are nanoseconds; exposition must be seconds.
        w.histogram("kdv_render_pixel_seconds", "Per-pixel latency.", &h, 1e-9);
        let text = w.finish();
        lint(&text);
        assert!(text.contains("# TYPE kdv_render_pixel_seconds histogram"));
        assert!(text.contains("kdv_render_pixel_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("kdv_render_pixel_seconds_count 4"));
        // Buckets are cumulative: the one holding the two 200s reads 3.
        let two_hundreds = text
            .lines()
            .find(|l| l.contains("_bucket") && l.ends_with(" 3"))
            .expect("cumulative bucket of 3");
        let le: f64 = two_hundreds
            .split("le=\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .expect("le edge")
            .parse()
            .expect("numeric le");
        // 200 ns scaled to seconds, inside the ≤6.25%-wide bucket.
        assert!(
            (200e-9..220e-9).contains(&le),
            "got {two_hundreds} (le = {le})"
        );
        // The sum is in seconds.
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("kdv_render_pixel_seconds_sum"))
            .expect("sum line");
        let sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!((sum - 3_000_500e-9).abs() < 1e-12, "sum {sum}");
    }

    #[test]
    fn histogram_families_carry_labels_on_every_sample() {
        let mut a = LogHistogram::new();
        a.record(50);
        let mut b = LogHistogram::new();
        b.record(7_000);
        let mut w = PromWriter::new();
        w.histogram_family(
            "kdv_stage_duration_seconds",
            "Per-stage latency.",
            &[("stage=\"render\"", &a), ("stage=\"encode\"", &b)],
            1e-6,
        );
        let text = w.finish();
        lint(&text);
        assert!(text.contains("kdv_stage_duration_seconds_bucket{stage=\"render\",le=\"+Inf\"} 1"));
        assert!(text.contains("kdv_stage_duration_seconds_count{stage=\"encode\"} 1"));
        assert_eq!(text.matches("# TYPE kdv_stage_duration_seconds").count(), 1);
    }
}

//! Serving-side counters: tile-cache and HTTP traffic telemetry.
//!
//! The render-side aggregates in [`crate::metrics`] are single-writer
//! by design (one render thread, or per-thread siblings merged in band
//! order). A long-running tile server is different: many worker
//! threads bump the same counters concurrently and a scrape
//! (`GET /metrics`) must read them without stopping the world. Both
//! counter blocks here are plain `AtomicU64` bundles — lock-free,
//! monotone, and `snapshot()`-able into ordinary structs that feed the
//! [`crate::json`] writer.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::{self, Value};

/// Lock-free tile-cache counters (hits, misses, insertions, evictions).
///
/// Byte-level *occupancy* lives in the cache itself (it needs the
/// eviction lock anyway); everything monotone lives here so the hot
/// read path never takes a lock just to count.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
}

/// One consistent-enough reading of [`CacheCounters`] (each field is
/// atomically read; the set is not a single atomic snapshot, which is
/// fine for monotone counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed (and typically triggered a render).
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Total payload bytes evicted.
    pub evicted_bytes: u64,
}

impl CacheCounters {
    /// Records a cache hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cache miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an insertion.
    pub fn insert(&self) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one eviction of a `bytes`-sized payload.
    pub fn evict(&self, bytes: u64) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.evicted_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Reads every counter.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
        }
    }
}

impl CacheSnapshot {
    /// Hit fraction over all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// JSON object with every counter plus the derived hit rate.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("hits", json::num_u(self.hits)),
            ("misses", json::num_u(self.misses)),
            ("hit_rate", json::num_f(self.hit_rate())),
            ("insertions", json::num_u(self.insertions)),
            ("evictions", json::num_u(self.evictions)),
            ("evicted_bytes", json::num_u(self.evicted_bytes)),
        ])
    }
}

/// Lock-free HTTP traffic counters, bumped by every worker thread.
#[derive(Debug, Default)]
pub struct HttpCounters {
    requests: AtomicU64,
    ok: AtomicU64,
    degraded: AtomicU64,
    bad_request: AtomicU64,
    not_found: AtomicU64,
    rejected: AtomicU64,
    internal_error: AtomicU64,
    bytes_sent: AtomicU64,
}

/// One reading of [`HttpCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpSnapshot {
    /// Requests that reached routing (parsed request line).
    pub requests: u64,
    /// `200` responses, including degraded ones.
    pub ok: u64,
    /// `200` responses that carried the `Degraded` marker (a budget
    /// ran out and the tile holds certified-midpoint pixels).
    pub degraded: u64,
    /// `400` responses (malformed tile address or request).
    pub bad_request: u64,
    /// `404` responses.
    pub not_found: u64,
    /// `429` responses (admission control: queue full).
    pub rejected: u64,
    /// `500` responses (render errors that were not the client's
    /// fault).
    pub internal_error: u64,
    /// Response payload bytes written (bodies only, not headers).
    pub bytes_sent: u64,
}

impl HttpCounters {
    /// Records a routed request.
    pub fn request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `200`; `degraded` marks a budget-degraded tile.
    pub fn ok(&self, degraded: bool) {
        self.ok.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a `400`.
    pub fn bad_request(&self) {
        self.bad_request.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `404`.
    pub fn not_found(&self) {
        self.not_found.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `429` admission rejection.
    pub fn rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `500`.
    pub fn internal_error(&self) {
        self.internal_error.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds response body bytes.
    pub fn sent(&self, bytes: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Reads every counter.
    pub fn snapshot(&self) -> HttpSnapshot {
        HttpSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            bad_request: self.bad_request.load(Ordering::Relaxed),
            not_found: self.not_found.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            internal_error: self.internal_error.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
        }
    }
}

impl HttpSnapshot {
    /// JSON object with every counter.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("requests", json::num_u(self.requests)),
            ("ok", json::num_u(self.ok)),
            ("degraded", json::num_u(self.degraded)),
            ("bad_request", json::num_u(self.bad_request)),
            ("not_found", json::num_u(self.not_found)),
            ("rejected", json::num_u(self.rejected)),
            ("internal_error", json::num_u(self.internal_error)),
            ("bytes_sent", json::num_u(self.bytes_sent)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cache_counters_accumulate_and_snapshot() {
        let c = CacheCounters::default();
        c.hit();
        c.hit();
        c.miss();
        c.insert();
        c.evict(100);
        c.evict(50);
        let s = c.snapshot();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 1);
        assert_eq!(s.evictions, 2);
        assert_eq!(s.evicted_bytes, 150);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn http_counters_accumulate_and_export_json() {
        let c = HttpCounters::default();
        c.request();
        c.request();
        c.ok(false);
        c.ok(true);
        c.bad_request();
        c.rejected();
        c.sent(1024);
        let s = c.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.ok, 2);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.bad_request, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.bytes_sent, 1024);

        let doc = s.to_json();
        let back = crate::json::parse(&doc.render()).expect("parses");
        assert_eq!(back.get("ok").and_then(Value::as_f64), Some(2.0));
        assert_eq!(back.get("degraded").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn counters_survive_concurrent_hammering() {
        let c = Arc::new(CacheCounters::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.hit();
                    c.miss();
                    c.evict(3);
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        let s = c.snapshot();
        assert_eq!(s.hits, 40_000);
        assert_eq!(s.misses, 40_000);
        assert_eq!(s.evicted_bytes, 120_000);
    }
}

//! Snapshot-store telemetry: catalog loads, builds, and failures.
//!
//! The serving catalog materializes datasets two ways — loading a KDVS
//! snapshot or rebuilding from CSV — and the entire value of the store
//! is the gap between those two paths. `StoreCounters` makes that gap
//! observable in production: monotone lock-free counters for the event
//! counts (same design as [`crate::serve`]) plus mutex-guarded
//! [`LogHistogram`]s for the load/build latencies. Loads and builds
//! happen per *dataset*, not per request, so a mutex on the histograms
//! costs nothing measurable while keeping the bucket updates exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hist::LogHistogram;
use crate::json::{self, Value};

/// Telemetry for a snapshot-backed dataset catalog.
#[derive(Debug, Default)]
pub struct StoreCounters {
    loads: AtomicU64,
    builds: AtomicU64,
    load_failures: AtomicU64,
    checksum_failures: AtomicU64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    load_ns: Mutex<LogHistogram>,
    build_ns: Mutex<LogHistogram>,
}

/// One reading of [`StoreCounters`], histograms included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Datasets materialized from a snapshot file.
    pub loads: u64,
    /// Datasets materialized by building from raw data.
    pub builds: u64,
    /// Failed materializations of either kind (the dataset stayed
    /// unavailable; checksum failures are counted separately *and*
    /// here).
    pub load_failures: u64,
    /// Loads rejected specifically for CRC mismatches — the corruption
    /// alarm an operator should page on.
    pub checksum_failures: u64,
    /// Idle datasets evicted under the catalog byte budget.
    pub evictions: u64,
    /// Total estimated bytes released by evictions.
    pub evicted_bytes: u64,
    /// Wall-clock nanoseconds per snapshot load.
    pub load_ns: LogHistogram,
    /// Wall-clock nanoseconds per from-scratch build.
    pub build_ns: LogHistogram,
}

impl StoreCounters {
    /// Records a successful snapshot load taking `ns` nanoseconds.
    pub fn load(&self, ns: u64) {
        self.loads.fetch_add(1, Ordering::Relaxed);
        self.load_ns.lock().expect("histogram lock").record(ns);
    }

    /// Records a successful from-source build taking `ns` nanoseconds.
    pub fn build(&self, ns: u64) {
        self.builds.fetch_add(1, Ordering::Relaxed);
        self.build_ns.lock().expect("histogram lock").record(ns);
    }

    /// Records a failed materialization; `checksum` marks CRC
    /// mismatches (counted in both failure columns).
    pub fn load_failure(&self, checksum: bool) {
        self.load_failures.fetch_add(1, Ordering::Relaxed);
        if checksum {
            self.checksum_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the eviction of an idle dataset holding ~`bytes`.
    pub fn evict(&self, bytes: u64) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.evicted_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Reads every counter and clones the histograms.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            loads: self.loads.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            load_failures: self.load_failures.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            load_ns: self.load_ns.lock().expect("histogram lock").clone(),
            build_ns: self.build_ns.lock().expect("histogram lock").clone(),
        }
    }
}

impl StoreSnapshot {
    /// JSON object with counters and histogram summaries.
    pub fn to_json(&self) -> Value {
        let hist_json = |h: &LogHistogram| {
            Value::obj(vec![
                ("count", json::num_u(h.count())),
                ("mean", json::num_f(h.mean())),
                ("p50_le", json::num_u(h.quantile_le(0.5))),
                ("p99_le", json::num_u(h.quantile_le(0.99))),
                ("max", json::num_u(h.max())),
            ])
        };
        Value::obj(vec![
            ("loads", json::num_u(self.loads)),
            ("builds", json::num_u(self.builds)),
            ("load_failures", json::num_u(self.load_failures)),
            ("checksum_failures", json::num_u(self.checksum_failures)),
            ("evictions", json::num_u(self.evictions)),
            ("evicted_bytes", json::num_u(self.evicted_bytes)),
            ("load_ns", hist_json(&self.load_ns)),
            ("build_ns", hist_json(&self.build_ns)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_histograms_separate_load_from_build() {
        let c = StoreCounters::default();
        c.load(1_000);
        c.load(2_000);
        c.build(1_000_000);
        c.load_failure(true);
        c.load_failure(false);
        c.evict(4096);
        let s = c.snapshot();
        assert_eq!(s.loads, 2);
        assert_eq!(s.builds, 1);
        assert_eq!(s.load_failures, 2);
        assert_eq!(s.checksum_failures, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_bytes, 4096);
        assert_eq!(s.load_ns.count(), 2);
        assert_eq!(s.build_ns.count(), 1);
        assert!(s.build_ns.mean() > s.load_ns.mean());
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let c = StoreCounters::default();
        c.load(500);
        c.build(10_000);
        c.load_failure(true);
        let doc = c.snapshot().to_json();
        let back = crate::json::parse(&doc.render()).expect("parses");
        assert_eq!(back.get("loads").and_then(Value::as_f64), Some(1.0));
        assert_eq!(
            back.get("checksum_failures").and_then(Value::as_f64),
            Some(1.0)
        );
        assert!(back
            .get("load_ns")
            .and_then(|h| h.get("count"))
            .and_then(Value::as_f64)
            .is_some());
    }

    #[test]
    fn concurrent_hammering_loses_nothing() {
        let c = Arc::new(StoreCounters::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000 {
                    c.load(i + 1);
                    c.evict(2);
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        let s = c.snapshot();
        assert_eq!(s.loads, 8_000);
        assert_eq!(s.load_ns.count(), 8_000);
        assert_eq!(s.evicted_bytes, 16_000);
    }
}

//! Deterministic fault injection for chaos testing.
//!
//! The robustness claims of this workspace — "the engine terminates
//! with correct-or-flagged output under faults" — are only claims until
//! something *injects* those faults on demand. [`FaultProbe`] is a
//! [`Probe`] that does exactly that, deterministically from a seed, at
//! three points of increasing severity:
//!
//! * **forced resyncs** ([`Probe::force_resync`]) — semantically
//!   idempotent: a resync replaces incrementally-tracked bound sums
//!   with freshly recomputed ones, so results may shift by a few ulps
//!   of accumulated rounding but must stay deterministic and inside
//!   the ε contract; proves the recovery path is exercised and
//!   harmless,
//! * **slow nodes** — injected sleeps on heap pops, simulating a
//!   thread descheduled or an index page faulting in; proves deadlines
//!   degrade renders instead of hanging them,
//! * **poisoned bound evaluations** — a forced panic after the n-th
//!   node-bound evaluation, simulating a hard bug in a bound kernel;
//!   proves the parallel renderer's panic isolation retries the band
//!   instead of aborting the process.
//!
//! Determinism matters: a chaos test that fails must replay. All
//! schedule decisions derive from the seed via SplitMix64, so the same
//! `FaultPlan` injects the same faults at the same events every run.

use kdv_core::engine::Probe;
use std::time::Duration;

/// Which faults to inject, and how often (all counts are in events of
/// the respective kind; `None` disables that fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the fault schedule (phase offsets).
    pub seed: u64,
    /// Force a resync every n-th consultation.
    pub resync_every: Option<u64>,
    /// Sleep on every n-th heap pop (a "slow node").
    pub slow_pop_every: Option<u64>,
    /// How long each injected slow pop sleeps (default 0: the schedule
    /// is exercised without actually burning wall time).
    pub slow_pop_sleep_us: u64,
    /// Panic after this many node-bound evaluations (a "poisoned"
    /// bound kernel). The panic message starts with
    /// [`POISON_MSG`].
    pub poison_bound_after: Option<u64>,
}

/// Panic message prefix of an injected poisoned-bound fault, so tests
/// can tell injected panics from real bugs.
pub const POISON_MSG: &str = "injected fault: poisoned bound evaluation";

/// SplitMix64 step — the standard 64-bit seed scrambler; plenty for
/// deriving fault phases and far too weak for anything else.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Probe`] injecting the faults of a [`FaultPlan`]. Counters of
/// injected events are public so tests can assert the faults actually
/// fired (a chaos test whose fault never triggers proves nothing).
#[derive(Debug, Clone)]
pub struct FaultProbe {
    plan: FaultPlan,
    /// Phase offset of the forced-resync schedule, in `[0, n)`.
    resync_phase: u64,
    /// Phase offset of the slow-pop schedule, in `[0, n)`.
    slow_phase: u64,
    consultations: u64,
    pops: u64,
    bounds: u64,
    /// Resyncs this probe forced.
    pub forced_resyncs: u64,
    /// Sleeps this probe injected.
    pub injected_sleeps: u64,
}

impl FaultProbe {
    /// Builds the probe, deriving schedule phases from the plan's seed.
    pub fn new(plan: FaultPlan) -> Self {
        let mut s = plan.seed;
        let resync_phase = plan.resync_every.map_or(0, |n| splitmix64(&mut s) % n);
        let slow_phase = plan.slow_pop_every.map_or(0, |n| splitmix64(&mut s) % n);
        Self {
            plan,
            resync_phase,
            slow_phase,
            consultations: 0,
            pops: 0,
            bounds: 0,
            forced_resyncs: 0,
            injected_sleeps: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }
}

impl Probe for FaultProbe {
    fn heap_pop(&mut self) {
        self.pops += 1;
        if let Some(n) = self.plan.slow_pop_every {
            if self.pops % n == self.slow_phase {
                self.injected_sleeps += 1;
                if self.plan.slow_pop_sleep_us > 0 {
                    std::thread::sleep(Duration::from_micros(self.plan.slow_pop_sleep_us));
                }
            }
        }
    }

    fn node_bound(&mut self) {
        self.bounds += 1;
        if let Some(after) = self.plan.poison_bound_after {
            if self.bounds > after {
                panic!("{POISON_MSG} (bound evaluation {})", self.bounds);
            }
        }
    }

    fn force_resync(&mut self) -> bool {
        self.consultations += 1;
        if let Some(n) = self.plan.resync_every {
            if self.consultations % n == self.resync_phase {
                self.forced_resyncs += 1;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_for_a_seed() {
        let plan = FaultPlan {
            seed: 42,
            resync_every: Some(3),
            slow_pop_every: Some(5),
            ..FaultPlan::default()
        };
        let mut a = FaultProbe::new(plan);
        let mut b = FaultProbe::new(plan);
        let fires_a: Vec<bool> = (0..50).map(|_| a.force_resync()).collect();
        let fires_b: Vec<bool> = (0..50).map(|_| b.force_resync()).collect();
        assert_eq!(fires_a, fires_b, "same seed, same schedule");
        let fired = fires_a.iter().filter(|&&f| f).count() as u64;
        assert_eq!(a.forced_resyncs, fired);
        assert!(fired >= 16, "every 3rd of 50 consultations fires");
        // Different seeds shift the phase. Any single pair can collide
        // (the phase is splitmix64(seed) mod 3), so assert that *some*
        // nearby seed lands on a different schedule.
        let shifted = (43..53).any(|seed| {
            let mut c = FaultProbe::new(FaultPlan { seed, ..plan });
            let fires_c: Vec<bool> = (0..50).map(|_| c.force_resync()).collect();
            fires_c != fires_a
        });
        assert!(shifted, "no seed in 43..53 shifted the phase");
    }

    #[test]
    fn slow_pops_fire_on_schedule() {
        let mut p = FaultProbe::new(FaultPlan {
            seed: 7,
            slow_pop_every: Some(4),
            slow_pop_sleep_us: 0, // schedule only, no wall time
            ..FaultPlan::default()
        });
        for _ in 0..40 {
            p.heap_pop();
        }
        assert_eq!(p.injected_sleeps, 10, "every 4th of 40 pops");
    }

    #[test]
    fn poisoned_bound_panics_after_threshold() {
        let mut p = FaultProbe::new(FaultPlan {
            seed: 1,
            poison_bound_after: Some(3),
            ..FaultPlan::default()
        });
        for _ in 0..3 {
            p.node_bound(); // within budget
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.node_bound()))
            .expect_err("4th evaluation must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.starts_with(POISON_MSG), "unexpected message {msg:?}");
    }

    #[test]
    fn disabled_faults_never_fire() {
        let mut p = FaultProbe::new(FaultPlan::default());
        for _ in 0..100 {
            p.heap_pop();
            p.node_bound();
            assert!(!p.force_resync());
        }
        assert_eq!((p.forced_resyncs, p.injected_sleeps), (0, 0));
    }
}

//! Log-linear-bucketed histograms.
//!
//! Per-pixel refinement effort spans four orders of magnitude on real
//! renders (empty sky vs. hotspot core), so linear buckets either
//! saturate or waste space — but pure log₂ buckets proved too coarse
//! the other way: at the millisecond range a single bucket spans
//! ~134 ms, wide enough that a served benchmark reported p50 == p99.
//! The shape here is **log-linear** (HDR-histogram style): each
//! power-of-two octave is split into 16 equal sub-buckets, bounding
//! the relative quantization error at 1/16 = 6.25% everywhere while
//! still covering all of `u64` in under a thousand fixed slots.
//!
//! Layout: values `0..16` get exact single-value buckets `0..16`
//! (their octaves are narrower than 16 slots); a value `v ≥ 16` with
//! `e = ⌊log₂ v⌋` lands in octave `e`, sub-bucket `(v >> (e−4)) & 15`.

/// Exact single-value buckets below the first split octave.
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per power-of-two octave (16 → ≤ 6.25% relative error).
const SUB_BUCKETS: usize = 16;
/// log₂ of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 4;
/// Total bucket count: 16 exact + 16 per octave for octaves 4..=63.
const NUM_BUCKETS: usize = LINEAR_MAX as usize + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Fixed-shape log-linear histogram over `u64` values.
///
/// 976 buckets cover the whole `u64` range at ≤ 6.25% relative error;
/// `sum`/`max` ride along so means and extremes survive aggregation
/// without a second pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index of a value: exact below 16, else octave
    /// `e = ⌊log₂ v⌋` sliced into 16 equal sub-buckets.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v < LINEAR_MAX {
            return v as usize;
        }
        let e = (u64::BITS - 1 - v.leading_zeros()) as usize;
        let m = ((v >> (e as u32 - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        LINEAR_MAX as usize + (e - SUB_BITS as usize) * SUB_BUCKETS + m
    }

    /// Inclusive upper edge of bucket `b` (`0`, `1`, …, `15`, `16`,
    /// …, `31`, `33`, `35`, …); the last bucket ends at `u64::MAX`.
    #[inline]
    pub fn bucket_le(b: usize) -> u64 {
        if b < LINEAR_MAX as usize {
            return b as u64;
        }
        let rel = b - LINEAR_MAX as usize;
        let e = (rel / SUB_BUCKETS) as u32 + SUB_BITS;
        let m = (rel % SUB_BUCKETS) as u64;
        let step = 1u64 << (e - SUB_BITS);
        // lower + step − 1, summed in an order that cannot overflow
        // even in the top octave (where it lands exactly on u64::MAX).
        (1u64 << e) + m * step + (step - 1)
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(inclusive_upper_edge, count)`, in
    /// ascending edge order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_le(b), c))
    }

    /// Smallest value `v` such that at least `q` (in `[0, 1]`) of the
    /// recorded mass lies in buckets with edge ≤ `v` — a bucket-upper-
    /// edge quantile, biased at most 6.25% high (0 when empty).
    pub fn quantile_le(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_le(b).min(self.max);
            }
        }
        self.max
    }

    /// Adds another histogram's mass (per-thread merge).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..32u64 {
            // Octaves up to 2^5 have ≤ 16 values, so every value below
            // 32 is its own bucket and the edge is the value itself.
            assert_eq!(LogHistogram::bucket_of(v), v as usize);
            assert_eq!(LogHistogram::bucket_le(v as usize), v);
        }
    }

    #[test]
    fn buckets_split_each_octave_sixteen_ways() {
        // v = 100: octave 6 (64..128, step 4), sub-bucket 9 → 100..104.
        let b = LogHistogram::bucket_of(100);
        assert_eq!(LogHistogram::bucket_of(103), b);
        assert_ne!(LogHistogram::bucket_of(104), b);
        assert_eq!(LogHistogram::bucket_le(b), 103);
        // Octave boundaries land on sub-bucket 0.
        assert_eq!(
            LogHistogram::bucket_of(1024),
            LogHistogram::bucket_of(1024 + 63)
        );
        assert_ne!(LogHistogram::bucket_of(1023), LogHistogram::bucket_of(1024));
        // The top bucket's edge is exactly u64::MAX.
        assert_eq!(LogHistogram::bucket_le(NUM_BUCKETS - 1), u64::MAX);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // Every value's bucket edge overshoots by at most 1/16.
        for shift in 0..63u32 {
            for nudge in [0u64, 1, 3] {
                let v = (1u64 << shift).saturating_add(nudge * (1 << shift) / 7);
                let le = LogHistogram::bucket_le(LogHistogram::bucket_of(v));
                assert!(le >= v, "edge below value for {v}");
                assert!(
                    (le - v) as f64 <= v as f64 / 16.0 + 1.0,
                    "edge {le} too far above {v}"
                );
            }
        }
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 5, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 111);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.2).abs() < 1e-12);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        // 0, 1, and 5 are exact; 100 sits in [100, 103].
        assert_eq!(buckets, vec![(0, 1), (1, 1), (5, 2), (103, 1)]);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let values_a = [3u64, 9, 0, 77];
        let values_b = [1u64, 1, 500_000];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in values_a {
            a.record(v);
            all.record(v);
        }
        for v in values_b {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn quantile_edges_bracket_the_distribution() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_le(1.0), 100); // capped at the true max
        let p50 = h.quantile_le(0.5);
        assert!((50..=53).contains(&p50), "p50 = {p50}");
        assert!(h.quantile_le(0.0) <= h.quantile_le(1.0));
        assert_eq!(LogHistogram::new().quantile_le(0.5), 0);
    }

    #[test]
    fn millisecond_range_quantiles_are_distinguishable() {
        // The regression this shape fixes: with log₂ buckets, 150 ms
        // and 300 ms (in µs) shared one bucket and p50 == p99.
        let mut h = LogHistogram::new();
        for _ in 0..98 {
            h.record(150_000);
        }
        h.record(300_000);
        h.record(310_000);
        let p50 = h.quantile_le(0.5);
        let p99 = h.quantile_le(0.99);
        assert!(p50 < p99, "p50 {p50} must split from p99 {p99}");
        assert!((p50 as f64) < 150_000.0 * 1.0625 + 1.0);
        assert!((p99 as f64) < 310_000.0 * 1.0625 + 1.0);
    }
}

//! Power-of-two-bucketed histograms.
//!
//! Per-pixel refinement effort spans four orders of magnitude on real
//! renders (empty sky vs. hotspot core), so linear buckets either
//! saturate or waste space. Log buckets give a stable, resolution-free
//! shape: bucket `b ≥ 1` covers values in `[2^(b−1), 2^b − 1]`, bucket
//! 0 counts exact zeros.

/// Fixed-shape log₂ histogram over `u64` values.
///
/// 65 buckets cover the whole `u64` range; `sum`/`max` ride along so
/// means and extremes survive aggregation without a second pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index of a value: 0 for 0, else `⌊log₂ v⌋ + 1`.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Inclusive upper edge of bucket `b` (`0`, `1`, `3`, `7`, …).
    #[inline]
    pub fn bucket_le(b: usize) -> u64 {
        if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(inclusive_upper_edge, count)`, in
    /// ascending edge order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_le(b), c))
    }

    /// Smallest value `v` such that at least `q` (in `[0, 1]`) of the
    /// recorded mass lies in buckets with edge ≤ `v` — a bucket-upper-
    /// edge quantile, biased at most one bucket high (0 when empty).
    pub fn quantile_le(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_le(b).min(self.max);
            }
        }
        self.max
    }

    /// Adds another histogram's mass (per-thread merge).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_ranges() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(1023), 10);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
        assert_eq!(LogHistogram::bucket_le(0), 0);
        assert_eq!(LogHistogram::bucket_le(3), 7);
        assert_eq!(LogHistogram::bucket_le(64), u64::MAX);
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 5, 5, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 111);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 22.2).abs() < 1e-12);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        // 0 → edge 0; 1 → edge 1; 5,5 → edge 7; 100 → edge 127.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (7, 2), (127, 1)]);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let values_a = [3u64, 9, 0, 77];
        let values_b = [1u64, 1, 500_000];
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for v in values_a {
            a.record(v);
            all.record(v);
        }
        for v in values_b {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn quantile_edges_bracket_the_distribution() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_le(1.0), 100); // capped at the true max
        assert!(h.quantile_le(0.5) >= 50);
        assert!(h.quantile_le(0.0) <= h.quantile_le(1.0));
        assert_eq!(LogHistogram::new().quantile_le(0.5), 0);
    }
}

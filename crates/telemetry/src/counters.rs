//! Raw refinement-event counters.

use kdv_core::engine::{Probe, RefineStats};

/// Monotone counters over the five refinement events, accumulated
/// across any number of queries.
///
/// Implements [`Probe`], so an `EventCounters` can be handed directly
/// to `RefineEvaluator::eval_eps_with` / `eval_tau_with` (typically as
/// `&mut metrics.events`, reused across a whole render).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Nodes popped from the refinement priority queue.
    pub heap_pops: u64,
    /// Node lower/upper bound evaluations.
    pub node_bounds: u64,
    /// Leaves refined to their exact sums.
    pub leaf_scans: u64,
    /// Point-kernel evaluations inside exact leaf scans.
    pub point_evals: u64,
    /// Float rounding-error resync passes.
    pub resyncs: u64,
}

impl Probe for EventCounters {
    #[inline]
    fn heap_pop(&mut self) {
        self.heap_pops += 1;
    }

    #[inline]
    fn node_bound(&mut self) {
        self.node_bounds += 1;
    }

    #[inline]
    fn leaf_scan(&mut self, points: usize) {
        self.leaf_scans += 1;
        self.point_evals += points as u64;
    }

    #[inline]
    fn resync(&mut self) {
        self.resyncs += 1;
    }
}

impl EventCounters {
    /// Adds one query's [`RefineStats`] — the counter-level equivalent
    /// of having probed that query.
    pub fn add_stats(&mut self, s: &RefineStats) {
        self.heap_pops += s.iterations as u64;
        self.node_bounds += s.node_bounds as u64;
        self.leaf_scans += s.exact_leaves as u64;
        self.point_evals += s.point_evals as u64;
        self.resyncs += s.resyncs as u64;
    }

    /// Adds another accumulator's counts (per-thread merge).
    pub fn merge(&mut self, other: &EventCounters) {
        self.heap_pops += other.heap_pops;
        self.node_bounds += other.node_bounds;
        self.leaf_scans += other.leaf_scans;
        self.point_evals += other.point_evals;
        self.resyncs += other.resyncs;
    }

    /// Total counted operations (the render-level analogue of
    /// [`RefineStats::total_work`]).
    pub fn total_work(&self) -> u64 {
        self.heap_pops + self.node_bounds + self.point_evals + self.resyncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_hooks_accumulate() {
        let mut c = EventCounters::default();
        c.heap_pop();
        c.heap_pop();
        c.node_bound();
        c.leaf_scan(10);
        c.leaf_scan(3);
        c.resync();
        assert_eq!(c.heap_pops, 2);
        assert_eq!(c.node_bounds, 1);
        assert_eq!(c.leaf_scans, 2);
        assert_eq!(c.point_evals, 13);
        assert_eq!(c.resyncs, 1);
        assert_eq!(c.total_work(), 2 + 1 + 13 + 1);
    }

    #[test]
    fn add_stats_matches_probing_the_same_events() {
        let stats = RefineStats {
            iterations: 5,
            exact_leaves: 2,
            node_bounds: 7,
            point_evals: 20,
            resyncs: 1,
            ..RefineStats::default()
        };
        let mut via_stats = EventCounters::default();
        via_stats.add_stats(&stats);
        let mut via_probe = EventCounters::default();
        for _ in 0..5 {
            via_probe.heap_pop();
        }
        for _ in 0..7 {
            via_probe.node_bound();
        }
        via_probe.leaf_scan(12);
        via_probe.leaf_scan(8);
        via_probe.resync();
        assert_eq!(via_stats, via_probe);
    }

    #[test]
    fn merge_is_componentwise_addition() {
        let a = EventCounters {
            heap_pops: 1,
            node_bounds: 2,
            leaf_scans: 3,
            point_evals: 4,
            resyncs: 5,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            EventCounters {
                heap_pops: 2,
                node_bounds: 4,
                leaf_scans: 6,
                point_evals: 8,
                resyncs: 10,
            }
        );
    }
}

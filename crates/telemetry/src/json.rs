//! Minimal JSON document model: writer *and* parser, no dependencies.
//!
//! The metrics export has to be a stable machine-readable artifact
//! (CI trend lines, notebook ingestion) without pulling serde into a
//! workspace that is deliberately dependency-free. This module carries
//! the small subset of JSON the telemetry documents need — objects,
//! arrays, strings, finite numbers, booleans, null — with a writer
//! that emits deterministic output and a parser used by tests (and any
//! downstream tool) to round-trip it.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite inputs serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace — the shape a
    /// JSON-lines stream (one record per line) requires.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

/// Convenience: an integer number value.
pub fn num_u(v: u64) -> Value {
    Value::Num(v as f64)
}

/// Convenience: a float number value.
pub fn num_f(v: f64) -> Value {
    Value::Num(v)
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (the subset this module writes, plus
/// `\uXXXX` escapes for basic-plane code points).
///
/// # Errors
/// Returns a message with a byte offset on malformed input or trailing
/// garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Advance over the longest plain run, then re-validate it
            // as UTF-8 in one shot.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 near byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            s.push(char::from_u32(cp).ok_or_else(|| {
                                format!("surrogate \\u escape at byte {}", self.pos)
                            })?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number run");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let doc = Value::obj(vec![
            ("schema", Value::Str("kdv-metrics/1".into())),
            ("pixels", num_u(19200)),
            ("wall_ms", num_f(12.75)),
            ("complete", Value::Bool(true)),
            ("nothing", Value::Null),
            (
                "histogram",
                Value::Arr(vec![
                    Value::obj(vec![("le", num_u(1)), ("count", num_u(4))]),
                    Value::obj(vec![("le", num_u(3)), ("count", num_u(9))]),
                ]),
            ),
            ("label", Value::Str("τ = µ + 0.1σ \"quoted\"\n".into())),
        ]);
        let text = doc.render();
        let back = parse(&text).expect("round-trip parse");
        assert_eq!(back, doc);
        // Integers render without a fractional part.
        assert!(text.contains("\"pixels\": 19200,"), "got:\n{text}");
        assert!(text.contains("\"wall_ms\": 12.75,"));
    }

    #[test]
    fn lookup_helpers() {
        let v = parse(r#"{"a": {"b": [1, 2.5, "x"]}, "t": true}"#).expect("parse");
        let arr = v
            .get("a")
            .and_then(|a| a.get("b"))
            .and_then(Value::as_arr)
            .expect("path");
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} garbage",
            "1.2.3",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let original = Value::Str("line1\nline2\t\"q\"\\ \u{1} µ".into());
        let back = parse(&original.render()).expect("parse");
        assert_eq!(back, original);
    }

    #[test]
    fn compact_render_is_one_line_and_roundtrips() {
        let doc = Value::obj(vec![
            ("path", Value::Str("/tiles/eps/0/0/0.png".into())),
            ("status", num_u(200)),
            ("degraded", Value::Bool(false)),
            ("stages", Value::obj(vec![("render_us", num_u(1234))])),
            ("tags", Value::Arr(vec![num_u(1), num_u(2)])),
        ]);
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "JSON-lines records are one line");
        assert!(!line.contains(": "), "no pretty separators: {line}");
        assert_eq!(parse(&line).expect("round-trip"), doc);
        assert_eq!(Value::Arr(vec![]).render_compact(), "[]");
        assert_eq!(Value::Obj(vec![]).render_compact(), "{}");
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        assert_eq!(Value::Num(f64::NAN).render().trim(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render().trim(), "null");
    }
}

//! Per-render metric aggregation.

use kdv_core::engine::RefineStats;
use kdv_core::raster::DensityGrid;

use crate::counters::EventCounters;
use crate::hist::LogHistogram;
use crate::json::{self, Value};

/// A time-to-quality checkpoint: how many pixels had final values after
/// how much elapsed time (progressive renders, paper §6 / Fig 20).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// Pixels fully evaluated at this point.
    pub pixels: u64,
    /// Wall time elapsed since the render started, in nanoseconds.
    pub elapsed_ns: u64,
}

/// Whether a render delivered its full quality contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RenderStatus {
    /// Every pixel met the query's own stop rule (ε or τ).
    #[default]
    Complete,
    /// A budget ran out (or a worker had to be retried) before every
    /// pixel converged; degraded pixels hold best-effort midpoints with
    /// certified error bounds.
    Degraded,
}

impl RenderStatus {
    /// Stable lowercase name (used in JSON and CLI output).
    pub fn as_str(self) -> &'static str {
        match self {
            RenderStatus::Complete => "complete",
            RenderStatus::Degraded => "degraded",
        }
    }
}

/// Everything one render (or one thread's share of a render) observed.
///
/// A renderer drives this in three steps: hand `&mut metrics.events`
/// to the evaluator as its [`kdv_core::engine::Probe`], call
/// [`record_pixel`](RenderMetrics::record_pixel) after each pixel, and
/// [`set_wall_ns`](RenderMetrics::set_wall_ns) once at the end.
/// Parallel renders build one sibling per thread and
/// [`merge`](RenderMetrics::merge) them in deterministic band order.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderMetrics {
    /// Raw refinement-event totals (also the render's probe).
    pub events: EventCounters,
    /// Pixels recorded.
    pub pixels: u64,
    /// Distribution of refinement iterations (heap pops) per pixel.
    pub iterations: LogHistogram,
    /// Distribution of per-pixel latency in nanoseconds. Wall-clock
    /// noise makes this the one non-deterministic field; comparisons
    /// and merge tests should use the event counters instead.
    pub latency_ns: LogHistogram,
    /// Total render wall time in nanoseconds.
    pub wall_ns: u64,
    /// Worker threads that contributed (1 for sequential renders).
    pub threads: u32,
    /// Time-to-quality checkpoints, in the order they were recorded.
    pub checkpoints: Vec<Checkpoint>,
    /// Whether every pixel met its quality contract.
    pub status: RenderStatus,
    /// Pixels cut short by a budget (best-effort midpoints).
    pub degraded_pixels: u64,
    /// Parallel bands whose worker panicked and were retried
    /// sequentially.
    pub band_retries: u32,
    /// Bound evaluations pixels *skipped* thanks to a shared tile
    /// frontier (sum of [`RefineStats::frontier_reuse`]; 0 for
    /// per-pixel renders).
    pub frontier_reuse: u64,
    /// Widest SIMD lane count any recorded pixel's leaf scans used
    /// (1 = scalar everywhere; 0 = no pixels recorded).
    pub simd_lanes: u32,
    cost_map: Option<DensityGrid>,
}

impl Default for RenderMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl RenderMetrics {
    /// Metrics without a cost map.
    pub fn new() -> Self {
        Self {
            events: EventCounters::default(),
            pixels: 0,
            iterations: LogHistogram::new(),
            latency_ns: LogHistogram::new(),
            wall_ns: 0,
            threads: 1,
            checkpoints: Vec::new(),
            status: RenderStatus::Complete,
            degraded_pixels: 0,
            band_retries: 0,
            frontier_reuse: 0,
            simd_lanes: 0,
            cost_map: None,
        }
    }

    /// Marks one pixel as budget-degraded: counted, and the render's
    /// status drops to [`RenderStatus::Degraded`].
    pub fn mark_degraded_pixel(&mut self) {
        self.degraded_pixels += 1;
        self.status = RenderStatus::Degraded;
    }

    /// Records one parallel band retried sequentially after its worker
    /// panicked. The retry recomputes the band, so the result stays
    /// correct; the event is surfaced because a panicking worker is
    /// always worth investigating.
    pub fn record_band_retry(&mut self) {
        self.band_retries += 1;
    }

    /// Metrics that additionally accumulate a `width × height` per-pixel
    /// cost map (each pixel's [`RefineStats::total_work`]).
    pub fn with_cost_map(width: u32, height: u32) -> Self {
        let mut m = Self::new();
        m.cost_map = Some(DensityGrid::zeros(width, height));
        m
    }

    /// An empty metrics object with the same cost-map configuration —
    /// what each worker thread of a parallel render starts from.
    pub fn sibling(&self) -> Self {
        let mut m = Self::new();
        if let Some(map) = &self.cost_map {
            m.cost_map = Some(DensityGrid::zeros(map.width(), map.height()));
        }
        m
    }

    /// Records one finished pixel: its iteration count into the
    /// histogram, its latency, and (when a cost map is attached) its
    /// total refinement work at `(col, row)`.
    ///
    /// Event counters are *not* touched here — they accumulate live via
    /// the probe during evaluation, so nothing is double-counted.
    pub fn record_pixel(&mut self, col: u32, row: u32, stats: &RefineStats, latency_ns: u64) {
        self.pixels += 1;
        self.iterations.record(stats.iterations as u64);
        self.latency_ns.record(latency_ns);
        self.frontier_reuse += stats.frontier_reuse as u64;
        self.simd_lanes = self.simd_lanes.max(stats.simd_lanes as u32);
        if let Some(map) = &mut self.cost_map {
            map.set(col, row, stats.total_work() as f64);
        }
    }

    /// Appends a time-to-quality checkpoint.
    pub fn checkpoint(&mut self, pixels: u64, elapsed_ns: u64) {
        self.checkpoints.push(Checkpoint { pixels, elapsed_ns });
    }

    /// Sets the total render wall time.
    pub fn set_wall_ns(&mut self, wall_ns: u64) {
        self.wall_ns = wall_ns;
    }

    /// The per-pixel cost map, if one was requested.
    pub fn cost_map(&self) -> Option<&DensityGrid> {
        self.cost_map.as_ref()
    }

    /// Mean refinement iterations per recorded pixel.
    pub fn mean_iterations(&self) -> f64 {
        self.iterations.mean()
    }

    /// Folds another thread's metrics into this one.
    ///
    /// Counters, pixel counts, and histograms add; cost maps add
    /// pixel-wise (bands are disjoint, so this is a union); checkpoints
    /// concatenate; `wall_ns` takes the max (threads ran concurrently);
    /// `threads` adds.
    ///
    /// # Panics
    /// Panics if exactly one side has a cost map, or the maps disagree
    /// on shape — siblings never do.
    pub fn merge(&mut self, other: &RenderMetrics) {
        self.events.merge(&other.events);
        self.pixels += other.pixels;
        self.iterations.merge(&other.iterations);
        self.latency_ns.merge(&other.latency_ns);
        self.wall_ns = self.wall_ns.max(other.wall_ns);
        self.threads += other.threads;
        self.checkpoints.extend_from_slice(&other.checkpoints);
        if other.status == RenderStatus::Degraded {
            self.status = RenderStatus::Degraded;
        }
        self.degraded_pixels += other.degraded_pixels;
        self.band_retries += other.band_retries;
        self.frontier_reuse += other.frontier_reuse;
        self.simd_lanes = self.simd_lanes.max(other.simd_lanes);
        match (&mut self.cost_map, &other.cost_map) {
            (None, None) => {}
            (Some(mine), Some(theirs)) => {
                assert_eq!(mine.width(), theirs.width(), "cost-map shape mismatch");
                assert_eq!(mine.height(), theirs.height(), "cost-map shape mismatch");
                for row in 0..mine.height() {
                    for col in 0..mine.width() {
                        let v = mine.get(col, row) + theirs.get(col, row);
                        mine.set(col, row, v);
                    }
                }
            }
            _ => panic!("cannot merge metrics with and without a cost map"),
        }
    }

    /// One-line human summary for `--verbose` output.
    pub fn summary(&self) -> String {
        let degraded = match self.status {
            RenderStatus::Complete => String::new(),
            RenderStatus::Degraded => format!(
                "; DEGRADED ({} px best-effort, {} band retries)",
                self.degraded_pixels, self.band_retries
            ),
        };
        format!(
            "{} px in {:.1} ms ({} thread{}): {} heap pops, {} node bounds, \
             {} leaf scans, {} point evals, {} resyncs; iters/px mean {:.1} p99 ≤ {} max {}{degraded}",
            self.pixels,
            self.wall_ns as f64 / 1e6,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.events.heap_pops,
            self.events.node_bounds,
            self.events.leaf_scans,
            self.events.point_evals,
            self.events.resyncs,
            self.mean_iterations(),
            self.iterations.quantile_le(0.99),
            self.iterations.max(),
        )
    }

    /// The full metrics document (`kdv-metrics/1` schema). `query`
    /// names what was rendered, e.g. `"eps"`, `"tau"`, `"progressive"`.
    ///
    /// The cost map appears as a summary (shape + work totals), not the
    /// raw raster — that exports separately as an image.
    pub fn to_json(&self, query: &str) -> Value {
        let hist_json = |h: &LogHistogram| {
            Value::obj(vec![
                ("count", json::num_u(h.count())),
                ("sum", json::num_u(h.sum())),
                ("max", json::num_u(h.max())),
                ("mean", json::num_f(h.mean())),
                ("p50_le", json::num_u(h.quantile_le(0.5))),
                ("p99_le", json::num_u(h.quantile_le(0.99))),
                (
                    "buckets",
                    Value::Arr(
                        h.nonzero_buckets()
                            .map(|(le, count)| {
                                Value::obj(vec![
                                    ("le", json::num_u(le)),
                                    ("count", json::num_u(count)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let cost_map = match &self.cost_map {
            None => Value::Null,
            Some(map) => {
                let total: f64 = map.values().iter().sum();
                let max = map.min_max().map_or(0.0, |(_, hi)| hi);
                Value::obj(vec![
                    ("width", json::num_u(map.width() as u64)),
                    ("height", json::num_u(map.height() as u64)),
                    ("total_work", json::num_f(total)),
                    ("max_work", json::num_f(max)),
                ])
            }
        };
        Value::obj(vec![
            ("schema", Value::Str("kdv-metrics/1".into())),
            ("query", Value::Str(query.into())),
            ("pixels", json::num_u(self.pixels)),
            ("wall_ms", json::num_f(self.wall_ns as f64 / 1e6)),
            ("threads", json::num_u(self.threads as u64)),
            ("status", Value::Str(self.status.as_str().into())),
            ("degraded_pixels", json::num_u(self.degraded_pixels)),
            ("band_retries", json::num_u(self.band_retries as u64)),
            (
                "counters",
                Value::obj(vec![
                    ("heap_pops", json::num_u(self.events.heap_pops)),
                    ("node_bounds", json::num_u(self.events.node_bounds)),
                    ("leaf_scans", json::num_u(self.events.leaf_scans)),
                    ("point_evals", json::num_u(self.events.point_evals)),
                    ("resyncs", json::num_u(self.events.resyncs)),
                    ("total_work", json::num_u(self.events.total_work())),
                    ("frontier_reuse", json::num_u(self.frontier_reuse)),
                    ("simd_lanes", json::num_u(self.simd_lanes as u64)),
                ]),
            ),
            ("iterations", hist_json(&self.iterations)),
            ("latency_ns", hist_json(&self.latency_ns)),
            (
                "checkpoints",
                Value::Arr(
                    self.checkpoints
                        .iter()
                        .map(|c| {
                            Value::obj(vec![
                                ("pixels", json::num_u(c.pixels)),
                                ("elapsed_ms", json::num_f(c.elapsed_ns as f64 / 1e6)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("cost_map", cost_map),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(iterations: usize, point_evals: usize) -> RefineStats {
        RefineStats {
            iterations,
            exact_leaves: 1,
            node_bounds: 2 * iterations,
            point_evals,
            resyncs: 0,
            ..RefineStats::default()
        }
    }

    #[test]
    fn record_pixel_fills_histograms_and_cost_map() {
        let mut m = RenderMetrics::with_cost_map(2, 2);
        m.record_pixel(0, 0, &stats(4, 10), 1_000);
        m.record_pixel(1, 1, &stats(8, 30), 2_000);
        assert_eq!(m.pixels, 2);
        assert_eq!(m.iterations.count(), 2);
        assert_eq!(m.iterations.sum(), 12);
        assert_eq!(m.latency_ns.sum(), 3_000);
        let map = m.cost_map().expect("cost map");
        assert_eq!(map.get(0, 0), stats(4, 10).total_work() as f64);
        assert_eq!(map.get(1, 1), stats(8, 30).total_work() as f64);
        assert_eq!(map.get(1, 0), 0.0);
        // Events stay untouched — they accumulate via the probe.
        assert_eq!(m.events, EventCounters::default());
    }

    #[test]
    fn merge_combines_disjoint_bands() {
        let base = RenderMetrics::with_cost_map(2, 2);
        let mut a = base.sibling();
        let mut b = base.sibling();
        a.record_pixel(0, 0, &stats(4, 10), 500);
        a.events.heap_pops = 4;
        a.wall_ns = 10;
        b.record_pixel(1, 1, &stats(6, 20), 700);
        b.events.heap_pops = 6;
        b.wall_ns = 25;
        b.checkpoint(1, 20);

        let mut merged = base;
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.pixels, 2);
        assert_eq!(merged.events.heap_pops, 10);
        assert_eq!(merged.wall_ns, 25);
        assert_eq!(merged.threads, 3); // base + two siblings
        assert_eq!(
            merged.checkpoints,
            vec![Checkpoint {
                pixels: 1,
                elapsed_ns: 20
            }]
        );
        let map = merged.cost_map().expect("cost map");
        assert_eq!(map.get(0, 0), stats(4, 10).total_work() as f64);
        assert_eq!(map.get(1, 1), stats(6, 20).total_work() as f64);
    }

    #[test]
    #[should_panic(expected = "cost map")]
    fn merge_rejects_mismatched_cost_map_presence() {
        let mut a = RenderMetrics::with_cost_map(2, 2);
        let b = RenderMetrics::new();
        a.merge(&b);
    }

    #[test]
    fn json_document_roundtrips_and_has_counters() {
        let mut m = RenderMetrics::with_cost_map(2, 1);
        m.record_pixel(0, 0, &stats(3, 12), 1_500);
        m.record_pixel(1, 0, &stats(5, 40), 2_500);
        m.events.add_stats(&stats(3, 12));
        m.events.add_stats(&stats(5, 40));
        m.set_wall_ns(4_000_000);
        m.checkpoint(2, 4_000_000);

        let doc = m.to_json("eps");
        let text = doc.render();
        let back = crate::json::parse(&text).expect("metrics JSON parses");
        assert_eq!(back, doc);
        assert_eq!(
            back.get("schema").and_then(Value::as_str),
            Some("kdv-metrics/1")
        );
        assert_eq!(back.get("pixels").and_then(Value::as_f64), Some(2.0));
        let counters = back.get("counters").expect("counters");
        assert_eq!(counters.get("heap_pops").and_then(Value::as_f64), Some(8.0));
        assert_eq!(
            counters.get("point_evals").and_then(Value::as_f64),
            Some(52.0)
        );
        let cost = back.get("cost_map").expect("cost map summary");
        assert_eq!(cost.get("width").and_then(Value::as_f64), Some(2.0));
        let cps = back
            .get("checkpoints")
            .and_then(Value::as_arr)
            .expect("checkpoints");
        assert_eq!(cps.len(), 1);
        assert_eq!(cps[0].get("elapsed_ms").and_then(Value::as_f64), Some(4.0));
    }

    #[test]
    fn degraded_status_propagates_through_merge_and_json() {
        let mut a = RenderMetrics::new();
        let mut b = RenderMetrics::new();
        assert_eq!(a.status, RenderStatus::Complete);
        b.mark_degraded_pixel();
        b.mark_degraded_pixel();
        b.record_band_retry();
        a.merge(&b);
        assert_eq!(a.status, RenderStatus::Degraded);
        assert_eq!(a.degraded_pixels, 2);
        assert_eq!(a.band_retries, 1);

        let doc = a.to_json("eps");
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("degraded"));
        assert_eq!(
            doc.get("degraded_pixels").and_then(Value::as_f64),
            Some(2.0)
        );
        assert_eq!(doc.get("band_retries").and_then(Value::as_f64), Some(1.0));
        assert!(a.summary().contains("DEGRADED"), "{}", a.summary());

        let clean = RenderMetrics::new();
        let doc = clean.to_json("eps");
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("complete"));
        assert!(!clean.summary().contains("DEGRADED"));
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let mut m = RenderMetrics::new();
        m.record_pixel(0, 0, &stats(7, 9), 100);
        m.events.heap_pops = 7;
        m.set_wall_ns(2_500_000);
        let s = m.summary();
        assert!(s.contains("1 px"), "{s}");
        assert!(s.contains("2.5 ms"), "{s}");
        assert!(s.contains("7 heap pops"), "{s}");
    }
}

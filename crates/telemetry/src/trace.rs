//! End-to-end request tracing: spans, trace rings, and refinement
//! work attribution.
//!
//! A served tile request crosses many layers — accept queue, HTTP
//! parse, cache, catalog, refinement, PNG encode, socket write — and
//! aggregate counters can say *how many* of each happened but not
//! *where one request's time went*. This module carries the per-
//! request story:
//!
//! * [`TraceBuilder`] collects named [`Span`]s against one monotonic
//!   origin (the accept timestamp), each with optional work/byte tag
//!   annotations. A disabled builder ([`TraceBuilder::off`]) skips
//!   every clock read and never allocates, so tracing is strictly
//!   pay-for-what-you-use.
//! * [`Trace`] is the completed record — request line, status, bytes,
//!   cache disposition, and the span list — exportable as JSON.
//! * [`TraceRing`] retains the last N completed traces plus a second
//!   ring of *slow* traces (total latency over a threshold) that
//!   survive even when fast traffic would otherwise flush them out.
//! * [`DepthProfile`] and [`TracingProbe`] connect a trace to the
//!   refinement engine: the profile implements
//!   [`Probe::node_visit`] to histogram heap pops by kd-tree depth,
//!   and the tee probe fans every engine event out to two observers so
//!   a request-scoped profile can ride along with the render's
//!   existing counters without displacing them.
//!
//! Trace IDs are process-unique, not cryptographic: a random per-
//! process base (seeded from [`std::collections::hash_map::RandomState`],
//! the standard library's OS-entropy hasher seed) XOR a monotone
//! counter — collision-free within a process, distinct across
//! restarts, and dependency-free.

use std::collections::VecDeque;
use std::hash::{BuildHasher as _, Hasher as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use kdv_core::engine::Probe;

use crate::json::{self, Value};

/// Process-unique identifier of one traced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// A fresh process-unique ID.
    pub fn next() -> Self {
        static BASE: OnceLock<u64> = OnceLock::new();
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let base = *BASE.get_or_init(|| {
            std::collections::hash_map::RandomState::new()
                .build_hasher()
                .finish()
        });
        // The counter lands in the low bits; the random base keeps IDs
        // from different server runs disjoint in practice.
        Self(base ^ COUNTER.fetch_add(1, Ordering::Relaxed))
    }

    /// 16-hex-digit rendering (the `X-Kdv-Trace-Id` header value).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the exact rendering [`TraceId::to_hex`] produces — 16
    /// lowercase-insensitive hex digits — and nothing else. Used by a
    /// shard adopting the ID a router forwarded, so garbage in the
    /// header can never become a confusing half-parsed ID.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Self)
    }
}

/// One span annotation value.
#[derive(Debug, Clone, PartialEq)]
pub enum TagValue {
    /// A count or byte size.
    U64(u64),
    /// A short label.
    Str(String),
    /// Sparse histogram pairs, e.g. `(depth, pops)`.
    Pairs(Vec<(u64, u64)>),
}

impl TagValue {
    fn to_json(&self) -> Value {
        match self {
            TagValue::U64(v) => json::num_u(*v),
            TagValue::Str(s) => Value::Str(s.clone()),
            TagValue::Pairs(pairs) => Value::Arr(
                pairs
                    .iter()
                    .map(|&(k, v)| Value::Arr(vec![json::num_u(k), json::num_u(v)]))
                    .collect(),
            ),
        }
    }
}

/// One completed span: a named interval relative to the trace origin.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Stage name (`"queue"`, `"render"`, …).
    pub name: &'static str,
    /// Microseconds from the trace origin to the span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Work/byte annotations.
    pub tags: Vec<(&'static str, TagValue)>,
}

impl Span {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("name", Value::Str(self.name.to_string())),
            ("start_us", json::num_u(self.start_us)),
            ("dur_us", json::num_u(self.dur_us)),
        ];
        if !self.tags.is_empty() {
            fields.push((
                "tags",
                Value::obj(self.tags.iter().map(|(k, v)| (*k, v.to_json())).collect()),
            ));
        }
        Value::obj(fields)
    }
}

/// Request-level fields stamped onto a trace when it completes.
#[derive(Debug, Clone, Default)]
pub struct TraceMeta {
    /// HTTP method.
    pub method: String,
    /// Request path (query string stripped).
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Response body bytes.
    pub bytes: u64,
    /// Tile-cache disposition, when the request touched the cache.
    pub cache: Option<&'static str>,
    /// Whether the response carried the degraded marker.
    pub degraded: bool,
}

/// A completed end-to-end request trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The request's ID (echoed in `X-Kdv-Trace-Id`).
    pub id: TraceId,
    /// Request/response metadata.
    pub meta: TraceMeta,
    /// Origin-to-finish latency in microseconds.
    pub total_us: u64,
    /// Completed spans in completion order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// The span named `name`, if the request passed through that stage.
    pub fn span(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Full JSON rendering (the `/debug/traces` row shape).
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("id", Value::Str(self.id.to_hex())),
            ("method", Value::Str(self.meta.method.clone())),
            ("path", Value::Str(self.meta.path.clone())),
            ("status", json::num_u(self.meta.status as u64)),
            ("bytes", json::num_u(self.meta.bytes)),
            (
                "cache",
                match self.meta.cache {
                    Some(c) => Value::Str(c.to_string()),
                    None => Value::Null,
                },
            ),
            ("degraded", Value::Bool(self.meta.degraded)),
            ("total_us", json::num_u(self.total_us)),
            (
                "spans",
                Value::Arr(self.spans.iter().map(Span::to_json).collect()),
            ),
        ])
    }
}

/// Token returned by [`TraceBuilder::begin`]; hand it back to
/// [`TraceBuilder::end`] when the stage completes.
#[derive(Debug)]
pub struct OpenSpan {
    name: &'static str,
    started: Option<Instant>,
}

/// Collects spans for one in-flight request.
///
/// All methods are no-ops on a disabled builder — no clock reads, no
/// allocation, no ID draw — so the server can thread one builder
/// through its request path unconditionally.
#[derive(Debug)]
pub struct TraceBuilder {
    id: Option<TraceId>,
    origin: Instant,
    spans: Vec<Span>,
}

impl TraceBuilder {
    /// An enabled builder whose origin (span offset zero) is `origin`
    /// — typically the accept timestamp, so queue wait is visible.
    pub fn with_origin(origin: Instant) -> Self {
        Self {
            id: Some(TraceId::next()),
            origin,
            spans: Vec::new(),
        }
    }

    /// An enabled builder originating now.
    pub fn new() -> Self {
        Self::with_origin(Instant::now())
    }

    /// Replaces the trace ID on an enabled builder. An upstream hop
    /// (the cluster router) forwards its ID via `X-Kdv-Trace-Id`; the
    /// shard adopts it here so both tiers log the same ID and traces
    /// stitch end to end. No-op on a disabled builder.
    pub fn set_id(&mut self, id: TraceId) {
        if self.id.is_some() {
            self.id = Some(id);
        }
    }

    /// A disabled builder: every method is a near-free no-op.
    pub fn off() -> Self {
        Self {
            id: None,
            // Never read back; any anchor will do, and taking one here
            // keeps the struct Option-free everywhere else.
            origin: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Whether this builder records anything.
    pub fn is_enabled(&self) -> bool {
        self.id.is_some()
    }

    /// The trace ID, when enabled.
    pub fn id(&self) -> Option<TraceId> {
        self.id
    }

    /// Starts a span named `name`.
    pub fn begin(&self, name: &'static str) -> OpenSpan {
        OpenSpan {
            name,
            started: self.id.map(|_| Instant::now()),
        }
    }

    /// Completes a span with no annotations.
    pub fn end(&mut self, span: OpenSpan) {
        self.end_with(span, Vec::new());
    }

    /// Completes a span, attaching work/byte annotations.
    pub fn end_with(&mut self, span: OpenSpan, tags: Vec<(&'static str, TagValue)>) {
        let Some(started) = span.started else {
            return;
        };
        let end = Instant::now();
        self.spans.push(Span {
            name: span.name,
            start_us: started.duration_since(self.origin).as_micros() as u64,
            dur_us: end.duration_since(started).as_micros() as u64,
            tags,
        });
    }

    /// Records a span from two externally-measured instants (e.g. the
    /// queue wait between accept and dequeue).
    pub fn span_between(&mut self, name: &'static str, start: Instant, end: Instant) {
        if self.id.is_none() {
            return;
        }
        self.spans.push(Span {
            name,
            start_us: start.duration_since(self.origin).as_micros() as u64,
            dur_us: end.duration_since(start).as_micros() as u64,
            tags: Vec::new(),
        });
    }

    /// Seals the trace. Returns `None` when disabled.
    pub fn finish(self, meta: TraceMeta) -> Option<Trace> {
        let id = self.id?;
        Some(Trace {
            id,
            meta,
            total_us: Instant::now().duration_since(self.origin).as_micros() as u64,
            spans: self.spans,
        })
    }
}

impl Default for TraceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Bounded retention of completed traces: a ring of the most recent N
/// plus a separate ring of slow traces (total latency ≥ threshold)
/// that fast traffic cannot flush out.
///
/// Workers take one short mutex hold per completed request (the push);
/// scrapes clone `Arc`s out under the same lock. Nothing here is on
/// the per-span path.
#[derive(Debug)]
pub struct TraceRing {
    recent: Mutex<VecDeque<Arc<Trace>>>,
    slow: Mutex<VecDeque<Arc<Trace>>>,
    capacity: usize,
    slow_capacity: usize,
    slow_threshold_us: u64,
    completed: AtomicU64,
    slow_seen: AtomicU64,
}

impl TraceRing {
    /// A ring retaining `capacity` recent traces and up to
    /// `capacity` slow ones at `slow_threshold_us` and above.
    pub fn new(capacity: usize, slow_threshold_us: u64) -> Self {
        Self {
            recent: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            slow: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            slow_capacity: capacity.max(1),
            slow_threshold_us,
            completed: AtomicU64::new(0),
            slow_seen: AtomicU64::new(0),
        }
    }

    /// The slow-trace threshold in microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us
    }

    /// Retains a completed trace (and, if slow enough, a second
    /// reference in the slow ring).
    pub fn push(&self, trace: Trace) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let slow = trace.total_us >= self.slow_threshold_us;
        let trace = Arc::new(trace);
        {
            let mut recent = self.recent.lock().expect("trace ring poisoned");
            if recent.len() == self.capacity {
                recent.pop_front();
            }
            recent.push_back(Arc::clone(&trace));
        }
        if slow {
            self.slow_seen.fetch_add(1, Ordering::Relaxed);
            let mut ring = self.slow.lock().expect("slow ring poisoned");
            if ring.len() == self.slow_capacity {
                ring.pop_front();
            }
            ring.push_back(trace);
        }
    }

    /// Traces completed since startup (including ones already evicted).
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Traces that crossed the slow threshold since startup.
    pub fn slow_seen(&self) -> u64 {
        self.slow_seen.load(Ordering::Relaxed)
    }

    /// The retained recent traces, newest first.
    pub fn recent(&self) -> Vec<Arc<Trace>> {
        let ring = self.recent.lock().expect("trace ring poisoned");
        ring.iter().rev().cloned().collect()
    }

    /// The retained slow traces, newest first.
    pub fn slow(&self) -> Vec<Arc<Trace>> {
        let ring = self.slow.lock().expect("slow ring poisoned");
        ring.iter().rev().cloned().collect()
    }
}

/// Deepest kd-tree level [`DepthProfile`] attributes individually;
/// anything deeper folds into the last bin. A millionth-point tree at
/// leaf capacity 16 is ~16 levels deep, so 64 leaves generous margin.
pub const MAX_PROFILED_DEPTH: usize = 64;

/// Histogram of refinement heap pops by kd-tree depth — the "how deep
/// did the quadratic bounds have to descend" attribution the QUAD
/// paper's work accounting is about.
///
/// Implements [`Probe`] through the depth-carrying
/// [`Probe::node_visit`] hook only, so it composes with any other
/// probe via [`TracingProbe`] without double-counting events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthProfile {
    bins: [u64; MAX_PROFILED_DEPTH],
}

impl Default for DepthProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl DepthProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self {
            bins: [0; MAX_PROFILED_DEPTH],
        }
    }

    /// Total pops recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Non-empty `(depth, pops)` pairs in ascending depth order.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(d, &c)| (d as u64, c))
            .collect()
    }
}

impl Probe for DepthProfile {
    #[inline]
    fn node_visit(&mut self, depth: u32) {
        let bin = (depth as usize).min(MAX_PROFILED_DEPTH - 1);
        self.bins[bin] += 1;
    }
}

/// Fan-out probe: forwards every refinement event to two observers.
///
/// The tile server's render path already feeds its per-tile
/// [`crate::EventCounters`]; wrapping them in a `TracingProbe` lets a
/// request-scoped [`DepthProfile`] observe the same events without
/// displacing the aggregate. Constructed per query, it monomorphizes
/// away entirely when either side is `NoProbe`.
#[derive(Debug)]
pub struct TracingProbe<'a, A: Probe, B: Probe> {
    first: &'a mut A,
    second: &'a mut B,
}

impl<'a, A: Probe, B: Probe> TracingProbe<'a, A, B> {
    /// Tees events to `first` and `second`, in that order.
    pub fn new(first: &'a mut A, second: &'a mut B) -> Self {
        Self { first, second }
    }
}

impl<A: Probe, B: Probe> Probe for TracingProbe<'_, A, B> {
    #[inline]
    fn heap_pop(&mut self) {
        self.first.heap_pop();
        self.second.heap_pop();
    }

    #[inline]
    fn node_visit(&mut self, depth: u32) {
        self.first.node_visit(depth);
        self.second.node_visit(depth);
    }

    #[inline]
    fn node_bound(&mut self) {
        self.first.node_bound();
        self.second.node_bound();
    }

    #[inline]
    fn leaf_scan(&mut self, points: usize) {
        self.first.leaf_scan(points);
        self.second.leaf_scan(points);
    }

    #[inline]
    fn resync(&mut self) {
        self.first.resync();
        self.second.resync();
    }

    #[inline]
    fn force_resync(&mut self) -> bool {
        // `|` not `||`: both sides must observe the iteration even
        // when the first already forces.
        self.first.force_resync() | self.second.force_resync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventCounters;
    use std::time::Duration;

    #[test]
    fn trace_ids_are_unique_and_hex() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert_ne!(a, b);
        let hex = a.to_hex();
        assert_eq!(hex.len(), 16);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn trace_ids_round_trip_through_hex() {
        let id = TraceId::next();
        assert_eq!(TraceId::from_hex(&id.to_hex()), Some(id));
        assert_eq!(TraceId::from_hex(""), None);
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex("00000000000000001"), None); // 17 digits
        assert_eq!(TraceId::from_hex("00ab00ab00ab00a"), None); // 15 digits
        assert_eq!(
            TraceId::from_hex("00AB00ab00AB00ab"),
            TraceId::from_hex("00ab00ab00ab00ab")
        );
    }

    #[test]
    fn forwarded_ids_replace_the_drawn_id_only_when_enabled() {
        let fwd = TraceId::from_hex("00ab00ab00ab00ab").expect("hex");
        let mut tb = TraceBuilder::new();
        tb.set_id(fwd);
        assert_eq!(tb.id(), Some(fwd));

        let mut off = TraceBuilder::off();
        off.set_id(fwd);
        assert_eq!(off.id(), None);
    }

    #[test]
    fn builder_records_spans_against_the_origin() {
        let origin = Instant::now();
        let mut tb = TraceBuilder::with_origin(origin);
        assert!(tb.is_enabled());
        let s = tb.begin("render");
        std::thread::sleep(Duration::from_millis(2));
        tb.end_with(s, vec![("nodes", TagValue::U64(42))]);
        tb.span_between("queue", origin, origin + Duration::from_micros(500));
        let trace = tb
            .finish(TraceMeta {
                method: "GET".into(),
                path: "/tiles/eps/0/0/0.png".into(),
                status: 200,
                bytes: 1234,
                cache: Some("miss"),
                degraded: false,
            })
            .expect("enabled builder yields a trace");
        assert_eq!(trace.spans.len(), 2);
        let render = trace.span("render").expect("render span");
        assert!(render.dur_us >= 2_000, "slept 2 ms, got {}", render.dur_us);
        assert_eq!(render.tags, vec![("nodes", TagValue::U64(42))]);
        let queue = trace.span("queue").expect("queue span");
        assert_eq!((queue.start_us, queue.dur_us), (0, 500));
        assert!(trace.total_us >= render.dur_us);

        // JSON export round-trips through the workspace parser.
        let doc = json::parse(&trace.to_json().render()).expect("valid JSON");
        assert_eq!(doc.get("status").and_then(Value::as_f64), Some(200.0));
        assert_eq!(doc.get("cache").and_then(Value::as_str), Some("miss"));
        let spans = doc.get("spans").and_then(Value::as_arr).expect("spans");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("name").and_then(Value::as_str), Some("render"));
    }

    #[test]
    fn disabled_builder_produces_nothing() {
        let mut tb = TraceBuilder::off();
        assert!(!tb.is_enabled());
        assert!(tb.id().is_none());
        let s = tb.begin("render");
        assert!(s.started.is_none(), "no clock read when disabled");
        tb.end(s);
        tb.span_between("queue", Instant::now(), Instant::now());
        assert!(tb.finish(TraceMeta::default()).is_none());
    }

    fn quick_trace(total_us: u64, path: &str) -> Trace {
        Trace {
            id: TraceId::next(),
            meta: TraceMeta {
                method: "GET".into(),
                path: path.into(),
                status: 200,
                bytes: 10,
                cache: None,
                degraded: false,
            },
            total_us,
            spans: Vec::new(),
        }
    }

    #[test]
    fn ring_retains_recent_and_prefers_slow() {
        let ring = TraceRing::new(4, 1_000);
        // One slow trace, then a burst of fast ones that flush it from
        // the recent ring.
        ring.push(quick_trace(5_000, "/slow"));
        for i in 0..8 {
            ring.push(quick_trace(10, &format!("/fast/{i}")));
        }
        assert_eq!(ring.completed(), 9);
        assert_eq!(ring.slow_seen(), 1);
        let recent = ring.recent();
        assert_eq!(recent.len(), 4, "recent ring is bounded");
        assert_eq!(recent[0].meta.path, "/fast/7", "newest first");
        assert!(
            recent.iter().all(|t| t.meta.path != "/slow"),
            "fast burst flushed the slow trace from the recent ring"
        );
        let slow = ring.slow();
        assert_eq!(slow.len(), 1, "…but the slow ring kept it");
        assert_eq!(slow[0].meta.path, "/slow");
    }

    #[test]
    fn depth_profile_counts_by_depth() {
        let mut p = DepthProfile::new();
        p.node_visit(0);
        p.node_visit(1);
        p.node_visit(1);
        p.node_visit(500); // clamps into the overflow bin
        assert_eq!(p.total(), 4);
        assert_eq!(
            p.nonzero(),
            vec![(0, 1), (1, 2), ((MAX_PROFILED_DEPTH - 1) as u64, 1)]
        );
    }

    #[test]
    fn tracing_probe_tees_every_event_to_both_sides() {
        let mut counters = EventCounters::default();
        let mut profile = DepthProfile::new();
        {
            let mut tee = TracingProbe::new(&mut counters, &mut profile);
            tee.heap_pop();
            tee.node_visit(3);
            tee.node_bound();
            tee.leaf_scan(11);
            tee.resync();
            assert!(!tee.force_resync());
        }
        assert_eq!(counters.heap_pops, 1);
        assert_eq!(counters.node_bounds, 1);
        assert_eq!(counters.point_evals, 11);
        assert_eq!(counters.resyncs, 1);
        assert_eq!(profile.nonzero(), vec![(3, 1)]);
    }
}

//! The best-first branch-and-bound refinement framework (paper §3.2).
//!
//! One [`RefineEvaluator`] answers εKDV and τKDV queries for single
//! pixels by maintaining a max-priority queue of index nodes ordered by
//! bound gap `UB_R(q) − LB_R(q)`, exactly as the paper's Table 3
//! illustrates: pop the widest node, replace its bound contribution with
//! its children's bounds (or its exact sum, for leaves), stop as soon as
//! the incremental global bounds satisfy the query's termination test.

//!
//! Instrumentation: the loop is generic over a [`Probe`] receiving one
//! callback per refinement event (heap pop, node-bound evaluation,
//! leaf scan, float resync). The default [`NoProbe`] monomorphizes to
//! the bare loop, so observation is free unless requested — the
//! `kdv-telemetry` crate builds render-wide metrics on top of this.

//!
//! Robustness: every public query has a fallible `try_*` twin that
//! rejects bad input with [`crate::error::KdvError`], and a
//! `*_budgeted` twin that degrades gracefully under a [`RenderBudget`]
//! (work/deadline cap) instead of refining forever — see the [`budget`]
//! module.

pub mod budget;
mod probe;
mod refine;
mod tile;

pub use budget::{BudgetPolicy, BudgetedEval, BudgetedTau, RenderBudget};
pub use probe::{NoProbe, Probe};
pub use refine::{RefineEvaluator, RefineStats};
pub use tile::{TileEps, TileEvaluator, TileTau};

//! Zero-cost observation hooks for the refinement loop.
//!
//! The §3.2 loop is the workspace's hot path: a full 1280×960 render
//! issues over a million queries, each popping hundreds of nodes. Any
//! telemetry must therefore cost *nothing* when unused. [`Probe`] makes
//! that a type-system guarantee: `refine_loop` is generic over the
//! probe, every hook defaults to an empty body, and the [`NoProbe`]
//! instantiation monomorphizes to exactly the un-instrumented loop —
//! there is no branch, no function pointer, and nothing for the
//! optimizer to keep alive.
//!
//! Aggregating observers (the `kdv-telemetry` crate's `EventCounters`
//! and `RenderMetrics`) implement [`Probe`] and receive one callback
//! per refinement event:
//!
//! * [`Probe::heap_pop`] — a frontier node left the priority queue,
//! * [`Probe::node_bound`] — one node's lower/upper bounds were
//!   evaluated ([`crate::bounds::node_bounds_pre`]),
//! * [`Probe::leaf_scan`] — a leaf was refined to its exact sum,
//!   with the number of point-kernel evaluations it cost,
//! * [`Probe::resync`] — the incremental global sums were recomputed
//!   from the heap because tracked rounding error grew too large.

/// Observer of refinement-loop events (see the module docs).
///
/// All hooks default to no-ops so implementors only override what they
/// record. The loop is monomorphized per probe type; [`NoProbe`]
/// compiles to the bare loop.
pub trait Probe {
    /// A node was popped from the refinement priority queue.
    #[inline]
    fn heap_pop(&mut self) {}

    /// Fires together with [`Probe::heap_pop`], carrying the popped
    /// node's depth in the kd-tree (root = 0). Split out from
    /// `heap_pop` so counters that don't care about tree position
    /// (the common case) pay nothing for it.
    #[inline]
    fn node_visit(&mut self, depth: u32) {
        let _ = depth;
    }

    /// Lower/upper bounds were evaluated for one index node.
    #[inline]
    fn node_bound(&mut self) {}

    /// A leaf was evaluated exactly, costing `points` kernel
    /// evaluations.
    #[inline]
    fn leaf_scan(&mut self, points: usize) {
        let _ = points;
    }

    /// The incremental bound sums were recomputed from the heap (float
    /// rounding-error resync).
    #[inline]
    fn resync(&mut self) {}

    /// Consulted once per refinement iteration: return `true` to force
    /// an immediate resync pass even though the tracked rounding error
    /// is still negligible.
    ///
    /// A resync is semantically idempotent — it recomputes the exact
    /// same sums from the heap — so forcing one must never change a
    /// query's result. That makes this the cheapest fault-injection
    /// point in the engine: `kdv-telemetry`'s `FaultProbe` uses it to
    /// prove the claim under chaos testing. [`NoProbe`] returns `false`
    /// and the branch folds away.
    #[inline]
    fn force_resync(&mut self) -> bool {
        false
    }
}

/// The default probe: every hook is a no-op and the instrumented loop
/// compiles to the un-instrumented one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {}

/// Forwarding impl so callers can pass `&mut probe` without giving up
/// ownership (e.g. one accumulator across a million pixel queries).
impl<P: Probe + ?Sized> Probe for &mut P {
    #[inline]
    fn heap_pop(&mut self) {
        (**self).heap_pop();
    }

    #[inline]
    fn node_visit(&mut self, depth: u32) {
        (**self).node_visit(depth);
    }

    #[inline]
    fn node_bound(&mut self) {
        (**self).node_bound();
    }

    #[inline]
    fn leaf_scan(&mut self, points: usize) {
        (**self).leaf_scan(points);
    }

    #[inline]
    fn resync(&mut self) {
        (**self).resync();
    }

    #[inline]
    fn force_resync(&mut self) -> bool {
        (**self).force_resync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        pops: usize,
        bounds: usize,
        points: usize,
        resyncs: usize,
        depth_sum: u32,
    }

    impl Probe for Recorder {
        fn heap_pop(&mut self) {
            self.pops += 1;
        }
        fn node_visit(&mut self, depth: u32) {
            self.depth_sum += depth;
        }
        fn node_bound(&mut self) {
            self.bounds += 1;
        }
        fn leaf_scan(&mut self, points: usize) {
            self.points += points;
        }
        fn resync(&mut self) {
            self.resyncs += 1;
        }
    }

    #[test]
    fn forwarding_impl_reaches_the_underlying_probe() {
        // Drive through a generic monomorphized over `&mut Recorder`,
        // the shape the engine actually uses.
        fn drive<P: Probe>(mut p: P) {
            p.heap_pop();
            p.node_visit(5);
            p.node_bound();
            p.leaf_scan(7);
            p.resync();
            assert!(!p.force_resync(), "default hook never forces");
        }
        let mut r = Recorder::default();
        drive(&mut r);
        assert_eq!(
            (r.pops, r.bounds, r.points, r.resyncs, r.depth_sum),
            (1, 1, 7, 1, 5),
            "forwarded events must land in the wrapped probe"
        );
    }

    #[test]
    fn no_probe_is_inert() {
        // Compile-time shape check more than behavior: NoProbe accepts
        // every hook and carries no state.
        let mut p = NoProbe;
        p.heap_pop();
        p.node_visit(9);
        p.node_bound();
        p.leaf_scan(123);
        p.resync();
        assert_eq!(p, NoProbe);
    }
}

//! Work and deadline budgets for graceful degradation.
//!
//! The refinement loop converges to any requested ε, but a production
//! service cannot let one adversarial pixel (huge n, tiny γ, extreme
//! ε) hold a render thread hostage. [`RenderBudget`] caps a render by
//! *work units* (the same unit as [`super::RefineStats::total_work`]:
//! one heap pop, node-bound evaluation, point-kernel evaluation, or
//! resync pass each cost 1) and/or by a wall-clock deadline. When the
//! budget runs out mid-refinement the engine stops and reports its
//! current bracket `[lb, ub]` instead of panicking or spinning: the
//! midpoint is the best-effort answer and the half-gap is a certified
//! upper bound on its absolute error, which renderers surface as a
//! per-pixel achieved-error map (see `kdv-viz`'s budgeted renderers).

use std::time::{Duration, Instant};

/// How often (in work units) the deadline clock is polled; work-unit
/// exhaustion itself is checked continuously. 256 units is on the
/// order of microseconds of work, far finer than any meaningful
/// deadline.
const DEADLINE_POLL_MASK: u64 = 0xFF;

/// A render-wide cap on refinement work and/or wall time.
///
/// One budget is threaded through every pixel of a render (or one band
/// of a parallel render); [`RenderBudget::charge`] accumulates the work
/// spent so the cap applies to the whole raster, not per pixel.
#[derive(Debug, Clone)]
pub struct RenderBudget {
    /// Absolute deadline, if any.
    deadline: Option<Instant>,
    /// Total work-unit cap, if any.
    max_work: Option<u64>,
    /// Work units charged so far.
    work_done: u64,
    /// Set once either limit trips (sticky — a budget never un-exhausts,
    /// so every later pixel degrades instantly instead of re-polling).
    exhausted: bool,
}

impl RenderBudget {
    /// A budget with no limits: rendering runs to full precision.
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            max_work: None,
            work_done: 0,
            exhausted: false,
        }
    }

    /// Caps total refinement work at `units` (see
    /// [`super::RefineStats::total_work`] for the unit).
    pub fn with_max_work(self, units: u64) -> Self {
        Self {
            max_work: Some(units),
            ..self
        }
    }

    /// Caps wall time at `limit` from now.
    pub fn with_deadline(self, limit: Duration) -> Self {
        Self {
            deadline: Some(Instant::now() + limit),
            ..self
        }
    }

    /// Work units charged so far.
    #[inline]
    pub fn work_done(&self) -> u64 {
        self.work_done
    }

    /// Whether either limit has tripped.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Whether this budget can ever trip (false for
    /// [`RenderBudget::unlimited`]).
    #[inline]
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.max_work.is_some()
    }

    /// Charges `units` of work and re-evaluates the limits. Returns
    /// `true` while the budget still has headroom.
    #[inline]
    pub fn charge(&mut self, units: u64) -> bool {
        let before = self.work_done;
        self.work_done += units;
        if self.exhausted {
            return false;
        }
        if let Some(cap) = self.max_work {
            if self.work_done >= cap {
                self.exhausted = true;
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            // Poll the clock only every few hundred units — `Instant::now`
            // costs more than the work being metered.
            if before & !DEADLINE_POLL_MASK != self.work_done & !DEADLINE_POLL_MASK
                && Instant::now() >= deadline
            {
                self.exhausted = true;
                return false;
            }
        }
        true
    }

    /// A sub-budget owning `share` of the remaining work cap (for one
    /// band of a parallel render; the deadline is shared as-is).
    /// `share` is clamped to `[0, 1]`.
    pub fn split(&self, share: f64) -> Self {
        let share = share.clamp(0.0, 1.0);
        Self {
            deadline: self.deadline,
            max_work: self.max_work.map(|cap| {
                let remaining = cap.saturating_sub(self.work_done);
                (remaining as f64 * share).ceil() as u64
            }),
            work_done: 0,
            exhausted: self.exhausted,
        }
    }

    /// Folds a finished sub-budget's spending back into this one.
    pub fn absorb(&mut self, child: &RenderBudget) {
        self.work_done += child.work_done;
        self.exhausted |= child.exhausted;
    }
}

impl Default for RenderBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// A reusable budget *recipe* for long-running services.
///
/// A [`RenderBudget`] is single-use: its deadline is an absolute
/// instant fixed at construction, so a server cannot build one budget
/// at startup and hand it to every request — the deadline would have
/// lapsed long ago. A `BudgetPolicy` stores the *relative* limits
/// (work cap, time allowance) and [`issue`](BudgetPolicy::issue)s a
/// fresh `RenderBudget` per request whose clock starts at issue time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetPolicy {
    max_work: Option<u64>,
    deadline: Option<Duration>,
}

impl BudgetPolicy {
    /// A policy issuing unlimited budgets.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps each issued budget at `units` of refinement work.
    pub fn with_max_work(self, units: u64) -> Self {
        Self {
            max_work: Some(units),
            ..self
        }
    }

    /// Gives each issued budget `limit` of wall time from its issue.
    pub fn with_deadline(self, limit: Duration) -> Self {
        Self {
            deadline: Some(limit),
            ..self
        }
    }

    /// Whether issued budgets can ever trip.
    pub fn is_limited(&self) -> bool {
        self.max_work.is_some() || self.deadline.is_some()
    }

    /// Issues a fresh budget; a deadline starts counting now.
    pub fn issue(&self) -> RenderBudget {
        let mut b = RenderBudget::unlimited();
        if let Some(units) = self.max_work {
            b = b.with_max_work(units);
        }
        if let Some(limit) = self.deadline {
            b = b.with_deadline(limit);
        }
        b
    }
}

/// Outcome of one budgeted per-pixel evaluation: the final bound
/// bracket plus whether refinement was cut short.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetedEval {
    /// Certified lower bound on `F(q)` at termination.
    pub lb: f64,
    /// Certified upper bound on `F(q)` at termination.
    pub ub: f64,
    /// Whether the budget ran out before the query's own stop rule.
    pub exhausted: bool,
}

impl BudgetedEval {
    /// Best-effort point estimate: the bracket midpoint. Its absolute
    /// error is at most [`BudgetedEval::half_gap`].
    #[inline]
    pub fn estimate(&self) -> f64 {
        0.5 * (self.lb + self.ub)
    }

    /// Certified upper bound on `|estimate − F(q)|`.
    #[inline]
    pub fn half_gap(&self) -> f64 {
        0.5 * (self.ub - self.lb)
    }
}

/// Outcome of one budgeted τKDV classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetedTau {
    /// The classification: certain when `decided`, otherwise the
    /// best-effort midpoint guess.
    pub hot: bool,
    /// Whether the bracket cleared τ before the budget ran out.
    pub decided: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut b = RenderBudget::unlimited();
        assert!(!b.is_limited());
        for _ in 0..1000 {
            assert!(b.charge(1_000_000));
        }
        assert!(!b.is_exhausted());
        assert_eq!(b.work_done(), 1_000_000_000);
    }

    #[test]
    fn work_cap_trips_and_sticks() {
        let mut b = RenderBudget::unlimited().with_max_work(100);
        assert!(b.is_limited());
        assert!(b.charge(50));
        assert!(!b.charge(50)); // hits the cap exactly
        assert!(b.is_exhausted());
        assert!(!b.charge(1), "exhaustion is sticky");
        assert_eq!(b.work_done(), 101, "work is still accounted");
    }

    #[test]
    fn elapsed_deadline_trips() {
        let mut b = RenderBudget::unlimited().with_deadline(Duration::ZERO);
        // The clock is polled on coarse boundaries; a large charge
        // always crosses one.
        assert!(!b.charge(10_000));
        assert!(b.is_exhausted());
    }

    #[test]
    fn far_deadline_does_not_trip() {
        let mut b = RenderBudget::unlimited().with_deadline(Duration::from_secs(3600));
        assert!(b.charge(10_000));
        assert!(!b.is_exhausted());
    }

    #[test]
    fn split_shares_remaining_work_and_absorb_accounts() {
        let mut parent = RenderBudget::unlimited().with_max_work(1000);
        parent.charge(200);
        let mut child = parent.split(0.5);
        assert!(!child.is_exhausted());
        // Child owns half the remaining 800 → 400 units.
        assert!(child.charge(399));
        assert!(!child.charge(1));
        parent.absorb(&child);
        assert_eq!(parent.work_done(), 600);
        assert!(parent.is_exhausted(), "child exhaustion propagates");
    }

    #[test]
    fn policy_issues_independent_fresh_budgets() {
        let policy = BudgetPolicy::unlimited().with_max_work(10);
        assert!(policy.is_limited());
        let mut a = policy.issue();
        let mut b = policy.issue();
        assert!(!a.charge(10));
        assert!(a.is_exhausted());
        // Exhausting one issued budget must not age the policy or any
        // sibling budget.
        assert!(b.charge(5), "each request gets the full allowance");
        assert!(!b.is_exhausted());

        assert!(!BudgetPolicy::unlimited().is_limited());
        assert!(!BudgetPolicy::default().issue().is_limited());

        // A deadline policy starts each budget's clock at issue time:
        // a generous allowance issued "long after startup" still has
        // headroom.
        let timed = BudgetPolicy::unlimited().with_deadline(Duration::from_secs(3600));
        let mut c = timed.issue();
        assert!(c.charge(10_000));
        assert!(!c.is_exhausted());
    }

    #[test]
    fn budgeted_eval_midpoint_and_half_gap() {
        let e = BudgetedEval {
            lb: 2.0,
            ub: 6.0,
            exhausted: true,
        };
        assert_eq!(e.estimate(), 4.0);
        assert_eq!(e.half_gap(), 2.0);
    }
}

//! Per-pixel best-first refinement.

use super::budget::{BudgetedEval, BudgetedTau, RenderBudget};
use super::probe::{NoProbe, Probe};
use crate::bounds::{node_bounds_pre, BoundFamily, Interval};
use crate::error::KdvError;
use crate::kernel::Kernel;
use crate::query::{validate_eps, validate_query_point, validate_tau};
use kdv_index::{KdTree, NodeId, NodeKind};
use std::collections::BinaryHeap;

/// Unit roundoff of f64 (used for the incremental-sum error tracking).
pub(super) const EPS_MACH: f64 = 2.220_446_049_250_313e-16;

/// Resync the incremental sums from the heap once the tracked rounding
/// error exceeds this fraction of the sums' magnitude.
pub(super) const RESYNC_REL: f64 = 1e-6;

/// Per-query diagnostics (iteration counts feed Fig 18, the
/// `refine_pixel` bench, and the telemetry cost maps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefineStats {
    /// Nodes popped from the priority queue.
    pub iterations: usize,
    /// Leaves evaluated exactly.
    pub exact_leaves: usize,
    /// Node lower/upper bound evaluations (root + two per split).
    pub node_bounds: usize,
    /// Point-kernel evaluations performed by exact leaf scans.
    pub point_evals: usize,
    /// Incremental-sum resync passes forced by float rounding error.
    pub resyncs: usize,
    /// Heap pops / bound evaluations *avoided* by sharing one tile
    /// frontier across pixels (batched path only; always 0 for the
    /// per-pixel entry points). Excluded from [`total_work`], which
    /// counts work performed.
    ///
    /// [`total_work`]: RefineStats::total_work
    pub frontier_reuse: usize,
    /// SIMD lane width the leaf scans ran with for this query
    /// (4 on the AVX2 path, 1 scalar).
    pub simd_lanes: usize,
}

impl RefineStats {
    /// Scalar cost proxy for one query: every counted operation — heap
    /// pop, node-bound evaluation, point-kernel evaluation, resync
    /// pass — weighs one unit. This is what the telemetry cost maps
    /// rasterize ("where did the render's work go").
    #[inline]
    pub fn total_work(&self) -> usize {
        self.iterations + self.node_bounds + self.point_evals + self.resyncs
    }
}

/// A heap entry: one frontier node with its cached bounds and its
/// depth in the tree (root = 0) for per-depth work attribution.
#[derive(Debug, Clone, Copy)]
struct Entry {
    gap: f64,
    node: NodeId,
    lb: f64,
    ub: f64,
    depth: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.gap == other.gap
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on the bound gap (§3.2's priority).
        self.gap.total_cmp(&other.gap)
    }
}

/// Best-first branch-and-bound evaluator over one kd-tree.
///
/// The evaluator owns its priority queue and reuses the allocation
/// across pixels — rendering a 1280×960 frame issues over a million
/// queries, so per-query allocations would dominate.
#[derive(Debug)]
pub struct RefineEvaluator<'a> {
    tree: &'a KdTree,
    kernel: Kernel,
    family: BoundFamily,
    heap: BinaryHeap<Entry>,
    stats: RefineStats,
    /// Reusable buffer for the query translated into the tree's
    /// centered statistics frame (all nodes share one center).
    qt: Vec<f64>,
    /// Reusable squared-distance scratch for SoA leaf scans.
    d2: Vec<f64>,
}

enum StopRule {
    /// Terminate when `ub ≤ (1 + ε)·lb`.
    Eps(f64),
    /// Terminate when `ub − lb ≤ 2·t` (absolute-error contract: the
    /// midpoint is then within `t` of the true density).
    Abs(f64),
    /// Terminate when `lb ≥ τ` or `ub ≤ τ`.
    Tau(f64),
    /// Refine until every node is exact (ground-truth evaluation).
    Exhaust,
}

impl<'a> RefineEvaluator<'a> {
    /// Creates an evaluator using the given kernel and bound family.
    pub fn new(tree: &'a KdTree, kernel: Kernel, family: BoundFamily) -> Self {
        Self {
            tree,
            kernel,
            family,
            heap: BinaryHeap::new(),
            stats: RefineStats::default(),
            qt: vec![0.0; tree.points().dim()],
            d2: Vec::new(),
        }
    }

    /// The bound family driving refinement.
    pub fn family(&self) -> BoundFamily {
        self.family
    }

    /// Diagnostics of the most recent query.
    pub fn last_stats(&self) -> RefineStats {
        self.stats
    }

    /// εKDV: returns an estimate `R(q)` with
    /// `(1 − ε)·F_P(q) ≤ R(q) ≤ (1 + ε)·F_P(q)`.
    ///
    /// # Panics
    /// Panics if `eps` is not positive and finite, or `q` has the wrong
    /// dimensionality.
    pub fn eval_eps(&mut self, q: &[f64], eps: f64) -> f64 {
        self.eval_eps_with(q, eps, &mut NoProbe)
    }

    /// εKDV with an instrumentation [`Probe`] receiving one callback
    /// per refinement event. `NoProbe` makes this identical (down to
    /// the generated code) to [`RefineEvaluator::eval_eps`].
    ///
    /// # Panics
    /// Panics if `eps` is not positive and finite, or `q` has the wrong
    /// dimensionality.
    pub fn eval_eps_with<P: Probe>(&mut self, q: &[f64], eps: f64, probe: &mut P) -> f64 {
        assert!(eps.is_finite() && eps > 0.0, "ε must be positive");
        let (lb, ub, _) = self.refine(q, StopRule::Eps(eps), None, probe, |_, _| {});
        // With ub ≤ (1 + ε)·lb the midpoint's relative error is ≤ ε/2,
        // comfortably within the contract.
        0.5 * (lb + ub)
    }

    /// Fallible εKDV: rejects a non-positive/non-finite ε, a wrong-
    /// dimension query, and non-finite query coordinates with a
    /// structured [`KdvError`] instead of panicking.
    pub fn try_eval_eps(&mut self, q: &[f64], eps: f64) -> Result<f64, KdvError> {
        let eps = validate_eps(eps)?;
        validate_query_point(q, self.tree.points().dim())?;
        let (lb, ub, _) = self.refine(q, StopRule::Eps(eps), None, &mut NoProbe, |_, _| {});
        Ok(0.5 * (lb + ub))
    }

    /// Fallible εKDV returning the bound bracket (see
    /// [`RefineEvaluator::eval_eps_bounds`]).
    pub fn try_eval_eps_bounds(&mut self, q: &[f64], eps: f64) -> Result<(f64, f64), KdvError> {
        let eps = validate_eps(eps)?;
        validate_query_point(q, self.tree.points().dim())?;
        let (lb, ub, _) = self.refine(q, StopRule::Eps(eps), None, &mut NoProbe, |_, _| {});
        Ok((lb, ub))
    }

    /// Budget-aware εKDV: refines until the ε contract holds *or*
    /// `budget` runs out, whichever comes first. The returned
    /// [`BudgetedEval`] always brackets the true density; when
    /// `exhausted` is set, `estimate()` is the best-effort midpoint and
    /// `half_gap()` certifies its absolute error.
    ///
    /// Work spent (in [`RefineStats::total_work`] units) accumulates
    /// into `budget` across calls, so one budget caps a whole render.
    pub fn eval_eps_budgeted(
        &mut self,
        q: &[f64],
        eps: f64,
        budget: &mut RenderBudget,
    ) -> Result<BudgetedEval, KdvError> {
        self.eval_eps_budgeted_with(q, eps, budget, &mut NoProbe)
    }

    /// [`RefineEvaluator::eval_eps_budgeted`] with an instrumentation
    /// [`Probe`].
    pub fn eval_eps_budgeted_with<P: Probe>(
        &mut self,
        q: &[f64],
        eps: f64,
        budget: &mut RenderBudget,
        probe: &mut P,
    ) -> Result<BudgetedEval, KdvError> {
        let eps = validate_eps(eps)?;
        validate_query_point(q, self.tree.points().dim())?;
        let (lb, ub, exhausted) =
            self.refine(q, StopRule::Eps(eps), Some(budget), probe, |_, _| {});
        Ok(BudgetedEval { lb, ub, exhausted })
    }

    /// Budget-aware εKDV under an **absolute** tolerance: refines until
    /// `ub − lb ≤ 2·abs_tol` — so the midpoint estimate is within
    /// `abs_tol` of the true density — or `budget` runs out. This is
    /// the contract the coreset pyramid serves under: sampling error is
    /// an absolute `ε_s·W` band, so the refinement share of the budget
    /// must be absolute too for the two to add (`kdv-pyramid`).
    pub fn eval_abs_budgeted(
        &mut self,
        q: &[f64],
        abs_tol: f64,
        budget: &mut RenderBudget,
    ) -> Result<BudgetedEval, KdvError> {
        self.eval_abs_budgeted_with(q, abs_tol, budget, &mut NoProbe)
    }

    /// [`RefineEvaluator::eval_abs_budgeted`] with an instrumentation
    /// [`Probe`].
    pub fn eval_abs_budgeted_with<P: Probe>(
        &mut self,
        q: &[f64],
        abs_tol: f64,
        budget: &mut RenderBudget,
        probe: &mut P,
    ) -> Result<BudgetedEval, KdvError> {
        if !(abs_tol.is_finite() && abs_tol > 0.0) {
            return Err(KdvError::invalid(
                "abs_tol",
                format!("absolute tolerance must be positive and finite, got {abs_tol}"),
            ));
        }
        validate_query_point(q, self.tree.points().dim())?;
        let (lb, ub, exhausted) =
            self.refine(q, StopRule::Abs(abs_tol), Some(budget), probe, |_, _| {});
        Ok(BudgetedEval { lb, ub, exhausted })
    }

    /// Budget-aware τKDV. When the budget runs out before the bracket
    /// clears τ, `decided` is `false` and `hot` is the best-effort
    /// midpoint classification.
    pub fn eval_tau_budgeted(
        &mut self,
        q: &[f64],
        tau: f64,
        budget: &mut RenderBudget,
    ) -> Result<BudgetedTau, KdvError> {
        self.eval_tau_budgeted_with(q, tau, budget, &mut NoProbe)
    }

    /// [`RefineEvaluator::eval_tau_budgeted`] with an instrumentation
    /// [`Probe`].
    pub fn eval_tau_budgeted_with<P: Probe>(
        &mut self,
        q: &[f64],
        tau: f64,
        budget: &mut RenderBudget,
        probe: &mut P,
    ) -> Result<BudgetedTau, KdvError> {
        let tau = validate_tau(tau)?;
        validate_query_point(q, self.tree.points().dim())?;
        let (lb, ub, exhausted) =
            self.refine(q, StopRule::Tau(tau), Some(budget), probe, |_, _| {});
        Ok(BudgetedTau {
            hot: if exhausted {
                0.5 * (lb + ub) >= tau
            } else {
                lb >= tau
            },
            decided: !exhausted,
        })
    }

    /// εKDV returning the final bound bracket `(lb, ub)` with
    /// `lb ≤ F_P(q) ≤ ub` and `ub ≤ (1 + ε)·lb`.
    ///
    /// Downstream consumers that *combine* densities — e.g. the
    /// kernel-regression ratio of [`crate::regress`] — need the bracket
    /// rather than a point estimate to keep their own guarantees.
    ///
    /// # Panics
    /// Panics if `eps` is not positive and finite.
    pub fn eval_eps_bounds(&mut self, q: &[f64], eps: f64) -> (f64, f64) {
        assert!(eps.is_finite() && eps > 0.0, "ε must be positive");
        let (lb, ub, _) = self.refine(q, StopRule::Eps(eps), None, &mut NoProbe, |_, _| {});
        (lb, ub)
    }

    /// εKDV with a per-iteration bound trace appended to `trace`
    /// (drives the paper's Fig 18 convergence study).
    pub fn eval_eps_traced(&mut self, q: &[f64], eps: f64, trace: &mut Vec<(f64, f64)>) -> f64 {
        assert!(eps.is_finite() && eps > 0.0, "ε must be positive");
        let (lb, ub, _) = self.refine(q, StopRule::Eps(eps), None, &mut NoProbe, |l, u| {
            trace.push((l, u))
        });
        0.5 * (lb + ub)
    }

    /// τKDV: returns `true` iff `F_P(q) ≥ τ`.
    ///
    /// # Panics
    /// Panics if `tau` is not finite.
    pub fn eval_tau(&mut self, q: &[f64], tau: f64) -> bool {
        self.eval_tau_with(q, tau, &mut NoProbe)
    }

    /// τKDV with an instrumentation [`Probe`] (see
    /// [`RefineEvaluator::eval_eps_with`]).
    ///
    /// # Panics
    /// Panics if `tau` is not finite.
    pub fn eval_tau_with<P: Probe>(&mut self, q: &[f64], tau: f64, probe: &mut P) -> bool {
        assert!(tau.is_finite(), "τ must be finite");
        let (lb, ub, _) = self.refine(q, StopRule::Tau(tau), None, probe, |_, _| {});
        // Termination gives lb ≥ τ (above) or ub ≤ τ (below); when both
        // hold (lb = ub = τ) the ≥ branch matches exact classification.
        if lb >= tau {
            true
        } else {
            debug_assert!(ub <= tau);
            false
        }
    }

    /// Fallible τKDV: rejects a non-finite or negative τ, a wrong-
    /// dimension query, and non-finite query coordinates with a
    /// structured [`KdvError`] instead of panicking.
    pub fn try_eval_tau(&mut self, q: &[f64], tau: f64) -> Result<bool, KdvError> {
        let tau = validate_tau(tau)?;
        validate_query_point(q, self.tree.points().dim())?;
        let (lb, _ub, _) = self.refine(q, StopRule::Tau(tau), None, &mut NoProbe, |_, _| {});
        Ok(lb >= tau)
    }

    /// Exact `F_P(q)` by fully refining (used for ground truth in tests
    /// and quality experiments; prefer [`crate::method::ExactScan`] for
    /// the paper's EXACT baseline timing).
    pub fn eval_exact(&mut self, q: &[f64]) -> f64 {
        let (lb, _ub, _) = self.refine(q, StopRule::Exhaust, None, &mut NoProbe, |_, _| {});
        lb
    }

    /// Core loop of §3.2/Table 3. Returns final `(lb, ub, exhausted)`;
    /// `exhausted` is only ever `true` when a budget was supplied.
    fn refine<P: Probe>(
        &mut self,
        q: &[f64],
        rule: StopRule,
        budget: Option<&mut RenderBudget>,
        probe: &mut P,
        mut observe: impl FnMut(f64, f64),
    ) -> (f64, f64, bool) {
        assert_eq!(
            q.len(),
            self.tree.points().dim(),
            "query dimensionality mismatch"
        );
        self.heap.clear();
        self.stats = RefineStats {
            simd_lanes: kdv_geom::simd::simd_lanes(),
            ..RefineStats::default()
        };
        // Translate q once into the shared centered frame. The buffer is
        // moved out for the duration of the loop (it must be borrowable
        // alongside `&mut self.heap`) and restored on every exit path.
        let mut qt = std::mem::take(&mut self.qt);
        qt.resize(q.len(), 0.0);
        self.tree
            .node(self.tree.root())
            .stats
            .translate_query(q, &mut qt);
        let result = self.refine_loop(q, &qt, rule, budget, probe, &mut observe);
        self.qt = qt;
        result
    }

    /// The §3.2 loop proper, with the translated query borrowed.
    fn refine_loop<P: Probe>(
        &mut self,
        q: &[f64],
        qt: &[f64],
        rule: StopRule,
        mut budget: Option<&mut RenderBudget>,
        probe: &mut P,
        observe: &mut impl FnMut(f64, f64),
    ) -> (f64, f64, bool) {
        let root = self.tree.root();
        let rb = self.bounds_of(root, q, qt);
        self.stats.node_bounds += 1;
        probe.node_bound();
        if let Some(b) = budget.as_deref_mut() {
            b.charge(1);
        }
        self.push(root, rb, 0);

        // Global bounds are kept incrementally:
        //   lb = exact_acc + Σ_{heap} lb_i,   ub = exact_acc + Σ_{heap} ub_i.
        //
        // Two sources of unsoundness are handled explicitly:
        //
        // * Splitting a node can momentarily *loosen* one side
        //   (children's quadratic bounds need not dominate the parent's
        //   sum), so the reported bounds are the monotone envelope —
        //   every snapshot is a valid bracket of F, hence so are the
        //   running max/min.
        // * Incremental `+=`/`-=` updates leave absolute rounding
        //   residue of the *largest* magnitudes that ever passed through
        //   the sums. At low-density pixels the true remaining sum can
        //   be many orders below that residue (the drift even turns
        //   `ub_sum` negative). `err` conservatively tracks the total
        //   absolute rounding error, the reported bounds are widened by
        //   it, and the sums are recomputed from the heap whenever the
        //   error stops being negligible.
        let mut exact_acc = 0.0;
        let mut lb_sum = rb.lb;
        let mut ub_sum = rb.ub;
        let mut err = 0.0f64;
        let mut best_lb = f64::NEG_INFINITY;
        let mut best_ub = f64::INFINITY;

        loop {
            // A probe may force an (idempotent) resync — the chaos
            // suite's cheapest fault-injection point. `NoProbe` returns
            // a constant `false` and the whole branch folds away.
            let forced = probe.force_resync();
            if forced || err > RESYNC_REL * (lb_sum.abs() + ub_sum.abs()) {
                lb_sum = self.heap.iter().map(|e| e.lb).sum();
                ub_sum = self.heap.iter().map(|e| e.ub).sum();
                // Error of freshly summing k same-sign values.
                err = EPS_MACH * self.heap.len() as f64 * (lb_sum.abs() + ub_sum.abs());
                self.stats.resyncs += 1;
                probe.resync();
                if let Some(b) = budget.as_deref_mut() {
                    b.charge(1);
                }
            }
            best_lb = best_lb.max(exact_acc + lb_sum - err);
            best_ub = best_ub.min(exact_acc + ub_sum + err);
            observe(best_lb, best_ub);
            match rule {
                StopRule::Eps(eps) => {
                    if best_ub <= (1.0 + eps) * best_lb {
                        return (best_lb, best_ub, false);
                    }
                }
                StopRule::Abs(t) => {
                    if best_ub - best_lb <= 2.0 * t {
                        return (best_lb, best_ub, false);
                    }
                }
                StopRule::Tau(tau) => {
                    // Strict `<` on the upper side: at `F = τ` exactly the
                    // query must refine to exhaustion and answer "hot".
                    if best_lb >= tau || best_ub < tau {
                        return (best_lb, best_ub, false);
                    }
                }
                StopRule::Exhaust => {}
            }
            // Budget exhaustion is checked *after* the envelope update,
            // so the returned bracket always reflects at least the root
            // bounds and every snapshot is a valid bracket of F.
            if budget.as_deref().is_some_and(RenderBudget::is_exhausted) {
                return (best_lb, best_ub, true);
            }

            let Some(entry) = self.heap.pop() else {
                // Everything is exact: lb == ub == F(q).
                return (exact_acc, exact_acc, false);
            };
            self.stats.iterations += 1;
            probe.heap_pop();
            probe.node_visit(entry.depth);
            let mut units = 1u64;

            match self.tree.node(entry.node).kind {
                NodeKind::Leaf { .. } => {
                    let (exact, points) = self.exact_leaf(entry.node, q);
                    exact_acc += exact;
                    lb_sum -= entry.lb;
                    ub_sum -= entry.ub;
                    err += EPS_MACH
                        * (lb_sum.abs()
                            + ub_sum.abs()
                            + entry.lb.abs()
                            + entry.ub.abs()
                            + exact_acc);
                    self.stats.exact_leaves += 1;
                    self.stats.point_evals += points;
                    probe.leaf_scan(points);
                    units += points as u64;
                }
                NodeKind::Internal { left, right } => {
                    let bl = self.bounds_of(left, q, qt);
                    let br = self.bounds_of(right, q, qt);
                    self.stats.node_bounds += 2;
                    probe.node_bound();
                    probe.node_bound();
                    lb_sum += bl.lb + br.lb - entry.lb;
                    ub_sum += bl.ub + br.ub - entry.ub;
                    err += EPS_MACH
                        * (lb_sum.abs()
                            + ub_sum.abs()
                            + entry.lb.abs()
                            + entry.ub.abs()
                            + bl.ub
                            + br.ub);
                    self.push(left, bl, entry.depth + 1);
                    self.push(right, br, entry.depth + 1);
                    units += 2;
                }
            }
            if let Some(b) = budget.as_deref_mut() {
                b.charge(units);
            }
        }
    }

    #[inline]
    fn bounds_of(&self, id: NodeId, q: &[f64], qt: &[f64]) -> Interval {
        let node = self.tree.node(id);
        node_bounds_pre(&self.kernel, self.family, &node.stats, &node.mbr, q, qt)
    }

    #[inline]
    fn push(&mut self, node: NodeId, b: Interval, depth: u32) {
        self.heap.push(Entry {
            gap: b.gap(),
            node,
            lb: b.lb,
            ub: b.ub,
            depth,
        });
    }

    /// Exact kernel aggregation over one leaf's contiguous points;
    /// returns the sum and the number of point-kernel evaluations.
    ///
    /// Distances come from the tree's column-major view via
    /// [`kdv_geom::simd::dist2_block`] (runtime-dispatched AVX2 or the
    /// bit-identical scalar pass) into a reused scratch buffer; the
    /// kernel transform stays scalar so results never depend on the
    /// dispatch decision.
    fn exact_leaf(&mut self, id: NodeId, q: &[f64]) -> (f64, usize) {
        exact_leaf_scan(self.tree, &self.kernel, id, q, &mut self.d2)
    }
}

/// Exact kernel aggregation over one leaf's contiguous points; shared
/// by the per-pixel evaluator above and the tile-batched one
/// ([`super::tile`]). `d2` is the caller's reusable squared-distance
/// scratch — no allocation once it has grown to the leaf capacity.
pub(super) fn exact_leaf_scan(
    tree: &KdTree,
    kernel: &Kernel,
    id: NodeId,
    q: &[f64],
    d2: &mut Vec<f64>,
) -> (f64, usize) {
    let (start, end) = tree.leaf_range(id);
    let n = end - start;
    d2.clear();
    d2.resize(n, 0.0);
    kdv_geom::simd::dist2_block(tree.columns(), start, end, q, d2);
    let weights = &tree.points().weights()[start..end];
    // The Gaussian profile gets the fused vector primitive (polynomial
    // exp, bit-identical scalar/AVX2); other profiles use their scalar
    // closed forms over the SIMD-computed distances.
    let acc = if matches!(kernel.ty, crate::kernel::KernelType::Gaussian) {
        kdv_geom::simd::gaussian_weighted_sum(weights, d2, kernel.gamma)
    } else {
        let mut acc = 0.0;
        for (&w, &d2) in weights.iter().zip(d2.iter()) {
            acc += w * kernel.eval_dist2(d2);
        }
        acc
    };
    (acc, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::node_bounds;
    use crate::kernel::KernelType;
    use kdv_geom::vecmath::dist2;
    use kdv_geom::PointSet;
    use kdv_index::BuildConfig;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * 2).map(|_| rng.gen_range(-10.0..10.0)).collect();
        PointSet::from_rows(2, &flat)
    }

    fn exact_scan(ps: &PointSet, kernel: &Kernel, q: &[f64]) -> f64 {
        ps.iter()
            .map(|p| p.weight * kernel.eval_dist2(dist2(q, p.coords)))
            .sum()
    }

    #[test]
    fn eps_query_meets_relative_error_contract() {
        let ps = random_points(2000, 35);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 16,
                ..BuildConfig::default()
            },
        );
        let kernel = Kernel::gaussian(0.05);
        for family in BoundFamily::ALL {
            let mut ev = RefineEvaluator::new(&tree, kernel, family);
            for (i, q) in [[0.0, 0.0], [5.0, -3.0], [20.0, 20.0]].iter().enumerate() {
                let eps = 0.01;
                let r = ev.eval_eps(q, eps);
                let f = exact_scan(&ps, &kernel, q);
                let rel = (r - f).abs() / f.max(1e-300);
                assert!(rel <= eps + 1e-9, "{family:?} query {i}: rel err {rel} > ε");
            }
        }
    }

    #[test]
    fn tau_query_matches_exact_classification() {
        let ps = random_points(1500, 12);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 16,
                ..BuildConfig::default()
            },
        );
        let kernel = Kernel::gaussian(0.05);
        let f_mid = exact_scan(&ps, &kernel, &[0.0, 0.0]);
        for family in BoundFamily::ALL {
            let mut ev = RefineEvaluator::new(&tree, kernel, family);
            for q in [[0.0, 0.0], [3.0, 3.0], [-8.0, 2.0], [30.0, 0.0]] {
                let f = exact_scan(&ps, &kernel, &q);
                // Thresholds keep a small relative margin from every F(q)
                // — exactly at the boundary the classification depends on
                // floating-point summation order, which no method can
                // promise to reproduce bit-for-bit.
                for tau in [f_mid * 0.5, f_mid * 1.00002, f_mid * 1.5] {
                    if (f - tau).abs() <= 1e-9 * (1.0 + f.abs()) {
                        continue;
                    }
                    assert_eq!(
                        ev.eval_tau(&q, tau),
                        f >= tau,
                        "{family:?}: wrong side of τ = {tau} at {q:?} (F = {f})"
                    );
                }
            }
        }
    }

    #[test]
    fn eval_exact_agrees_with_scan() {
        let ps = random_points(800, 13);
        let tree = KdTree::build_default(&ps);
        for ty in KernelType::ALL {
            let kernel = Kernel::new(ty, 0.3);
            let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
            let q = [1.0, -2.0];
            let f = exact_scan(&ps, &kernel, &q);
            let r = ev.eval_exact(&q);
            assert!(
                (r - f).abs() <= 1e-7 * (1.0 + f.abs()),
                "{ty:?}: exact refinement {r} ≠ scan {f}"
            );
        }
    }

    /// Table 3's running-steps semantics: the trace of global bounds is
    /// monotone (lb never decreases, ub never increases) and converges
    /// onto the exact value; the first iteration holds the root bounds.
    #[test]
    fn table3_running_steps() {
        let ps = random_points(200, 14);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 4,
                ..BuildConfig::default()
            },
        );
        let kernel = Kernel::gaussian(0.02);
        let q = [0.5, 0.5];
        let f = exact_scan(&ps, &kernel, &q);

        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut trace = Vec::new();
        // ε tiny → refine almost to exactness, producing a long trace.
        let r = ev.eval_eps_traced(&q, 1e-9, &mut trace);

        assert!(trace.len() >= 2, "expected multiple refinement steps");
        // Step 1 of Table 3: bounds of the root node alone.
        let root = tree.node(tree.root());
        let rb = node_bounds(&kernel, BoundFamily::Quadratic, &root.stats, &root.mbr, &q);
        assert_eq!(trace[0], (rb.lb, rb.ub));

        for win in trace.windows(2) {
            let (lb0, ub0) = win[0];
            let (lb1, ub1) = win[1];
            assert!(lb1 >= lb0 - 1e-9 * (1.0 + lb0.abs()), "lb regressed");
            assert!(ub1 <= ub0 + 1e-9 * (1.0 + ub0.abs()), "ub regressed");
            assert!(lb1 <= f + 1e-6 * (1.0 + f) && f <= ub1 + 1e-6 * (1.0 + f));
        }
        assert!((r - f).abs() <= 1e-6 * (1.0 + f));
    }

    #[test]
    fn quad_refines_in_fewer_iterations_than_interval() {
        let ps = random_points(5000, 15);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 16,
                ..BuildConfig::default()
            },
        );
        let kernel = Kernel::gaussian(0.02);
        let q = [0.0, 0.0];
        let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut interval = RefineEvaluator::new(&tree, kernel, BoundFamily::Interval);
        quad.eval_eps(&q, 0.01);
        interval.eval_eps(&q, 0.01);
        assert!(
            quad.last_stats().iterations <= interval.last_stats().iterations,
            "QUAD {} should not need more iterations than interval {}",
            quad.last_stats().iterations,
            interval.last_stats().iterations
        );
    }

    #[test]
    fn eval_eps_bounds_bracket_is_tight_and_correct() {
        let ps = random_points(1200, 18);
        let tree = KdTree::build_default(&ps);
        let kernel = Kernel::gaussian(0.05);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let q = [1.0, 1.0];
        let eps = 0.02;
        let (lb, ub) = ev.eval_eps_bounds(&q, eps);
        assert!(ub <= (1.0 + eps) * lb, "bracket not ε-tight: [{lb}, {ub}]");
        let f = exact_scan(&ps, &kernel, &q);
        assert!(lb <= f * (1.0 + 1e-9) && f <= ub * (1.0 + 1e-9));
    }

    #[test]
    fn last_stats_reset_between_queries() {
        let ps = random_points(600, 19);
        let tree = KdTree::build_default(&ps);
        let mut ev = RefineEvaluator::new(&tree, Kernel::gaussian(0.05), BoundFamily::Quadratic);
        ev.eval_eps(&[0.0, 0.0], 1e-6); // deep refinement
        let deep = ev.last_stats().iterations;
        ev.eval_eps(&[0.0, 0.0], 0.5); // shallow refinement
        let shallow = ev.last_stats().iterations;
        assert!(shallow < deep, "stats must reflect only the last query");
    }

    /// A probe that mirrors every event into its own counters.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    struct CountingProbe {
        pops: usize,
        bounds: usize,
        leaves: usize,
        points: usize,
        resyncs: usize,
    }

    impl super::Probe for CountingProbe {
        fn heap_pop(&mut self) {
            self.pops += 1;
        }
        fn node_bound(&mut self) {
            self.bounds += 1;
        }
        fn leaf_scan(&mut self, points: usize) {
            self.leaves += 1;
            self.points += points;
        }
        fn resync(&mut self) {
            self.resyncs += 1;
        }
    }

    #[test]
    fn probe_events_match_refine_stats() {
        let ps = random_points(3000, 21);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 8,
                ..BuildConfig::default()
            },
        );
        let kernel = Kernel::gaussian(0.03);
        for family in BoundFamily::ALL {
            let mut ev = RefineEvaluator::new(&tree, kernel, family);
            let mut probe = CountingProbe::default();
            ev.eval_eps_with(&[0.3, -0.7], 1e-4, &mut probe);
            let stats = ev.last_stats();
            assert_eq!(probe.pops, stats.iterations, "{family:?} pops");
            assert_eq!(probe.bounds, stats.node_bounds, "{family:?} bounds");
            assert_eq!(probe.leaves, stats.exact_leaves, "{family:?} leaves");
            assert_eq!(probe.points, stats.point_evals, "{family:?} points");
            assert_eq!(probe.resyncs, stats.resyncs, "{family:?} resyncs");
        }
    }

    #[test]
    fn probed_query_is_bit_identical_to_unprobed() {
        let ps = random_points(2500, 22);
        let tree = KdTree::build_default(&ps);
        let kernel = Kernel::gaussian(0.05);
        let mut plain = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut probed = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut probe = CountingProbe::default();
        for q in [[0.0, 0.0], [4.0, -6.0], [12.0, 12.0]] {
            let a = plain.eval_eps(&q, 0.01);
            let b = probed.eval_eps_with(&q, 0.01, &mut probe);
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "probe changed the result at {q:?}"
            );
            assert_eq!(plain.last_stats(), probed.last_stats());
            assert_eq!(
                plain.eval_tau(&q, a),
                probed.eval_tau_with(&q, a, &mut probe),
                "probe changed τ classification at {q:?}"
            );
        }
        assert!(probe.pops > 0, "deep queries must pop nodes");
    }

    #[test]
    fn stats_count_bound_evaluations_and_work() {
        let ps = random_points(1000, 23);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 8,
                ..BuildConfig::default()
            },
        );
        let mut ev = RefineEvaluator::new(&tree, Kernel::gaussian(0.05), BoundFamily::Quadratic);
        ev.eval_eps(&[0.0, 0.0], 1e-6);
        let s = ev.last_stats();
        // Every pop of an internal node evaluates two child bounds, plus
        // one evaluation for the root before the loop.
        assert_eq!(
            s.node_bounds,
            1 + 2 * (s.iterations - s.exact_leaves),
            "node-bound count must be 1 + 2·internal pops: {s:?}"
        );
        assert!(s.point_evals > 0, "deep refinement scans leaf points");
        assert_eq!(
            s.total_work(),
            s.iterations + s.node_bounds + s.point_evals + s.resyncs
        );
        // A shallow query must reset *all* counters, not just pops.
        ev.eval_eps(&[100.0, 100.0], 0.9);
        assert!(ev.last_stats().total_work() < s.total_work());
    }

    #[test]
    fn try_eval_rejects_bad_input_without_panicking() {
        let ps = random_points(50, 31);
        let tree = KdTree::build_default(&ps);
        let mut ev = RefineEvaluator::new(&tree, Kernel::gaussian(1.0), BoundFamily::Quadratic);
        assert!(matches!(
            ev.try_eval_eps(&[0.0, 0.0], 0.0),
            Err(KdvError::InvalidParameter { name: "eps", .. })
        ));
        assert!(matches!(
            ev.try_eval_eps(&[0.0, 0.0], f64::NAN),
            Err(KdvError::InvalidParameter { name: "eps", .. })
        ));
        assert!(matches!(
            ev.try_eval_eps(&[0.0], 0.01),
            Err(KdvError::DimensionMismatch {
                got: 1,
                expected: 2
            })
        ));
        assert!(matches!(
            ev.try_eval_eps(&[f64::NAN, 0.0], 0.01),
            Err(KdvError::NonFiniteData { .. })
        ));
        assert!(matches!(
            ev.try_eval_tau(&[0.0, 0.0], -1.0),
            Err(KdvError::InvalidParameter { name: "tau", .. })
        ));
        assert!(matches!(
            ev.try_eval_tau(&[0.0, 0.0], f64::INFINITY),
            Err(KdvError::InvalidParameter { name: "tau", .. })
        ));
        // Valid input still works and matches the panicking twins.
        let q = [0.3, 0.3];
        assert_eq!(ev.try_eval_eps(&q, 0.01).unwrap(), ev.eval_eps(&q, 0.01));
        assert_eq!(ev.try_eval_tau(&q, 0.5).unwrap(), ev.eval_tau(&q, 0.5));
        assert_eq!(
            ev.try_eval_eps_bounds(&q, 0.01).unwrap(),
            ev.eval_eps_bounds(&q, 0.01)
        );
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_eval() {
        let ps = random_points(1500, 32);
        let tree = KdTree::build_default(&ps);
        let kernel = Kernel::gaussian(0.05);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut budget = RenderBudget::unlimited();
        for q in [[0.0, 0.0], [5.0, -3.0]] {
            let e = ev.eval_eps_budgeted(&q, 0.01, &mut budget).unwrap();
            assert!(!e.exhausted);
            assert_eq!(e.estimate().to_bits(), ev.eval_eps(&q, 0.01).to_bits());
            assert!(budget.work_done() > 0, "work must be accounted");
        }
    }

    #[test]
    fn exhausted_budget_still_brackets_truth() {
        let ps = random_points(3000, 33);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 8,
                ..BuildConfig::default()
            },
        );
        let kernel = Kernel::gaussian(0.02);
        let q = [0.0, 0.0];
        let f = exact_scan(&ps, &kernel, &q);
        for cap in [1, 10, 100, 1000] {
            let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
            let mut budget = RenderBudget::unlimited().with_max_work(cap);
            let e = ev.eval_eps_budgeted(&q, 1e-9, &mut budget).unwrap();
            assert!(e.exhausted, "cap {cap} far below the work a 1e-9 ε needs");
            assert!(
                e.lb <= f * (1.0 + 1e-9) && f <= e.ub * (1.0 + 1e-9),
                "cap {cap}: bracket [{}, {}] must contain F = {f}",
                e.lb,
                e.ub
            );
            assert!(
                (e.estimate() - f).abs() <= e.half_gap() + 1e-12 * (1.0 + f.abs()),
                "cap {cap}: half-gap must certify the estimate's error"
            );
            // The loop may overshoot by at most one iteration's units
            // (bounded by leaf capacity), never run away.
            assert!(budget.work_done() <= cap + 16, "cap {cap} overshot");
        }
    }

    #[test]
    fn abs_tolerance_certifies_absolute_error() {
        let ps = random_points(2000, 36);
        let tree = KdTree::build_default(&ps);
        let kernel = Kernel::gaussian(0.05);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let w: f64 = ps.iter().map(|p| p.weight).sum();
        for q in [[0.0, 0.0], [5.0, -3.0], [25.0, 25.0]] {
            let f = exact_scan(&ps, &kernel, &q);
            for tol in [1e-2 * w, 1e-5 * w] {
                let mut budget = RenderBudget::unlimited();
                let e = ev.eval_abs_budgeted(&q, tol, &mut budget).unwrap();
                assert!(!e.exhausted);
                assert!(e.ub - e.lb <= 2.0 * tol + 1e-12 * (1.0 + f.abs()));
                assert!(
                    (e.estimate() - f).abs() <= tol + 1e-12 * (1.0 + f.abs()),
                    "abs tol {tol} violated at {q:?}: {} vs {f}",
                    e.estimate()
                );
            }
        }
        // Structured rejection, no panic.
        let mut budget = RenderBudget::unlimited();
        assert!(ev.eval_abs_budgeted(&[0.0, 0.0], 0.0, &mut budget).is_err());
        assert!(ev
            .eval_abs_budgeted(&[0.0, 0.0], f64::NAN, &mut budget)
            .is_err());
    }

    #[test]
    fn budgeted_tau_degrades_to_midpoint_guess() {
        let ps = random_points(3000, 34);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 8,
                ..BuildConfig::default()
            },
        );
        let kernel = Kernel::gaussian(0.02);
        let q = [0.0, 0.0];
        let f = exact_scan(&ps, &kernel, &q);
        // τ right at F forces deep refinement; a tiny budget cannot decide.
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut tiny = RenderBudget::unlimited().with_max_work(3);
        let t = ev.eval_tau_budgeted(&q, f, &mut tiny).unwrap();
        assert!(!t.decided, "3 work units cannot decide τ = F exactly");
        // An unlimited budget decides, and agrees with the exact answer.
        let mut unlimited = RenderBudget::unlimited();
        let t2 = ev.eval_tau_budgeted(&q, f * 0.5, &mut unlimited).unwrap();
        assert!(t2.decided && t2.hot);
    }

    /// A probe recording only the depth stream of popped nodes.
    #[derive(Default)]
    struct DepthRecorder {
        depths: Vec<u32>,
    }

    impl super::Probe for DepthRecorder {
        fn node_visit(&mut self, depth: u32) {
            self.depths.push(depth);
        }
    }

    #[test]
    fn node_visit_attributes_every_pop_to_a_depth() {
        let ps = random_points(3000, 41);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 8,
                ..BuildConfig::default()
            },
        );
        let mut ev = RefineEvaluator::new(&tree, Kernel::gaussian(0.03), BoundFamily::Quadratic);
        let mut probe = DepthRecorder::default();
        ev.eval_eps_with(&[0.3, -0.7], 1e-4, &mut probe);
        let stats = ev.last_stats();
        assert_eq!(
            probe.depths.len(),
            stats.iterations,
            "one depth per heap pop"
        );
        assert_eq!(probe.depths[0], 0, "the first pop is always the root");
        // Best-first order can jump around, but a popped node is only
        // ever one level below something already popped.
        let mut deepest = 0u32;
        for &d in &probe.depths {
            assert!(d <= deepest + 1, "depth {d} popped before its parent");
            deepest = deepest.max(d);
        }
        let max_depth = *probe.depths.iter().max().expect("non-empty");
        assert!(max_depth > 2, "a deep ε must descend several levels");
        // Depths are dense: every level up to the max was visited.
        for d in 0..=max_depth {
            assert!(
                probe.depths.contains(&d),
                "depth {d} skipped on the way to {max_depth}"
            );
        }
    }

    /// A probe whose only job is to force a resync every iteration.
    /// Resyncs replace the incremental sums with freshly computed ones
    /// inside the tracked error envelope, so forcing them on every
    /// iteration may perturb rounding at machine precision but can
    /// never move a result beyond the ε contract.
    #[derive(Default)]
    struct ResyncStorm {
        forced: usize,
    }

    impl super::Probe for ResyncStorm {
        fn force_resync(&mut self) -> bool {
            self.forced += 1;
            true
        }
    }

    #[test]
    fn forced_resyncs_never_change_results() {
        let ps = random_points(2000, 35);
        let tree = KdTree::build_default(&ps);
        let kernel = Kernel::gaussian(0.05);
        let mut plain = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut stormy = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut probe = ResyncStorm::default();
        for q in [[0.0, 0.0], [4.0, -6.0], [12.0, 12.0]] {
            let a = plain.eval_eps(&q, 0.01);
            let b = stormy.eval_eps_with(&q, 0.01, &mut probe);
            // Resync timing changes *when* sums are recomputed, so the
            // two trajectories may differ by rounding noise — but only
            // at machine precision, orders below the ε = 0.01 contract.
            let rel = (a - b).abs() / a.abs().max(f64::MIN_POSITIVE);
            assert!(rel < 1e-12, "forced resync moved {q:?}: {a} vs {b}");
            let f = exact_scan(&ps, &kernel, &q);
            assert!(
                (b - f).abs() <= 0.01 * f + 1e-9 * (1.0 + f.abs()),
                "stormy result violates the ε contract at {q:?}: {b} vs {f}"
            );
        }
        assert!(probe.forced > 0);
        assert!(stormy.last_stats().resyncs > plain.last_stats().resyncs);
    }

    #[test]
    #[should_panic(expected = "ε must be positive")]
    fn zero_eps_panics() {
        let ps = random_points(10, 16);
        let tree = KdTree::build_default(&ps);
        let mut ev = RefineEvaluator::new(&tree, Kernel::gaussian(1.0), BoundFamily::Quadratic);
        ev.eval_eps(&[0.0, 0.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_query_dim_panics() {
        let ps = random_points(10, 17);
        let tree = KdTree::build_default(&ps);
        let mut ev = RefineEvaluator::new(&tree, Kernel::gaussian(1.0), BoundFamily::Quadratic);
        ev.eval_eps(&[0.0, 0.0, 0.0], 0.01);
    }
}

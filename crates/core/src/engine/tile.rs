//! Tile-batched refinement: one shared node frontier per pixel block.
//!
//! The per-pixel evaluator ([`super::RefineEvaluator`]) restarts every
//! query at the kd-tree root, so neighboring pixels of a tile re-pop
//! and re-bound the same top-of-tree nodes thousands of times. This
//! module amortizes that work across a whole tile:
//!
//! 1. **Shared frontier.** A pixel block's centers span an axis-aligned
//!    query box. [`crate::bounds::box_bounds`] brackets a node's
//!    contribution for *every* query in that box at once, so the block
//!    maintains one frontier of nodes with box-valid intervals and
//!    refines it best-first — each split is paid once per block instead
//!    of once per pixel.
//! 2. **Wholesale decisions.** When the frontier's summed box interval
//!    already meets the stop rule (`ub ≤ (1+ε)·lb`, or τ cleared on
//!    either side), every pixel of the block is decided in O(1).
//! 3. **Quadrant recursion.** Otherwise the block splits into four
//!    quadrants; each child re-brackets the inherited frontier against
//!    its smaller box (bounds only tighten) and recurses.
//! 4. **Node-major per-pixel finish.** At small blocks
//!    ([`MIN_PIXELS`]) the block keeps *one* flat frontier and refines
//!    it best-first, but each refinement step is evaluated for **all
//!    still-undecided pixels in one pass**: the node's moment
//!    statistics stay hot in registers while the pixel queries stream
//!    through a contiguous loop — no per-pixel heap, no per-pixel
//!    descent, and `translate_query` runs once per pixel per block
//!    instead of once per bound evaluation. Frontier nodes start with
//!    their *box* interval (valid for every pixel, already paid for by
//!    the block, zero marginal cost); a node is first *re-bounded
//!    per-query* when the scheduler picks it (one bound evaluation per
//!    undecided pixel, no split), and only split — or exact-scanned,
//!    for leaves — on a later pick. Nodes still box-bounded when a
//!    pixel decides are counted in [`RefineStats::frontier_reuse`].
//!    The pass itself is laid out structure-of-arrays: per-pixel
//!    exponent arguments are gathered into flat scratch, evaluated by
//!    one polynomial-`exp` sweep ([`kdv_geom::simd::exp_neg_map`],
//!    four f64 lanes under AVX2, bit-identical scalar fallback), and
//!    — for the quadratic family — assembled into certified intervals
//!    by the vectorized [`kdv_geom::simd::gauss_quad_assemble`]
//!    (same closed forms and rounding pads as the scalar
//!    [`gaussian_bounds_from_exps`], pinned bit-identical by test).
//!
//! ## The guarantees are unchanged
//!
//! Every interval this module reports — box sums, per-pixel brackets —
//! is a certified bracket of `F(q)` for its pixel, so εKDV answers
//! keep the `(1±ε)` contract and τKDV masks are exact. Box bounds are
//! sound for every query in the block, per-query re-bounding only
//! tightens, and the decision rules are evaluated on the same monotone
//! envelope as the per-pixel path. [`RenderBudget`] exhaustion
//! degrades exactly as in the per-pixel path: remaining pixels report
//! the block's current box interval — a valid bracket — flagged
//! `exhausted`/undecided.
//!
//! Shared (block-level) work is charged to the budget and reported to
//! the [`Probe`] as it happens; per-pixel [`RefineStats`] cover only
//! each pixel's own finishing work plus the new
//! [`RefineStats::frontier_reuse`] counter, which tallies the bound
//! evaluations the pixel *skipped* thanks to the shared frontier.

use super::budget::{BudgetedEval, BudgetedTau, RenderBudget};
use super::probe::{NoProbe, Probe};
use super::refine::{exact_leaf_scan, EPS_MACH, RESYNC_REL};
use super::RefineStats;
use crate::bounds::{
    box_bounds, gaussian_bounds_from_exps, gaussian_interval_from_exps, node_bounds_pre,
    BoundFamily,
};
use crate::kernel::{Kernel, KernelType};
use crate::query::{validate_eps, validate_tau};
use crate::raster::RasterSpec;
use kdv_geom::Mbr;
use kdv_index::{KdTree, Node, NodeId, NodeKind};
use std::collections::BinaryHeap;

/// Blocks at or below this many pixels stop recursing and finish
/// per-pixel (an 8×8 quadrant of a 128-px tile).
const MIN_PIXELS: u32 = 64;

/// Hard cap on the shared frontier length. Beyond this, seeding a
/// per-pixel finish would cost more than it saves.
const FRONTIER_CAP: usize = 512;

/// Shared frontier splits allowed per *tight-box* block visit;
/// children inherit the refined frontier, so deep work is paid once.
const SHARED_SPLITS_PER_BLOCK: usize = 192;

/// Frontier cap and per-visit split budget for *loose-box* blocks.
/// When the block box is wide at the kernel's scale (low zoom: the
/// whole dataset in view), box bounds barely tighten under splitting —
/// a deep shared frontier just burns box evaluations and bloats the
/// finish seeding — so the shared phase stays shallow and leaves the
/// work to the per-query finish.
const FRONTIER_CAP_LOOSE: usize = 192;
const SHARED_SPLITS_LOOSE: usize = 48;

/// Box-tightness threshold separating the two budgets: the kernel-
/// scaled squared diagonal of a *finish-size* (8×8) block's query box
/// (`γ·diag²` for the Gaussian's `x = γ·d²` argument, `γ²·diag²` for
/// distance kernels' `x = γ·d`). Below it, a node's box interval over
/// a finish block is close to its per-query interval anywhere in the
/// block, so deep shared splits — paid once near the tile root,
/// inherited by every descendant block — substitute for per-pixel
/// ones. Above it even the finish blocks cannot use the depth, so the
/// whole tile stays shallow. Measured on the 20k crime dataset, 8×8
/// blocks sit at ~2.0 for z=0, ~0.5 at z=1 and ≤0.13 from z=2 in —
/// the threshold splits exactly there. The choice is evaluated once
/// per tile (not per block): a tight finish level must inherit the
/// deep frontier from the loose upper levels, not rebuild it 256
/// times.
const TIGHT_BOX_SCALE: f64 = 0.3;

/// Subtrees at or below this many points are exact-scanned instead of
/// split when the finish scheduler picks them: a split costs two
/// exp-heavy bound evaluations per undecided pixel *and* usually
/// cascades, while the vectorized scan retires the node outright at
/// ~4 points per lane-exp.
const SCAN_CUTOFF: usize = 48;

/// One frontier node with its interval over the *block's* query box.
#[derive(Debug, Clone, Copy)]
struct BlockNode {
    node: NodeId,
    depth: u32,
    lb: f64,
    ub: f64,
}

impl BlockNode {
    #[inline]
    fn gap(&self) -> f64 {
        self.ub - self.lb
    }
}

/// A frontier node of the node-major finish. Its per-pixel interval
/// lives either in the `lb`/`ub` constants (state [`BOXED`]: the
/// block-box interval, identical for every pixel) or in an arena row
/// of per-query intervals (state [`BOUNDED`]).
#[derive(Debug, Clone, Copy)]
struct FNode {
    node: NodeId,
    depth: u32,
    /// [`BOXED`] → [`BOUNDED`] → [`RETIRED`]; candidates carry the
    /// state they were enqueued at, so stale heap entries self-skip.
    state: u8,
    /// Block-box interval (the per-pixel seed while `state == BOXED`).
    lb: f64,
    ub: f64,
    /// Arena row slot (valid while `state == BOUNDED`).
    row: u32,
}

const BOXED: u8 = 0;
const BOUNDED: u8 = 1;
const RETIRED: u8 = 2;

/// Scheduler candidate: largest score refined first. The score is the
/// box gap for a boxed node and the largest per-query gap over the
/// undecided pixels after re-bounding — both upper-bound how much any
/// single pixel can gain from refining this node next.
#[derive(Debug, Clone, Copy)]
struct Cand {
    score: f64,
    idx: u32,
    state: u8,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score.total_cmp(&other.score)
    }
}

/// All scratch of the node-major finish, pooled across blocks and
/// tiles (cleared, never shrunk).
#[derive(Debug, Default)]
struct FinishScratch {
    /// Flat frontier (retired nodes stay; the arena slot is recycled).
    fnodes: Vec<FNode>,
    /// Max-score scheduler over `fnodes`, with lazy invalidation.
    cands: BinaryHeap<Cand>,
    /// Row arena: slot `s` holds `2 * npix` values — per-pixel lower
    /// bounds at `[s*stride ..]`, upper bounds at `[s*stride + npix ..]`.
    rows: Vec<f64>,
    free_rows: Vec<u32>,
    /// Pixel centers (x, y interleaved) and their translated copies.
    qs: Vec<f64>,
    qts: Vec<f64>,
    /// Per-pixel running state: interval sums, incremental rounding
    /// error, exact accumulator, monotone decision envelope.
    lb: Vec<f64>,
    ub: Vec<f64>,
    err: Vec<f64>,
    exact: Vec<f64>,
    best_lb: Vec<f64>,
    best_ub: Vec<f64>,
    stats: Vec<RefineStats>,
    /// Local indices of pixels not yet decided.
    undecided: Vec<u32>,
    /// Subtree-walk scratch for the scan cutoff.
    walk: Vec<NodeId>,
    leaves: Vec<NodeId>,
    /// Batched-bound gather buffers: exp arguments
    /// (`x_min | x_max | t`, one third each), their exps, the
    /// moment contractions (`sx | sx2`, one half each), and the
    /// assembled per-pixel bounds before their scatter into the arena
    /// row.
    bxs: Vec<f64>,
    bes: Vec<f64>,
    bsx: Vec<f64>,
    blb: Vec<f64>,
    bub: Vec<f64>,
}

impl FinishScratch {
    fn alloc_row(&mut self, stride: usize) -> u32 {
        if let Some(s) = self.free_rows.pop() {
            s
        } else {
            let s = (self.rows.len() / stride) as u32;
            self.rows.resize(self.rows.len() + stride, 0.0);
            s
        }
    }

    /// Fills arena row `base` with per-query bounds of `nd` for every
    /// undecided pixel, returning the largest per-query gap (the
    /// node's new scheduler score).
    ///
    /// For the Gaussian kernel the exp-heavy half of the bound is
    /// batched: one gather pass collects each pixel's three exp
    /// arguments (`x_min`, `x_max`, tangent `t`), one
    /// [`kdv_geom::simd::exp_neg_map`] call evaluates them four lanes
    /// at a time, and a scalar pass assembles the certified intervals
    /// via [`gaussian_bounds_from_exps`] — no libm in the loop. Other
    /// kernels fall back to per-pixel [`node_bounds_pre`].
    fn bound_row(
        &mut self,
        kernel: &Kernel,
        family: BoundFamily,
        nd: &Node,
        base: usize,
        npix: usize,
    ) -> f64 {
        let (stats, mbr) = (&nd.stats, &nd.mbr);
        let w = stats.weight;
        let n = self.undecided.len();
        let mut score = 0.0f64;
        if w <= 0.0 {
            for &p in &self.undecided {
                let p = p as usize;
                self.rows[base + p] = 0.0;
                self.rows[base + npix + p] = 0.0;
            }
            return score;
        }
        if !matches!(kernel.ty, KernelType::Gaussian) {
            for &p in &self.undecided {
                let p = p as usize;
                let b = node_bounds_pre(
                    kernel,
                    family,
                    stats,
                    mbr,
                    &self.qs[2 * p..2 * p + 2],
                    &self.qts[2 * p..2 * p + 2],
                );
                self.rows[base + p] = b.lb;
                self.rows[base + npix + p] = b.ub;
                score = score.max(b.gap());
            }
            return score;
        }
        let g = kernel.gamma;
        self.bxs.clear();
        self.bxs.resize(3 * n, 0.0);
        self.bsx.clear();
        self.bsx.resize(2 * n, 0.0);
        if stats.dim() == 2 {
            // 2-D fast path: the d-generic MBR distances and moment
            // contractions unrolled by hand with the *same*
            // accumulation order (bit-equal results), node moments
            // hoisted into locals so the pixel loop touches no `Vec`
            // indirection. This loop runs once per pixel per bound
            // evaluation — the hottest scalar code on a cold render.
            let (lo0, lo1) = (mbr.lo()[0], mbr.lo()[1]);
            let (hi0, hi1) = (mbr.hi()[0], mbr.hi()[1]);
            let (a0, a1) = (stats.sum[0], stats.sum[1]);
            let (v0, v1) = (stats.sum_norm2_p[0], stats.sum_norm2_p[1]);
            let (c00, c01) = (stats.moment2[0], stats.moment2[1]);
            let (c10, c11) = (stats.moment2[2], stats.moment2[3]);
            let (b2, h4) = (stats.sum_norm2, stats.sum_norm4);
            for (k, &p) in self.undecided.iter().enumerate() {
                let p = p as usize;
                let (q0, q1) = (self.qs[2 * p], self.qs[2 * p + 1]);
                let (t0, t1) = (self.qts[2 * p], self.qts[2 * p + 1]);
                let d0 = if q0 < lo0 {
                    lo0 - q0
                } else if q0 > hi0 {
                    q0 - hi0
                } else {
                    0.0
                };
                let d1 = if q1 < lo1 {
                    lo1 - q1
                } else if q1 > hi1 {
                    q1 - hi1
                } else {
                    0.0
                };
                let x_min = g * (d0 * d0 + d1 * d1);
                let (f0a, f0b) = ((q0 - lo0).abs(), (q0 - hi0).abs());
                let (f1a, f1b) = ((q1 - lo1).abs(), (q1 - hi1).abs());
                let e0 = if f0a > f0b { f0a } else { f0b };
                let e1 = if f1a > f1b { f1a } else { f1b };
                let x_max = g * (e0 * e0 + e1 * e1);
                let (sx, sx2) = match family {
                    BoundFamily::Interval => (0.0, 0.0),
                    BoundFamily::Linear => {
                        let qn2 = t0 * t0 + t1 * t1;
                        let qa = t0 * a0 + t1 * a1;
                        let s2 = (w * qn2 - 2.0 * qa + b2).max(0.0);
                        ((g * s2).clamp(w * x_min, w * x_max), 0.0)
                    }
                    BoundFamily::Quadratic => {
                        let qn2 = t0 * t0 + t1 * t1;
                        let qa = t0 * a0 + t1 * a1;
                        let qv = t0 * v0 + t1 * v1;
                        let s2 = (w * qn2 - 2.0 * qa + b2).max(0.0);
                        let qcq = t0 * (c00 * t0 + c01 * t1) + t1 * (c10 * t0 + c11 * t1);
                        let s4 = (w * qn2 * qn2 - 4.0 * qn2 * qa - 4.0 * qv
                            + 2.0 * qn2 * b2
                            + h4
                            + 4.0 * qcq)
                            .max(0.0);
                        (
                            (g * s2).clamp(w * x_min, w * x_max),
                            (g * g * s4).clamp(w * x_min * x_min, w * x_max * x_max),
                        )
                    }
                };
                self.bxs[k] = x_min;
                self.bxs[n + k] = x_max;
                self.bxs[2 * n + k] = if matches!(family, BoundFamily::Interval) {
                    0.0
                } else {
                    (sx / w).clamp(x_min, x_max)
                };
                self.bsx[k] = sx;
                self.bsx[n + k] = sx2;
            }
        } else {
            for (k, &p) in self.undecided.iter().enumerate() {
                let p = p as usize;
                let q = &self.qs[2 * p..2 * p + 2];
                let qt = &self.qts[2 * p..2 * p + 2];
                let x_min = g * mbr.min_dist2(q);
                let x_max = g * mbr.max_dist2(q);
                let (sx, sx2) = match family {
                    BoundFamily::Interval => (0.0, 0.0),
                    BoundFamily::Linear => (
                        (g * stats.sum_dist2_pre(qt)).clamp(w * x_min, w * x_max),
                        0.0,
                    ),
                    BoundFamily::Quadratic => {
                        let (s2, s4) = stats.sum_dist2_dist4_pre(qt);
                        (
                            (g * s2).clamp(w * x_min, w * x_max),
                            (g * g * s4).clamp(w * x_min * x_min, w * x_max * x_max),
                        )
                    }
                };
                self.bxs[k] = x_min;
                self.bxs[n + k] = x_max;
                self.bxs[2 * n + k] = if matches!(family, BoundFamily::Interval) {
                    0.0
                } else {
                    (sx / w).clamp(x_min, x_max)
                };
                self.bsx[k] = sx;
                self.bsx[n + k] = sx2;
            }
        }
        self.bes.clear();
        self.bes.resize(3 * n, 0.0);
        kdv_geom::simd::exp_neg_map(&self.bxs, &mut self.bes);
        if matches!(family, BoundFamily::Quadratic) {
            // The quadratic family — the serving default — also gets
            // vectorized *assembly*: four pixels of parabola
            // coefficients per iteration over the SoA buffers, then a
            // cheap scalar scatter into the arena row.
            self.blb.clear();
            self.blb.resize(n, 0.0);
            self.bub.clear();
            self.bub.resize(n, 0.0);
            kdv_geom::simd::gauss_quad_assemble(
                w,
                &self.bxs[..n],
                &self.bxs[n..2 * n],
                &self.bxs[2 * n..],
                &self.bes[..n],
                &self.bes[n..2 * n],
                &self.bes[2 * n..],
                &self.bsx[..n],
                &self.bsx[n..],
                &crate::bounds::quad_assemble_consts(),
                &mut self.blb,
                &mut self.bub,
            );
            for (k, &p) in self.undecided.iter().enumerate() {
                let p = p as usize;
                let (bl, bu) = (self.blb[k], self.bub[k]);
                self.rows[base + p] = bl;
                self.rows[base + npix + p] = bu;
                score = score.max(bu - bl);
            }
            return score;
        }
        for (k, &p) in self.undecided.iter().enumerate() {
            let p = p as usize;
            let b = gaussian_bounds_from_exps(
                family,
                w,
                self.bxs[k],
                self.bxs[n + k],
                self.bes[k],
                self.bes[n + k],
                self.bsx[k],
                self.bsx[n + k],
                self.bxs[2 * n + k],
                self.bes[2 * n + k],
            );
            self.rows[base + p] = b.lb;
            self.rows[base + npix + p] = b.ub;
            score = score.max(b.gap());
        }
        score
    }
}

/// What the tile is being refined toward.
#[derive(Debug, Clone, Copy)]
enum TileRule {
    Eps(f64),
    Tau(f64),
}

impl TileRule {
    /// Whether the bracket `[lb, ub]` decides *every* query it covers.
    #[inline]
    fn decides(&self, lb: f64, ub: f64) -> bool {
        match *self {
            TileRule::Eps(eps) => ub <= (1.0 + eps) * lb,
            // Strict `<` above τ mirrors the per-pixel rule: F = τ is
            // hot, so only `ub < τ` may classify cold.
            TileRule::Tau(tau) => lb >= tau || ub < tau,
        }
    }
}

/// One εKDV tile evaluated by the batched path: per-pixel certified
/// brackets and per-pixel finishing stats, both row-major over the
/// tile raster.
#[derive(Debug, Clone)]
pub struct TileEps {
    /// Certified `[lb, ub]` bracket (and exhaustion flag) per pixel.
    pub evals: Vec<BudgetedEval>,
    /// Per-pixel finishing stats (see the module docs for what shared
    /// work is and is not attributed here).
    pub stats: Vec<RefineStats>,
}

/// One τKDV tile evaluated by the batched path (row-major).
#[derive(Debug, Clone)]
pub struct TileTau {
    /// Classification per pixel.
    pub taus: Vec<BudgetedTau>,
    /// Per-pixel finishing stats.
    pub stats: Vec<RefineStats>,
}

/// Batched branch-and-bound evaluator for whole pixel tiles.
///
/// Owns all scratch (frontier stacks, node-major finish buffers, SoA
/// exponent/bound arrays) and reuses it across tiles, so rendering
/// allocates only the per-tile output vectors — the steady-state hot
/// path is allocation-free (pinned by `tests/alloc.rs`).
#[derive(Debug)]
pub struct TileEvaluator<'a> {
    tree: &'a KdTree,
    kernel: Kernel,
    family: BoundFamily,
    /// Frontier stack: one `Vec` per active recursion level, pooled.
    frontier_pool: Vec<Vec<BlockNode>>,
    /// Node-major finish scratch, pooled across blocks.
    finish: FinishScratch,
    /// Squared-distance scratch for SoA leaf scans.
    d2: Vec<f64>,
    /// Block-level (shared) work of the most recent tile.
    shared: RefineStats,
    /// Per-tile choice (see [`TIGHT_BOX_SCALE`]): whether the current
    /// tile's finish blocks are tight enough for the deep shared
    /// budget.
    deep_shared: bool,
}

impl<'a> TileEvaluator<'a> {
    /// Creates a tile evaluator using the given kernel and bound
    /// family.
    pub fn new(tree: &'a KdTree, kernel: Kernel, family: BoundFamily) -> Self {
        Self {
            tree,
            kernel,
            family,
            frontier_pool: Vec::new(),
            finish: FinishScratch::default(),
            d2: Vec::new(),
            shared: RefineStats::default(),
            deep_shared: false,
        }
    }

    /// The bound family driving refinement.
    pub fn family(&self) -> BoundFamily {
        self.family
    }

    /// Block-level work of the most recent tile: frontier pops, box
    /// bound evaluations and so on that were shared by many pixels and
    /// therefore are *not* in any pixel's [`RefineStats`]. (They are
    /// reported to the probe and charged to the budget as they
    /// happen.)
    pub fn shared_stats(&self) -> RefineStats {
        self.shared
    }

    /// Evaluates a whole εKDV tile under `budget`.
    ///
    /// Per pixel this upholds exactly the per-pixel budgeted contract:
    /// a certified bracket of `F(q)`, with `ub ≤ (1+ε)·lb` whenever
    /// `exhausted` is false.
    ///
    /// # Panics
    /// Panics if `eps` is invalid or the tree is not 2-D.
    pub fn eval_tile_eps(
        &mut self,
        raster: &RasterSpec,
        eps: f64,
        budget: &mut RenderBudget,
    ) -> TileEps {
        self.eval_tile_eps_with(raster, eps, budget, &mut NoProbe)
    }

    /// [`TileEvaluator::eval_tile_eps`] with a probe receiving every
    /// shared and per-pixel refinement event.
    pub fn eval_tile_eps_with<P: Probe>(
        &mut self,
        raster: &RasterSpec,
        eps: f64,
        budget: &mut RenderBudget,
        probe: &mut P,
    ) -> TileEps {
        validate_eps(eps).expect("invalid eps");
        let n = raster.num_pixels();
        let mut out = vec![
            (
                BudgetedEval {
                    lb: 0.0,
                    ub: 0.0,
                    exhausted: false
                },
                RefineStats::default()
            );
            n
        ];
        self.eval_tile(raster, TileRule::Eps(eps), budget, probe, &mut out);
        let (evals, stats) = out.into_iter().unzip();
        TileEps { evals, stats }
    }

    /// Evaluates a whole τKDV tile under `budget`. With an unlimited
    /// budget every pixel is `decided` and the mask is bit-identical
    /// to the per-pixel path's (both are exact classifications).
    ///
    /// # Panics
    /// Panics if `tau` is invalid or the tree is not 2-D.
    pub fn eval_tile_tau(
        &mut self,
        raster: &RasterSpec,
        tau: f64,
        budget: &mut RenderBudget,
    ) -> TileTau {
        self.eval_tile_tau_with(raster, tau, budget, &mut NoProbe)
    }

    /// [`TileEvaluator::eval_tile_tau`] with a probe.
    pub fn eval_tile_tau_with<P: Probe>(
        &mut self,
        raster: &RasterSpec,
        tau: f64,
        budget: &mut RenderBudget,
        probe: &mut P,
    ) -> TileTau {
        validate_tau(tau).expect("invalid tau");
        let n = raster.num_pixels();
        let mut out = vec![
            (
                BudgetedEval {
                    lb: 0.0,
                    ub: 0.0,
                    exhausted: false
                },
                RefineStats::default()
            );
            n
        ];
        self.eval_tile(raster, TileRule::Tau(tau), budget, probe, &mut out);
        let taus = out
            .iter()
            .map(|(e, _)| {
                if e.exhausted {
                    BudgetedTau {
                        hot: e.estimate() >= tau,
                        decided: false,
                    }
                } else {
                    BudgetedTau {
                        hot: e.lb >= tau,
                        decided: true,
                    }
                }
            })
            .collect();
        let stats = out.into_iter().map(|(_, s)| s).collect();
        TileTau { taus, stats }
    }

    fn eval_tile<P: Probe>(
        &mut self,
        raster: &RasterSpec,
        rule: TileRule,
        budget: &mut RenderBudget,
        probe: &mut P,
        out: &mut [(BudgetedEval, RefineStats)],
    ) {
        assert_eq!(
            self.tree.points().dim(),
            2,
            "tile evaluation requires a 2-D tree (rasters are 2-D)"
        );
        self.shared = RefineStats {
            simd_lanes: kdv_geom::simd::simd_lanes(),
            ..RefineStats::default()
        };
        let block = (0u32, 0u32, raster.width(), raster.height());
        let qbox = block_box(raster, block);
        // Size the shared-phase budget off the finish-block (8×8)
        // tightness — see [`TIGHT_BOX_SCALE`].
        let side = (MIN_PIXELS as f64).sqrt();
        let fin_diag2: f64 = qbox
            .lo()
            .iter()
            .zip(qbox.hi())
            .zip([raster.width(), raster.height()])
            .map(|((&l, &h), px)| {
                let e = (h - l) * side / px as f64;
                e * e
            })
            .sum();
        let scale = match self.kernel.ty {
            KernelType::Gaussian => self.kernel.gamma * fin_diag2,
            _ => self.kernel.gamma * self.kernel.gamma * fin_diag2,
        };
        self.deep_shared = scale <= TIGHT_BOX_SCALE;
        let mut frontier = self.frontier_pool.pop().unwrap_or_default();
        frontier.clear();
        let root = self.tree.root();
        frontier.push(self.bound_block_node(root, 0, &qbox, budget, probe));
        self.solve_block(raster, block, frontier, rule, budget, probe, out);
    }

    /// Box-bounds one node against a block box, with full accounting.
    fn bound_block_node<P: Probe>(
        &mut self,
        id: NodeId,
        depth: u32,
        qbox: &Mbr,
        budget: &mut RenderBudget,
        probe: &mut P,
    ) -> BlockNode {
        let node = self.tree.node(id);
        let b = box_bounds(&self.kernel, &node.stats, &node.mbr, qbox);
        self.shared.node_bounds += 1;
        probe.node_bound();
        budget.charge(1);
        BlockNode {
            node: id,
            depth,
            lb: b.lb,
            ub: b.ub,
        }
    }

    /// Re-brackets an inherited frontier against a child block box in
    /// one pass, with the same accounting as [`Self::bound_block_node`].
    /// The Gaussian interval family needs two exps per node, so the
    /// box distances are gathered and evaluated through the vectorized
    /// [`kdv_geom::simd::exp_neg_map`]; other kernels fall back to the
    /// per-node path.
    fn rebox_frontier<P: Probe>(
        &mut self,
        src: &[BlockNode],
        qbox: &Mbr,
        dst: &mut Vec<BlockNode>,
        budget: &mut RenderBudget,
        probe: &mut P,
    ) {
        if !matches!(self.kernel.ty, KernelType::Gaussian) {
            for e in src {
                dst.push(self.bound_block_node(e.node, e.depth, qbox, budget, probe));
            }
            return;
        }
        let n = src.len();
        let g = self.kernel.gamma;
        let s = &mut self.finish;
        s.bxs.clear();
        s.bxs.resize(2 * n, 0.0);
        for (k, e) in src.iter().enumerate() {
            let mbr = &self.tree.node(e.node).mbr;
            s.bxs[k] = g * qbox.min_dist2_box(mbr);
            s.bxs[n + k] = g * qbox.max_dist2_box(mbr);
        }
        s.bes.clear();
        s.bes.resize(2 * n, 0.0);
        kdv_geom::simd::exp_neg_map(&s.bxs, &mut s.bes);
        for (k, e) in src.iter().enumerate() {
            let w = self.tree.node(e.node).stats.weight;
            let b = gaussian_interval_from_exps(w, s.bxs[k], s.bes[k], s.bes[n + k]);
            dst.push(BlockNode {
                node: e.node,
                depth: e.depth,
                lb: b.lb,
                ub: b.ub,
            });
            probe.node_bound();
        }
        self.shared.node_bounds += n;
        budget.charge(n as u64);
    }

    /// Recursively solves one pixel block. `frontier` is already
    /// bounded against this block's box and is returned to the pool.
    #[allow(clippy::too_many_arguments)]
    fn solve_block<P: Probe>(
        &mut self,
        raster: &RasterSpec,
        block: (u32, u32, u32, u32),
        mut frontier: Vec<BlockNode>,
        rule: TileRule,
        budget: &mut RenderBudget,
        probe: &mut P,
        out: &mut [(BudgetedEval, RefineStats)],
    ) {
        let (_, _, w, h) = block;
        let qbox = block_box(raster, block);
        let (max_splits, cap) = if self.deep_shared {
            (SHARED_SPLITS_PER_BLOCK, FRONTIER_CAP)
        } else {
            (SHARED_SPLITS_LOOSE, FRONTIER_CAP_LOOSE)
        };

        // Shared refinement: split the widest-gap internal frontier
        // node, re-bracketing its children against the block box.
        let mut splits = 0usize;
        let decided = loop {
            let (lb, ub) = frontier_interval(&frontier);
            if rule.decides(lb, ub) {
                break Some((lb, ub, false));
            }
            if budget.is_exhausted() {
                break Some((lb, ub, true));
            }
            if splits >= max_splits || frontier.len() + 1 >= cap {
                break None;
            }
            // Widest-gap *internal* node; leaves cannot tighten at box
            // granularity.
            let Some(best) = frontier
                .iter()
                .enumerate()
                .filter(|(_, e)| !self.tree.node(e.node).is_leaf())
                .max_by(|a, b| a.1.gap().total_cmp(&b.1.gap()))
                .map(|(i, _)| i)
            else {
                break None;
            };
            let entry = frontier.swap_remove(best);
            self.shared.iterations += 1;
            probe.heap_pop();
            probe.node_visit(entry.depth);
            budget.charge(1);
            let NodeKind::Internal { left, right } = self.tree.node(entry.node).kind else {
                unreachable!("filtered to internal nodes");
            };
            frontier.push(self.bound_block_node(left, entry.depth + 1, &qbox, budget, probe));
            frontier.push(self.bound_block_node(right, entry.depth + 1, &qbox, budget, probe));
            splits += 1;
        };

        match decided {
            Some((lb, ub, exhausted)) => {
                // Wholesale fill: every pixel inherits the block's
                // certified interval; its per-pixel cost is zero and
                // the whole frontier's bound work was reused.
                let reuse = frontier.len();
                let lanes = self.shared.simd_lanes;
                self.fill_block(raster, block, out, |_| {
                    (
                        BudgetedEval { lb, ub, exhausted },
                        RefineStats {
                            frontier_reuse: reuse,
                            simd_lanes: lanes,
                            ..RefineStats::default()
                        },
                    )
                });
            }
            None if (w * h) <= MIN_PIXELS => {
                self.finish_pixels(raster, block, &frontier, rule, budget, probe, out);
            }
            None => {
                // Quadrant recursion: children re-bracket the
                // inherited frontier against their smaller boxes.
                let (col0, row0, w, h) = block;
                let (wl, ht) = (w.div_ceil(2), h.div_ceil(2));
                let children = [
                    (col0, row0, wl, ht),
                    (col0 + wl, row0, w - wl, ht),
                    (col0, row0 + ht, wl, h - ht),
                    (col0 + wl, row0 + ht, w - wl, h - ht),
                ];
                for child in children {
                    if child.2 == 0 || child.3 == 0 {
                        continue;
                    }
                    let cbox = block_box(raster, child);
                    let mut cf = self.frontier_pool.pop().unwrap_or_default();
                    cf.clear();
                    self.rebox_frontier(&frontier, &cbox, &mut cf, budget, probe);
                    self.solve_block(raster, child, cf, rule, budget, probe, out);
                }
            }
        }
        frontier.clear();
        self.frontier_pool.push(frontier);
    }

    /// Per-pixel finish of a small undecided block, node-major: one
    /// flat frontier for the whole block, refined best-first, with
    /// each refinement step evaluated for every still-undecided pixel
    /// in a single contiguous pass. A node starts from its free box
    /// interval, is *re-bounded per-query* on its first pick, and only
    /// split (or exact-scanned, for leaves) on a later pick — so the
    /// priority order each pixel sees matches the per-pixel
    /// evaluator's, while the node's statistics are loaded once per
    /// step instead of once per pixel.
    #[allow(clippy::too_many_arguments)]
    fn finish_pixels<P: Probe>(
        &mut self,
        raster: &RasterSpec,
        block: (u32, u32, u32, u32),
        frontier: &[BlockNode],
        rule: TileRule,
        budget: &mut RenderBudget,
        probe: &mut P,
        out: &mut [(BudgetedEval, RefineStats)],
    ) {
        let (col0, row0, w, h) = block;
        let npix = (w * h) as usize;
        let stride = 2 * npix;
        let width_px = raster.width();
        let lanes = self.shared.simd_lanes;
        let mut s = std::mem::take(&mut self.finish);

        // Pixel centers and translated copies: one `translate_query`
        // per pixel per block, not one per bound evaluation.
        s.qs.clear();
        s.qts.clear();
        s.qs.resize(stride, 0.0);
        s.qts.resize(stride, 0.0);
        let root_stats = &self.tree.node(self.tree.root()).stats;
        for p in 0..npix {
            let (col, row) = (col0 + p as u32 % w, row0 + p as u32 / w);
            let q = raster.pixel_center(col, row);
            s.qs[2 * p] = q[0];
            s.qs[2 * p + 1] = q[1];
            root_stats.translate_query(&q, &mut s.qts[2 * p..2 * p + 2]);
        }

        // Seed: every pixel starts from the frontier's box sums
        // (already paid for by the block — zero marginal cost).
        s.fnodes.clear();
        s.cands.clear();
        s.rows.clear();
        s.free_rows.clear();
        let mut lb0 = 0.0;
        let mut ub0 = 0.0;
        for e in frontier {
            lb0 += e.lb;
            ub0 += e.ub;
            s.cands.push(Cand {
                score: e.gap(),
                idx: s.fnodes.len() as u32,
                state: BOXED,
            });
            s.fnodes.push(FNode {
                node: e.node,
                depth: e.depth,
                state: BOXED,
                lb: e.lb,
                ub: e.ub,
                row: u32::MAX,
            });
        }
        let err0 = EPS_MACH * frontier.len() as f64 * (lb0.abs() + ub0.abs());
        let mut boxed_alive = frontier.len();

        s.lb.clear();
        s.lb.resize(npix, lb0);
        s.ub.clear();
        s.ub.resize(npix, ub0);
        s.err.clear();
        s.err.resize(npix, err0);
        s.exact.clear();
        s.exact.resize(npix, 0.0);
        s.best_lb.clear();
        s.best_lb.resize(npix, lb0 - err0);
        s.best_ub.clear();
        s.best_ub.resize(npix, ub0 + err0);
        s.stats.clear();
        s.stats.resize(
            npix,
            RefineStats {
                simd_lanes: lanes,
                ..RefineStats::default()
            },
        );
        s.undecided.clear();
        s.undecided.extend(0..npix as u32);

        let global = |p: usize| -> usize {
            let (col, row) = (col0 + p as u32 % w, row0 + p as u32 / w);
            (row * width_px + col) as usize
        };

        while !s.undecided.is_empty() {
            if budget.is_exhausted() {
                // Degraded fill: the envelope is a valid bracket of
                // F(q) at whatever tightness the budget bought.
                for &p in &s.undecided {
                    let p = p as usize;
                    let mut st = s.stats[p];
                    st.frontier_reuse = boxed_alive;
                    out[global(p)] = (
                        BudgetedEval {
                            lb: s.best_lb[p],
                            ub: s.best_ub[p],
                            exhausted: true,
                        },
                        st,
                    );
                }
                break;
            }

            // Highest-score live candidate (stale entries self-skip).
            let mut next = None;
            while let Some(c) = s.cands.pop() {
                if s.fnodes[c.idx as usize].state == c.state {
                    next = Some(c);
                    break;
                }
            }
            let Some(c) = next else {
                // Frontier exhausted: every contribution is exact.
                for &p in &s.undecided {
                    let p = p as usize;
                    let e = s.exact[p];
                    let mut st = s.stats[p];
                    st.frontier_reuse = 0;
                    out[global(p)] = (
                        BudgetedEval {
                            lb: e,
                            ub: e,
                            exhausted: false,
                        },
                        st,
                    );
                }
                break;
            };
            let fi = c.idx as usize;
            let f = s.fnodes[fi];
            probe.heap_pop();
            probe.node_visit(f.depth);
            let nu = s.undecided.len() as u64;
            let scan_now = {
                let nd = self.tree.node(f.node);
                nd.is_leaf() || nd.point_count() <= SCAN_CUTOFF
            };

            if f.state == BOXED {
                // First pick: tighten the box interval to each query.
                // The box gap is query-independent and loose, so
                // splitting (or scanning) on it directly would wreck
                // the best-first order — one bound evaluation per
                // pixel restores the per-query priority.
                boxed_alive -= 1;
                let slot = s.alloc_row(stride);
                let base = slot as usize * stride;
                let nd = self.tree.node(f.node);
                let score = s.bound_row(&self.kernel, self.family, nd, base, npix);
                for &p in &s.undecided {
                    let p = p as usize;
                    let (bl, bu) = (s.rows[base + p], s.rows[base + npix + p]);
                    s.lb[p] += bl - f.lb;
                    s.ub[p] += bu - f.ub;
                    s.err[p] += EPS_MACH
                        * (s.lb[p].abs() + s.ub[p].abs() + f.lb.abs() + f.ub.abs() + bu.abs());
                    let st = &mut s.stats[p];
                    st.node_bounds += 1;
                    st.iterations += 1;
                    probe.node_bound();
                }
                budget.charge(nu + 1);
                s.fnodes[fi].state = BOUNDED;
                s.fnodes[fi].row = slot;
                s.cands.push(Cand {
                    score,
                    idx: c.idx,
                    state: BOUNDED,
                });
            } else if scan_now {
                // Retire the node exactly: scan its subtree's points
                // for every undecided pixel. Below [`SCAN_CUTOFF`] the
                // vectorized scan is cheaper than the cascade of
                // exp-heavy bound evaluations a split would trigger.
                s.leaves.clear();
                s.walk.clear();
                s.walk.push(f.node);
                while let Some(id) = s.walk.pop() {
                    match self.tree.node(id).kind {
                        NodeKind::Leaf { .. } => s.leaves.push(id),
                        NodeKind::Internal { left, right } => {
                            s.walk.push(left);
                            s.walk.push(right);
                        }
                    }
                }
                let leaves = std::mem::take(&mut s.leaves);
                let base = f.row as usize * stride;
                let mut units = 1u64;
                for &p in &s.undecided {
                    let p = p as usize;
                    let q = &s.qs[2 * p..2 * p + 2];
                    let mut exact = 0.0;
                    let mut points = 0usize;
                    for &lid in &leaves {
                        let (e, pts) =
                            exact_leaf_scan(self.tree, &self.kernel, lid, q, &mut self.d2);
                        exact += e;
                        points += pts;
                    }
                    s.exact[p] += exact;
                    let (rl, ru) = (s.rows[base + p], s.rows[base + npix + p]);
                    s.lb[p] -= rl;
                    s.ub[p] -= ru;
                    s.err[p] += EPS_MACH
                        * (s.lb[p].abs() + s.ub[p].abs() + rl.abs() + ru.abs() + s.exact[p]);
                    let st = &mut s.stats[p];
                    st.exact_leaves += leaves.len();
                    st.point_evals += points;
                    st.iterations += 1;
                    probe.leaf_scan(points);
                    units += points as u64;
                }
                s.leaves = leaves;
                budget.charge(units);
                s.free_rows.push(f.row);
                s.fnodes[fi].state = RETIRED;
            } else {
                let NodeKind::Internal { left, right } = self.tree.node(f.node).kind else {
                    unreachable!("leaf case handled above");
                };
                let ls = s.alloc_row(stride);
                let rs = s.alloc_row(stride);
                let (lbase, rbase) = (ls as usize * stride, rs as usize * stride);
                let pbase = f.row as usize * stride;
                let lscore =
                    s.bound_row(&self.kernel, self.family, self.tree.node(left), lbase, npix);
                let rscore = s.bound_row(
                    &self.kernel,
                    self.family,
                    self.tree.node(right),
                    rbase,
                    npix,
                );
                for &p in &s.undecided {
                    let p = p as usize;
                    let (bll, blu) = (s.rows[lbase + p], s.rows[lbase + npix + p]);
                    let (brl, bru) = (s.rows[rbase + p], s.rows[rbase + npix + p]);
                    let (pl, pu) = (s.rows[pbase + p], s.rows[pbase + npix + p]);
                    s.lb[p] += bll + brl - pl;
                    s.ub[p] += blu + bru - pu;
                    s.err[p] += EPS_MACH
                        * (s.lb[p].abs() + s.ub[p].abs() + pl.abs() + pu.abs() + blu + bru);
                    let st = &mut s.stats[p];
                    st.node_bounds += 2;
                    st.iterations += 1;
                    probe.node_bound();
                    probe.node_bound();
                }
                budget.charge(2 * nu + 1);
                s.free_rows.push(f.row);
                s.fnodes[fi].state = RETIRED;
                s.cands.push(Cand {
                    score: lscore,
                    idx: s.fnodes.len() as u32,
                    state: BOUNDED,
                });
                s.fnodes.push(FNode {
                    node: left,
                    depth: f.depth + 1,
                    state: BOUNDED,
                    lb: 0.0,
                    ub: 0.0,
                    row: ls,
                });
                s.cands.push(Cand {
                    score: rscore,
                    idx: s.fnodes.len() as u32,
                    state: BOUNDED,
                });
                s.fnodes.push(FNode {
                    node: right,
                    depth: f.depth + 1,
                    state: BOUNDED,
                    lb: 0.0,
                    ub: 0.0,
                    row: rs,
                });
            }

            // Decision sweep: every touched pixel re-tests the rule on
            // its monotone envelope (same resync discipline as the
            // per-pixel evaluator).
            let mut i = 0;
            while i < s.undecided.len() {
                let p = s.undecided[i] as usize;
                if probe.force_resync() || s.err[p] > RESYNC_REL * (s.lb[p].abs() + s.ub[p].abs()) {
                    let mut l = 0.0;
                    let mut u = 0.0;
                    let mut n = 0usize;
                    for fx in &s.fnodes {
                        match fx.state {
                            BOXED => {
                                l += fx.lb;
                                u += fx.ub;
                                n += 1;
                            }
                            BOUNDED => {
                                let b = fx.row as usize * stride;
                                l += s.rows[b + p];
                                u += s.rows[b + npix + p];
                                n += 1;
                            }
                            _ => {}
                        }
                    }
                    s.lb[p] = l;
                    s.ub[p] = u;
                    s.err[p] = EPS_MACH * n as f64 * (l.abs() + u.abs());
                    s.stats[p].resyncs += 1;
                    probe.resync();
                    budget.charge(1);
                }
                s.best_lb[p] = s.best_lb[p].max(s.exact[p] + s.lb[p] - s.err[p]);
                s.best_ub[p] = s.best_ub[p].min(s.exact[p] + s.ub[p] + s.err[p]);
                if rule.decides(s.best_lb[p], s.best_ub[p]) {
                    let mut st = s.stats[p];
                    st.frontier_reuse = boxed_alive;
                    out[global(p)] = (
                        BudgetedEval {
                            lb: s.best_lb[p],
                            ub: s.best_ub[p],
                            exhausted: false,
                        },
                        st,
                    );
                    s.undecided.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        self.finish = s;
    }

    fn fill_block(
        &self,
        raster: &RasterSpec,
        block: (u32, u32, u32, u32),
        out: &mut [(BudgetedEval, RefineStats)],
        mut value: impl FnMut(usize) -> (BudgetedEval, RefineStats),
    ) {
        let (col0, row0, w, h) = block;
        for row in row0..row0 + h {
            for col in col0..col0 + w {
                let idx = (row * raster.width() + col) as usize;
                out[idx] = value(idx);
            }
        }
    }
}

/// Summed frontier interval, widened by the fresh-summation rounding
/// error (the box intervals are all non-negative-width; the sums are
/// recomputed from scratch, so the resync error formula applies).
fn frontier_interval(frontier: &[BlockNode]) -> (f64, f64) {
    let lb: f64 = frontier.iter().map(|e| e.lb).sum();
    let ub: f64 = frontier.iter().map(|e| e.ub).sum();
    let err = EPS_MACH * frontier.len() as f64 * (lb.abs() + ub.abs());
    (lb - err, ub + err)
}

/// The data-space box spanned by a pixel block's centers.
fn block_box(raster: &RasterSpec, block: (u32, u32, u32, u32)) -> Mbr {
    let (col0, row0, w, h) = block;
    debug_assert!(w > 0 && h > 0);
    let a = raster.pixel_center(col0, row0);
    let b = raster.pixel_center(col0 + w - 1, row0 + h - 1);
    let lo = vec![a[0].min(b[0]), a[1].min(b[1])];
    let hi = vec![a[0].max(b[0]), a[1].max(b[1])];
    Mbr::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::scott_gamma;
    use crate::engine::RefineEvaluator;
    use kdv_geom::PointSet;
    use kdv_index::{BuildConfig, KdTree};
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn random_points(n: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * 2).map(|_| rng.gen_range(-10.0..10.0)).collect();
        PointSet::from_rows(2, &flat)
    }

    fn setup(n: usize, seed: u64) -> (PointSet, Kernel) {
        let ps = random_points(n, seed);
        let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
        (ps, kernel)
    }

    fn raster_over(ps: &PointSet, px: u32) -> RasterSpec {
        RasterSpec::covering(ps, px, px, 0.05)
    }

    #[test]
    fn batched_eps_brackets_are_certified_against_exact() {
        let (ps, kernel) = setup(1500, 9);
        let tree = KdTree::build_default(&ps);
        let raster = raster_over(&ps, 24);
        let eps = 0.05;
        let mut tev = TileEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut budget = RenderBudget::unlimited();
        let tile = tev.eval_tile_eps(&raster, eps, &mut budget);
        assert_eq!(tile.evals.len(), raster.num_pixels());
        let mut pev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        for row in 0..raster.height() {
            for col in 0..raster.width() {
                let idx = (row * raster.width() + col) as usize;
                let e = tile.evals[idx];
                assert!(!e.exhausted, "unlimited budget never exhausts");
                assert!(
                    e.ub <= (1.0 + eps) * e.lb + 1e-300,
                    "pixel ({col},{row}) missed its eps contract: {e:?}"
                );
                let exact = pev.eval_exact(&raster.pixel_center(col, row));
                assert!(
                    e.lb <= exact * (1.0 + 1e-12) && exact <= e.ub * (1.0 + 1e-12) + 1e-300,
                    "pixel ({col},{row}): bracket [{}, {}] misses exact {exact}",
                    e.lb,
                    e.ub
                );
            }
        }
    }

    #[test]
    fn batched_tau_mask_matches_per_pixel_path() {
        let (ps, kernel) = setup(1200, 21);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 16,
                ..BuildConfig::default()
            },
        );
        let raster = raster_over(&ps, 20);
        // Pick τ strictly between observed densities (no knife edge).
        let mut pev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let center = raster.pixel_center(raster.width() / 2, raster.height() / 2);
        let tau = 0.37 * pev.eval_exact(&center);

        let mut tev = TileEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut budget = RenderBudget::unlimited();
        let tile = tev.eval_tile_tau(&raster, tau, &mut budget);
        for row in 0..raster.height() {
            for col in 0..raster.width() {
                let idx = (row * raster.width() + col) as usize;
                let t = tile.taus[idx];
                assert!(t.decided, "unlimited budget decides every pixel");
                let want = pev.eval_tau(&raster.pixel_center(col, row), tau);
                assert_eq!(
                    t.hot, want,
                    "pixel ({col},{row}) classification diverged at tau {tau}"
                );
            }
        }
    }

    #[test]
    fn batched_path_reports_frontier_reuse() {
        let (ps, kernel) = setup(2000, 5);
        let tree = KdTree::build_default(&ps);
        let raster = raster_over(&ps, 32);
        let mut tev = TileEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut budget = RenderBudget::unlimited();
        let tile = tev.eval_tile_eps(&raster, 0.1, &mut budget);
        let reuse: usize = tile.stats.iter().map(|s| s.frontier_reuse).sum();
        assert!(reuse > 0, "a 32x32 tile must share some frontier work");
        assert!(tile.stats.iter().all(|s| s.simd_lanes >= 1));
        assert!(tev.shared_stats().node_bounds > 0);
    }

    #[test]
    fn batched_budget_exhaustion_degrades_with_valid_brackets() {
        let (ps, kernel) = setup(2000, 13);
        let tree = KdTree::build_default(&ps);
        let raster = raster_over(&ps, 16);
        let mut tev = TileEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut tiny = RenderBudget::unlimited().with_max_work(64);
        let tile = tev.eval_tile_eps(&raster, 1e-6, &mut tiny);
        assert!(tiny.is_exhausted());
        let degraded = tile.evals.iter().filter(|e| e.exhausted).count();
        assert!(degraded > 0, "a 64-unit budget cannot finish 256 pixels");
        let mut pev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        for row in 0..raster.height() {
            for col in 0..raster.width() {
                let idx = (row * raster.width() + col) as usize;
                let e = tile.evals[idx];
                assert!(e.lb <= e.ub);
                let exact = pev.eval_exact(&raster.pixel_center(col, row));
                assert!(
                    e.lb <= exact * (1.0 + 1e-9) + 1e-300 && exact <= e.ub * (1.0 + 1e-9) + 1e-300,
                    "degraded bracket must still contain exact"
                );
            }
        }
    }

    #[test]
    fn all_duplicate_points_decide_without_recursion_blowup() {
        // Degenerate geometry: every point identical → the root is a
        // forced leaf with a zero-extent MBR.
        let flat = [1.5f64, -2.5].repeat(300);
        let ps = PointSet::from_rows(2, &flat);
        let kernel = Kernel::gaussian(0.7);
        let tree = KdTree::build_default(&ps);
        let raster = RasterSpec::new(16, 16, (0.0, 3.0), (-4.0, 0.0));
        for family in [
            BoundFamily::Interval,
            BoundFamily::Linear,
            BoundFamily::Quadratic,
        ] {
            let mut tev = TileEvaluator::new(&tree, kernel, family);
            let mut budget = RenderBudget::unlimited();
            let tile = tev.eval_tile_eps(&raster, 0.01, &mut budget);
            let mut pev = RefineEvaluator::new(&tree, kernel, family);
            for row in 0..raster.height() {
                for col in 0..raster.width() {
                    let idx = (row * raster.width() + col) as usize;
                    let e = tile.evals[idx];
                    let exact = pev.eval_exact(&raster.pixel_center(col, row));
                    assert!(e.lb <= exact * (1.0 + 1e-12) + 1e-300);
                    assert!(exact <= e.ub * (1.0 + 1e-12) + 1e-300);
                }
            }
        }
    }

    #[test]
    fn odd_sized_tiles_cover_every_pixel() {
        let (ps, kernel) = setup(600, 3);
        let tree = KdTree::build_default(&ps);
        // 13x7 exercises uneven quadrant splits down to 1-pixel rows.
        let raster = RasterSpec::covering(&ps, 13, 7, 0.05);
        let mut tev = TileEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut budget = RenderBudget::unlimited();
        let tile = tev.eval_tile_eps(&raster, 0.05, &mut budget);
        assert_eq!(tile.evals.len(), 13 * 7);
        for (i, e) in tile.evals.iter().enumerate() {
            assert!(
                e.ub.is_finite() && e.lb >= 0.0,
                "pixel {i} was never written: {e:?}"
            );
        }
    }
}

//! Bandwidth / parameter selection.
//!
//! The paper's experiments "adopt the Scott's rule to obtain the
//! parameter γ and the weighting parameter w" (§7.1). Scott's rule
//! gives a per-dimension bandwidth `hⱼ = σⱼ · n^{−1/(d+4)}`; we collapse
//! it to one isotropic bandwidth `h` (the geometric mean of the `hⱼ`,
//! the standard choice for an isotropic kernel on standardized axes) and
//! derive γ so that every kernel has **standard deviation `h`** (the
//! "canonical bandwidth" convention — without it, compact-support
//! kernels end up several times narrower than the Gaussian at the same
//! `h` and the comparison across kernels is meaningless):
//!
//! | kernel | profile | variance | γ |
//! |---|---|---|---|
//! | Gaussian | `exp(−γ·d²)` | `1/(2γ)` | `1/(2h²)` |
//! | Triangular | `max(1 − γ·d, 0)` | `1/(6γ²)` | `1/(√6·h)` |
//! | Cosine | `cos(γ·d)` on `γ·d ≤ π/2` | `(π² − 8)/(4γ²)` | `√(π²−8)/(2h)` |
//! | Exponential | `exp(−γ·d)` | `2/γ²` | `√2/h` |
//! | Epanechnikov | `max(1 − (γd)², 0)` | `1/(5γ²)` | `1/(√5·h)` |
//! | Quartic | `max(1 − (γd)², 0)²` | `1/(7γ²)` | `1/(√7·h)` |
//!
//! plus `w = 1/n`, making `F_P` a mean of kernel responses.

use crate::kernel::KernelType;
use kdv_geom::PointSet;
use std::fmt;

/// Output of Scott's rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth {
    /// Isotropic bandwidth `h`.
    pub h: f64,
    /// Scale parameter for a Gaussian kernel (`1/(2h²)`).
    pub gamma: f64,
    /// Uniform point weight (`1/n`).
    pub weight: f64,
}

/// Why Scott's rule cannot produce a bandwidth for a point set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandwidthError {
    /// The point set is empty.
    EmptySet,
    /// Every axis has zero spread (e.g. all points identical), so the
    /// data-driven bandwidth degenerates to 0; callers must supply a
    /// kernel scale explicitly.
    ZeroSpread,
}

impl fmt::Display for BandwidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BandwidthError::EmptySet => write!(f, "Scott's rule needs data"),
            BandwidthError::ZeroSpread => {
                write!(f, "Scott's rule needs positive spread on some axis")
            }
        }
    }
}

impl std::error::Error for BandwidthError {}

/// Scott's rule for an isotropic Gaussian kernel.
///
/// # Panics
/// Panics if `points` is empty or has zero spread on every axis; use
/// [`try_scott_gamma`] to handle such data as a value.
pub fn scott_gamma(points: &PointSet) -> Bandwidth {
    try_scott_gamma(points).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`scott_gamma`]: reports empty or zero-spread data instead
/// of panicking.
pub fn try_scott_gamma(points: &PointSet) -> Result<Bandwidth, BandwidthError> {
    let h = try_scott_h(points)?;
    Ok(Bandwidth {
        h,
        gamma: 1.0 / (2.0 * h * h),
        weight: 1.0 / points.len() as f64,
    })
}

/// Scott's rule specialized per kernel family.
///
/// # Panics
/// Panics if `points` is empty or has zero spread on every axis; use
/// [`try_scott_gamma_for`] to handle such data as a value.
pub fn scott_gamma_for(points: &PointSet, kernel: KernelType) -> Bandwidth {
    try_scott_gamma_for(points, kernel).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`scott_gamma_for`]: reports empty or zero-spread data
/// instead of panicking.
pub fn try_scott_gamma_for(
    points: &PointSet,
    kernel: KernelType,
) -> Result<Bandwidth, BandwidthError> {
    let h = try_scott_h(points)?;
    let gamma = match kernel {
        KernelType::Gaussian => 1.0 / (2.0 * h * h),
        KernelType::Triangular => 1.0 / (6.0f64.sqrt() * h),
        KernelType::Cosine => {
            (std::f64::consts::PI * std::f64::consts::PI - 8.0).sqrt() / (2.0 * h)
        }
        KernelType::Exponential => 2.0f64.sqrt() / h,
        KernelType::Epanechnikov => 1.0 / (5.0f64.sqrt() * h),
        KernelType::Quartic => 1.0 / (7.0f64.sqrt() * h),
    };
    Ok(Bandwidth {
        h,
        gamma,
        weight: 1.0 / points.len() as f64,
    })
}

/// The isotropic Scott bandwidth: geometric mean of
/// `σⱼ · n^{−1/(d+4)}` over axes with positive spread.
fn try_scott_h(points: &PointSet) -> Result<f64, BandwidthError> {
    if points.is_empty() {
        return Err(BandwidthError::EmptySet);
    }
    let n = points.len() as f64;
    let d = points.dim() as f64;
    let stds = points.std_dev().expect("non-empty set");
    let factor = n.powf(-1.0 / (d + 4.0));
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for &s in &stds {
        if s > 0.0 {
            log_sum += (s * factor).ln();
            count += 1;
        }
    }
    if count == 0 {
        return Err(BandwidthError::ZeroSpread);
    }
    Ok((log_sum / count as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    #[test]
    fn scott_matches_hand_computation_1d() {
        // {0, 2}: σ = √2, n = 2, d = 1 → h = √2 · 2^{−1/5}.
        let ps = PointSet::from_rows(1, &[0.0, 2.0]);
        let bw = scott_gamma(&ps);
        let expect = 2.0f64.sqrt() * 2.0f64.powf(-0.2);
        assert!((bw.h - expect).abs() < 1e-12);
        assert!((bw.gamma - 1.0 / (2.0 * expect * expect)).abs() < 1e-12);
        assert_eq!(bw.weight, 0.5);
    }

    #[test]
    fn gamma_shrinks_with_more_data() {
        let mut rng = StdRng::seed_from_u64(7);
        let small: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let large: Vec<f64> = (0..20000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let h_small = scott_gamma(&PointSet::from_rows(2, &small)).h;
        let h_large = scott_gamma(&PointSet::from_rows(2, &large)).h;
        assert!(h_large < h_small, "bandwidth must shrink as n grows");
    }

    #[test]
    fn distance_kernel_gammas_match_canonical_bandwidths() {
        let ps = PointSet::from_rows(1, &[0.0, 2.0]);
        let h = scott_gamma(&ps).h;
        let cases = [
            (KernelType::Triangular, 1.0 / (6.0f64.sqrt() * h)),
            (KernelType::Exponential, 2.0f64.sqrt() / h),
            (KernelType::Epanechnikov, 1.0 / (5.0f64.sqrt() * h)),
            (KernelType::Quartic, 1.0 / (7.0f64.sqrt() * h)),
        ];
        for (ty, expect) in cases {
            let g = scott_gamma_for(&ps, ty);
            assert!((g.gamma - expect).abs() < 1e-12, "{ty:?}");
        }
    }

    #[test]
    fn kernel_standard_deviations_equal_h() {
        // Numerically integrate each kernel's 1-D profile variance and
        // check it equals h² — the canonical-bandwidth property that
        // makes cross-kernel comparisons fair.
        let ps = PointSet::from_rows(1, &[0.0, 2.0]);
        let h = scott_gamma(&ps).h;
        for ty in KernelType::ALL {
            let bw = scott_gamma_for(&ps, ty);
            let k = crate::kernel::Kernel::new(ty, bw.gamma);
            let (mut mass, mut second) = (0.0, 0.0);
            let steps = 400_000;
            let span = 12.0 * h;
            let dx = span / steps as f64;
            for i in 0..steps {
                let x = (i as f64 + 0.5) * dx;
                let v = k.eval_dist2(x * x);
                mass += v * dx;
                second += x * x * v * dx;
            }
            let var = second / mass; // symmetric profile: one-sided ok
            assert!(
                (var.sqrt() - h).abs() < 0.01 * h,
                "{ty:?}: kernel std {} vs h {}",
                var.sqrt(),
                h
            );
        }
    }

    #[test]
    fn zero_spread_axis_is_ignored() {
        // y is constant: h must come from x alone, not degenerate to 0.
        let ps = PointSet::from_rows(2, &[0.0, 5.0, 1.0, 5.0, 2.0, 5.0, 3.0, 5.0]);
        let bw = scott_gamma(&ps);
        assert!(bw.h > 0.0 && bw.h.is_finite());
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_set_panics() {
        scott_gamma(&PointSet::new(2));
    }

    #[test]
    fn degenerate_sets_are_reported_not_panicked() {
        assert_eq!(
            try_scott_gamma(&PointSet::new(2)).unwrap_err(),
            BandwidthError::EmptySet
        );
        // All points identical: zero spread on every axis.
        let dup = PointSet::from_rows(2, &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(
            try_scott_gamma(&dup).unwrap_err(),
            BandwidthError::ZeroSpread
        );
        assert_eq!(
            try_scott_gamma_for(&dup, KernelType::Quartic).unwrap_err(),
            BandwidthError::ZeroSpread
        );
        assert_eq!(
            BandwidthError::ZeroSpread.to_string(),
            "Scott's rule needs positive spread on some axis"
        );
    }
}

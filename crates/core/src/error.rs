//! Error types for recoverable failures.

use crate::kernel::KernelType;
use crate::method::MethodKind;
use std::fmt;

/// Errors surfaced by fallible APIs in this crate.
///
/// Programmer errors (dimension mismatches, invalid γ, empty datasets)
/// panic instead, following the substrate crates' convention.
#[derive(Debug, Clone, PartialEq)]
pub enum KdvError {
    /// The chosen method cannot answer this query variant (paper
    /// Table 6 — e.g. Scikit and Z-Order do not support τKDV).
    UnsupportedQuery {
        /// Method asked to run.
        method: MethodKind,
        /// `"εKDV"` or `"τKDV"`.
        query: &'static str,
    },
    /// The chosen method cannot run with this kernel (paper §5.1 —
    /// KARL's linear bounds require the Gaussian kernel's squared-
    /// distance argument).
    UnsupportedKernel {
        /// Method asked to run.
        method: MethodKind,
        /// Kernel requested.
        kernel: KernelType,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
}

impl fmt::Display for KdvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KdvError::UnsupportedQuery { method, query } => {
                write!(f, "method {method:?} does not support {query} queries")
            }
            KdvError::UnsupportedKernel { method, kernel } => {
                write!(
                    f,
                    "method {method:?} does not support the {kernel:?} kernel"
                )
            }
            KdvError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for KdvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = KdvError::UnsupportedQuery {
            method: MethodKind::Scikit,
            query: "τKDV",
        };
        let s = e.to_string();
        assert!(s.contains("Scikit") && s.contains("τKDV"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&KdvError::InvalidParameter {
            name: "eps",
            message: "must be positive".into(),
        });
    }
}

//! Error types for recoverable failures.

use crate::kernel::KernelType;
use crate::method::MethodKind;
use std::fmt;

/// Errors surfaced by fallible APIs in this crate.
///
/// Every condition a caller can trigger with external input — bad
/// parameters, malformed datasets, degenerate rasters — maps to a
/// variant here, so the whole query pipeline can refuse gracefully
/// instead of panicking. The remaining panics are internal invariant
/// violations only (see `DESIGN.md`, "Error-handling contract").
#[derive(Debug, Clone, PartialEq)]
pub enum KdvError {
    /// The chosen method cannot answer this query variant (paper
    /// Table 6 — e.g. Scikit and Z-Order do not support τKDV).
    UnsupportedQuery {
        /// Method asked to run.
        method: MethodKind,
        /// `"εKDV"` or `"τKDV"`.
        query: &'static str,
    },
    /// The chosen method cannot run with this kernel (paper §5.1 —
    /// KARL's linear bounds require the Gaussian kernel's squared-
    /// distance argument).
    UnsupportedKernel {
        /// Method asked to run.
        method: MethodKind,
        /// Kernel requested.
        kernel: KernelType,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The dataset contains no points, so no density is defined.
    EmptyDataset,
    /// A coordinate or weight was NaN or ±Inf.
    NonFiniteData {
        /// What was non-finite: `"coordinate"`, `"weight"`, or
        /// `"query coordinate"`.
        what: &'static str,
        /// Index of the offending point (or query axis).
        index: usize,
    },
    /// A query's dimensionality does not match the indexed data.
    DimensionMismatch {
        /// Dimensionality the caller supplied.
        got: usize,
        /// Dimensionality of the indexed points.
        expected: usize,
    },
    /// The requested raster cannot display anything (zero pixels or an
    /// empty/inverted data window).
    DegenerateRaster {
        /// Human-readable description of the violation.
        message: String,
    },
    /// A render worker thread panicked and the sequential retry of its
    /// band panicked again, so no correct output exists for that band.
    WorkerPanicked {
        /// Index of the row band whose retry failed.
        band: usize,
    },
}

impl fmt::Display for KdvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KdvError::UnsupportedQuery { method, query } => {
                write!(f, "method {method:?} does not support {query} queries")
            }
            KdvError::UnsupportedKernel { method, kernel } => {
                write!(
                    f,
                    "method {method:?} does not support the {kernel:?} kernel"
                )
            }
            KdvError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            KdvError::EmptyDataset => write!(f, "dataset contains no points"),
            KdvError::NonFiniteData { what, index } => {
                write!(f, "non-finite {what} at index {index}")
            }
            KdvError::DimensionMismatch { got, expected } => {
                write!(
                    f,
                    "dimension mismatch: query has {got}, data has {expected}"
                )
            }
            KdvError::DegenerateRaster { message } => {
                write!(f, "degenerate raster: {message}")
            }
            KdvError::WorkerPanicked { band } => {
                write!(f, "render worker for band {band} panicked twice")
            }
        }
    }
}

impl KdvError {
    /// Shorthand for an [`KdvError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        KdvError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

impl std::error::Error for KdvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = KdvError::UnsupportedQuery {
            method: MethodKind::Scikit,
            query: "τKDV",
        };
        let s = e.to_string();
        assert!(s.contains("Scikit") && s.contains("τKDV"));
    }

    #[test]
    fn hardening_variants_display_their_context() {
        assert!(KdvError::EmptyDataset.to_string().contains("no points"));
        let s = KdvError::NonFiniteData {
            what: "coordinate",
            index: 7,
        }
        .to_string();
        assert!(s.contains("coordinate") && s.contains('7'), "{s}");
        let s = KdvError::DimensionMismatch {
            got: 3,
            expected: 2,
        }
        .to_string();
        assert!(s.contains('3') && s.contains('2'), "{s}");
        let s = KdvError::WorkerPanicked { band: 4 }.to_string();
        assert!(s.contains("band 4"), "{s}");
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&KdvError::InvalidParameter {
            name: "eps",
            message: "must be positive".into(),
        });
    }
}

//! The QUAD kernel-density-visualization engine.
//!
//! This crate implements the primary contribution of *QUAD:
//! Quadratic-Bound-based Kernel Density Visualization* (SIGMOD 2020)
//! together with every baseline the paper evaluates against:
//!
//! * [`kernel`] — the kernel functions of the paper's Eq. 1 and Table 4
//!   (Gaussian, triangular, cosine, exponential; plus Epanechnikov and
//!   quartic extensions), including the *scalar* chord / tangent /
//!   quadratic bound constructions of §3.3, §4 and §5.
//! * [`bounds`] — lifts those scalar bounds to *aggregate* lower/upper
//!   bounds `LB_R(q) ≤ F_R(q) ≤ UB_R(q)` on kd-tree nodes, using the
//!   moment statistics of [`kdv_index`]: the interval bounds of
//!   aKDE/tKDC, the linear bounds of KARL, and the quadratic bounds of
//!   QUAD.
//! * [`engine`] — the best-first branch-and-bound refinement framework
//!   (§3.2, Table 3) answering εKDV and τKDV per pixel.
//! * [`method`] — the end-to-end methods of the paper's Table 6:
//!   EXACT, Scikit, Z-Order, aKDE, tKDC, KARL and QUAD, behind one
//!   [`method::PixelEvaluator`] interface.
//! * [`bandwidth`] — Scott's-rule parameter selection (γ, w).
//! * [`raster`] — pixel grids and the pixel→data-domain mapping.
//! * [`threshold`] — µ/σ estimation used to pick τKDV thresholds
//!   exactly as §7.2 does.
//!
//! # Quick start
//!
//! ```
//! use kdv_core::bandwidth::scott_gamma;
//! use kdv_core::bounds::BoundFamily;
//! use kdv_core::engine::RefineEvaluator;
//! use kdv_core::kernel::Kernel;
//! use kdv_core::method::PixelEvaluator;
//! use kdv_geom::PointSet;
//! use kdv_index::KdTree;
//!
//! let pts = PointSet::from_rows(2, &[0.0, 0.0, 1.0, 1.0, 0.5, 0.2, 2.0, 2.0]);
//! let kernel = Kernel::gaussian(scott_gamma(&pts).gamma);
//! let tree = KdTree::build_default(&pts);
//! let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
//! let density = quad.eval_eps(&[0.4, 0.3], 0.01);
//! assert!(density > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod bounds;
pub mod engine;
pub mod error;
pub mod kernel;
pub mod method;
pub mod query;
pub mod raster;
pub mod regress;
pub mod threshold;

pub use bounds::{BoundFamily, Interval};
pub use engine::{
    BudgetedEval, BudgetedTau, NoProbe, Probe, RefineEvaluator, RefineStats, RenderBudget,
};
pub use error::KdvError;
pub use kernel::{Kernel, KernelType};
pub use method::{MethodKind, PixelEvaluator};
pub use query::{QueryKind, QueryParams};
pub use raster::{DensityGrid, RasterSpec};

//! τ-threshold selection.
//!
//! The paper's τKDV experiments (§7.2) sweep thresholds
//! `τ ∈ {µ − 0.3σ, …, µ + 0.3σ}` where µ and σ are the mean and
//! standard deviation of `F_P(q)` over the raster's pixels. Computing
//! them over *every* pixel would cost as much as an exact render, so
//! [`estimate_levels`] evaluates a coarse subgrid of pixel centers with
//! a tight εKDV query (ε = 10⁻³); µ and σ converge quickly because the
//! density field is smooth at kernel scale.

use crate::bounds::BoundFamily;
use crate::engine::RefineEvaluator;
use crate::kernel::Kernel;
use crate::raster::RasterSpec;
use kdv_index::KdTree;

/// Pixel-density statistics defining the τ sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauLevels {
    /// Mean pixel density µ.
    pub mu: f64,
    /// Standard deviation σ of pixel densities.
    pub sigma: f64,
}

impl TauLevels {
    /// The threshold `µ + k·σ` (the paper sweeps `k ∈ [−0.3, 0.3]`).
    pub fn tau(&self, k: f64) -> f64 {
        self.mu + k * self.sigma
    }

    /// The seven thresholds of the paper's Fig 15 sweep.
    pub fn paper_sweep(&self) -> [f64; 7] {
        [-0.3, -0.2, -0.1, 0.0, 0.1, 0.2, 0.3].map(|k| self.tau(k))
    }
}

/// Estimates µ and σ of the pixel-density distribution on a
/// `sample_w × sample_h` subgrid of the raster.
///
/// # Panics
/// Panics on a zero-sized subgrid.
pub fn estimate_levels(
    tree: &KdTree,
    kernel: Kernel,
    raster: &RasterSpec,
    sample_w: u32,
    sample_h: u32,
) -> TauLevels {
    assert!(sample_w > 0 && sample_h > 0, "subgrid must be non-empty");
    let coarse = raster.with_resolution(sample_w, sample_h);
    let mut ev = RefineEvaluator::new(tree, kernel, BoundFamily::Quadratic);
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let n = (sample_w as usize * sample_h as usize) as f64;
    for row in 0..sample_h {
        for col in 0..sample_w {
            let q = coarse.pixel_center(col, row);
            let f = ev.eval_eps(&q, 1e-3);
            sum += f;
            sum_sq += f * f;
        }
    }
    let mu = sum / n;
    let var = (sum_sq / n - mu * mu).max(0.0);
    TauLevels {
        mu,
        sigma: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_geom::PointSet;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn dataset() -> PointSet {
        let mut rng = StdRng::seed_from_u64(41);
        let flat: Vec<f64> = (0..3000).map(|_| rng.gen_range(0.0..10.0)).collect();
        PointSet::from_rows(2, &flat)
    }

    #[test]
    fn sweep_is_symmetric_around_mu() {
        let levels = TauLevels {
            mu: 10.0,
            sigma: 2.0,
        };
        let sweep = levels.paper_sweep();
        assert_eq!(sweep[3], 10.0);
        assert!((sweep[0] - 9.4).abs() < 1e-12);
        assert!((sweep[6] - 10.6).abs() < 1e-12);
    }

    #[test]
    fn estimates_are_resolution_stable() {
        let ps = dataset();
        let tree = KdTree::build_default(&ps);
        let kernel = Kernel::gaussian(0.1);
        let raster = RasterSpec::covering(&ps, 64, 64, 0.05);
        let a = estimate_levels(&tree, kernel, &raster, 16, 12);
        let b = estimate_levels(&tree, kernel, &raster, 32, 24);
        // Coarse and finer subgrids must agree to within a few percent
        // of the density scale.
        assert!((a.mu - b.mu).abs() <= 0.1 * b.mu.max(1e-12));
        assert!(a.sigma > 0.0 && b.sigma > 0.0);
    }
}

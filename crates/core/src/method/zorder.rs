//! The Z-Order baseline: Morton coreset sampling + EXACT on the sample
//! (Zheng et al., paper refs [54, 55]).

use crate::kernel::Kernel;
use crate::method::PixelEvaluator;
use kdv_geom::vecmath::dist2;
use kdv_geom::PointSet;
use kdv_sampling::{sample_size_for, zorder_sample};

/// Evaluator that scans a re-weighted Z-order coreset.
///
/// The sample is drawn once at construction (the method's preprocessing
/// stage); each pixel query is then an exact scan of the sample —
/// which is precisely why the paper finds Z-Order slow at small ε: the
/// `Θ(ε⁻²·ln(1/δ))` sample is still large, and *every* pixel pays for
/// all of it.
#[derive(Debug, Clone)]
pub struct ZOrderScan {
    sample: PointSet,
    kernel: Kernel,
}

impl ZOrderScan {
    /// Samples `points` for target error `eps` with failure probability
    /// `delta` and stratification phase `phase ∈ [0, 1)`.
    ///
    /// # Panics
    /// Panics if the set is not 2-D, or on invalid (ε, δ, phase).
    pub fn new(points: &PointSet, kernel: Kernel, eps: f64, delta: f64, phase: f64) -> Self {
        assert_eq!(points.dim(), 2, "Z-order sampling is 2-D");
        let size = sample_size_for(eps, delta);
        Self {
            sample: zorder_sample(points, size, phase),
            kernel,
        }
    }

    /// Number of points in the coreset.
    pub fn sample_len(&self) -> usize {
        self.sample.len()
    }

    fn density(&self, q: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.sample.len() {
            acc += self.sample.weight(i) * self.kernel.eval_dist2(dist2(q, self.sample.point(i)));
        }
        acc
    }
}

impl PixelEvaluator for ZOrderScan {
    /// ε is consumed at construction time (it sizes the sample); the
    /// per-query evaluation is an exact scan of the coreset.
    fn eval_eps(&mut self, q: &[f64], _eps: f64) -> f64 {
        self.density(q)
    }

    /// Not part of Table 6 for Z-Order: classification against the
    /// sampled density carries only the probabilistic guarantee.
    fn eval_tau(&mut self, q: &[f64], tau: f64) -> bool {
        self.density(q) >= tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ExactScan;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn clustered(n: usize, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flat = Vec::with_capacity(2 * n);
        for _ in 0..n {
            let (cx, cy) = if rng.gen_bool(0.6) {
                (0.0, 0.0)
            } else {
                (6.0, 6.0)
            };
            flat.push(cx + rng.gen_range(-1.5..1.5));
            flat.push(cy + rng.gen_range(-1.5..1.5));
        }
        PointSet::from_rows(2, &flat)
    }

    #[test]
    fn sample_is_much_smaller_than_input() {
        let ps = clustered(50_000, 31);
        let z = ZOrderScan::new(&ps, Kernel::gaussian(0.3), 0.05, 0.2, 0.5);
        assert!(z.sample_len() < ps.len() / 10);
    }

    #[test]
    fn estimates_are_close_to_exact_in_dense_regions() {
        let ps = clustered(20_000, 32);
        let kernel = Kernel::gaussian(0.3);
        let mut z = ZOrderScan::new(&ps, kernel, 0.02, 0.1, 0.25);
        let mut exact = ExactScan::new(&ps, kernel);
        let q = [0.0, 0.0];
        let f = exact.eval_eps(&q, 0.01);
        let r = z.eval_eps(&q, 0.02);
        // Normalized (Hoeffding-style) error bound with slack.
        assert!(
            (r - f).abs() / ps.total_weight() <= 0.02,
            "normalized sampling error too large: {} vs {}",
            r,
            f
        );
    }

    #[test]
    fn tau_uses_sampled_density() {
        let ps = clustered(5_000, 33);
        let kernel = Kernel::gaussian(0.3);
        let mut z = ZOrderScan::new(&ps, kernel, 0.05, 0.2, 0.0);
        let d = z.eval_eps(&[0.0, 0.0], 0.05);
        assert!(z.eval_tau(&[0.0, 0.0], d * 0.9));
        assert!(!z.eval_tau(&[0.0, 0.0], d * 1.1));
    }
}

//! The Scikit baseline: kd-tree depth-first traversal with node-local
//! relative-tolerance pruning.
//!
//! Scikit-learn's `KernelDensity.score_samples` walks its kd-tree
//! depth-first and prunes a node once that node's own kernel bounds are
//! tight to within the requested tolerance. We reproduce that strategy:
//! a node whose interval bounds satisfy `ub ≤ (1 + ε)·lb` contributes
//! the midpoint, otherwise its children are visited (leaves are summed
//! exactly). Because the condition holds node-locally, the summed result
//! satisfies the same global `(1 ± ε)` contract — but, unlike the
//! best-first methods, effort is spent uniformly instead of where the
//! global gap is widest, which is why this baseline trails them in the
//! paper's experiments.

use crate::bounds::{node_bounds, BoundFamily};
use crate::kernel::Kernel;
use crate::method::PixelEvaluator;
use kdv_geom::vecmath::dist2;
use kdv_index::{KdTree, NodeId, NodeKind};

/// Depth-first, node-locally pruned evaluator (Scikit-learn style).
#[derive(Debug)]
pub struct ScikitDfs<'a> {
    tree: &'a KdTree,
    kernel: Kernel,
}

impl<'a> ScikitDfs<'a> {
    /// Creates a DFS evaluator over the tree.
    pub fn new(tree: &'a KdTree, kernel: Kernel) -> Self {
        Self { tree, kernel }
    }

    fn visit(&self, id: NodeId, q: &[f64], eps: f64) -> f64 {
        let node = self.tree.node(id);
        let b = node_bounds(
            &self.kernel,
            BoundFamily::Interval,
            &node.stats,
            &node.mbr,
            q,
        );
        if b.ub <= (1.0 + eps) * b.lb {
            return 0.5 * (b.lb + b.ub);
        }
        match node.kind {
            NodeKind::Leaf { .. } => {
                let mut acc = 0.0;
                for (p, w) in self.tree.leaf_points(id) {
                    acc += w * self.kernel.eval_dist2(dist2(q, p));
                }
                acc
            }
            NodeKind::Internal { left, right } => {
                self.visit(left, q, eps) + self.visit(right, q, eps)
            }
        }
    }
}

impl PixelEvaluator for ScikitDfs<'_> {
    fn eval_eps(&mut self, q: &[f64], eps: f64) -> f64 {
        assert!(eps.is_finite() && eps > 0.0, "ε must be positive");
        self.visit(self.tree.root(), q, eps)
    }

    /// Not part of the paper's Table 6 for Scikit; answered via a tight
    /// ε query without a deterministic τ guarantee (documented caveat).
    fn eval_tau(&mut self, q: &[f64], tau: f64) -> bool {
        self.eval_eps(q, 1e-6) >= tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::ExactScan;
    use kdv_geom::PointSet;
    use kdv_index::BuildConfig;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    #[test]
    fn dfs_meets_global_relative_error() {
        let mut rng = StdRng::seed_from_u64(21);
        let flat: Vec<f64> = (0..4000).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let ps = PointSet::from_rows(2, &flat);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 8,
                ..BuildConfig::default()
            },
        );
        let kernel = Kernel::gaussian(0.2);
        let mut dfs = ScikitDfs::new(&tree, kernel);
        let mut exact = ExactScan::new(&ps, kernel);
        for q in [[0.0, 0.0], [2.0, -3.0], [8.0, 8.0]] {
            let eps = 0.02;
            let f = exact.eval_eps(&q, eps);
            let r = dfs.eval_eps(&q, eps);
            assert!(
                (r - f).abs() <= eps * f + 1e-12,
                "DFS result {r} off exact {f} beyond ε"
            );
        }
    }

    #[test]
    fn tau_path_classifies_via_tight_eps() {
        let mut rng = StdRng::seed_from_u64(22);
        let flat: Vec<f64> = (0..1000).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let ps = PointSet::from_rows(2, &flat);
        let tree = KdTree::build_default(&ps);
        let kernel = Kernel::gaussian(0.3);
        let mut dfs = ScikitDfs::new(&tree, kernel);
        let exact = ExactScan::new(&ps, kernel);
        let q = [0.5, -0.5];
        let f = exact.density(&q);
        assert!(dfs.eval_tau(&q, f * 0.9));
        assert!(!dfs.eval_tau(&q, f * 1.1));
    }

    #[test]
    fn single_leaf_tree_is_exact() {
        let ps = PointSet::from_rows(2, &[0.0, 0.0, 1.0, 1.0]);
        let tree = KdTree::build(
            &ps,
            BuildConfig {
                leaf_capacity: 8,
                ..BuildConfig::default()
            },
        );
        let kernel = Kernel::gaussian(1.0);
        let mut dfs = ScikitDfs::new(&tree, kernel);
        let mut exact = ExactScan::new(&ps, kernel);
        let q = [0.5, 0.5];
        // A query inside the MBR keeps the node interval wide → the DFS
        // must fall through to the exact leaf sum.
        assert!((dfs.eval_eps(&q, 0.01) - exact.eval_eps(&q, 0.01)).abs() < 1e-12);
    }
}

//! The end-to-end KDV methods of the paper's Table 6.
//!
//! | method | εKDV | τKDV | kernels | strategy |
//! |---|---|---|---|---|
//! | EXACT  | ✓ | ✓ | all | sequential scan |
//! | Scikit | ✓ | ✗ | all | kd-tree DFS, node-local tolerance |
//! | Z-Order| ✓ | ✗ | 2-D only | Morton coreset + EXACT on sample |
//! | aKDE   | ✓ | ✗ | all | best-first, interval bounds |
//! | tKDC   | ✗ | ✓ | all | best-first, interval bounds |
//! | KARL   | ✓ | ✓ | Gaussian | best-first, linear bounds |
//! | QUAD   | ✓ | ✓ | all | best-first, quadratic bounds |
//!
//! All methods answer pixels through one [`PixelEvaluator`] interface so
//! renderers, the progressive framework, and the figure harness treat
//! them uniformly. [`make_evaluator`] enforces the capability matrix,
//! returning [`KdvError`] for unsupported combinations.

pub mod exact;
pub mod scikit;
pub mod zorder;

use crate::bounds::BoundFamily;
use crate::engine::RefineEvaluator;
use crate::error::KdvError;
use crate::kernel::{Kernel, KernelType};
use kdv_index::KdTree;

pub use exact::ExactScan;
pub use scikit::ScikitDfs;
pub use zorder::ZOrderScan;

/// Identifier of a KDV method (Table 6 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Sequential scan.
    Exact,
    /// Scikit-learn-style kd-tree DFS with node-local tolerance.
    Scikit,
    /// Z-order coreset sampling + EXACT on the sample.
    ZOrder,
    /// Best-first refinement with interval bounds, εKDV (Gray–Moore).
    Akde,
    /// Best-first refinement with interval bounds, τKDV (Gan–Bailis).
    Tkdc,
    /// Best-first refinement with KARL's linear bounds.
    Karl,
    /// Best-first refinement with QUAD's quadratic bounds (this paper).
    Quad,
}

impl MethodKind {
    /// All methods, in the paper's Table 6 column order.
    pub const ALL: [MethodKind; 7] = [
        MethodKind::Exact,
        MethodKind::Scikit,
        MethodKind::ZOrder,
        MethodKind::Akde,
        MethodKind::Tkdc,
        MethodKind::Karl,
        MethodKind::Quad,
    ];

    /// Whether the method answers εKDV with its intended guarantee.
    pub fn supports_eps(self) -> bool {
        !matches!(self, MethodKind::Tkdc)
    }

    /// Whether the method answers τKDV with a deterministic guarantee.
    pub fn supports_tau(self) -> bool {
        matches!(
            self,
            MethodKind::Exact | MethodKind::Tkdc | MethodKind::Karl | MethodKind::Quad
        )
    }

    /// Whether the method supports the kernel (§5.1: KARL's linear
    /// bounds need the Gaussian kernel's squared-distance argument).
    pub fn supports_kernel(self, kernel: KernelType) -> bool {
        match self {
            MethodKind::Karl => kernel == KernelType::Gaussian,
            _ => true,
        }
    }

    /// The bound family a best-first method refines with.
    pub fn bound_family(self) -> Option<BoundFamily> {
        match self {
            MethodKind::Akde | MethodKind::Tkdc => Some(BoundFamily::Interval),
            MethodKind::Karl => Some(BoundFamily::Linear),
            MethodKind::Quad => Some(BoundFamily::Quadratic),
            _ => None,
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Exact => "EXACT",
            MethodKind::Scikit => "Scikit",
            MethodKind::ZOrder => "Z-order",
            MethodKind::Akde => "aKDE",
            MethodKind::Tkdc => "tKDC",
            MethodKind::Karl => "KARL",
            MethodKind::Quad => "QUAD",
        }
    }
}

/// A per-pixel KDV query answerer.
///
/// `eval_eps` returns an estimate of `F_P(q)` whose accuracy contract
/// depends on the method (deterministic `(1 ± ε)` for bound-based
/// methods and EXACT, probabilistic for Z-Order). `eval_tau` classifies
/// `F_P(q) ≥ τ`.
pub trait PixelEvaluator {
    /// εKDV at pixel `q`.
    fn eval_eps(&mut self, q: &[f64], eps: f64) -> f64;

    /// τKDV at pixel `q`.
    fn eval_tau(&mut self, q: &[f64], tau: f64) -> bool;
}

impl<T: PixelEvaluator + ?Sized> PixelEvaluator for Box<T> {
    fn eval_eps(&mut self, q: &[f64], eps: f64) -> f64 {
        (**self).eval_eps(q, eps)
    }

    fn eval_tau(&mut self, q: &[f64], tau: f64) -> bool {
        (**self).eval_tau(q, tau)
    }
}

impl<T: PixelEvaluator + ?Sized> PixelEvaluator for &mut T {
    fn eval_eps(&mut self, q: &[f64], eps: f64) -> f64 {
        (**self).eval_eps(q, eps)
    }

    fn eval_tau(&mut self, q: &[f64], tau: f64) -> bool {
        (**self).eval_tau(q, tau)
    }
}

impl<'a> PixelEvaluator for RefineEvaluator<'a> {
    fn eval_eps(&mut self, q: &[f64], eps: f64) -> f64 {
        RefineEvaluator::eval_eps(self, q, eps)
    }

    fn eval_tau(&mut self, q: &[f64], tau: f64) -> bool {
        RefineEvaluator::eval_tau(self, q, tau)
    }
}

/// Parameters for methods that need more than the tree and kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodParams {
    /// Z-Order failure probability δ (paper uses e.g. 0.2).
    pub zorder_delta: f64,
    /// Z-Order target relative error used to size the sample.
    pub zorder_eps: f64,
    /// Z-Order stratification phase in `[0, 1)`.
    pub zorder_phase: f64,
}

impl Default for MethodParams {
    fn default() -> Self {
        Self {
            zorder_delta: 0.2,
            zorder_eps: 0.01,
            zorder_phase: 0.5,
        }
    }
}

/// Builds the evaluator for a method, enforcing Table 6 and §5.1.
///
/// `query` is `"εKDV"` or `"τKDV"` and is validated against the
/// capability matrix.
pub fn make_evaluator<'a>(
    kind: MethodKind,
    tree: &'a KdTree,
    kernel: Kernel,
    query: &'static str,
    params: &MethodParams,
) -> Result<Box<dyn PixelEvaluator + 'a>, KdvError> {
    let eps_query = query == "εKDV";
    if eps_query && !kind.supports_eps() {
        return Err(KdvError::UnsupportedQuery {
            method: kind,
            query,
        });
    }
    if !eps_query && !kind.supports_tau() {
        return Err(KdvError::UnsupportedQuery {
            method: kind,
            query,
        });
    }
    if !kind.supports_kernel(kernel.ty) {
        return Err(KdvError::UnsupportedKernel {
            method: kind,
            kernel: kernel.ty,
        });
    }
    Ok(match kind {
        MethodKind::Exact => Box::new(ExactScan::new(tree.points(), kernel)),
        MethodKind::Scikit => Box::new(ScikitDfs::new(tree, kernel)),
        MethodKind::ZOrder => Box::new(ZOrderScan::new(
            tree.points(),
            kernel,
            params.zorder_eps,
            params.zorder_delta,
            params.zorder_phase,
        )),
        MethodKind::Akde | MethodKind::Tkdc | MethodKind::Karl | MethodKind::Quad => Box::new(
            RefineEvaluator::new(tree, kernel, kind.bound_family().expect("bound method")),
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_geom::PointSet;

    fn small_tree() -> KdTree {
        let ps = PointSet::from_rows(2, &[0.0, 0.0, 1.0, 0.5, 0.2, 0.8, 2.0, 2.0]);
        KdTree::build_default(&ps)
    }

    #[test]
    fn capability_matrix_matches_table6() {
        use MethodKind::*;
        let eps_ok = [Exact, Scikit, ZOrder, Akde, Karl, Quad];
        let tau_ok = [Exact, Tkdc, Karl, Quad];
        for m in MethodKind::ALL {
            assert_eq!(m.supports_eps(), eps_ok.contains(&m), "{m:?} εKDV");
            assert_eq!(m.supports_tau(), tau_ok.contains(&m), "{m:?} τKDV");
        }
    }

    #[test]
    fn karl_rejects_distance_kernels() {
        assert!(!MethodKind::Karl.supports_kernel(KernelType::Triangular));
        let tree = small_tree();
        let err = make_evaluator(
            MethodKind::Karl,
            &tree,
            Kernel::triangular(1.0),
            "εKDV",
            &MethodParams::default(),
        )
        .err()
        .expect("expected error");
        assert!(matches!(err, KdvError::UnsupportedKernel { .. }));
    }

    #[test]
    fn tkdc_rejects_eps_queries() {
        let tree = small_tree();
        let err = make_evaluator(
            MethodKind::Tkdc,
            &tree,
            Kernel::gaussian(1.0),
            "εKDV",
            &MethodParams::default(),
        )
        .err()
        .expect("expected error");
        assert!(matches!(err, KdvError::UnsupportedQuery { .. }));
    }

    #[test]
    fn all_eps_methods_agree_on_small_input() {
        let tree = small_tree();
        let kernel = Kernel::gaussian(0.5);
        let q = [0.5, 0.5];
        let mut exact = ExactScan::new(tree.points(), kernel);
        let truth = exact.eval_eps(&q, 0.01);
        for m in MethodKind::ALL {
            if !m.supports_eps() || m == MethodKind::ZOrder {
                continue; // Z-Order is probabilistic; covered elsewhere.
            }
            let mut ev =
                make_evaluator(m, &tree, kernel, "εKDV", &MethodParams::default()).unwrap();
            let r = ev.eval_eps(&q, 0.01);
            assert!(
                (r - truth).abs() <= 0.01 * truth + 1e-12,
                "{m:?}: {r} vs exact {truth}"
            );
        }
    }

    #[test]
    fn all_tau_methods_agree_on_small_input() {
        let tree = small_tree();
        let kernel = Kernel::gaussian(0.5);
        let q = [0.5, 0.5];
        let mut exact = ExactScan::new(tree.points(), kernel);
        let truth = exact.eval_eps(&q, 0.01);
        for m in MethodKind::ALL {
            if !m.supports_tau() {
                continue;
            }
            let mut ev =
                make_evaluator(m, &tree, kernel, "τKDV", &MethodParams::default()).unwrap();
            assert!(ev.eval_tau(&q, truth * 0.9), "{m:?} below-τ case");
            assert!(!ev.eval_tau(&q, truth * 1.1), "{m:?} above-τ case");
        }
    }
}

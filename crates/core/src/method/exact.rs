//! The EXACT baseline: sequential scan (paper §7.1, Table 6).

use crate::kernel::Kernel;
use crate::method::PixelEvaluator;
use kdv_geom::vecmath::dist2;
use kdv_geom::PointSet;

/// Sequential-scan evaluator: `O(n·d)` per pixel, no index, no pruning.
///
/// This is both the paper's EXACT method and the ground-truth oracle
/// for quality experiments.
#[derive(Debug, Clone)]
pub struct ExactScan<'a> {
    points: &'a PointSet,
    kernel: Kernel,
}

impl<'a> ExactScan<'a> {
    /// Creates a scan evaluator over `points`.
    pub fn new(points: &'a PointSet, kernel: Kernel) -> Self {
        Self { points, kernel }
    }

    /// The exact density `F_P(q)`.
    pub fn density(&self, q: &[f64]) -> f64 {
        debug_assert_eq!(q.len(), self.points.dim());
        let mut acc = 0.0;
        for i in 0..self.points.len() {
            acc += self.points.weight(i) * self.kernel.eval_dist2(dist2(q, self.points.point(i)));
        }
        acc
    }
}

impl PixelEvaluator for ExactScan<'_> {
    /// EXACT ignores ε: the result is the true density.
    fn eval_eps(&mut self, q: &[f64], _eps: f64) -> f64 {
        self.density(q)
    }

    fn eval_tau(&mut self, q: &[f64], tau: f64) -> bool {
        self.density(q) >= tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelType;

    #[test]
    fn density_matches_hand_computation() {
        // Two unit-weight points at distance 0 and √2 from the query.
        let ps = PointSet::from_rows(2, &[1.0, 1.0, 2.0, 2.0]);
        let k = Kernel::gaussian(0.5);
        let scan = ExactScan::new(&ps, k);
        let expect = 1.0 + (-0.5 * 2.0f64).exp();
        assert!((scan.density(&[1.0, 1.0]) - expect).abs() < 1e-12);
    }

    #[test]
    fn weighted_points_scale_density() {
        let ps = PointSet::from_rows_weighted(2, &[0.0, 0.0], &[2.5]);
        let scan = ExactScan::new(&ps, Kernel::new(KernelType::Triangular, 1.0));
        assert!((scan.density(&[0.0, 0.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn tau_classification_is_exact() {
        let ps = PointSet::from_rows(2, &[0.0, 0.0]);
        let mut scan = ExactScan::new(&ps, Kernel::gaussian(1.0));
        let f = scan.density(&[1.0, 0.0]);
        assert!(scan.eval_tau(&[1.0, 0.0], f)); // boundary counts as hot
        assert!(!scan.eval_tau(&[1.0, 0.0], f + 1e-12));
    }
}

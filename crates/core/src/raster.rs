//! Pixel rasters and the pixel → data-domain mapping.
//!
//! KDV evaluates the density at the data-space coordinates of every
//! pixel center of a `width × height` screen (§1). [`RasterSpec`]
//! carries the screen resolution plus the rectangular data window being
//! visualized; [`DensityGrid`] stores one `f64` per pixel in row-major
//! order.

use crate::error::KdvError;
use kdv_geom::{Mbr, PointSet};

/// Standard resolutions used throughout the paper's experiments (§7.2).
pub const PAPER_RESOLUTIONS: [(u32, u32); 4] = [(320, 240), (640, 480), (1280, 960), (2560, 1920)];

/// A raster: screen resolution plus the 2-D data window it displays.
#[derive(Debug, Clone, PartialEq)]
pub struct RasterSpec {
    width: u32,
    height: u32,
    x_min: f64,
    x_max: f64,
    y_min: f64,
    y_max: f64,
}

impl RasterSpec {
    /// Creates a raster over an explicit data window.
    ///
    /// # Panics
    /// Panics on zero resolution or an empty/inverted window.
    pub fn new(width: u32, height: u32, x_range: (f64, f64), y_range: (f64, f64)) -> Self {
        assert!(width > 0 && height > 0, "resolution must be positive");
        assert!(
            x_range.0 < x_range.1 && y_range.0 < y_range.1,
            "data window must have positive area"
        );
        Self::try_new(width, height, x_range, y_range).expect("checked above")
    }

    /// Fallible [`RasterSpec::new`]: rejects zero resolution, an
    /// empty/inverted window, and non-finite window edges with a
    /// [`KdvError::DegenerateRaster`] instead of panicking.
    pub fn try_new(
        width: u32,
        height: u32,
        x_range: (f64, f64),
        y_range: (f64, f64),
    ) -> Result<Self, KdvError> {
        if width == 0 || height == 0 {
            return Err(KdvError::DegenerateRaster {
                message: format!("resolution {width}x{height} has no pixels"),
            });
        }
        let finite = [x_range.0, x_range.1, y_range.0, y_range.1]
            .iter()
            .all(|v| v.is_finite());
        if !finite {
            return Err(KdvError::DegenerateRaster {
                message: "data window has a non-finite edge".into(),
            });
        }
        if !(x_range.0 < x_range.1 && y_range.0 < y_range.1) {
            return Err(KdvError::DegenerateRaster {
                message: format!(
                    "data window [{}, {}]x[{}, {}] has no area",
                    x_range.0, x_range.1, y_range.0, y_range.1
                ),
            });
        }
        Ok(Self {
            width,
            height,
            x_min: x_range.0,
            x_max: x_range.1,
            y_min: y_range.0,
            y_max: y_range.1,
        })
    }

    /// Fallible [`RasterSpec::covering`]: rejects an empty or
    /// non-2-D dataset and degenerate resolutions with a structured
    /// [`KdvError`] instead of panicking. A dataset collapsed to a
    /// single location still yields a valid unit-window raster.
    pub fn try_covering(
        points: &PointSet,
        width: u32,
        height: u32,
        margin_frac: f64,
    ) -> Result<Self, KdvError> {
        if points.dim() != 2 {
            return Err(KdvError::DimensionMismatch {
                got: points.dim(),
                expected: 2,
            });
        }
        let Some(mbr) = Mbr::of_set(points) else {
            return Err(KdvError::EmptyDataset);
        };
        if !margin_frac.is_finite() || margin_frac < 0.0 {
            return Err(KdvError::invalid(
                "margin_frac",
                format!("must be non-negative and finite, got {margin_frac}"),
            ));
        }
        let (x0, x1) = (mbr.lo()[0], mbr.hi()[0]);
        let (y0, y1) = (mbr.lo()[1], mbr.hi()[1]);
        // Degenerate extents get a unit window so the raster stays valid.
        let dx = (x1 - x0).max(1e-9);
        let dy = (y1 - y0).max(1e-9);
        Self::try_new(
            width,
            height,
            (x0 - margin_frac * dx, x1 + margin_frac * dx),
            (y0 - margin_frac * dy, y1 + margin_frac * dy),
        )
    }

    /// Creates a raster covering a 2-D dataset's bounding box expanded
    /// by `margin_frac` on each side (so hotspots at the data edge stay
    /// visible).
    ///
    /// # Panics
    /// Panics if the dataset is empty or not 2-dimensional.
    pub fn covering(points: &PointSet, width: u32, height: u32, margin_frac: f64) -> Self {
        assert_eq!(points.dim(), 2, "rasters visualize 2-D data");
        let mbr = Mbr::of_set(points).expect("non-empty dataset");
        let (x0, x1) = (mbr.lo()[0], mbr.hi()[0]);
        let (y0, y1) = (mbr.lo()[1], mbr.hi()[1]);
        // Degenerate extents get a unit window so the raster stays valid.
        let dx = (x1 - x0).max(1e-9);
        let dy = (y1 - y0).max(1e-9);
        Self::new(
            width,
            height,
            (x0 - margin_frac * dx, x1 + margin_frac * dx),
            (y0 - margin_frac * dy, y1 + margin_frac * dy),
        )
    }

    /// Screen width in pixels.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Screen height in pixels.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of pixels.
    #[inline]
    pub fn num_pixels(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Data-space coordinates of the center of pixel `(col, row)`.
    /// Row 0 is the *top* of the screen (maximum `y`), matching image
    /// conventions.
    #[inline]
    pub fn pixel_center(&self, col: u32, row: u32) -> [f64; 2] {
        debug_assert!(col < self.width && row < self.height);
        let fx = (col as f64 + 0.5) / self.width as f64;
        let fy = (row as f64 + 0.5) / self.height as f64;
        [
            self.x_min + fx * (self.x_max - self.x_min),
            self.y_max - fy * (self.y_max - self.y_min),
        ]
    }

    /// The data window as `((x_min, x_max), (y_min, y_max))`.
    pub fn window(&self) -> ((f64, f64), (f64, f64)) {
        ((self.x_min, self.x_max), (self.y_min, self.y_max))
    }

    /// The raster covering the pixel rectangle
    /// `[col0, col0 + w) × [row0, row0 + h)` of this raster: the data
    /// window shrinks to the rectangle's pixel *edges* while the pixel
    /// size stays identical, so `sub.pixel_center(c, r)` coincides with
    /// `self.pixel_center(col0 + c, row0 + r)` (up to float rounding).
    ///
    /// This is the one pixel→data-space mapping shared by tile
    /// extraction (`kdv-server` slippy tiles over a virtual full-zoom
    /// raster) and hierarchical quadrant splitting (`kdv-viz`'s tiled
    /// τKDV renderer).
    pub fn sub_window(&self, col0: u32, row0: u32, w: u32, h: u32) -> Result<Self, KdvError> {
        if w == 0 || h == 0 {
            return Err(KdvError::DegenerateRaster {
                message: format!("sub-window {w}x{h} has no pixels"),
            });
        }
        let in_range = col0.checked_add(w).is_some_and(|c| c <= self.width)
            && row0.checked_add(h).is_some_and(|r| r <= self.height);
        if !in_range {
            return Err(KdvError::DegenerateRaster {
                message: format!(
                    "sub-window at ({col0}, {row0}) size {w}x{h} exceeds the \
                     {}x{} raster",
                    self.width, self.height
                ),
            });
        }
        let x_span = self.x_max - self.x_min;
        let y_span = self.y_max - self.y_min;
        let fx = |col: u32| self.x_min + (col as f64 / self.width as f64) * x_span;
        // Row 0 is the top of the screen (maximum y).
        let fy = |row: u32| self.y_max - (row as f64 / self.height as f64) * y_span;
        Self::try_new(w, h, (fx(col0), fx(col0 + w)), (fy(row0 + h), fy(row0)))
    }

    /// A raster with the same data window at a different resolution.
    pub fn with_resolution(&self, width: u32, height: u32) -> Self {
        Self::new(
            width,
            height,
            (self.x_min, self.x_max),
            (self.y_min, self.y_max),
        )
    }
}

/// A row-major grid of density values (one per pixel).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityGrid {
    width: u32,
    height: u32,
    values: Vec<f64>,
}

impl DensityGrid {
    /// Creates a zero-filled grid.
    pub fn zeros(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            values: vec![0.0; width as usize * height as usize],
        }
    }

    /// Wraps an existing value buffer.
    ///
    /// # Panics
    /// Panics if `values.len() != width * height`.
    pub fn from_values(width: u32, height: u32, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), width as usize * height as usize);
        Self {
            width,
            height,
            values,
        }
    }

    /// Grid width.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Value at `(col, row)`.
    #[inline]
    pub fn get(&self, col: u32, row: u32) -> f64 {
        self.values[row as usize * self.width as usize + col as usize]
    }

    /// Sets the value at `(col, row)`.
    #[inline]
    pub fn set(&mut self, col: u32, row: u32, v: f64) {
        self.values[row as usize * self.width as usize + col as usize] = v;
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Minimum and maximum values (`None` for an empty grid).
    pub fn min_max(&self) -> Option<(f64, f64)> {
        if self.values.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Mean absolute relative error against a reference grid, the
    /// quality metric of the paper's Fig 20:
    /// `(1/|Q|)·Σ |R(q) − F(q)| / F(q)` (pixels with `F(q) = 0` are
    /// compared absolutely against a tiny floor to avoid division by
    /// zero).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mean_relative_error(&self, exact: &DensityGrid) -> f64 {
        assert_eq!(self.width, exact.width);
        assert_eq!(self.height, exact.height);
        let floor = 1e-300;
        let mut acc = 0.0;
        for (r, e) in self.values.iter().zip(&exact.values) {
            let denom = e.abs().max(floor);
            acc += (r - e).abs() / denom;
        }
        acc / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_centers_cover_window() {
        let r = RasterSpec::new(4, 2, (0.0, 4.0), (0.0, 2.0));
        // First pixel center: x = 0.5, y = 2 − 0.5 = 1.5 (top row).
        assert_eq!(r.pixel_center(0, 0), [0.5, 1.5]);
        // Last pixel center: x = 3.5, y = 0.5 (bottom row).
        assert_eq!(r.pixel_center(3, 1), [3.5, 0.5]);
        assert_eq!(r.num_pixels(), 8);
    }

    #[test]
    fn covering_expands_by_margin() {
        let ps = PointSet::from_rows(2, &[0.0, 0.0, 10.0, 20.0]);
        let r = RasterSpec::covering(&ps, 8, 8, 0.1);
        let ((x0, x1), (y0, y1)) = r.window();
        assert_eq!((x0, x1), (-1.0, 11.0));
        assert_eq!((y0, y1), (-2.0, 22.0));
    }

    #[test]
    fn covering_handles_degenerate_extent() {
        let ps = PointSet::from_rows(2, &[1.0, 1.0, 1.0, 1.0]);
        let r = RasterSpec::covering(&ps, 4, 4, 0.05);
        let ((x0, x1), _) = r.window();
        assert!(x1 > x0);
    }

    #[test]
    fn with_resolution_keeps_window() {
        let r = RasterSpec::new(10, 10, (0.0, 1.0), (0.0, 1.0));
        let r2 = r.with_resolution(20, 5);
        assert_eq!(r2.window(), r.window());
        assert_eq!((r2.width(), r2.height()), (20, 5));
    }

    #[test]
    fn sub_window_preserves_pixel_centers() {
        let r = RasterSpec::new(8, 6, (-3.0, 5.0), (10.0, 40.0));
        for (col0, row0, w, h) in [(0u32, 0u32, 8u32, 6u32), (2, 1, 4, 3), (7, 5, 1, 1)] {
            let sub = r.sub_window(col0, row0, w, h).expect("valid rect");
            assert_eq!((sub.width(), sub.height()), (w, h));
            for c in 0..w {
                for row in 0..h {
                    let a = sub.pixel_center(c, row);
                    let b = r.pixel_center(col0 + c, row0 + row);
                    assert!(
                        (a[0] - b[0]).abs() < 1e-12 && (a[1] - b[1]).abs() < 1e-12,
                        "({col0},{row0},{w},{h}) pixel ({c},{row}): {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sub_window_quadrants_tile_the_parent_window() {
        let r = RasterSpec::new(4, 4, (0.0, 1.0), (0.0, 1.0));
        let tl = r.sub_window(0, 0, 2, 2).expect("tl");
        let br = r.sub_window(2, 2, 2, 2).expect("br");
        // Top-left quadrant: upper half of y, lower half of x.
        assert_eq!(tl.window(), ((0.0, 0.5), (0.5, 1.0)));
        assert_eq!(br.window(), ((0.5, 1.0), (0.0, 0.5)));
        // Full-raster sub-window is the identity.
        assert_eq!(r.sub_window(0, 0, 4, 4).expect("full"), r);
    }

    #[test]
    fn sub_window_rejects_bad_rects() {
        let r = RasterSpec::new(4, 4, (0.0, 1.0), (0.0, 1.0));
        assert!(r.sub_window(0, 0, 0, 2).is_err(), "zero width");
        assert!(r.sub_window(0, 0, 2, 0).is_err(), "zero height");
        assert!(r.sub_window(3, 0, 2, 2).is_err(), "overhangs right edge");
        assert!(r.sub_window(0, 4, 1, 1).is_err(), "starts past the bottom");
        assert!(
            r.sub_window(u32::MAX, 0, 2, 2).is_err(),
            "col0 + w overflow must not wrap"
        );
    }

    #[test]
    fn grid_roundtrip_and_minmax() {
        let mut g = DensityGrid::zeros(3, 2);
        g.set(2, 1, 5.0);
        g.set(0, 0, -1.0);
        assert_eq!(g.get(2, 1), 5.0);
        assert_eq!(g.min_max(), Some((-1.0, 5.0)));
    }

    #[test]
    fn mean_relative_error_simple() {
        let exact = DensityGrid::from_values(2, 1, vec![1.0, 2.0]);
        let approx = DensityGrid::from_values(2, 1, vec![1.1, 1.8]);
        // (0.1/1 + 0.2/2) / 2 = 0.1
        assert!((approx.mean_relative_error(&exact) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn inverted_window_panics() {
        RasterSpec::new(2, 2, (1.0, 0.0), (0.0, 1.0));
    }

    #[test]
    fn try_new_rejects_degenerate_rasters() {
        assert!(matches!(
            RasterSpec::try_new(0, 2, (0.0, 1.0), (0.0, 1.0)),
            Err(KdvError::DegenerateRaster { .. })
        ));
        assert!(matches!(
            RasterSpec::try_new(2, 2, (1.0, 0.0), (0.0, 1.0)),
            Err(KdvError::DegenerateRaster { .. })
        ));
        assert!(matches!(
            RasterSpec::try_new(2, 2, (0.0, f64::NAN), (0.0, 1.0)),
            Err(KdvError::DegenerateRaster { .. })
        ));
        assert!(RasterSpec::try_new(2, 2, (0.0, 1.0), (0.0, 1.0)).is_ok());
    }

    #[test]
    fn try_covering_rejects_empty_and_wrong_dim() {
        let empty = PointSet::from_rows(2, &[]);
        assert!(matches!(
            RasterSpec::try_covering(&empty, 4, 4, 0.1),
            Err(KdvError::EmptyDataset)
        ));
        let one_d = PointSet::from_rows(1, &[0.0, 1.0]);
        assert!(matches!(
            RasterSpec::try_covering(&one_d, 4, 4, 0.1),
            Err(KdvError::DimensionMismatch {
                got: 1,
                expected: 2
            })
        ));
        let single = PointSet::from_rows(2, &[3.0, 3.0]);
        let r = RasterSpec::try_covering(&single, 4, 4, 0.1).expect("single point is fine");
        let ((x0, x1), _) = r.window();
        assert!(x1 > x0, "degenerate extent widened to a valid window");
    }
}

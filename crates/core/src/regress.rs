//! Nadaraya–Watson kernel regression on QUAD bounds — the paper's §8
//! future work ("we will further apply QUAD to other kernel-based
//! machine learning models, e.g., kernel regression …"), implemented.
//!
//! The regression estimate at a query `q` is a ratio of two kernel
//! aggregations:
//!
//! ```text
//!           Σ wᵢ·yᵢ·K(q, pᵢ)      N(q)
//! ŷ(q) =  ------------------  =  ------
//!           Σ wᵢ·K(q, pᵢ)         D(q)
//! ```
//!
//! Splitting the numerator by response sign, `N = N⁺ − N⁻` with
//! `N⁺ = Σ wᵢ·max(yᵢ, 0)·K` and `N⁻ = Σ wᵢ·max(−yᵢ, 0)·K`, turns all
//! three quantities into non-negative kernel aggregations — exactly
//! what the refinement engine bounds. Interval arithmetic on the three
//! brackets then bounds the ratio, and the predictor refines all three
//! geometrically until the ratio interval meets the requested relative
//! width. Every piece reuses the εKDV machinery, so the speedup of the
//! quadratic bounds transfers directly.

use crate::bounds::BoundFamily;
use crate::engine::RefineEvaluator;
use crate::kernel::Kernel;
use kdv_geom::PointSet;
use kdv_index::{BuildConfig, KdTree};

/// Floor below which the denominator is treated as "no data in range".
const DENSITY_FLOOR: f64 = 1e-300;

/// A bounded regression prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Point estimate (interval midpoint).
    pub value: f64,
    /// Certified lower bound on ŷ(q).
    pub lo: f64,
    /// Certified upper bound on ŷ(q).
    pub hi: f64,
}

/// A fitted kernel regression model.
///
/// # Examples
/// ```
/// use kdv_core::kernel::Kernel;
/// use kdv_core::regress::KernelRegression;
/// use kdv_geom::PointSet;
///
/// // y = 2·x₀ sampled on a line.
/// let mut xs = PointSet::new(2);
/// let mut ys = Vec::new();
/// for i in 0..200 {
///     let x = i as f64 / 100.0;
///     xs.push(&[x, 0.0]);
///     ys.push(2.0 * x);
/// }
/// let model = KernelRegression::fit(&xs, &ys, Kernel::gaussian(200.0));
/// let mut p = model.predictor();
/// let pred = p.predict(&[1.0, 0.0], 0.01).expect("data in range");
/// assert!((pred.value - 2.0).abs() < 0.05);
/// assert!(pred.lo <= pred.value && pred.value <= pred.hi);
/// ```
#[derive(Debug)]
pub struct KernelRegression {
    den: KdTree,
    pos: Option<KdTree>,
    neg: Option<KdTree>,
    kernel: Kernel,
    family: BoundFamily,
}

impl KernelRegression {
    /// Fits the model: builds the (up to three) weighted indexes.
    ///
    /// Point weights of `xs` are multiplied into the aggregations, so a
    /// uniform `1/n` weighting (or coreset re-weighting) carries over.
    ///
    /// # Panics
    /// Panics if `ys.len() != xs.len()`, `xs` is empty, or any response
    /// is non-finite.
    pub fn fit(xs: &PointSet, ys: &[f64], kernel: Kernel) -> Self {
        Self::fit_with(
            xs,
            ys,
            kernel,
            BoundFamily::Quadratic,
            BuildConfig::default(),
        )
    }

    /// [`KernelRegression::fit`] with an explicit bound family and tree
    /// configuration (useful for ablations against KARL/interval).
    pub fn fit_with(
        xs: &PointSet,
        ys: &[f64],
        kernel: Kernel,
        family: BoundFamily,
        config: BuildConfig,
    ) -> Self {
        assert_eq!(xs.len(), ys.len(), "one response per point");
        assert!(!xs.is_empty(), "cannot fit on an empty dataset");
        assert!(ys.iter().all(|y| y.is_finite()), "responses must be finite");

        let mut pos = PointSet::new(xs.dim());
        let mut neg = PointSet::new(xs.dim());
        for (i, &y) in ys.iter().enumerate() {
            let w = xs.weight(i);
            if y > 0.0 {
                pos.push_weighted(xs.point(i), w * y);
            } else if y < 0.0 {
                neg.push_weighted(xs.point(i), w * (-y));
            }
        }
        Self {
            den: KdTree::build(xs, config),
            pos: (!pos.is_empty()).then(|| KdTree::build(&pos, config)),
            neg: (!neg.is_empty()).then(|| KdTree::build(&neg, config)),
            kernel,
            family,
        }
    }

    /// Creates a reusable predictor (owns the per-query scratch state).
    pub fn predictor(&self) -> Predictor<'_> {
        Predictor {
            den: RefineEvaluator::new(&self.den, self.kernel, self.family),
            pos: self
                .pos
                .as_ref()
                .map(|t| RefineEvaluator::new(t, self.kernel, self.family)),
            neg: self
                .neg
                .as_ref()
                .map(|t| RefineEvaluator::new(t, self.kernel, self.family)),
        }
    }
}

/// Per-query state for [`KernelRegression`].
#[derive(Debug)]
pub struct Predictor<'a> {
    den: RefineEvaluator<'a>,
    pos: Option<RefineEvaluator<'a>>,
    neg: Option<RefineEvaluator<'a>>,
}

impl Predictor<'_> {
    /// Predicts ŷ(q) with certified bounds of relative width ≤ `eps`
    /// (relative to the larger bound magnitude).
    ///
    /// Returns `None` when the denominator's kernel mass at `q` is
    /// numerically zero — no data point is within kernel range, so the
    /// regression is undefined there (only possible for compact-support
    /// kernels or extreme distances).
    ///
    /// # Panics
    /// Panics if `eps` is not positive and finite.
    pub fn predict(&mut self, q: &[f64], eps: f64) -> Option<Prediction> {
        assert!(eps.is_finite() && eps > 0.0, "ε must be positive");
        // Refine all three aggregations geometrically until the ratio
        // interval is tight. Inner ε starts coarse; each round halves
        // it, and each eval reuses the engine (queries are independent,
        // so re-evaluation cost is bounded by the final tightness).
        let mut inner = (eps / 4.0).min(0.25);
        for _ in 0..48 {
            let (dl, dh) = self.den.eval_eps_bounds(q, inner);
            if dh <= DENSITY_FLOOR {
                return None;
            }
            let (pl, ph) = match &mut self.pos {
                Some(ev) => ev.eval_eps_bounds(q, inner),
                None => (0.0, 0.0),
            };
            let (nl, nh) = match &mut self.neg {
                Some(ev) => ev.eval_eps_bounds(q, inner),
                None => (0.0, 0.0),
            };
            let num_lo = pl - nh;
            let num_hi = ph - nl;
            if dl > DENSITY_FLOOR {
                // Interval division with positive denominator [dl, dh].
                let lo = if num_lo >= 0.0 {
                    num_lo / dh
                } else {
                    num_lo / dl
                };
                let hi = if num_hi >= 0.0 {
                    num_hi / dl
                } else {
                    num_hi / dh
                };
                let scale = lo.abs().max(hi.abs()).max(f64::MIN_POSITIVE);
                if hi - lo <= eps * scale {
                    return Some(Prediction {
                        value: 0.5 * (lo + hi),
                        lo,
                        hi,
                    });
                }
            }
            inner *= 0.5;
            if inner < 1e-14 {
                // Bounds cannot tighten further (we are at exact
                // evaluation); return the best interval we have.
                let lo = if num_lo >= 0.0 {
                    num_lo / dh
                } else {
                    num_lo / dl.max(DENSITY_FLOOR)
                };
                let hi = if num_hi >= 0.0 {
                    num_hi / dl.max(DENSITY_FLOOR)
                } else {
                    num_hi / dh
                };
                return Some(Prediction {
                    value: 0.5 * (lo + hi),
                    lo,
                    hi,
                });
            }
        }
        unreachable!("inner ε reaches the exactness floor within 48 halvings");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelType;
    use kdv_geom::vecmath::dist2;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    fn brute_nw(xs: &PointSet, ys: &[f64], kernel: &Kernel, q: &[f64]) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, y) in ys.iter().enumerate().take(xs.len()) {
            let k = xs.weight(i) * kernel.eval_dist2(dist2(q, xs.point(i)));
            num += y * k;
            den += k;
        }
        (den > 0.0).then_some(num / den)
    }

    fn noisy_plane(n: usize, seed: u64) -> (PointSet, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = PointSet::new(2);
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.gen_range(-2.0..2.0);
            let b = rng.gen_range(-2.0..2.0);
            xs.push(&[a, b]);
            // y = 3a − b + 1, mildly noisy, sign-mixed.
            ys.push(3.0 * a - b + 1.0 + rng.gen_range(-0.05..0.05));
        }
        (xs, ys)
    }

    #[test]
    fn recovers_linear_function() {
        let (xs, ys) = noisy_plane(4000, 1);
        let kernel = Kernel::gaussian(40.0);
        let model = KernelRegression::fit(&xs, &ys, kernel);
        let mut p = model.predictor();
        for q in [[0.0, 0.0], [1.0, -1.0], [-1.5, 0.5]] {
            let expect = 3.0 * q[0] - q[1] + 1.0;
            let pred = p.predict(&q, 0.01).expect("dense data");
            assert!(
                (pred.value - expect).abs() < 0.15,
                "ŷ({q:?}) = {} vs plane {expect}",
                pred.value
            );
        }
    }

    #[test]
    fn interval_contains_brute_force_ratio() {
        let (xs, ys) = noisy_plane(1500, 2);
        let kernel = Kernel::gaussian(10.0);
        let model = KernelRegression::fit(&xs, &ys, kernel);
        let mut p = model.predictor();
        for q in [[0.3, 0.7], [-1.0, -1.0], [2.2, 2.2]] {
            let truth = brute_nw(&xs, &ys, &kernel, &q).expect("positive mass");
            let pred = p.predict(&q, 0.02).expect("prediction");
            let slack = 1e-9 * (1.0 + truth.abs());
            assert!(
                pred.lo - slack <= truth && truth <= pred.hi + slack,
                "truth {truth} outside [{}, {}]",
                pred.lo,
                pred.hi
            );
            assert!(pred.hi - pred.lo <= 0.02 * pred.lo.abs().max(pred.hi.abs()) + 1e-12);
        }
    }

    #[test]
    fn all_negative_responses_work() {
        let mut xs = PointSet::new(1);
        let mut ys = Vec::new();
        for i in 0..300 {
            xs.push(&[i as f64 / 100.0]);
            ys.push(-5.0);
        }
        let model = KernelRegression::fit(&xs, &ys, Kernel::gaussian(50.0));
        let mut p = model.predictor();
        let pred = p.predict(&[1.5], 0.01).expect("data in range");
        // ε = 0.01 certifies 1% relative width around the true −5.
        assert!(
            (pred.value + 5.0).abs() <= 0.05,
            "constant −5, got {}",
            pred.value
        );
        assert!(pred.lo <= -5.0 + 1e-9 && -5.0 <= pred.hi + 1e-9);
    }

    #[test]
    fn compact_kernel_far_query_is_none() {
        let mut xs = PointSet::new(2);
        xs.push(&[0.0, 0.0]);
        let model = KernelRegression::fit(&xs, &[1.0], Kernel::new(KernelType::Triangular, 1.0));
        let mut p = model.predictor();
        assert!(p.predict(&[100.0, 100.0], 0.01).is_none());
    }

    #[test]
    fn zero_responses_predict_zero() {
        let mut xs = PointSet::new(1);
        for i in 0..50 {
            xs.push(&[i as f64]);
        }
        let ys = vec![0.0; 50];
        let model = KernelRegression::fit(&xs, &ys, Kernel::gaussian(0.1));
        let mut p = model.predictor();
        let pred = p.predict(&[25.0], 0.01).expect("mass present");
        assert_eq!(pred.value, 0.0);
        assert_eq!((pred.lo, pred.hi), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "one response per point")]
    fn mismatched_lengths_panic() {
        let xs = PointSet::from_rows(1, &[0.0, 1.0]);
        KernelRegression::fit(&xs, &[1.0], Kernel::gaussian(1.0));
    }

    #[test]
    fn quadratic_family_predicts_same_as_interval_family() {
        let (xs, ys) = noisy_plane(800, 3);
        let kernel = Kernel::gaussian(5.0);
        let a = KernelRegression::fit_with(
            &xs,
            &ys,
            kernel,
            BoundFamily::Quadratic,
            BuildConfig::default(),
        );
        let b = KernelRegression::fit_with(
            &xs,
            &ys,
            kernel,
            BoundFamily::Interval,
            BuildConfig::default(),
        );
        let (mut pa, mut pb) = (a.predictor(), b.predictor());
        for q in [[0.0, 0.0], [1.0, 1.0]] {
            let ra = pa.predict(&q, 0.01).expect("a");
            let rb = pb.predict(&q, 0.01).expect("b");
            assert!(
                (ra.value - rb.value).abs() <= 0.02 * ra.value.abs().max(1e-9),
                "families disagree: {} vs {}",
                ra.value,
                rb.value
            );
        }
    }
}

//! Kernel functions and their scalar bound constructions.
//!
//! A kernel profile is a non-increasing scalar function `k(x) ∈ [0, 1]`
//! applied to a transformed distance `x`:
//!
//! * the **Gaussian** kernel uses `x = γ·dist(q, p)²` and
//!   `k(x) = exp(−x)` (paper Eq. 1);
//! * the **distance kernels** of Table 4 — triangular, cosine,
//!   exponential (plus our Epanechnikov/quartic extensions) — use
//!   `x = γ·dist(q, p)`.
//!
//! Each kernel submodule hosts the *scalar* mathematics of the paper:
//! chord/tangent linear bounds (§3.3), quadratic bounds with the optimal
//! curvature of Theorems 1 & 2, and the §9.6 constructions for cosine
//! and exponential profiles. The [`crate::bounds`] module lifts these to
//! node aggregates.

pub mod cosine;
pub mod exponential;
pub mod extra;
pub mod gaussian;
pub mod triangular;

/// Coefficients of a *restricted* quadratic bound `Q(x) = a·x² + c`
/// (linear coefficient fixed to zero).
///
/// This is the form §5.2 uses for distance kernels: because
/// `Σ wᵢ xᵢ² = γ²·Σ wᵢ dist(q, pᵢ)²` is computable in `O(d)` from node
/// moments while `Σ wᵢ xᵢ` is not, dropping the linear term keeps the
/// aggregate bound `O(d)`-evaluable (Lemma 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RQuad {
    /// Curvature (negative for all §5.2 constructions).
    pub a: f64,
    /// Constant term.
    pub c: f64,
}

impl RQuad {
    /// Evaluates the restricted parabola at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.a * x * x + self.c
    }
}

/// Which kernel function `K(q, p)` the density uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelType {
    /// `exp(−γ·dist²)` — paper Eq. 1. Argument `x = γ·dist²`.
    Gaussian,
    /// `max(1 − γ·dist, 0)` — Table 4. Argument `x = γ·dist`.
    Triangular,
    /// `cos(γ·dist)` for `γ·dist ≤ π/2`, else 0 — Table 4.
    Cosine,
    /// `exp(−γ·dist)` — Table 4.
    Exponential,
    /// `max(1 − (γ·dist)², 0)` — Scikit-learn's Epanechnikov kernel
    /// (extension beyond the paper; quadratic in `x = γ·dist`, so QUAD's
    /// restricted quadratic form bounds it *exactly* inside its support).
    Epanechnikov,
    /// `max(1 − (γ·dist)², 0)²` — biweight/quartic kernel (extension).
    Quartic,
}

impl KernelType {
    /// Whether the kernel's natural argument is the squared distance
    /// (`true` only for Gaussian).
    #[inline]
    pub fn uses_squared_distance(self) -> bool {
        matches!(self, KernelType::Gaussian)
    }

    /// All kernel types, for exhaustive test sweeps.
    pub const ALL: [KernelType; 6] = [
        KernelType::Gaussian,
        KernelType::Triangular,
        KernelType::Cosine,
        KernelType::Exponential,
        KernelType::Epanechnikov,
        KernelType::Quartic,
    ];

    /// The kernels the paper evaluates (Table 4 + Gaussian).
    pub const PAPER: [KernelType; 4] = [
        KernelType::Gaussian,
        KernelType::Triangular,
        KernelType::Cosine,
        KernelType::Exponential,
    ];

    /// Human-readable name used by the figure harness.
    pub fn name(self) -> &'static str {
        match self {
            KernelType::Gaussian => "gaussian",
            KernelType::Triangular => "triangular",
            KernelType::Cosine => "cosine",
            KernelType::Exponential => "exponential",
            KernelType::Epanechnikov => "epanechnikov",
            KernelType::Quartic => "quartic",
        }
    }
}

/// A concrete kernel: type plus the scale parameter γ.
///
/// γ is produced by [`crate::bandwidth::scott_gamma`] in the paper's
/// experiments; any positive value is accepted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kernel {
    /// Kernel family.
    pub ty: KernelType,
    /// Scale parameter γ of Eq. 1 / Table 4.
    pub gamma: f64,
}

impl Kernel {
    /// Creates a kernel, validating γ.
    ///
    /// # Panics
    /// Panics if γ is not a positive finite number.
    pub fn new(ty: KernelType, gamma: f64) -> Self {
        assert!(gamma.is_finite() && gamma > 0.0, "γ must be positive");
        Self { ty, gamma }
    }

    /// Gaussian kernel with scale γ.
    pub fn gaussian(gamma: f64) -> Self {
        Self::new(KernelType::Gaussian, gamma)
    }

    /// Triangular kernel with scale γ.
    pub fn triangular(gamma: f64) -> Self {
        Self::new(KernelType::Triangular, gamma)
    }

    /// Cosine kernel with scale γ.
    pub fn cosine(gamma: f64) -> Self {
        Self::new(KernelType::Cosine, gamma)
    }

    /// Exponential kernel with scale γ.
    pub fn exponential(gamma: f64) -> Self {
        Self::new(KernelType::Exponential, gamma)
    }

    /// Evaluates `K(q, p)` given the *squared* Euclidean distance
    /// between `q` and `p`.
    #[inline]
    pub fn eval_dist2(&self, d2: f64) -> f64 {
        debug_assert!(d2 >= 0.0);
        match self.ty {
            KernelType::Gaussian => gaussian::profile(self.gamma * d2),
            KernelType::Triangular => triangular::profile(self.gamma * d2.sqrt()),
            KernelType::Cosine => cosine::profile(self.gamma * d2.sqrt()),
            KernelType::Exponential => exponential::profile(self.gamma * d2.sqrt()),
            KernelType::Epanechnikov => extra::epanechnikov_profile(self.gamma * d2.sqrt()),
            KernelType::Quartic => extra::quartic_profile(self.gamma * d2.sqrt()),
        }
    }

    /// Evaluates the scalar profile `k(x)` at a transformed argument
    /// (`x = γ·d²` for Gaussian, `x = γ·d` otherwise).
    #[inline]
    pub fn profile(&self, x: f64) -> f64 {
        match self.ty {
            KernelType::Gaussian => gaussian::profile(x),
            KernelType::Triangular => triangular::profile(x),
            KernelType::Cosine => cosine::profile(x),
            KernelType::Exponential => exponential::profile(x),
            KernelType::Epanechnikov => extra::epanechnikov_profile(x),
            KernelType::Quartic => extra::quartic_profile(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_uses_squared_distance() {
        assert!(KernelType::Gaussian.uses_squared_distance());
        assert!(!KernelType::Triangular.uses_squared_distance());
    }

    #[test]
    fn eval_dist2_matches_profiles() {
        let d2 = 2.25; // d = 1.5
        let g = Kernel::gaussian(0.5);
        assert!((g.eval_dist2(d2) - (-0.5 * 2.25f64).exp()).abs() < 1e-15);
        let t = Kernel::triangular(0.4);
        assert!((t.eval_dist2(d2) - (1.0 - 0.4 * 1.5)).abs() < 1e-15);
        let c = Kernel::cosine(0.4);
        assert!((c.eval_dist2(d2) - (0.4f64 * 1.5).cos()).abs() < 1e-15);
        let e = Kernel::exponential(0.4);
        assert!((e.eval_dist2(d2) - (-0.4f64 * 1.5).exp()).abs() < 1e-15);
    }

    #[test]
    fn all_profiles_are_nonincreasing_and_unit_at_zero() {
        for ty in KernelType::ALL {
            let k = Kernel::new(ty, 1.0);
            assert!((k.profile(0.0) - 1.0).abs() < 1e-15, "{ty:?} k(0) ≠ 1");
            let mut prev = f64::INFINITY;
            for i in 0..200 {
                let x = i as f64 * 0.05;
                let v = k.profile(x);
                assert!(v >= 0.0, "{ty:?} negative at {x}");
                assert!(v <= prev + 1e-12, "{ty:?} increasing at {x}");
                prev = v;
            }
        }
    }

    #[test]
    #[should_panic(expected = "γ must be positive")]
    fn zero_gamma_panics() {
        Kernel::gaussian(0.0);
    }
}

//! Extension kernels beyond the paper: Epanechnikov and quartic
//! (biweight), both supported by Scikit-learn/QGIS-style tooling.
//!
//! These profiles are *polynomials in the squared argument*
//! `u = x² = γ²·dist(q, p)²`, which QUAD's moment machinery evaluates
//! directly: `Σ wᵢ uᵢ` is the `O(d)` second-moment contraction and
//! `Σ wᵢ uᵢ²` the `O(d²)` fourth-moment contraction of Lemma 3. When an
//! index node lies entirely inside the kernel support the aggregate is
//! therefore **exact** (zero-width bounds); the truncation at the
//! support edge is the only thing that needs bounding, and the
//! triangular-kernel constructions of §5.2 apply verbatim in `u`-space.

use super::RQuad;
use crate::kernel::triangular;

/// Epanechnikov profile `max(1 − x², 0)` (argument `x = γ·dist`).
#[inline]
pub fn epanechnikov_profile(x: f64) -> f64 {
    (1.0 - x * x).max(0.0)
}

/// Quartic (biweight) profile `max(1 − x², 0)²`.
#[inline]
pub fn quartic_profile(x: f64) -> f64 {
    let t = (1.0 - x * x).max(0.0);
    t * t
}

/// Upper bound for Epanechnikov in `u = x²` space over `[u_min, u_max]`.
///
/// Since the profile is `max(1 − u, 0)`, this is exactly the triangular
/// construction of §5.2.1 applied to `u`; the returned [`RQuad`] must be
/// evaluated at `u` (i.e. aggregated with `Σ wᵢ uᵢ²`, the fourth
/// moment) — or, when `u_max ≤ 1`, the *linear-in-u* exact form can be
/// used instead. The bounds layer handles that dispatch.
pub fn epanechnikov_upper_u(u_min: f64, u_max: f64) -> Option<RQuad> {
    triangular::quad_upper(u_min, u_max)
}

/// Lower bound for Epanechnikov in `u`-space: the tangent-shift
/// construction of §5.2.2 in `u`, with Theorem 2's optimal curvature
/// computed from the fourth moment by the bounds layer.
pub fn epanechnikov_lower_u(a: f64) -> Option<RQuad> {
    triangular::quad_lower(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn profiles_at_support_edges() {
        assert_eq!(epanechnikov_profile(0.0), 1.0);
        assert_eq!(epanechnikov_profile(1.0), 0.0);
        assert_eq!(epanechnikov_profile(2.0), 0.0);
        assert_eq!(quartic_profile(0.0), 1.0);
        assert_eq!(quartic_profile(1.0), 0.0);
        assert!((quartic_profile(0.5) - 0.5625).abs() < 1e-12);
    }

    #[test]
    fn quartic_is_square_of_epanechnikov() {
        for i in 0..50 {
            let x = i as f64 * 0.05;
            let e = epanechnikov_profile(x);
            assert!((quartic_profile(x) - e * e).abs() < 1e-12);
        }
    }

    proptest! {
        /// The u-space upper bound dominates the profile expressed in u.
        #[test]
        fn epanechnikov_upper_u_correct(
            u_min in 0.0..2.0f64,
            span in 1e-4..2.0f64,
        ) {
            let u_max = u_min + span;
            if let Some(q) = epanechnikov_upper_u(u_min, u_max) {
                for i in 0..=100 {
                    let u = u_min + span * i as f64 / 100.0;
                    let x = u.sqrt();
                    prop_assert!(q.eval(u) >= epanechnikov_profile(x) - 1e-9);
                }
            }
        }

        /// The u-space lower bound stays below the profile everywhere.
        #[test]
        fn epanechnikov_lower_u_correct(a in -50.0..-1e-3f64, u in 0.0..6.0f64) {
            let q = epanechnikov_lower_u(a).unwrap();
            prop_assert!(q.eval(u) <= epanechnikov_profile(u.sqrt()) + 1e-9);
        }
    }
}

//! Scalar bound constructions for the cosine profile
//! `k(x) = cos(x)` for `x ≤ π/2`, else `0`, with `x = γ·dist(q, p)`
//! (paper §5.2.3, §9.6.1–9.6.2).

use super::RQuad;
use crate::kernel::gaussian::DEGENERATE_SPAN;
use std::f64::consts::FRAC_PI_2;

/// The cosine profile, zero beyond `π/2`.
#[inline]
pub fn profile(x: f64) -> f64 {
    if x <= FRAC_PI_2 {
        x.cos()
    } else {
        0.0
    }
}

/// QUAD's restricted-quadratic **upper** bound (§9.6.1, Lemma 9): the
/// parabola `a_u x² + c_u` through `(x_min, cos x_min)` and
/// `(x_max, cos x_max)`, correct on `[x_min, x_max] ⊆ [0, π/2]`.
///
/// Returns `None` when `x_max > π/2`: Lemma 9's proof needs the whole
/// interval inside the cosine's support (beyond it the kernel is zero
/// while the decreasing parabola goes negative, breaking per-point
/// domination). Callers fall back to the interval bound, exactly as the
/// existing methods the paper compares against must.
pub fn quad_upper(x_min: f64, x_max: f64) -> Option<RQuad> {
    if x_max > FRAC_PI_2 {
        return None;
    }
    let denom = x_max * x_max - x_min * x_min;
    if denom < DEGENERATE_SPAN {
        return None;
    }
    let (f_min, f_max) = (x_min.cos(), x_max.cos());
    Some(RQuad {
        a: (f_max - f_min) / denom,
        c: (x_max * x_max * f_min - x_min * x_min * f_max) / denom,
    })
}

/// QUAD's restricted-quadratic **lower** bound (§9.6.2, Lemma 10): the
/// parabola tangent to `cos(x)` at `m = min(x_max, π/2)` with matched
/// slope:
///
/// `a_l = −sin(m)/(2m)`, `c_l = cos(m) + m·sin(m)/2` (Eqs. 12–13).
///
/// Clamping the tangent point to `π/2` keeps the bound valid when the
/// interval extends past the support: the clamped parabola's root is
/// exactly `π/2`, so it is non-positive wherever the kernel is zero.
pub fn quad_lower(x_max: f64) -> Option<RQuad> {
    let m = x_max.min(FRAC_PI_2);
    if m < DEGENERATE_SPAN {
        return None;
    }
    let (sin_m, cos_m) = m.sin_cos();
    Some(RQuad {
        a: -sin_m / (2.0 * m),
        c: cos_m + m * sin_m / 2.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn profile_support() {
        assert_eq!(profile(0.0), 1.0);
        assert!((profile(1.0) - 1.0f64.cos()).abs() < 1e-15);
        assert_eq!(profile(2.0), 0.0);
        assert!(profile(FRAC_PI_2) < 1e-15);
    }

    #[test]
    fn quad_upper_interpolates_endpoints() {
        let q = quad_upper(0.2, 1.2).unwrap();
        assert!((q.eval(0.2) - 0.2f64.cos()).abs() < 1e-12);
        assert!((q.eval(1.2) - 1.2f64.cos()).abs() < 1e-12);
    }

    #[test]
    fn quad_upper_rejected_beyond_support() {
        assert!(quad_upper(0.5, 2.0).is_none());
        assert!(quad_upper(1.0, 1.0).is_none()); // degenerate
    }

    #[test]
    fn quad_lower_tangency_at_clamped_point() {
        let q = quad_lower(1.1).unwrap();
        assert!((q.eval(1.1) - 1.1f64.cos()).abs() < 1e-12);
        let deriv = 2.0 * q.a * 1.1;
        assert!((deriv + 1.1f64.sin()).abs() < 1e-12);
    }

    #[test]
    fn quad_lower_clamped_root_is_half_pi() {
        // For x_max ≥ π/2 the parabola must vanish exactly at π/2.
        let q = quad_lower(3.0).unwrap();
        assert!(q.eval(FRAC_PI_2).abs() < 1e-12);
        assert!(q.eval(2.0) < 0.0);
    }

    proptest! {
        /// Lemma 9: Q_U ≥ cos on [x_min, x_max] and tighter than the
        /// interval bound cos(x_min).
        #[test]
        fn quad_upper_correct_and_tighter(
            x_min in 0.0..1.5f64,
            frac in 1e-4..1.0f64,
        ) {
            let x_max = x_min + (FRAC_PI_2 - x_min) * frac;
            if let Some(q) = quad_upper(x_min, x_max) {
                for i in 0..=200 {
                    let x = x_min + (x_max - x_min) * i as f64 / 200.0;
                    let v = q.eval(x);
                    prop_assert!(v >= profile(x) - 1e-9);
                    prop_assert!(v <= x_min.cos() + 1e-9);
                }
            }
        }

        /// Lemma 10 (plus the clamping argument): Q_L ≤ profile for all
        /// x ≥ 0, for every x_max.
        #[test]
        fn quad_lower_globally_valid(x_max in 1e-3..6.0f64, x in 0.0..8.0f64) {
            if let Some(q) = quad_lower(x_max) {
                prop_assert!(q.eval(x) <= profile(x) + 1e-9,
                    "Q_L({x}) = {} above profile {}", q.eval(x), profile(x));
            }
        }
    }
}

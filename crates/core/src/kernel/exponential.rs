//! Scalar bound constructions for the exponential profile
//! `k(x) = exp(−x)` with `x = γ·dist(q, p)` (paper §5.2.3, §9.6.3–9.6.4).
//!
//! Note the distinction from [`crate::kernel::gaussian`]: the profile is
//! the same function of `x`, but `x` here is the *distance*, not the
//! squared distance, so the free-coefficient quadratic of §4 cannot be
//! aggregated in `O(d)`; the restricted `a·x² + c` form of §5 can.

use super::RQuad;
use crate::kernel::gaussian::DEGENERATE_SPAN;

/// The exponential profile `exp(−x)` for `x ≥ 0`.
#[inline]
pub fn profile(x: f64) -> f64 {
    (-x).exp()
}

/// QUAD's restricted-quadratic **upper** bound (§9.6.3, Lemma 11): the
/// parabola `a_u x² + c_u` through `(x_min, e^{−x_min})` and
/// `(x_max, e^{−x_max})` (Eqs. 14–15).
///
/// Correct on `[x_min, x_max]`: `a_u ≤ 0` makes the parabola concave, so
/// it dominates its own chord, which dominates the convex `exp(−x)`.
pub fn quad_upper(x_min: f64, x_max: f64) -> Option<RQuad> {
    let denom = x_max * x_max - x_min * x_min;
    if denom < DEGENERATE_SPAN {
        return None;
    }
    let (f_min, f_max) = (profile(x_min), profile(x_max));
    Some(RQuad {
        a: (f_max - f_min) / denom,
        c: (x_max * x_max * f_min - x_min * x_min * f_max) / denom,
    })
}

/// QUAD's restricted-quadratic **lower** bound (§9.6.4, Lemma 12): the
/// parabola tangent to `exp(−x)` at `t`:
///
/// `a_l = −e^{−t}/(2t)`, `c_l = (t + 2)·e^{−t}/2` (Eqs. 16–17).
///
/// Valid for **all** `x ≥ 0` and any `t > 0`: the parabola lies below
/// the tangent line of `exp(−x)` at `t` (concavity, equal slope and
/// value at `t`), and the tangent line lies below `exp(−x)` (convexity).
pub fn quad_lower(t: f64) -> Option<RQuad> {
    if t < DEGENERATE_SPAN {
        return None;
    }
    let et = profile(t);
    Some(RQuad {
        a: -et / (2.0 * t),
        c: (t + 2.0) * et / 2.0,
    })
}

/// The tangent point `t*` of Eq. 18 that maximizes the aggregate lower
/// bound: the weighted root-mean-square of the arguments,
///
/// `t* = √( γ²·Σ wᵢ dist(q, pᵢ)² / W ) = √( Σ wᵢ xᵢ² / W )`.
///
/// Returns `None` when the second moment is numerically zero (all
/// points on the query).
pub fn optimal_tangent(w_total: f64, s2: f64) -> Option<f64> {
    if s2 <= DEGENERATE_SPAN * w_total {
        return None;
    }
    Some((s2 / w_total).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quad_upper_interpolates_endpoints() {
        let q = quad_upper(0.3, 2.1).unwrap();
        assert!((q.eval(0.3) - profile(0.3)).abs() < 1e-12);
        assert!((q.eval(2.1) - profile(2.1)).abs() < 1e-12);
        assert!(q.a < 0.0, "Eq. 14 curvature must be negative");
    }

    #[test]
    fn quad_lower_tangency() {
        let t = 1.7;
        let q = quad_lower(t).unwrap();
        assert!((q.eval(t) - profile(t)).abs() < 1e-12);
        let deriv = 2.0 * q.a * t;
        assert!((deriv + profile(t)).abs() < 1e-12);
    }

    #[test]
    fn optimal_tangent_is_rms() {
        // W = 2, s2 = 8 → t* = 2.
        assert!((optimal_tangent(2.0, 8.0).unwrap() - 2.0).abs() < 1e-12);
        assert!(optimal_tangent(2.0, 0.0).is_none());
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(quad_upper(1.0, 1.0).is_none());
        assert!(quad_lower(0.0).is_none());
    }

    proptest! {
        /// Lemma 11: Q_U ≥ exp(−x) on the interval, and tighter than the
        /// interval bound e^{−x_min}.
        #[test]
        fn quad_upper_correct_and_tighter(
            x_min in 0.0..5.0f64,
            span in 1e-4..5.0f64,
        ) {
            let x_max = x_min + span;
            if let Some(q) = quad_upper(x_min, x_max) {
                for i in 0..=200 {
                    let x = x_min + span * i as f64 / 200.0;
                    prop_assert!(q.eval(x) >= profile(x) - 1e-9);
                    prop_assert!(q.eval(x) <= profile(x_min) + 1e-9);
                }
            }
        }

        /// Lemma 12: Q_L ≤ exp(−x) for all x ≥ 0 and any tangent t > 0.
        #[test]
        fn quad_lower_globally_valid(t in 1e-3..8.0f64, x in 0.0..12.0f64) {
            let q = quad_lower(t).unwrap();
            prop_assert!(q.eval(x) <= profile(x) + 1e-12);
        }
    }
}

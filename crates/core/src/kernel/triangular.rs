//! Scalar bound constructions for the triangular profile
//! `k(x) = max(1 − x, 0)` with `x = γ·dist(q, p)` (paper §5.2).

use super::RQuad;
use crate::kernel::gaussian::DEGENERATE_SPAN;

/// The triangular profile `max(1 − x, 0)`, defined for `x ≥ 0`.
#[inline]
pub fn profile(x: f64) -> f64 {
    (1.0 - x).max(0.0)
}

/// QUAD's restricted-quadratic **upper** bound over `[x_min, x_max]`
/// (§5.2.1): the parabola `a_u x² + c_u` through
/// `(x_min, k(x_min))` and `(x_max, k(x_max))`.
///
/// Correct for the whole interval, including the mixed case
/// `x_min < 1 < x_max`: the parabola is concave (`a_u ≤ 0`), hence
/// dominates its own chord, and that chord dominates `max(1 − x, 0)`
/// whenever it connects two points of the profile's graph this way.
pub fn quad_upper(x_min: f64, x_max: f64) -> Option<RQuad> {
    let denom = x_max * x_max - x_min * x_min;
    if denom < DEGENERATE_SPAN {
        return None;
    }
    let (f_min, f_max) = (profile(x_min), profile(x_max));
    Some(RQuad {
        a: (f_max - f_min) / denom,
        c: (x_max * x_max * f_min - x_min * x_min * f_max) / denom,
    })
}

/// QUAD's restricted-quadratic **lower** bound (§5.2.2): the parabola
/// `a_l x² + c_l` with `a_l < 0` shifted until it is tangent to the line
/// `1 − x` (single root of `a_l x² + x + c_l − 1 = 0`), i.e.
/// `c_l = 1 + 1/(4 a_l)` (paper Eq. 8).
///
/// The tangency makes `Q_L(x) ≤ 1 − x` for **all** `x`, hence
/// `Q_L(x) ≤ max(1 − x, 0)` everywhere — the bound stays correct even
/// when some points fall in the kernel's zero region.
pub fn quad_lower(a: f64) -> Option<RQuad> {
    // NaN must land in the reject branch, exactly like `!(a < 0.0)`.
    if a >= 0.0 || !a.is_finite() {
        return None;
    }
    Some(RQuad {
        a,
        c: 1.0 + 1.0 / (4.0 * a),
    })
}

/// The tightest curvature `a*_l` of Theorem 2 for an aggregate with
/// total weight `w_total` and second moment
/// `s2 = γ²·Σ wᵢ dist(q, pᵢ)²  (= Σ wᵢ xᵢ²)`:
///
/// `a*_l = −√( W / (4·s2) )`  (paper Eq. 9).
///
/// Returns `None` when `s2` is (numerically) zero — every point sits on
/// the query, the exact sum is `W` and interval bounds are already
/// exact.
pub fn optimal_lower_curvature(w_total: f64, s2: f64) -> Option<f64> {
    if s2 <= DEGENERATE_SPAN * w_total {
        return None;
    }
    Some(-(w_total / (4.0 * s2)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn profile_shape() {
        assert_eq!(profile(0.0), 1.0);
        assert_eq!(profile(0.25), 0.75);
        assert_eq!(profile(1.0), 0.0);
        assert_eq!(profile(7.0), 0.0);
    }

    #[test]
    fn quad_upper_interpolates_endpoints() {
        let q = quad_upper(0.1, 0.8).unwrap();
        assert!((q.eval(0.1) - 0.9).abs() < 1e-12);
        assert!((q.eval(0.8) - 0.2).abs() < 1e-12);
        assert!(q.a < 0.0);
    }

    #[test]
    fn quad_upper_zero_region_is_zero() {
        // Both endpoints beyond the support: profile is identically 0
        // there and the parabola must collapse onto it.
        let q = quad_upper(1.5, 2.5).unwrap();
        assert!(q.eval(2.0).abs() < 1e-12);
    }

    #[test]
    fn quad_lower_single_root() {
        let q = quad_lower(-0.5).unwrap();
        // a x² + x + c − 1 must have a double root.
        let disc = 1.0 - 4.0 * q.a * (q.c - 1.0);
        assert!(disc.abs() < 1e-12);
    }

    #[test]
    fn quad_lower_rejects_nonnegative_curvature() {
        assert!(quad_lower(0.0).is_none());
        assert!(quad_lower(1.0).is_none());
        assert!(quad_lower(f64::NAN).is_none());
    }

    #[test]
    fn optimal_curvature_matches_eq9() {
        // W = 4, s2 = 1 → a* = −√(4/4) = −1.
        let a = optimal_lower_curvature(4.0, 1.0).unwrap();
        assert!((a + 1.0).abs() < 1e-12);
        assert!(optimal_lower_curvature(4.0, 0.0).is_none());
    }

    proptest! {
        /// §5.2.1 correctness: Q_U dominates the profile on the interval
        /// and undercuts the aKDE constant bound max(1 − x_min, 0).
        #[test]
        fn quad_upper_correct_and_tighter(
            x_min in 0.0..2.0f64,
            span in 1e-4..2.0f64,
        ) {
            let x_max = x_min + span;
            if let Some(q) = quad_upper(x_min, x_max) {
                let interval_ub = profile(x_min);
                for i in 0..=200 {
                    let x = x_min + span * i as f64 / 200.0;
                    let v = q.eval(x);
                    prop_assert!(v >= profile(x) - 1e-9, "Q_U({x}) = {v} below profile");
                    prop_assert!(v <= interval_ub + 1e-9, "Q_U({x}) = {v} above interval bound");
                }
            }
        }

        /// §5.2.2 correctness: the tangent construction stays below
        /// max(1 − x, 0) for every x ≥ 0 and every negative curvature.
        #[test]
        fn quad_lower_global_validity(a in -100.0..-1e-3f64, x in 0.0..10.0f64) {
            let q = quad_lower(a).unwrap();
            prop_assert!(q.eval(x) <= profile(x) + 1e-9);
        }

        /// Theorem 2 optimality: a*_l maximizes the aggregate lower
        /// bound FQ(a) = a·s2 + (1 + 1/(4a))·W over negative curvatures.
        #[test]
        fn optimal_curvature_maximizes_aggregate(
            w in 0.1..50.0f64,
            s2 in 1e-4..50.0f64,
            perturb in 0.2..5.0f64,
        ) {
            let a_star = optimal_lower_curvature(w, s2).expect("positive s2");
            let fq = |a: f64| {
                let q = quad_lower(a).expect("negative a");
                q.a * s2 + q.c * w
            };
            let best = fq(a_star);
            prop_assert!(best >= fq(a_star * perturb) - 1e-9 * (1.0 + best.abs()),
                "a* = {a_star} beaten by {}", a_star * perturb);
        }
    }
}

//! Scalar bound constructions for the Gaussian profile `k(x) = exp(−x)`
//! with `x = γ·dist(q, p)²`.
//!
//! This module contains the closed forms of the paper's §3.3 (KARL's
//! chord/tangent linear bounds, Fig 4) and §4 (QUAD's quadratic bounds,
//! Figs 5–8, Theorem 1). All functions operate on a bounding interval
//! `[x_min, x_max]` of the transformed argument.
//!
//! Degenerate intervals (`x_max − x_min` or `x_max − t` below
//! [`DEGENERATE_SPAN`]) make the chord/tangent constructions divide by
//! ~0, so constructors return `None` there and callers fall back to the
//! interval bounds — which are tight anyway when the interval has
//! (almost) zero width.

/// Width below which an interval is treated as a single point.
pub const DEGENERATE_SPAN: f64 = 1e-12;

/// Coefficients of a linear bound `L(x) = m·x + k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearCoeffs {
    /// Slope.
    pub m: f64,
    /// Intercept.
    pub k: f64,
}

impl LinearCoeffs {
    /// Evaluates the line at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.m * x + self.k
    }
}

/// Coefficients of a quadratic bound `Q(x) = a·x² + b·x + c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadCoeffs {
    /// Curvature.
    pub a: f64,
    /// Linear coefficient.
    pub b: f64,
    /// Constant.
    pub c: f64,
}

impl QuadCoeffs {
    /// Evaluates the parabola at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        (self.a * x + self.b) * x + self.c
    }
}

/// The Gaussian profile `exp(−x)`, defined for `x ≥ 0`.
#[inline]
pub fn profile(x: f64) -> f64 {
    (-x).exp()
}

/// KARL's linear **upper** bound: the chord of `exp(−x)` through
/// `(x_min, e^{−x_min})` and `(x_max, e^{−x_max})` (Fig 4b). Correct by
/// convexity of `exp(−x)`.
pub fn linear_upper(x_min: f64, x_max: f64) -> Option<LinearCoeffs> {
    let span = x_max - x_min;
    if span < DEGENERATE_SPAN {
        return None;
    }
    let m = (profile(x_max) - profile(x_min)) / span;
    let k = profile(x_min) - m * x_min;
    Some(LinearCoeffs { m, k })
}

/// KARL's linear **lower** bound: the tangent of `exp(−x)` at `t`
/// (Fig 4a). Correct for any `t` by convexity; tightest over an
/// aggregate when `t` is the weighted mean of the arguments (paper
/// Eq. 3).
pub fn linear_lower(t: f64) -> LinearCoeffs {
    let et = profile(t);
    LinearCoeffs {
        m: -et,
        k: et * (1.0 + t),
    }
}

/// QUAD's optimal upper-bound curvature `a*_u` of Theorem 1.
///
/// Derived from the constraint that the parabola's slope at `x_max` must
/// not exceed `−e^{−x_max}` (Lemma 8): with `Δ = x_max − x_min`,
///
/// `a*_u = (e^{−x_min} − (Δ + 1)·e^{−x_max}) / Δ²  > 0`.
///
/// (The camera-ready PDF prints the numerator with its two terms
/// swapped, which would make `a*_u` negative and contradict the paper's
/// own `a_u > 0` requirement and Fig 7; the form above is the one that
/// satisfies Theorem 1's correctness proof, as the property tests in
/// this module check exhaustively.)
pub fn optimal_upper_curvature(x_min: f64, x_max: f64) -> f64 {
    let span = x_max - x_min;
    (profile(x_min) - (span + 1.0) * profile(x_max)) / (span * span)
}

/// QUAD's quadratic **upper** bound on `exp(−x)` over `[x_min, x_max]`
/// (§4.2): the parabola through both interval endpoints with curvature
/// `a_u`. With `a_u = a*_u` (the default obtained via
/// [`optimal_upper_curvature`]) it is the tightest correct choice:
///
/// `exp(−x) ≤ Q_U(x) ≤ E_U(x)` for all `x ∈ [x_min, x_max]`.
pub fn quad_upper(x_min: f64, x_max: f64) -> Option<QuadCoeffs> {
    let span = x_max - x_min;
    if span < DEGENERATE_SPAN {
        return None;
    }
    let au = optimal_upper_curvature(x_min, x_max);
    Some(quad_through_endpoints(x_min, x_max, au))
}

/// The parabola with curvature `a` passing through
/// `(x_min, e^{−x_min})` and `(x_max, e^{−x_max})` — the `b_u`, `c_u`
/// closed forms of §4.2. Exposed separately so the Fig 7 experiment
/// ("too large `a_u` violates the bound") can sweep curvatures.
pub fn quad_through_endpoints(x_min: f64, x_max: f64, a: f64) -> QuadCoeffs {
    let span = x_max - x_min;
    let b = (profile(x_max) - profile(x_min)) / span - a * (x_min + x_max);
    let c = (profile(x_min) * x_max - profile(x_max) * x_min) / span + a * x_min * x_max;
    QuadCoeffs { a, b, c }
}

/// QUAD's quadratic **lower** bound on `exp(−x)` over `[x_min, x_max]`
/// (§4.3): tangent to `exp(−x)` at `t` and passing through
/// `(x_max, e^{−x_max})`:
///
/// `E_L(x) ≤ Q_L(x) ≤ exp(−x)` for `x ∈ [x_min, x_max]`, `t ∈ [x_min, x_max]`.
///
/// Equivalently `Q_L(x) = e^{−t}(1 + t − x) + a_l (x − t)²` with
/// `a_l = e^{−t}(e^{−s} + s − 1)/s²`, `s = x_max − t` — a non-negative
/// correction added to KARL's tangent line, which is why it dominates
/// the linear lower bound.
pub fn quad_lower(x_max: f64, t: f64) -> Option<QuadCoeffs> {
    let s = x_max - t;
    if s < DEGENERATE_SPAN {
        return None;
    }
    let et = profile(t);
    let a = (profile(x_max) + (s - 1.0) * et) / (s * s);
    let b = -et - 2.0 * t * a;
    let c = (1.0 + t) * et + t * t * a;
    Some(QuadCoeffs { a, b, c })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const GRID: usize = 257;

    fn grid(x_min: f64, x_max: f64) -> impl Iterator<Item = f64> {
        (0..GRID).map(move |i| x_min + (x_max - x_min) * i as f64 / (GRID - 1) as f64)
    }

    #[test]
    fn linear_upper_interpolates_endpoints() {
        let l = linear_upper(0.5, 2.0).unwrap();
        assert!((l.eval(0.5) - profile(0.5)).abs() < 1e-12);
        assert!((l.eval(2.0) - profile(2.0)).abs() < 1e-12);
    }

    #[test]
    fn linear_upper_degenerate_interval_is_none() {
        assert!(linear_upper(1.0, 1.0).is_none());
        assert!(linear_upper(1.0, 1.0 + 1e-14).is_none());
    }

    #[test]
    fn linear_lower_touches_tangent_point() {
        let t = 1.3;
        let l = linear_lower(t);
        assert!((l.eval(t) - profile(t)).abs() < 1e-12);
        // slope equals derivative −e^{−t}
        assert!((l.m + profile(t)).abs() < 1e-12);
    }

    #[test]
    fn quad_upper_passes_through_endpoints() {
        let q = quad_upper(0.2, 3.0).unwrap();
        assert!((q.eval(0.2) - profile(0.2)).abs() < 1e-12);
        assert!((q.eval(3.0) - profile(3.0)).abs() < 1e-12);
        assert!(q.a > 0.0, "Theorem 1 requires positive curvature");
    }

    #[test]
    fn quad_lower_tangency_and_endpoint() {
        let (x_max, t) = (2.5, 0.9);
        let q = quad_lower(x_max, t).unwrap();
        assert!((q.eval(t) - profile(t)).abs() < 1e-12);
        // derivative at t equals −e^{−t}
        let deriv = 2.0 * q.a * t + q.b;
        assert!((deriv + profile(t)).abs() < 1e-12);
        assert!((q.eval(x_max) - profile(x_max)).abs() < 1e-12);
    }

    /// Fig 7's illustration: curvature beyond a*_u breaks the upper
    /// bound, a*_u (and below) preserves it.
    #[test]
    fn upper_bound_violated_beyond_a_star() {
        let (x_min, x_max) = (0.3, 3.2);
        let a_star = optimal_upper_curvature(x_min, x_max);
        let good = quad_through_endpoints(x_min, x_max, a_star);
        let bad = quad_through_endpoints(x_min, x_max, a_star * 1.5);
        let mut bad_violates = false;
        for x in grid(x_min, x_max) {
            assert!(good.eval(x) >= profile(x) - 1e-9, "a*_u violated at {x}");
            if bad.eval(x) < profile(x) - 1e-9 {
                bad_violates = true;
            }
        }
        assert!(bad_violates, "1.5·a*_u should undercut exp(−x) somewhere");
    }

    proptest! {
        /// Correctness + tightness ordering of §4.2:
        /// exp(−x) ≤ Q_U(x) ≤ E_U(x) on [x_min, x_max].
        #[test]
        fn quad_upper_correct_and_tighter_than_chord(
            x_min in 0.0..8.0f64,
            span in 1e-6..8.0f64,
        ) {
            let x_max = x_min + span;
            if let (Some(q), Some(l)) = (quad_upper(x_min, x_max), linear_upper(x_min, x_max)) {
                for x in grid(x_min, x_max) {
                    let f = profile(x);
                    let qu = q.eval(x);
                    let eu = l.eval(x);
                    prop_assert!(qu >= f - 1e-9, "Q_U({x}) = {qu} < exp = {f}");
                    prop_assert!(qu <= eu + 1e-9, "Q_U({x}) = {qu} > E_U = {eu}");
                }
            }
        }

        /// Correctness + tightness ordering of §4.3:
        /// E_L(x) ≤ Q_L(x) ≤ exp(−x) on [x_min, x_max] for t in range.
        #[test]
        fn quad_lower_correct_and_tighter_than_tangent(
            x_min in 0.0..8.0f64,
            span in 1e-6..8.0f64,
            t_frac in 0.0..1.0f64,
        ) {
            let x_max = x_min + span;
            let t = x_min + t_frac * span;
            if let Some(q) = quad_lower(x_max, t) {
                let l = linear_lower(t);
                for x in grid(x_min, x_max) {
                    let f = profile(x);
                    let ql = q.eval(x);
                    let el = l.eval(x);
                    prop_assert!(ql <= f + 1e-9, "Q_L({x}) = {ql} > exp = {f}");
                    prop_assert!(ql >= el - 1e-9, "Q_L({x}) = {ql} < E_L = {el}");
                }
            }
        }

        /// The chord dominates exp on the interval (KARL's correctness).
        #[test]
        fn chord_is_upper_bound(x_min in 0.0..10.0f64, span in 1e-6..10.0f64) {
            let x_max = x_min + span;
            if let Some(l) = linear_upper(x_min, x_max) {
                for x in grid(x_min, x_max) {
                    prop_assert!(l.eval(x) >= profile(x) - 1e-9);
                }
            }
        }

        /// The tangent stays below exp everywhere (not just in range).
        #[test]
        fn tangent_is_global_lower_bound(t in 0.0..10.0f64, x in 0.0..20.0f64) {
            prop_assert!(linear_lower(t).eval(x) <= profile(x) + 1e-12);
        }
    }
}

//! Validated query parameters — the input-hardening gate of the
//! pipeline.
//!
//! Every scalar a caller can feed into a render (ε, τ, γ, raster
//! resolution, thread count) has a domain; violating it used to trip an
//! `assert!` deep inside the engine. [`QueryParams::validate`] and the
//! per-field validators here move that check to the boundary, returning
//! structured [`KdvError`]s so services and the CLI can refuse bad
//! requests without aborting a render process.

use crate::error::KdvError;

/// Which query variant a [`QueryParams`] describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    /// εKDV with the given relative-error bound ε.
    Eps(f64),
    /// τKDV with the given density threshold τ.
    Tau(f64),
}

/// One render request's externally-supplied parameters.
///
/// Construct with [`QueryParams::eps`] or [`QueryParams::tau`], adjust
/// fields, then call [`QueryParams::validate`] once at the boundary;
/// everything downstream may assume the domains hold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryParams {
    /// The query variant and its ε or τ.
    pub kind: QueryKind,
    /// Kernel bandwidth parameter γ (must be positive and finite).
    pub gamma: f64,
    /// Raster width in pixels (must be positive).
    pub width: u32,
    /// Raster height in pixels (must be positive).
    pub height: u32,
    /// Worker threads (must be positive).
    pub threads: usize,
}

impl QueryParams {
    /// An εKDV request with defaults (γ = 1, 640×480, 1 thread).
    pub fn eps(eps: f64) -> Self {
        Self {
            kind: QueryKind::Eps(eps),
            gamma: 1.0,
            width: 640,
            height: 480,
            threads: 1,
        }
    }

    /// A τKDV request with defaults (γ = 1, 640×480, 1 thread).
    pub fn tau(tau: f64) -> Self {
        Self {
            kind: QueryKind::Tau(tau),
            ..Self::eps(0.0)
        }
    }

    /// Checks every field's domain, returning the first violation.
    pub fn validate(&self) -> Result<(), KdvError> {
        match self.kind {
            QueryKind::Eps(eps) => validate_eps(eps)?,
            QueryKind::Tau(tau) => validate_tau(tau)?,
        };
        validate_gamma(self.gamma)?;
        validate_raster_dims(self.width, self.height)?;
        validate_threads(self.threads)?;
        Ok(())
    }
}

/// ε must be finite and strictly positive.
pub fn validate_eps(eps: f64) -> Result<f64, KdvError> {
    if eps.is_finite() && eps > 0.0 {
        Ok(eps)
    } else {
        Err(KdvError::invalid(
            "eps",
            format!("must be positive and finite, got {eps}"),
        ))
    }
}

/// τ must be finite and non-negative (a negative density threshold
/// classifies every pixel hot, which is never intended).
pub fn validate_tau(tau: f64) -> Result<f64, KdvError> {
    if tau.is_finite() && tau >= 0.0 {
        Ok(tau)
    } else {
        Err(KdvError::invalid(
            "tau",
            format!("must be non-negative and finite, got {tau}"),
        ))
    }
}

/// γ (bandwidth parameter) must be finite and strictly positive.
pub fn validate_gamma(gamma: f64) -> Result<f64, KdvError> {
    if gamma.is_finite() && gamma > 0.0 {
        Ok(gamma)
    } else {
        Err(KdvError::invalid(
            "gamma",
            format!("must be positive and finite, got {gamma}"),
        ))
    }
}

/// Raster dimensions must both be positive.
pub fn validate_raster_dims(width: u32, height: u32) -> Result<(u32, u32), KdvError> {
    if width > 0 && height > 0 {
        Ok((width, height))
    } else {
        Err(KdvError::DegenerateRaster {
            message: format!("resolution {width}x{height} has no pixels"),
        })
    }
}

/// Thread count must be positive.
pub fn validate_threads(threads: usize) -> Result<usize, KdvError> {
    if threads > 0 {
        Ok(threads)
    } else {
        Err(KdvError::invalid("threads", "must be at least 1"))
    }
}

/// A query point must have the data's dimensionality and finite
/// coordinates.
pub fn validate_query_point(q: &[f64], expected_dim: usize) -> Result<(), KdvError> {
    if q.len() != expected_dim {
        return Err(KdvError::DimensionMismatch {
            got: q.len(),
            expected: expected_dim,
        });
    }
    for (i, &c) in q.iter().enumerate() {
        if !c.is_finite() {
            return Err(KdvError::NonFiniteData {
                what: "query coordinate",
                index: i,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params_pass() {
        let p = QueryParams {
            gamma: 0.5,
            ..QueryParams::eps(0.01)
        };
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(QueryParams::tau(3.0).validate(), Ok(()));
    }

    #[test]
    fn each_bad_field_is_rejected() {
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(validate_eps(eps).is_err(), "ε = {eps} must be rejected");
        }
        for tau in [-1.0, f64::NAN, f64::NEG_INFINITY] {
            assert!(validate_tau(tau).is_err(), "τ = {tau} must be rejected");
        }
        assert!(validate_tau(0.0).is_ok(), "τ = 0 is a valid edge");
        for gamma in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            assert!(validate_gamma(gamma).is_err(), "γ = {gamma}");
        }
        assert!(validate_raster_dims(0, 480).is_err());
        assert!(validate_raster_dims(640, 0).is_err());
        assert!(validate_raster_dims(0, 0).is_err());
        assert!(validate_threads(0).is_err());
    }

    #[test]
    fn validate_reports_first_violation_with_structure() {
        let p = QueryParams {
            gamma: f64::NAN,
            ..QueryParams::eps(0.01)
        };
        match p.validate() {
            Err(KdvError::InvalidParameter { name, .. }) => assert_eq!(name, "gamma"),
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
        let p = QueryParams {
            width: 0,
            ..QueryParams::eps(0.01)
        };
        assert!(matches!(
            p.validate(),
            Err(KdvError::DegenerateRaster { .. })
        ));
    }

    #[test]
    fn query_point_checks_dim_and_finiteness() {
        assert!(validate_query_point(&[0.0, 1.0], 2).is_ok());
        assert!(matches!(
            validate_query_point(&[0.0], 2),
            Err(KdvError::DimensionMismatch {
                got: 1,
                expected: 2
            })
        ));
        assert!(matches!(
            validate_query_point(&[0.0, f64::NAN], 2),
            Err(KdvError::NonFiniteData { index: 1, .. })
        ));
    }
}

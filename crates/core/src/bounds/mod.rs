//! Aggregate bound functions `LB_R(q) ≤ F_R(q) ≤ UB_R(q)` on index nodes.
//!
//! Three families, one per "camp" of prior work plus the paper's
//! contribution (§2 Table 2, §3, §4, §5):
//!
//! * [`BoundFamily::Interval`] — aKDE \[17\] / tKDC \[13\]: evaluate the
//!   (monotone) kernel profile at the min/max distance between `q` and
//!   the node MBR. `O(d)` per node, loosest.
//! * [`BoundFamily::Linear`] — KARL \[7\]: chord/tangent linear bounds on
//!   `exp(−x)` aggregated through the `O(d)` second-moment identity.
//!   Gaussian only — for distance kernels the required `Σ wᵢ dist` has
//!   no cheap moment form (§5.1), so this family degrades to the
//!   interval bounds there, exactly as the paper describes.
//! * [`BoundFamily::Quadratic`] — QUAD (this paper): quadratic bounds,
//!   `O(d²)` for Gaussian (Lemma 3) and `O(d)` for distance kernels
//!   (Lemma 4), provably tighter than both families above.
//!
//! Every family is additionally intersected with the interval bounds
//! and clamped to `lb ≥ 0` — cheap, and it makes the §5.2.2 remark ("we
//! can always get the tighter lower bound compared with `LB_R`") hold
//! by construction even in edge cases.

pub mod interval;
pub mod linear;
pub mod quadratic;
pub mod quadratic_dist;

use crate::kernel::{Kernel, KernelType};
use kdv_geom::Mbr;
use kdv_index::NodeStats;

/// Which bound family to use inside the refinement engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundFamily {
    /// Min/max-distance bounds (aKDE, tKDC).
    Interval,
    /// KARL's linear bounds (Gaussian kernel only; interval otherwise).
    Linear,
    /// QUAD's quadratic bounds (all kernels).
    Quadratic,
}

impl BoundFamily {
    /// All families, for exhaustive tests.
    pub const ALL: [BoundFamily; 3] = [
        BoundFamily::Interval,
        BoundFamily::Linear,
        BoundFamily::Quadratic,
    ];
}

/// A lower/upper bound pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound on `F_R(q)`.
    pub lb: f64,
    /// Upper bound on `F_R(q)`.
    pub ub: f64,
}

impl Interval {
    /// The zero interval (bounds of an empty node).
    pub const ZERO: Interval = Interval { lb: 0.0, ub: 0.0 };

    /// An exact value as a zero-width interval.
    #[inline]
    pub fn exact(v: f64) -> Self {
        Self { lb: v, ub: v }
    }

    /// Intersects two valid bound intervals for the same quantity.
    ///
    /// Both inputs bracket the true value, so the result does too; a
    /// floating-point inversion (`lb > ub` by rounding noise) collapses
    /// to the midpoint to stay well-formed.
    #[inline]
    pub fn intersect(self, other: Interval) -> Interval {
        let lb = self.lb.max(other.lb);
        let ub = self.ub.min(other.ub);
        if lb <= ub {
            Interval { lb, ub }
        } else {
            let mid = 0.5 * (lb + ub);
            Interval { lb: mid, ub: mid }
        }
    }

    /// Bound gap `ub − lb`, the refinement priority (§3.2).
    #[inline]
    pub fn gap(&self) -> f64 {
        self.ub - self.lb
    }

    /// Tightens `self` with a *candidate* interval that may be
    /// numerically unreliable (the chord/tangent constructions cancel
    /// catastrophically at extreme kernel arguments, where the true
    /// values underflow). Sides that conflict with `self` — a candidate
    /// `ub` below our `lb`, a candidate `lb` above our `ub`, or
    /// non-finite values — are discarded rather than trusted.
    #[inline]
    pub fn refined_with(self, candidate: Interval) -> Interval {
        let mut out = self;
        if candidate.lb.is_finite() && candidate.lb > out.lb && candidate.lb <= out.ub {
            out.lb = candidate.lb;
        }
        if candidate.ub.is_finite() && candidate.ub < out.ub && candidate.ub >= out.lb {
            out.ub = candidate.ub;
        }
        out
    }
}

/// Evaluates the chosen bound family for one node against query `q`.
///
/// `stats`/`mbr` describe the node (see [`kdv_index`]); the result
/// satisfies `lb ≤ F_R(q) ≤ ub` for
/// `F_R(q) = Σ_{pᵢ ∈ R} wᵢ·K(q, pᵢ)`.
///
/// Convenience wrapper around [`node_bounds_pre`] that translates `q`
/// into the statistics' centered frame itself. The refinement engine
/// translates once per query instead — with one tree all nodes share
/// the center, and the translation is the dominant cost of the `O(d)`
/// contractions.
#[inline]
pub fn node_bounds(
    kernel: &Kernel,
    family: BoundFamily,
    stats: &NodeStats,
    mbr: &Mbr,
    q: &[f64],
) -> Interval {
    let d = q.len();
    let mut stack = [0.0f64; 16];
    if d <= 16 {
        stats.translate_query(q, &mut stack[..d]);
        node_bounds_pre(kernel, family, stats, mbr, q, &stack[..d])
    } else {
        let mut buf = vec![0.0; d];
        stats.translate_query(q, &mut buf);
        node_bounds_pre(kernel, family, stats, mbr, q, &buf)
    }
}

/// [`node_bounds`] with the query pre-translated into the statistics'
/// centered frame (`qt = q − stats.center`).
///
/// # Panics
/// Debug-asserts that `qt` matches `q` under the node's center.
#[inline]
pub fn node_bounds_pre(
    kernel: &Kernel,
    family: BoundFamily,
    stats: &NodeStats,
    mbr: &Mbr,
    q: &[f64],
    qt: &[f64],
) -> Interval {
    debug_assert!(q
        .iter()
        .zip(qt)
        .zip(&stats.center)
        .all(|((&qi, &ti), &ci)| (qi - ci - ti).abs() <= 1e-12 * (1.0 + qi.abs())));
    if stats.weight <= 0.0 {
        return Interval::ZERO;
    }
    match kernel.ty {
        KernelType::Gaussian => {
            let x_min = kernel.gamma * mbr.min_dist2(q);
            let x_max = kernel.gamma * mbr.max_dist2(q);
            let base = interval::gaussian(stats.weight, x_min, x_max);
            match family {
                BoundFamily::Interval => base,
                BoundFamily::Linear => {
                    let sx = kernel.gamma * stats.sum_dist2_pre(qt);
                    base.refined_with(linear::gaussian(stats.weight, sx, x_min, x_max))
                }
                BoundFamily::Quadratic => {
                    let (s2, s4) = stats.sum_dist2_dist4_pre(qt);
                    let sx = kernel.gamma * s2;
                    let sx2 = kernel.gamma * kernel.gamma * s4;
                    base.refined_with(quadratic::gaussian(stats.weight, sx, sx2, x_min, x_max))
                }
            }
        }
        _ => {
            let x_min = kernel.gamma * mbr.min_dist2(q).sqrt();
            let x_max = kernel.gamma * mbr.max_dist2(q).sqrt();
            let base = interval::distance(kernel, stats.weight, x_min, x_max);
            match family {
                // §5.1: no O(d) linear bound exists for distance
                // kernels, so KARL runs with interval bounds there.
                BoundFamily::Interval | BoundFamily::Linear => base,
                BoundFamily::Quadratic => {
                    base.refined_with(quadratic_dist::bounds(kernel, stats, qt, x_min, x_max))
                }
            }
        }
    }
}

/// Uniform bounds over a whole *query box*: an interval bracketing
/// `F_R(q)` for **every** `q` in `query_box` simultaneously.
///
/// Built from box-to-box distances and the (robust) interval family —
/// the chord/tangent families are per-query and do not lift to boxes
/// cheaply. This is the primitive behind tile-level τKDV pruning
/// (`kdv-viz::tiles`): when the whole dataset's box bounds fall on one
/// side of τ, an entire pixel block classifies at once.
#[inline]
pub fn box_bounds(kernel: &Kernel, stats: &NodeStats, mbr: &Mbr, query_box: &Mbr) -> Interval {
    if stats.weight <= 0.0 {
        return Interval::ZERO;
    }
    let dmin2 = query_box.min_dist2_box(mbr);
    let dmax2 = query_box.max_dist2_box(mbr);
    match kernel.ty {
        KernelType::Gaussian => {
            interval::gaussian(stats.weight, kernel.gamma * dmin2, kernel.gamma * dmax2)
        }
        _ => interval::distance(
            kernel,
            stats.weight,
            kernel.gamma * dmin2.sqrt(),
            kernel.gamma * dmax2.sqrt(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_takes_tighter_sides() {
        let a = Interval { lb: 0.0, ub: 10.0 };
        let b = Interval { lb: 2.0, ub: 12.0 };
        let c = a.intersect(b);
        assert_eq!(c, Interval { lb: 2.0, ub: 10.0 });
    }

    #[test]
    fn intersect_collapses_inversion() {
        let a = Interval {
            lb: 5.0,
            ub: 5.0 + 1e-16,
        };
        let b = Interval {
            lb: 5.0 + 2e-16,
            ub: 6.0,
        };
        let c = a.intersect(b);
        assert!(c.lb <= c.ub);
    }

    #[test]
    fn exact_has_zero_gap() {
        let e = Interval::exact(3.5);
        assert_eq!(e.gap(), 0.0);
        assert_eq!(e.lb, e.ub);
    }

    // Cross-family correctness and tightness-ordering tests live in
    // `tests/bound_correctness.rs` at the crate root, where they can
    // drive full kd-trees.
}

//! Aggregate bound functions `LB_R(q) ≤ F_R(q) ≤ UB_R(q)` on index nodes.
//!
//! Three families, one per "camp" of prior work plus the paper's
//! contribution (§2 Table 2, §3, §4, §5):
//!
//! * [`BoundFamily::Interval`] — aKDE \[17\] / tKDC \[13\]: evaluate the
//!   (monotone) kernel profile at the min/max distance between `q` and
//!   the node MBR. `O(d)` per node, loosest.
//! * [`BoundFamily::Linear`] — KARL \[7\]: chord/tangent linear bounds on
//!   `exp(−x)` aggregated through the `O(d)` second-moment identity.
//!   Gaussian only — for distance kernels the required `Σ wᵢ dist` has
//!   no cheap moment form (§5.1), so this family degrades to the
//!   interval bounds there, exactly as the paper describes.
//! * [`BoundFamily::Quadratic`] — QUAD (this paper): quadratic bounds,
//!   `O(d²)` for Gaussian (Lemma 3) and `O(d)` for distance kernels
//!   (Lemma 4), provably tighter than both families above.
//!
//! Every family is additionally intersected with the interval bounds
//! and clamped to `lb ≥ 0` — cheap, and it makes the §5.2.2 remark ("we
//! can always get the tighter lower bound compared with `LB_R`") hold
//! by construction even in edge cases.

pub mod interval;
pub mod linear;
pub mod quadratic;
pub mod quadratic_dist;

use crate::kernel::{Kernel, KernelType};
use kdv_geom::Mbr;
use kdv_index::NodeStats;

/// Which bound family to use inside the refinement engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundFamily {
    /// Min/max-distance bounds (aKDE, tKDC).
    Interval,
    /// KARL's linear bounds (Gaussian kernel only; interval otherwise).
    Linear,
    /// QUAD's quadratic bounds (all kernels).
    Quadratic,
}

impl BoundFamily {
    /// All families, for exhaustive tests.
    pub const ALL: [BoundFamily; 3] = [
        BoundFamily::Interval,
        BoundFamily::Linear,
        BoundFamily::Quadratic,
    ];
}

/// A lower/upper bound pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound on `F_R(q)`.
    pub lb: f64,
    /// Upper bound on `F_R(q)`.
    pub ub: f64,
}

impl Interval {
    /// The zero interval (bounds of an empty node).
    pub const ZERO: Interval = Interval { lb: 0.0, ub: 0.0 };

    /// An exact value as a zero-width interval.
    #[inline]
    pub fn exact(v: f64) -> Self {
        Self { lb: v, ub: v }
    }

    /// Intersects two valid bound intervals for the same quantity.
    ///
    /// Both inputs bracket the true value, so the result does too; a
    /// floating-point inversion (`lb > ub` by rounding noise) collapses
    /// to the midpoint to stay well-formed.
    #[inline]
    pub fn intersect(self, other: Interval) -> Interval {
        let lb = self.lb.max(other.lb);
        let ub = self.ub.min(other.ub);
        if lb <= ub {
            Interval { lb, ub }
        } else {
            let mid = 0.5 * (lb + ub);
            Interval { lb: mid, ub: mid }
        }
    }

    /// Bound gap `ub − lb`, the refinement priority (§3.2).
    #[inline]
    pub fn gap(&self) -> f64 {
        self.ub - self.lb
    }

    /// Tightens `self` with a *candidate* interval that may be
    /// numerically unreliable (the chord/tangent constructions cancel
    /// catastrophically at extreme kernel arguments, where the true
    /// values underflow). Sides that conflict with `self` — a candidate
    /// `ub` below our `lb`, a candidate `lb` above our `ub`, or
    /// non-finite values — are discarded rather than trusted.
    #[inline]
    pub fn refined_with(self, candidate: Interval) -> Interval {
        let mut out = self;
        if candidate.lb.is_finite() && candidate.lb > out.lb && candidate.lb <= out.ub {
            out.lb = candidate.lb;
        }
        if candidate.ub.is_finite() && candidate.ub < out.ub && candidate.ub >= out.lb {
            out.ub = candidate.ub;
        }
        out
    }
}

/// Evaluates the chosen bound family for one node against query `q`.
///
/// `stats`/`mbr` describe the node (see [`kdv_index`]); the result
/// satisfies `lb ≤ F_R(q) ≤ ub` for
/// `F_R(q) = Σ_{pᵢ ∈ R} wᵢ·K(q, pᵢ)`.
///
/// Convenience wrapper around [`node_bounds_pre`] that translates `q`
/// into the statistics' centered frame itself. The refinement engine
/// translates once per query instead — with one tree all nodes share
/// the center, and the translation is the dominant cost of the `O(d)`
/// contractions.
#[inline]
pub fn node_bounds(
    kernel: &Kernel,
    family: BoundFamily,
    stats: &NodeStats,
    mbr: &Mbr,
    q: &[f64],
) -> Interval {
    let d = q.len();
    let mut stack = [0.0f64; 16];
    if d <= 16 {
        stats.translate_query(q, &mut stack[..d]);
        node_bounds_pre(kernel, family, stats, mbr, q, &stack[..d])
    } else {
        let mut buf = vec![0.0; d];
        stats.translate_query(q, &mut buf);
        node_bounds_pre(kernel, family, stats, mbr, q, &buf)
    }
}

/// [`node_bounds`] with the query pre-translated into the statistics'
/// centered frame (`qt = q − stats.center`).
///
/// # Panics
/// Debug-asserts that `qt` matches `q` under the node's center.
#[inline]
pub fn node_bounds_pre(
    kernel: &Kernel,
    family: BoundFamily,
    stats: &NodeStats,
    mbr: &Mbr,
    q: &[f64],
    qt: &[f64],
) -> Interval {
    debug_assert!(q
        .iter()
        .zip(qt)
        .zip(&stats.center)
        .all(|((&qi, &ti), &ci)| (qi - ci - ti).abs() <= 1e-12 * (1.0 + qi.abs())));
    if stats.weight <= 0.0 {
        return Interval::ZERO;
    }
    match kernel.ty {
        KernelType::Gaussian => {
            let x_min = kernel.gamma * mbr.min_dist2(q);
            let x_max = kernel.gamma * mbr.max_dist2(q);
            let base = interval::gaussian(stats.weight, x_min, x_max);
            match family {
                BoundFamily::Interval => base,
                BoundFamily::Linear => {
                    let sx = kernel.gamma * stats.sum_dist2_pre(qt);
                    base.refined_with(linear::gaussian(stats.weight, sx, x_min, x_max))
                }
                BoundFamily::Quadratic => {
                    let (s2, s4) = stats.sum_dist2_dist4_pre(qt);
                    let sx = kernel.gamma * s2;
                    let sx2 = kernel.gamma * kernel.gamma * s4;
                    base.refined_with(quadratic::gaussian(stats.weight, sx, sx2, x_min, x_max))
                }
            }
        }
        _ => {
            let x_min = kernel.gamma * mbr.min_dist2(q).sqrt();
            let x_max = kernel.gamma * mbr.max_dist2(q).sqrt();
            let base = interval::distance(kernel, stats.weight, x_min, x_max);
            match family {
                // §5.1: no O(d) linear bound exists for distance
                // kernels, so KARL runs with interval bounds there.
                BoundFamily::Interval | BoundFamily::Linear => base,
                BoundFamily::Quadratic => {
                    base.refined_with(quadratic_dist::bounds(kernel, stats, qt, x_min, x_max))
                }
            }
        }
    }
}

/// One-sided cover of the polynomial `exp_neg`'s own relative error
/// (≲1 ulp of libm, tested ≤ 4 ulp) on the interval-family sides.
const POLY_EXP_ULP: f64 = 8.0 * f64::EPSILON;

/// Absolute pad — relative to the interval upper bound `W·e^{−x_min}`
/// — applied to the chord/tangent refinements assembled from
/// polynomial exps. The constructions are endpoint-interpolating forms
/// evaluated at in-interval arguments, so perturbing each exp by `η`
/// relative shifts the aggregate by at most a small multiple of
/// `η·W·e^{−x_min}` (every exp involved is ≤ `e^{−x_min}`, and the
/// curvature terms contribute ≤ `(Δ+1)e^{−Δ} ≤ 1` of it per unit
/// weight). 256 ulp leaves ~30× headroom over that analysis; the
/// near-degenerate cancellation regimes the guarded constructions
/// share with the libm path are unchanged.
const POLY_EXP_PAD: f64 = 256.0 * f64::EPSILON;

/// Upper bound on `exp(−x)` past the polynomial's underflow cutoff:
/// the poly returns `0.0` there, but an *upper* bound must not, so the
/// assembly substitutes `exp(−700) < 9.86e−305`.
const EXP_CUTOFF_CEIL: f64 = 9.86e-305;

/// Interval-family Gaussian bounds from precomputed polynomial exps —
/// the two-exp core shared by [`gaussian_bounds_from_exps`] and the
/// tile engine's batched box-bound re-bracketing. One-sided
/// [`POLY_EXP_ULP`] covers make the poly's ≤4-ulp error certified, and
/// arguments past the poly's underflow cutoff substitute
/// [`EXP_CUTOFF_CEIL`] on the upper side.
#[inline]
pub fn gaussian_interval_from_exps(w: f64, x_min: f64, e_min: f64, e_max: f64) -> Interval {
    let ub = w * if x_min > kdv_geom::simd::EXP_NEG_CUTOFF {
        EXP_CUTOFF_CEIL
    } else {
        e_min * (1.0 + POLY_EXP_ULP)
    };
    let lb = (w * e_max * (1.0 - POLY_EXP_ULP)).max(0.0);
    Interval { lb, ub }
}

/// Gaussian bounds assembled from **precomputed** `exp(−x_min)`,
/// `exp(−x_max)` and `exp(−t)` values — the batched-evaluation half of
/// [`node_bounds_pre`]. The caller (the tile engine's node-major
/// finisher) gathers the three exp arguments for a whole pixel row,
/// evaluates them in one vectorized [`kdv_geom::simd::exp_neg_map`]
/// pass, and assembles each pixel's interval here without touching
/// libm.
///
/// The polynomial exp is within 4 ulp of libm but not one-sided, so
/// the interval sides are widened by [`POLY_EXP_ULP`] and the
/// chord/tangent refinements by [`POLY_EXP_PAD`]·`ub`: the result is a
/// certified (slightly wider) bracket of `F_R(q)`, interchangeable
/// with [`node_bounds_pre`]'s under the engine's ε/τ contracts.
///
/// * `w` — node weight (caller guarantees `w > 0`),
/// * `x_min ≤ x_max` — γ-scaled squared-distance interval to the MBR,
/// * `e_min`/`e_max` — polynomial `exp_neg(x_min)`/`exp_neg(x_max)`,
/// * `sx`/`sx2` — moment contractions `γ·Σwᵢdist²`/`γ²·Σwᵢdist⁴`,
///   already clamped into `[w·x_min, w·x_max]` (resp. squares),
/// * `t`/`e_t` — tangent argument `clamp(sx/w, x_min, x_max)` and its
///   polynomial exp (ignored for [`BoundFamily::Interval`]).
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn gaussian_bounds_from_exps(
    family: BoundFamily,
    w: f64,
    x_min: f64,
    x_max: f64,
    e_min: f64,
    e_max: f64,
    sx: f64,
    sx2: f64,
    t: f64,
    e_t: f64,
) -> Interval {
    use crate::kernel::gaussian::DEGENERATE_SPAN;
    let base = gaussian_interval_from_exps(w, x_min, e_min, e_max);
    let ub0 = base.ub;
    let span = x_max - x_min;
    if matches!(family, BoundFamily::Interval) || span < DEGENERATE_SPAN {
        return base;
    }
    let cand = match family {
        BoundFamily::Interval => unreachable!("returned above"),
        BoundFamily::Linear => {
            // Chord upper / tangent-at-mean lower (`linear::gaussian`).
            let m = (e_max - e_min) / span;
            let k = e_min - m * x_min;
            Interval {
                lb: w * e_t,
                ub: m * sx + k * w,
            }
        }
        BoundFamily::Quadratic => {
            // Endpoint parabola with Theorem 1's optimal curvature /
            // tangent-through-(x_max) parabola (`quadratic::gaussian`),
            // with the four interval divisions folded into two
            // reciprocals — a ≤1-ulp perturbation per coefficient,
            // absorbed by the pad below.
            let inv = 1.0 / span;
            let au = (e_min - (span + 1.0) * e_max) * inv * inv;
            let bu = (e_max - e_min) * inv - au * (x_min + x_max);
            let cu = (e_min * x_max - e_max * x_min) * inv + au * x_min * x_max;
            let ub = au * sx2 + bu * sx + cu * w;
            let s = x_max - t;
            let lb = if s < DEGENERATE_SPAN {
                f64::NEG_INFINITY
            } else {
                let inv_s = 1.0 / s;
                let al = (e_max + (s - 1.0) * e_t) * inv_s * inv_s;
                let bl = -e_t - 2.0 * t * al;
                let cl = (1.0 + t) * e_t + t * t * al;
                al * sx2 + bl * sx + cl * w
            };
            Interval { lb, ub }
        }
    };
    let pad = POLY_EXP_PAD * ub0;
    base.refined_with(Interval {
        lb: cand.lb - pad,
        ub: cand.ub + pad,
    })
}

/// The [`kdv_geom::simd::gauss_quad_assemble`] parameter block
/// carrying this module's certification policy — the same exp covers,
/// candidate pad, cutoff substitute and degeneracy threshold that
/// [`gaussian_bounds_from_exps`] applies, so the vectorized assembly
/// produces brackets certified by the same argument (op order differs
/// from the scalar assembly by at most reassociation of one product,
/// well inside [`POLY_EXP_PAD`]).
pub fn quad_assemble_consts() -> kdv_geom::simd::QuadAssembleConsts {
    kdv_geom::simd::QuadAssembleConsts {
        ulp: POLY_EXP_ULP,
        pad: POLY_EXP_PAD,
        cutoff_ceil: EXP_CUTOFF_CEIL,
        degenerate_span: crate::kernel::gaussian::DEGENERATE_SPAN,
    }
}

/// Uniform bounds over a whole *query box*: an interval bracketing
/// `F_R(q)` for **every** `q` in `query_box` simultaneously.
///
/// Built from box-to-box distances and the (robust) interval family —
/// the chord/tangent families are per-query and do not lift to boxes
/// cheaply. This is the primitive behind tile-level τKDV pruning
/// (`kdv-viz::tiles`): when the whole dataset's box bounds fall on one
/// side of τ, an entire pixel block classifies at once.
#[inline]
pub fn box_bounds(kernel: &Kernel, stats: &NodeStats, mbr: &Mbr, query_box: &Mbr) -> Interval {
    if stats.weight <= 0.0 {
        return Interval::ZERO;
    }
    let dmin2 = query_box.min_dist2_box(mbr);
    let dmax2 = query_box.max_dist2_box(mbr);
    match kernel.ty {
        KernelType::Gaussian => {
            interval::gaussian(stats.weight, kernel.gamma * dmin2, kernel.gamma * dmax2)
        }
        _ => interval::distance(
            kernel,
            stats.weight,
            kernel.gamma * dmin2.sqrt(),
            kernel.gamma * dmax2.sqrt(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_takes_tighter_sides() {
        let a = Interval { lb: 0.0, ub: 10.0 };
        let b = Interval { lb: 2.0, ub: 12.0 };
        let c = a.intersect(b);
        assert_eq!(c, Interval { lb: 2.0, ub: 10.0 });
    }

    #[test]
    fn intersect_collapses_inversion() {
        let a = Interval {
            lb: 5.0,
            ub: 5.0 + 1e-16,
        };
        let b = Interval {
            lb: 5.0 + 2e-16,
            ub: 6.0,
        };
        let c = a.intersect(b);
        assert!(c.lb <= c.ub);
    }

    #[test]
    fn exact_has_zero_gap() {
        let e = Interval::exact(3.5);
        assert_eq!(e.gap(), 0.0);
        assert_eq!(e.lb, e.ub);
    }

    // Cross-family correctness and tightness-ordering tests live in
    // `tests/bound_correctness.rs` at the crate root, where they can
    // drive full kd-trees.

    use kdv_geom::simd::exp_neg;
    use kdv_geom::vecmath::dist2;
    use kdv_geom::PointSet;
    use kdv_index::NodeStats;
    use proptest::prelude::*;

    proptest! {
        /// The batched assembly ([`gaussian_bounds_from_exps`] fed by
        /// the polynomial exp) is a certified bracket of the exact
        /// aggregate for every family, like [`node_bounds_pre`].
        #[test]
        fn batch_assembly_brackets_exact(
            flat in proptest::collection::vec(-10.0..10.0f64, 2..40),
            q in proptest::collection::vec(-12.0..12.0f64, 2),
            gamma in 0.01..2.0f64,
            fam_idx in 0usize..3,
        ) {
            let family = BoundFamily::ALL[fam_idx];
            let n = flat.len() / 2 * 2;
            let ps = PointSet::from_rows(2, &flat[..n]);
            let mut s = NodeStats::zero(2);
            for p in ps.iter() {
                s.accumulate(p.coords, p.weight);
            }
            let mbr = Mbr::of_set(&ps).unwrap();
            let w = s.weight;
            let x_min = gamma * mbr.min_dist2(&q);
            let x_max = gamma * mbr.max_dist2(&q);
            let sx = (gamma * s.sum_dist2(&q)).clamp(w * x_min, w * x_max);
            let sx2 = (gamma * gamma * s.sum_dist4(&q))
                .clamp(w * x_min * x_min, w * x_max * x_max);
            let t = (sx / w).clamp(x_min, x_max);
            let b = gaussian_bounds_from_exps(
                family, w, x_min, x_max,
                exp_neg(x_min), exp_neg(x_max), sx, sx2, t, exp_neg(t),
            );
            let f: f64 = ps
                .iter()
                .map(|p| p.weight * (-gamma * dist2(&q, p.coords)).exp())
                .sum();
            prop_assert!(b.lb <= f * (1.0 + 1e-9) + 1e-12, "lb {} > F {}", b.lb, f);
            prop_assert!(f <= b.ub * (1.0 + 1e-9) + 1e-12, "F {} > ub {}", f, b.ub);
            // Never looser than the interval family it intersects.
            prop_assert!(b.lb >= 0.0 && b.ub <= w * exp_neg(x_min) * (1.0 + 1e-12) + 1e-300);
        }
    }
}

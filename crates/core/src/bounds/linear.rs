//! KARL's linear bounds for the Gaussian kernel (paper §3.3, ref \[7\]).
//!
//! With `xᵢ = γ·dist(q, pᵢ)²` and a linear scalar bound `L(x) = m·x + k`
//! on `exp(−x)` over `[x_min, x_max]`, the aggregate
//!
//! `FL_P(q) = Σ wᵢ·L(xᵢ) = m·γ·Σ wᵢ dist(q, pᵢ)² + k·W`
//!
//! is computable in `O(d)` via the second-moment identity (Lemma 1).
//! The upper bound uses the chord through the interval endpoints; the
//! lower bound uses the tangent at the weighted mean argument
//! `t* = γ·Σ wᵢ dist²/W` (Eq. 3), where it collapses to the Jensen
//! bound `W·e^{−t*}`.

use super::Interval;
use crate::kernel::gaussian;

/// Linear (KARL) bounds on `F_R(q)` for the Gaussian kernel.
///
/// * `w` — total node weight `W`,
/// * `sx` — `Σ wᵢ xᵢ = γ·Σ wᵢ dist(q, pᵢ)²` (the caller computes it via
///   the node moments),
/// * `x_min`/`x_max` — γ-scaled squared-distance interval to the node
///   MBR.
///
/// Degenerate intervals return an unbounded pair that the caller's
/// [`Interval::refined_with`] against the interval bounds resolves.
pub fn gaussian(w: f64, sx: f64, x_min: f64, x_max: f64) -> Interval {
    // Clamp Σ wᵢ xᵢ into its mathematically valid range to shrug off
    // floating-point cancellation in the moment identity.
    let sx = sx.clamp(w * x_min, w * x_max);

    let ub = match gaussian::linear_upper(x_min, x_max) {
        Some(chord) => chord.m * sx + chord.k * w,
        None => f64::INFINITY,
    };

    // Tangent at the mean argument: Σ wᵢ·(e^{−t}(1 + t − xᵢ)) = W·e^{−t}
    // when t = (Σ wᵢ xᵢ)/W.
    let t = sx / w;
    let lb = w * (-t).exp();

    Interval { lb, ub }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_geom::vecmath::dist2;
    use kdv_geom::{Mbr, PointSet};
    use kdv_index::NodeStats;
    use proptest::prelude::*;

    fn stats_of(ps: &PointSet) -> NodeStats {
        let mut s = NodeStats::zero(ps.dim());
        for p in ps.iter() {
            s.accumulate(p.coords, p.weight);
        }
        s
    }

    fn exact_gaussian(ps: &PointSet, q: &[f64], gamma: f64) -> f64 {
        ps.iter()
            .map(|p| p.weight * (-gamma * dist2(q, p.coords)).exp())
            .sum()
    }

    #[test]
    fn jensen_lower_bound_single_point() {
        // One point at distance² = 4, γ = 0.5 → F = e^{−2}; the tangent
        // at the mean is exact for a single point.
        let ps = PointSet::from_rows(2, &[2.0, 0.0]);
        let s = stats_of(&ps);
        let sx = 0.5 * s.sum_dist2(&[0.0, 0.0]);
        let b = gaussian(s.weight, sx, 2.0, 2.0 + 1e-13);
        assert!((b.lb - (-2.0f64).exp()).abs() < 1e-9);
    }

    proptest! {
        /// KARL correctness: lb ≤ F ≤ ub for random nodes and queries.
        #[test]
        fn linear_bounds_bracket_exact(
            flat in proptest::collection::vec(-10.0..10.0f64, 2..40),
            q in proptest::collection::vec(-12.0..12.0f64, 2),
            gamma in 0.01..2.0f64,
        ) {
            let n = flat.len() / 2 * 2;
            let ps = PointSet::from_rows(2, &flat[..n]);
            let s = stats_of(&ps);
            let mbr = Mbr::of_set(&ps).unwrap();
            let x_min = gamma * mbr.min_dist2(&q);
            let x_max = gamma * mbr.max_dist2(&q);
            let b = gaussian(s.weight, gamma * s.sum_dist2(&q), x_min, x_max);
            let f = exact_gaussian(&ps, &q, gamma);
            prop_assert!(b.lb <= f * (1.0 + 1e-9) + 1e-12, "lb {} > F {}", b.lb, f);
            prop_assert!(f <= b.ub * (1.0 + 1e-9) + 1e-12, "F {} > ub {}", f, b.ub);
        }
    }
}

//! Interval (min/max-distance) bounds — the aKDE \[17\] / tKDC \[13\]
//! family, and the fallback every tighter family intersects with.
//!
//! For a node `R` with total weight `W` and transformed distance
//! interval `[x_min, x_max]`, any non-increasing profile `k` gives
//!
//! `W·k(x_max) ≤ F_R(q) ≤ W·k(x_min)`
//!
//! (paper Eqs. 5–6 for the triangular kernel; identical shape for all).

use super::Interval;
use crate::kernel::Kernel;

/// Interval bounds for the Gaussian profile (`x = γ·dist²`).
#[inline]
pub fn gaussian(weight: f64, x_min: f64, x_max: f64) -> Interval {
    Interval {
        lb: weight * (-x_max).exp(),
        ub: weight * (-x_min).exp(),
    }
}

/// Interval bounds for any distance kernel (`x = γ·dist`), using the
/// kernel's own profile.
#[inline]
pub fn distance(kernel: &Kernel, weight: f64, x_min: f64, x_max: f64) -> Interval {
    Interval {
        lb: weight * kernel.profile(x_max),
        ub: weight * kernel.profile(x_min),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelType;

    #[test]
    fn gaussian_interval_brackets_point_mass() {
        // A node that is a single unit-weight point at distance² = 1/γ·x.
        let b = gaussian(1.0, 0.5, 2.0);
        let f = (-1.0f64).exp(); // true value for x = 1 ∈ [0.5, 2]
        assert!(b.lb <= f && f <= b.ub);
    }

    #[test]
    fn triangular_interval_matches_eqs_5_and_6() {
        let k = Kernel::new(KernelType::Triangular, 1.0);
        let b = distance(&k, 3.0, 0.25, 0.75);
        assert!((b.lb - 3.0 * 0.25).abs() < 1e-12); // W·max(1 − 0.75, 0)
        assert!((b.ub - 3.0 * 0.75).abs() < 1e-12); // W·max(1 − 0.25, 0)
    }

    #[test]
    fn zero_support_region_gives_zero_bounds() {
        let k = Kernel::new(KernelType::Triangular, 1.0);
        let b = distance(&k, 5.0, 2.0, 3.0);
        assert_eq!(b.lb, 0.0);
        assert_eq!(b.ub, 0.0);
    }

    #[test]
    fn degenerate_interval_is_exact() {
        let k = Kernel::new(KernelType::Exponential, 1.0);
        let b = distance(&k, 2.0, 1.0, 1.0);
        assert!((b.lb - b.ub).abs() < 1e-15);
    }
}

//! QUAD's quadratic bounds for the Gaussian kernel (paper §4).
//!
//! With `xᵢ = γ·dist(q, pᵢ)²` and a quadratic scalar bound
//! `Q(x) = a·x² + b·x + c` on `exp(−x)` over `[x_min, x_max]`, the
//! aggregate of Eq. 2
//!
//! `FQ_P(q) = a·γ²·Σ wᵢ dist⁴ + b·γ·Σ wᵢ dist² + c·W`
//!
//! is computable in `O(d²)` via the fourth-moment identity of Lemma 3.
//! The upper bound is the endpoint-interpolating parabola with Theorem
//! 1's optimal curvature `a*_u`; the lower bound is tangent at the mean
//! argument `t*` (Eq. 3) and interpolates `(x_max, e^{−x_max})` (§4.3).

use super::Interval;
use crate::kernel::gaussian;

/// Quadratic (QUAD) bounds on `F_R(q)` for the Gaussian kernel.
///
/// * `w` — total node weight `W`,
/// * `sx` — `Σ wᵢ xᵢ = γ·Σ wᵢ dist²` (second-moment contraction),
/// * `sx2` — `Σ wᵢ xᵢ² = γ²·Σ wᵢ dist⁴` (Lemma 3's fourth-moment
///   contraction),
/// * `x_min`/`x_max` — γ-scaled squared-distance interval to the node
///   MBR.
///
/// Degenerate intervals yield infinite sides that the caller's
/// [`Interval::refined_with`] against the interval bounds resolves.
pub fn gaussian(w: f64, sx: f64, sx2: f64, x_min: f64, x_max: f64) -> Interval {
    let sx = sx.clamp(w * x_min, w * x_max);
    let sx2 = sx2.clamp(w * x_min * x_min, w * x_max * x_max);

    let ub = match gaussian::quad_upper(x_min, x_max) {
        Some(qu) => qu.a * sx2 + qu.b * sx + qu.c * w,
        None => f64::INFINITY,
    };

    let t = (sx / w).clamp(x_min, x_max);
    let lb = match gaussian::quad_lower(x_max, t) {
        Some(ql) => ql.a * sx2 + ql.b * sx + ql.c * w,
        None => f64::NEG_INFINITY,
    };

    Interval { lb, ub }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::linear;
    use kdv_geom::vecmath::dist2;
    use kdv_geom::{Mbr, PointSet};
    use kdv_index::NodeStats;
    use proptest::prelude::*;

    fn stats_of(ps: &PointSet) -> NodeStats {
        let mut s = NodeStats::zero(ps.dim());
        for p in ps.iter() {
            s.accumulate(p.coords, p.weight);
        }
        s
    }

    fn exact_gaussian(ps: &PointSet, q: &[f64], gamma: f64) -> f64 {
        ps.iter()
            .map(|p| p.weight * (-gamma * dist2(q, p.coords)).exp())
            .sum()
    }

    /// Returns (w, sx, sx2, x_min, x_max, exact F).
    fn setup(flat: &[f64], q: &[f64], gamma: f64) -> (f64, f64, f64, f64, f64, f64) {
        let ps = PointSet::from_rows(2, flat);
        let s = stats_of(&ps);
        let mbr = Mbr::of_set(&ps).unwrap();
        let x_min = gamma * mbr.min_dist2(q);
        let x_max = gamma * mbr.max_dist2(q);
        let f = exact_gaussian(&ps, q, gamma);
        let sx = gamma * s.sum_dist2(q);
        let sx2 = gamma * gamma * s.sum_dist4(q);
        (s.weight, sx, sx2, x_min, x_max, f)
    }

    #[test]
    fn fig18_style_case_brackets_exact() {
        let flat = [1.0, 1.0, 2.0, 0.5, 1.5, 1.8, 0.2, 0.9];
        let q = [0.0, 0.0];
        let (w, sx, sx2, x_min, x_max, f) = setup(&flat, &q, 0.7);
        let b = gaussian(w, sx, sx2, x_min, x_max);
        assert!(b.lb <= f && f <= b.ub, "lb {} F {} ub {}", b.lb, f, b.ub);
        assert!(b.gap() > 0.0);
    }

    proptest! {
        /// §4 correctness: QUAD brackets the exact aggregate.
        #[test]
        fn quadratic_bounds_bracket_exact(
            flat in proptest::collection::vec(-10.0..10.0f64, 2..40),
            q in proptest::collection::vec(-12.0..12.0f64, 2),
            gamma in 0.01..2.0f64,
        ) {
            let n = flat.len() / 2 * 2;
            let (w, sx, sx2, x_min, x_max, f) = setup(&flat[..n], &q, gamma);
            let b = gaussian(w, sx, sx2, x_min, x_max);
            prop_assert!(b.lb <= f * (1.0 + 1e-9) + 1e-12, "lb {} > F {}", b.lb, f);
            prop_assert!(f <= b.ub * (1.0 + 1e-9) + 1e-12, "F {} > ub {}", f, b.ub);
        }

        /// The paper's headline tightness claim (§4.2–4.3):
        /// FL_lb ≤ FQ_lb ≤ F ≤ FQ_ub ≤ FL_ub.
        #[test]
        fn quadratic_tighter_than_linear(
            flat in proptest::collection::vec(-10.0..10.0f64, 4..40),
            q in proptest::collection::vec(-12.0..12.0f64, 2),
            gamma in 0.01..2.0f64,
        ) {
            let n = flat.len() / 2 * 2;
            let (w, sx, sx2, x_min, x_max, _f) = setup(&flat[..n], &q, gamma);
            if x_max - x_min < 1e-9 {
                return Ok(());
            }
            let bq = gaussian(w, sx, sx2, x_min, x_max);
            let bl = linear::gaussian(w, sx, x_min, x_max);
            let tol = 1e-9 * (1.0 + bl.ub.abs());
            prop_assert!(bq.ub <= bl.ub + tol, "QUAD ub {} > KARL ub {}", bq.ub, bl.ub);
            prop_assert!(bq.lb >= bl.lb - tol, "QUAD lb {} < KARL lb {}", bq.lb, bl.lb);
        }
    }
}

//! QUAD's restricted-quadratic bounds for distance kernels (paper §5.2,
//! §9.6) and the polynomial-kernel extensions.
//!
//! With `xᵢ = γ·dist(q, pᵢ)` and a restricted quadratic
//! `Q(x) = a·x² + c`, the aggregate of Eq. 7
//!
//! `FQ_P(q) = a·γ²·Σ wᵢ dist(q, pᵢ)² + c·W`
//!
//! needs only the `O(d)` second-moment contraction (Lemma 4). The
//! Epanechnikov/quartic extensions work in `u = x²` space, where the
//! fourth-moment contraction (`O(d²)`) plays the role of the second —
//! and where a node fully inside the kernel support is evaluated
//! **exactly** because the profile itself is polynomial in `u`.

use super::Interval;
use crate::kernel::{cosine, exponential, extra, triangular, Kernel, KernelType, RQuad};
use kdv_index::NodeStats;

/// Restricted-quadratic bounds on `F_R(q)` for all distance kernels.
///
/// `qt` is the query pre-translated into the node statistics' centered
/// frame (`q − c`, see [`NodeStats::translate_query`]); `x_min`/`x_max`
/// are the γ-scaled distance interval to the node MBR. Sides that no
/// construction covers are ±∞; the caller resolves them against the
/// interval bounds.
pub fn bounds(kernel: &Kernel, stats: &NodeStats, qt: &[f64], x_min: f64, x_max: f64) -> Interval {
    let w = stats.weight;
    // s2 = Σ wᵢ xᵢ² = γ²·Σ wᵢ dist², clamped to its valid range.
    let g2 = kernel.gamma * kernel.gamma;
    let s2 = (g2 * stats.sum_dist2_pre(qt)).clamp(w * x_min * x_min, w * x_max * x_max);

    match kernel.ty {
        KernelType::Triangular => triangular_bounds(w, s2, x_min, x_max),
        KernelType::Cosine => cosine_bounds(w, s2, x_min, x_max),
        KernelType::Exponential => exponential_bounds(w, s2, x_min, x_max),
        KernelType::Epanechnikov | KernelType::Quartic => {
            // u-space: uᵢ = xᵢ², Σ wᵢ uᵢ = s2, Σ wᵢ uᵢ² = γ⁴·Σ wᵢ dist⁴.
            let su1 = s2;
            let u_min = x_min * x_min;
            let u_max = x_max * x_max;
            let su2 =
                (g2 * g2 * stats.sum_dist4_pre(qt)).clamp(w * u_min * u_min, w * u_max * u_max);
            if kernel.ty == KernelType::Epanechnikov {
                epanechnikov_bounds(w, su1, su2, u_min, u_max)
            } else {
                quartic_bounds(w, su1, su2, u_min, u_max)
            }
        }
        KernelType::Gaussian => {
            unreachable!("Gaussian kernel is dispatched to bounds::quadratic")
        }
    }
}

#[inline]
fn eval_agg(q: RQuad, w: f64, s2: f64) -> f64 {
    q.a * s2 + q.c * w
}

fn triangular_bounds(w: f64, s2: f64, x_min: f64, x_max: f64) -> Interval {
    let ub = match triangular::quad_upper(x_min, x_max) {
        Some(qu) => eval_agg(qu, w, s2),
        None => f64::INFINITY,
    };
    // Theorem 2's optimal curvature; closed form FQ = W − √(W·s2)
    // (Lemma 6's derivation), clamped at 0 for the zero region (§5.2.2).
    let lb = match triangular::optimal_lower_curvature(w, s2).and_then(triangular::quad_lower) {
        Some(ql) => eval_agg(ql, w, s2).max(0.0),
        // s2 ≈ 0: every point sits on q, so F = W exactly.
        None => w,
    };
    Interval { lb, ub }
}

fn cosine_bounds(w: f64, s2: f64, x_min: f64, x_max: f64) -> Interval {
    let ub = match cosine::quad_upper(x_min, x_max) {
        Some(qu) => eval_agg(qu, w, s2),
        None => f64::INFINITY,
    };
    let lb = match cosine::quad_lower(x_max) {
        Some(ql) => eval_agg(ql, w, s2).max(0.0),
        None => f64::NEG_INFINITY,
    };
    Interval { lb, ub }
}

fn exponential_bounds(w: f64, s2: f64, x_min: f64, x_max: f64) -> Interval {
    let ub = match exponential::quad_upper(x_min, x_max) {
        Some(qu) => eval_agg(qu, w, s2),
        None => f64::INFINITY,
    };
    // Tangent at the RMS argument t* (Eq. 18); valid for any t > 0.
    let lb = match exponential::optimal_tangent(w, s2).and_then(exponential::quad_lower) {
        Some(ql) => eval_agg(ql, w, s2).max(0.0),
        None => w, // all points on q: F = W·e⁰ = W.
    };
    Interval { lb, ub }
}

fn epanechnikov_bounds(w: f64, su1: f64, su2: f64, u_min: f64, u_max: f64) -> Interval {
    if u_max <= 1.0 {
        // Node fully inside the support: F = Σ wᵢ (1 − uᵢ) exactly.
        return Interval::exact((w - su1).max(0.0));
    }
    if u_min >= 1.0 {
        return Interval::ZERO;
    }
    // Mixed case: triangular constructions in u-space on the u-moments.
    let ub = match extra::epanechnikov_upper_u(u_min, u_max) {
        Some(qu) => qu.a * su2 + qu.c * w,
        None => f64::INFINITY,
    };
    let lb = match triangular::optimal_lower_curvature(w, su2).and_then(extra::epanechnikov_lower_u)
    {
        Some(ql) => (ql.a * su2 + ql.c * w).max(0.0),
        None => w,
    };
    Interval { lb, ub }
}

fn quartic_bounds(w: f64, su1: f64, su2: f64, u_min: f64, u_max: f64) -> Interval {
    if u_max <= 1.0 {
        // F = Σ wᵢ (1 − uᵢ)² = W − 2·Σ wᵢ uᵢ + Σ wᵢ uᵢ² exactly.
        return Interval::exact((w - 2.0 * su1 + su2).max(0.0));
    }
    if u_min >= 1.0 {
        return Interval::ZERO;
    }
    // Mixed case. The profile g(u) = max(1 − u, 0)² is convex in u, so:
    // upper = chord through the interval endpoints (linear in u),
    // lower = tangent at the mean ū (aggregates to W·g(ū)).
    let g = |u: f64| {
        let t = (1.0 - u).max(0.0);
        t * t
    };
    let span = u_max - u_min;
    let ub = if span > 1e-12 {
        let m = (g(u_max) - g(u_min)) / span;
        let k = g(u_min) - m * u_min;
        m * su1 + k * w
    } else {
        f64::INFINITY
    };
    let u_bar = (su1 / w).clamp(u_min, u_max);
    let lb = if u_bar < 1.0 {
        // tangent of g at ū: g(ū) + g'(ū)(u − ū); aggregate = W·g(ū).
        w * g(u_bar)
    } else {
        0.0
    };
    Interval { lb, ub }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_geom::vecmath::dist2;
    use kdv_geom::{Mbr, PointSet};
    use proptest::prelude::*;

    fn stats_of(ps: &PointSet) -> NodeStats {
        let mut s = NodeStats::zero(ps.dim());
        for p in ps.iter() {
            s.accumulate(p.coords, p.weight);
        }
        s
    }

    fn exact(kernel: &Kernel, ps: &PointSet, q: &[f64]) -> f64 {
        ps.iter()
            .map(|p| p.weight * kernel.eval_dist2(dist2(q, p.coords)))
            .sum()
    }

    fn check_brackets(kernel: &Kernel, flat: &[f64], q: &[f64]) -> Result<(), String> {
        let ps = PointSet::from_rows(2, flat);
        let s = stats_of(&ps);
        let mbr = Mbr::of_set(&ps).unwrap();
        let x_min = kernel.gamma * mbr.min_dist2(q).sqrt();
        let x_max = kernel.gamma * mbr.max_dist2(q).sqrt();
        // stats_of centers at the origin, so q̃ = q.
        let b = bounds(kernel, &s, q, x_min, x_max);
        let f = exact(kernel, &ps, q);
        let tol = 1e-9 * (1.0 + f.abs());
        if b.lb > f + tol {
            return Err(format!("{:?}: lb {} > F {}", kernel.ty, b.lb, f));
        }
        if f > b.ub + tol {
            return Err(format!("{:?}: F {} > ub {}", kernel.ty, f, b.ub));
        }
        Ok(())
    }

    #[test]
    fn lemma6_closed_form_for_triangular_lower() {
        // FQ(q, Q_L) with a*_l equals W − √(W·s2).
        let (w, s2) = (5.0, 2.0);
        let b = triangular_bounds(w, s2, 0.1, 0.9);
        let expect = w - (w * s2).sqrt();
        assert!((b.lb - expect.max(0.0)).abs() < 1e-12);
    }

    #[test]
    fn triangular_all_points_on_query_is_exact_weight() {
        let b = triangular_bounds(3.0, 0.0, 0.0, 0.0);
        assert_eq!(b.lb, 3.0);
    }

    #[test]
    fn epanechnikov_inside_support_is_exact() {
        let k = Kernel::new(KernelType::Epanechnikov, 0.2);
        let flat = [0.5, 0.5, 1.0, 0.0, 0.0, 1.0];
        let ps = PointSet::from_rows(2, &flat);
        let s = stats_of(&ps);
        let mbr = Mbr::of_set(&ps).unwrap();
        let q = [0.2, 0.2];
        let x_min = k.gamma * mbr.min_dist2(&q).sqrt();
        let x_max = k.gamma * mbr.max_dist2(&q).sqrt();
        assert!(x_max <= 1.0, "test setup: node inside support");
        let b = bounds(&k, &s, &q, x_min, x_max);
        let f = exact(&k, &ps, &q);
        assert!((b.lb - f).abs() < 1e-9 && (b.ub - f).abs() < 1e-9);
    }

    #[test]
    fn quartic_inside_support_is_exact() {
        let k = Kernel::new(KernelType::Quartic, 0.2);
        let flat = [0.5, 0.5, 1.0, 0.0];
        let ps = PointSet::from_rows(2, &flat);
        let s = stats_of(&ps);
        let mbr = Mbr::of_set(&ps).unwrap();
        let q = [0.0, 0.0];
        let x_min = k.gamma * mbr.min_dist2(&q).sqrt();
        let x_max = k.gamma * mbr.max_dist2(&q).sqrt();
        let b = bounds(&k, &s, &q, x_min, x_max);
        let f = exact(&k, &ps, &q);
        assert!((b.lb - f).abs() < 1e-9 && (b.ub - f).abs() < 1e-9);
    }

    proptest! {
        /// §5.2 / §9.6 correctness across every distance kernel.
        #[test]
        fn distance_bounds_bracket_exact(
            flat in proptest::collection::vec(-5.0..5.0f64, 2..40),
            q in proptest::collection::vec(-6.0..6.0f64, 2),
            gamma in 0.05..1.5f64,
            ty_idx in 0usize..5,
        ) {
            let ty = [
                KernelType::Triangular,
                KernelType::Cosine,
                KernelType::Exponential,
                KernelType::Epanechnikov,
                KernelType::Quartic,
            ][ty_idx];
            let kernel = Kernel::new(ty, gamma);
            let n = flat.len() / 2 * 2;
            if let Err(msg) = check_brackets(&kernel, &flat[..n], &q) {
                return Err(TestCaseError::fail(msg));
            }
        }

        /// Lemma 5 + Lemma 6: QUAD's triangular bounds dominate the
        /// aKDE interval bounds.
        #[test]
        fn triangular_tighter_than_interval(
            flat in proptest::collection::vec(-5.0..5.0f64, 4..40),
            q in proptest::collection::vec(-6.0..6.0f64, 2),
            gamma in 0.05..1.5f64,
        ) {
            let kernel = Kernel::new(KernelType::Triangular, gamma);
            let n = flat.len() / 2 * 2;
            let ps = PointSet::from_rows(2, &flat[..n]);
            let s = stats_of(&ps);
            let mbr = Mbr::of_set(&ps).unwrap();
            let x_min = gamma * mbr.min_dist2(&q).sqrt();
            let x_max = gamma * mbr.max_dist2(&q).sqrt();
            let quad = bounds(&kernel, &s, &q, x_min, x_max);
            let base = crate::bounds::interval::distance(&kernel, s.weight, x_min, x_max);
            let tol = 1e-9 * (1.0 + base.ub.abs());
            prop_assert!(quad.lb >= base.lb - tol, "QUAD lb {} < interval lb {}", quad.lb, base.lb);
            if quad.ub.is_finite() {
                prop_assert!(quad.ub <= base.ub + tol, "QUAD ub {} > interval ub {}", quad.ub, base.ub);
            }
        }
    }
}

//! Property tests of the engine's user-facing contracts, over random
//! weighted datasets, every kernel, and every bound family.

use kdv_core::bounds::BoundFamily;
use kdv_core::engine::{RefineEvaluator, RenderBudget, TileEvaluator};
use kdv_core::kernel::{Kernel, KernelType};
use kdv_core::raster::RasterSpec;
use kdv_geom::vecmath::dist2;
use kdv_geom::PointSet;
use kdv_index::{BuildConfig, KdTree};
use proptest::prelude::*;

fn brute_force(ps: &PointSet, kernel: &Kernel, q: &[f64]) -> f64 {
    ps.iter()
        .map(|p| p.weight * kernel.eval_dist2(dist2(q, p.coords)))
        .sum()
}

fn arb_dataset() -> impl Strategy<Value = PointSet> {
    proptest::collection::vec(
        (proptest::collection::vec(-20.0..20.0f64, 2), 0.01..2.0f64),
        8..120,
    )
    .prop_map(|rows| {
        let mut ps = PointSet::new(2);
        for (p, w) in rows {
            ps.push_weighted(&p, w);
        }
        ps
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The εKDV contract: |R(q) − F(q)| ≤ ε·F(q), for every family and
    /// kernel, on random weighted data and queries.
    #[test]
    fn eps_contract(
        ps in arb_dataset(),
        q in proptest::collection::vec(-25.0..25.0f64, 2),
        gamma in 0.02..1.0f64,
        eps in 0.005..0.1f64,
        ty_idx in 0usize..6,
        fam_idx in 0usize..3,
    ) {
        let kernel = Kernel::new(KernelType::ALL[ty_idx], gamma);
        let family = BoundFamily::ALL[fam_idx];
        let tree = KdTree::build(&ps, BuildConfig { leaf_capacity: 8, ..BuildConfig::default() });
        let mut ev = RefineEvaluator::new(&tree, kernel, family);
        let r = ev.eval_eps(&q, eps);
        let f = brute_force(&ps, &kernel, &q);
        // The brute-force reference itself carries summation roundoff;
        // widen by a machine-level tolerance on top of ε.
        let tol = eps * f + 1e-9 * (1.0 + f.abs());
        prop_assert!((r - f).abs() <= tol,
            "{family:?}/{:?}: R = {r} vs F = {f} (ε = {eps})", kernel.ty);
    }

    /// The τKDV contract: classification equals the exact comparison
    /// whenever τ is not within rounding distance of F(q).
    #[test]
    fn tau_contract(
        ps in arb_dataset(),
        q in proptest::collection::vec(-25.0..25.0f64, 2),
        gamma in 0.02..1.0f64,
        tau_scale in 0.1..2.0f64,
        ty_idx in 0usize..6,
        fam_idx in 0usize..3,
    ) {
        let kernel = Kernel::new(KernelType::ALL[ty_idx], gamma);
        let family = BoundFamily::ALL[fam_idx];
        let tree = KdTree::build(&ps, BuildConfig { leaf_capacity: 8, ..BuildConfig::default() });
        let f = brute_force(&ps, &kernel, &q);
        let tau = f * tau_scale + 1e-6;
        if (f - tau).abs() <= 1e-6 * (1.0 + f.abs()) {
            return Ok(()); // boundary: rounding decides, skip.
        }
        let mut ev = RefineEvaluator::new(&tree, kernel, family);
        prop_assert_eq!(ev.eval_tau(&q, tau), f >= tau,
            "{:?}/{:?}: τ = {} vs F = {}", family, kernel.ty, tau, f);
    }

    /// Exhaustive refinement reproduces the brute-force sum.
    #[test]
    fn exhaustive_refinement_is_exact(
        ps in arb_dataset(),
        q in proptest::collection::vec(-25.0..25.0f64, 2),
        gamma in 0.02..1.0f64,
        ty_idx in 0usize..6,
    ) {
        let kernel = Kernel::new(KernelType::ALL[ty_idx], gamma);
        let tree = KdTree::build(&ps, BuildConfig { leaf_capacity: 4, ..BuildConfig::default() });
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let r = ev.eval_exact(&q);
        let f = brute_force(&ps, &kernel, &q);
        prop_assert!((r - f).abs() <= 1e-9 * (1.0 + f.abs()),
            "exhaustive {r} vs brute {f}");
    }

    /// Determinism: the same query twice gives bit-identical results
    /// (the evaluator's reused scratch state must not leak across
    /// queries).
    #[test]
    fn queries_are_deterministic(
        ps in arb_dataset(),
        q in proptest::collection::vec(-25.0..25.0f64, 2),
        gamma in 0.02..1.0f64,
    ) {
        let kernel = Kernel::gaussian(gamma);
        let tree = KdTree::build_default(&ps);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let r1 = ev.eval_eps(&q, 0.01);
        // Interleave an unrelated query to perturb the scratch state.
        let _ = ev.eval_eps(&[100.0, -100.0], 0.5);
        let r2 = ev.eval_eps(&q, 0.01);
        prop_assert_eq!(r1.to_bits(), r2.to_bits());
    }

    /// Tile-batched refinement honors the same per-pixel contracts as
    /// independent refinement, on random trees and every bound family:
    /// every unbudgeted ε pixel is certified (`ub ≤ (1+ε)·lb`) and its
    /// bracket contains the exact density; the τ hot mask is identical
    /// to the per-pixel evaluator's answers.
    #[test]
    fn batched_tile_matches_per_pixel(
        ps in arb_dataset(),
        gamma in 0.05..1.0f64,
        fam_idx in 0usize..3,
        eps in 0.01..0.3f64,
    ) {
        let family = [BoundFamily::Interval, BoundFamily::Linear, BoundFamily::Quadratic][fam_idx];
        let kernel = Kernel::gaussian(gamma);
        let tree = KdTree::build(&ps, BuildConfig { leaf_capacity: 4, ..BuildConfig::default() });
        let raster = RasterSpec::covering(&ps, 9, 9, 0.05);
        let mut tev = TileEvaluator::new(&tree, kernel, family);
        let mut pev = RefineEvaluator::new(&tree, kernel, family);

        let mut budget = RenderBudget::unlimited();
        let tile = tev.eval_tile_eps(&raster, eps, &mut budget);
        let mut tau = 0.0;
        for (i, e) in tile.evals.iter().enumerate() {
            let (col, row) = (i as u32 % 9, i as u32 / 9);
            let q = raster.pixel_center(col, row);
            prop_assert!(!e.exhausted);
            prop_assert!(e.ub <= (1.0 + eps) * e.lb + 1e-12 * e.ub.abs());
            let exact = pev.eval_exact(&q);
            prop_assert!(e.lb <= exact + 1e-9 * (1.0 + exact.abs()));
            prop_assert!(e.ub >= exact - 1e-9 * (1.0 + exact.abs()));
            tau += exact;
        }
        // τ at ~40% of the mean pixel density: both hot and cold
        // pixels exist in most generated scenes.
        let tau = (tau / 81.0) * 0.4;
        // Densities can underflow to 0 far from the data; skip the τ
        // half for those degenerate scenes (τ must be positive).
        if tau > 0.0 && tau.is_finite() {
            let mut budget = RenderBudget::unlimited();
            let t = tev.eval_tile_tau(&raster, tau, &mut budget);
            for (i, b) in t.taus.iter().enumerate() {
                let (col, row) = (i as u32 % 9, i as u32 / 9);
                let q = raster.pixel_center(col, row);
                prop_assert!(b.decided);
                prop_assert_eq!(b.hot, pev.eval_tau(&q, tau), "pixel ({col},{row})");
            }
        }
    }
}

#[test]
fn eval_eps_halving_eps_tightens_error() {
    // Deterministic sanity: the measured error shrinks (weakly) as ε
    // tightens on a fixed workload.
    let mut ps = PointSet::new(2);
    for i in 0..400 {
        let a = i as f64 * 0.1;
        ps.push(&[a.sin() * 5.0, a.cos() * 3.0]);
    }
    let kernel = Kernel::gaussian(0.4);
    let tree = KdTree::build_default(&ps);
    let q = [1.0, 1.0];
    let f: f64 = ps
        .iter()
        .map(|p| p.weight * kernel.eval_dist2(dist2(&q, p.coords)))
        .sum();
    let mut last = f64::INFINITY;
    for eps in [0.2, 0.05, 0.01, 0.001] {
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let err = (ev.eval_eps(&q, eps) - f).abs() / f;
        assert!(err <= eps, "error {err} above ε = {eps}");
        assert!(err <= last + 1e-12);
        last = err.max(1e-15);
    }
}

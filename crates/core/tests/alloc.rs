//! Steady-state per-pixel refinement must not touch the heap.
//!
//! `RefineEvaluator` owns reusable scratch buffers (priority queue,
//! translated query, leaf distance block); after a warm-up pass has
//! grown them to their working capacity, answering further queries is
//! allocation-free. A counting `#[global_allocator]` pins that — any
//! future per-query `Vec::new()` / `Box` regression fails this test
//! with an exact allocation count.
//!
//! One test per file: the counter is process-global, and sibling tests
//! running on other threads would pollute the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use kdv_core::bounds::BoundFamily;
use kdv_core::engine::RefineEvaluator;
use kdv_core::kernel::{Kernel, KernelType};
use kdv_geom::PointSet;
use kdv_index::KdTree;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn dataset(n: usize) -> PointSet {
    // Deterministic LCG scatter — no RNG crates on the measured path.
    let mut ps = PointSet::new(2);
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..n {
        let x = next() * 10.0 - 5.0;
        let y = next() * 10.0 - 5.0;
        let w = 0.5 + next();
        ps.push_weighted(&[x, y], w);
    }
    ps
}

#[test]
fn steady_state_queries_do_not_allocate() {
    let ps = dataset(600);
    let tree = KdTree::build_default(&ps);
    let kernel = Kernel::new(KernelType::Epanechnikov, 1.2);
    let queries: Vec<[f64; 2]> = (0..64)
        .map(|i| {
            let t = i as f64 / 63.0;
            [t * 9.0 - 4.5, (1.0 - t) * 9.0 - 4.5]
        })
        .collect();

    for family in [
        BoundFamily::Interval,
        BoundFamily::Linear,
        BoundFamily::Quadratic,
    ] {
        let mut ev = RefineEvaluator::new(&tree, kernel, family);
        // Warm-up: grow every scratch buffer (heap, query translate,
        // leaf distance block) to the capacity this query set needs.
        let mut warm = 0.0f64;
        for q in &queries {
            warm += ev.eval_eps(q, 0.05);
            ev.eval_tau(q, warm.max(1e-6) * 0.25);
        }

        let before = ALLOCS.load(Ordering::SeqCst);
        let mut acc = 0.0f64;
        for q in &queries {
            acc += ev.eval_eps(q, 0.05);
            ev.eval_tau(q, acc.max(1e-6) * 0.25);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        assert!(acc.is_finite());
        assert_eq!(
            after - before,
            0,
            "steady-state refinement allocated {} times ({family:?})",
            after - before
        );
    }
}

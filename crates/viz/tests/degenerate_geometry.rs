//! Degenerate-geometry regression suite (robustness tentpole).
//!
//! Real datasets contain pathologies the paper's figures never show:
//! every point identical (a sensor stuck on one location), perfectly
//! collinear points (events along a road), a single point, and rasters
//! whose covering window would have zero area. Each case runs through
//! the full εKDV and τKDV pipelines and must produce correct output —
//! not a panic, not an NaN grid.

use kdv_core::bandwidth::try_scott_gamma;
use kdv_core::bounds::{node_bounds, BoundFamily};
use kdv_core::engine::RefineEvaluator;
use kdv_core::kernel::Kernel;
use kdv_core::method::ExactScan;
use kdv_core::raster::RasterSpec;
use kdv_geom::PointSet;
use kdv_index::{KdTree, NodeId, NodeKind};
use kdv_viz::render::{render_eps, render_tau};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 2-D point set from (x, y, weight) rows.
fn ps(rows: &[(f64, f64, f64)]) -> PointSet {
    let mut out = PointSet::new(2);
    for &(x, y, w) in rows {
        out.push_weighted(&[x, y], w);
    }
    out
}

fn all_duplicates() -> PointSet {
    ps(&[(3.25, -1.5, 1.0); 40])
}

fn collinear() -> PointSet {
    // y = 2x + 1, including repeated knots.
    let mut rows = Vec::new();
    for i in 0..60 {
        let x = -3.0 + 0.1 * i as f64;
        rows.push((x, 2.0 * x + 1.0, 1.0 + (i % 3) as f64));
    }
    rows.push(rows[0]);
    rows.push(rows[0]);
    ps(&rows)
}

fn single_point() -> PointSet {
    ps(&[(0.75, 0.25, 2.0)])
}

fn degenerate_sets() -> Vec<(&'static str, PointSet)> {
    vec![
        ("all-duplicates", all_duplicates()),
        ("collinear", collinear()),
        ("single-point", single_point()),
    ]
}

/// A usable γ even where Scott's rule degenerates (zero spread on
/// every axis of a duplicate-only set).
fn safe_kernel(points: &PointSet) -> Kernel {
    match try_scott_gamma(points) {
        Ok(bw) => Kernel::gaussian(bw.gamma),
        Err(_) => Kernel::gaussian(1.0),
    }
}

#[test]
fn eps_render_survives_degenerate_geometry() {
    for (name, points) in degenerate_sets() {
        let kernel = safe_kernel(&points);
        let tree = KdTree::try_build_default(&points)
            .unwrap_or_else(|e| panic!("{name}: tree build failed: {e}"));
        let raster = RasterSpec::try_covering(&points, 12, 9, 0.05)
            .unwrap_or_else(|e| panic!("{name}: raster failed: {e}"));
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let grid = render_eps(&mut ev, &raster, 0.01);
        let exact = ExactScan::new(&points, kernel);
        for row in 0..raster.height() {
            for col in 0..raster.width() {
                let v = grid.get(col, row);
                assert!(v.is_finite(), "{name}: non-finite pixel ({col},{row})");
                let f = exact.density(&raster.pixel_center(col, row));
                assert!(
                    (v - f).abs() <= 0.5 * 0.01 * f.abs() + 1e-12,
                    "{name}: pixel ({col},{row}) = {v}, exact {f}"
                );
            }
        }
    }
}

#[test]
fn tau_render_survives_degenerate_geometry() {
    for (name, points) in degenerate_sets() {
        let kernel = safe_kernel(&points);
        let tree = KdTree::try_build_default(&points).expect("finite input");
        let raster = RasterSpec::try_covering(&points, 10, 8, 0.05).expect("finite input");
        let exact = ExactScan::new(&points, kernel);
        // τ at 40% of the observed density range.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in 0..raster.height() {
            for col in 0..raster.width() {
                let f = exact.density(&raster.pixel_center(col, row));
                lo = lo.min(f);
                hi = hi.max(f);
            }
        }
        let tau = lo + 0.4 * (hi - lo);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mask = render_tau(&mut ev, &raster, tau);
        for row in 0..raster.height() {
            for col in 0..raster.width() {
                let f = exact.density(&raster.pixel_center(col, row));
                if (f - tau).abs() <= 1e-9 * (1.0 + f.abs()) {
                    continue; // boundary pixel: summation-order noise decides
                }
                assert_eq!(
                    mask.get(col, row),
                    f >= tau,
                    "{name}: pixel ({col},{row}) misclassified (F = {f}, τ = {tau})"
                );
            }
        }
    }
}

#[test]
fn all_duplicate_points_build_with_tiny_leaves() {
    // Splitting can make no progress when every coordinate is equal;
    // the builder must still terminate with a valid (leaf-heavy) tree.
    let points = all_duplicates();
    let config = kdv_index::BuildConfig {
        leaf_capacity: 2,
        ..Default::default()
    };
    let tree = KdTree::try_build(&points, config).expect("duplicates are finite");
    assert_eq!(tree.points().len(), points.len());
    let kernel = safe_kernel(&points);
    let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
    let q = [3.25, -1.5];
    let f = ExactScan::new(&points, kernel).density(&q);
    let v = ev.try_eval_eps(&q, 0.01).expect("valid query");
    assert!((v - f).abs() <= 0.5 * 0.01 * f.abs() + 1e-12);
}

#[test]
fn zero_area_rasters_are_rejected_not_rendered() {
    assert!(RasterSpec::try_new(0, 8, (0.0, 1.0), (0.0, 1.0)).is_err());
    assert!(RasterSpec::try_new(8, 0, (0.0, 1.0), (0.0, 1.0)).is_err());
    assert!(RasterSpec::try_new(8, 8, (2.0, 2.0), (0.0, 1.0)).is_err());
    assert!(RasterSpec::try_new(8, 8, (0.0, 1.0), (5.0, 5.0)).is_err());
    // But a degenerate *dataset* extent is fine: covering widens it.
    let raster = RasterSpec::try_covering(&single_point(), 8, 8, 0.05).expect("widened window");
    assert!(raster.pixel_center(0, 0).iter().all(|c| c.is_finite()));
}

/// Exact `F_R(q)` for the subtree rooted at `id`, by recursion.
fn exact_node_density(tree: &KdTree, kernel: &Kernel, id: NodeId, q: &[f64]) -> f64 {
    let node = tree.node(id);
    match node.kind {
        NodeKind::Internal { left, right } => {
            exact_node_density(tree, kernel, left, q) + exact_node_density(tree, kernel, right, q)
        }
        NodeKind::Leaf { .. } => tree
            .leaf_points(id)
            .map(|(p, w)| {
                let d2: f64 = p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
                w * kernel.eval_dist2(d2)
            })
            .sum(),
    }
}

/// Satellite 4: randomized property `LB_R(q) ≤ F_R(q) ≤ UB_R(q)` for
/// every QUAD bound variant, on every node of trees over degenerate
/// data, at seeded random query points. Both kernel branches (squared-
/// distance Gaussian and distance-argument Epanechnikov) are covered.
#[test]
fn bounds_bracket_truth_on_degenerate_data() {
    let mut rng = StdRng::seed_from_u64(2026);
    let kernels: [fn(&PointSet) -> Kernel; 2] = [
        |ps| safe_kernel(ps),
        |ps| {
            let g = safe_kernel(ps).gamma;
            Kernel::new(kdv_core::kernel::KernelType::Epanechnikov, g)
        },
    ];
    for (name, points) in degenerate_sets() {
        for make_kernel in kernels {
            let kernel = make_kernel(&points);
            let tree = KdTree::try_build_default(&points).expect("finite input");
            for _ in 0..25 {
                let q = [rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)];
                for family in BoundFamily::ALL {
                    tree.for_each_node(|id, node| {
                        let b = node_bounds(&kernel, family, &node.stats, &node.mbr, &q);
                        let f = exact_node_density(&tree, &kernel, id, &q);
                        let tol = 1e-9 * (1.0 + f.abs());
                        assert!(
                            b.lb <= f + tol && f <= b.ub + tol,
                            "{name}/{family:?}/{:?}: node {id:?} bound \
                             [{}, {}] misses F_R = {f} at q = {q:?}",
                            kernel.ty,
                            b.lb,
                            b.ub
                        );
                    });
                }
            }
        }
    }
}

/// The same property end-to-end: the refinement bracket of every bound
/// family contains the exact density on degenerate data.
#[test]
fn refinement_brackets_truth_for_all_families() {
    let mut rng = StdRng::seed_from_u64(77);
    for (name, points) in degenerate_sets() {
        let kernel = safe_kernel(&points);
        let tree = KdTree::try_build_default(&points).expect("finite input");
        let exact = ExactScan::new(&points, kernel);
        for _ in 0..20 {
            let q = [rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)];
            let f = exact.density(&q);
            for family in BoundFamily::ALL {
                let mut ev = RefineEvaluator::new(&tree, kernel, family);
                let (lb, ub) = ev.try_eval_eps_bounds(&q, 0.05).expect("valid query");
                let tol = 1e-9 * (1.0 + f.abs());
                assert!(
                    lb <= f + tol && f <= ub + tol,
                    "{name}/{family:?}: [{lb}, {ub}] misses F = {f} at {q:?}"
                );
            }
        }
    }
}

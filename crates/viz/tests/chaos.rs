//! Chaos suite: the engine under injected faults (robustness
//! tentpole).
//!
//! Every test drives [`kdv_telemetry::FaultProbe`] or a poisoned
//! evaluator against the real refinement engine and renderers, and
//! asserts the contract of the robustness work: the pipeline
//! **terminates with correct-or-flagged output** under every injected
//! fault — forced bound resyncs change nothing, slow nodes degrade a
//! deadline-bounded render instead of hanging it, and a poisoned bound
//! evaluation costs one band retry, never the render.

use kdv_core::bandwidth::scott_gamma;
use kdv_core::bounds::BoundFamily;
use kdv_core::engine::{RefineEvaluator, RenderBudget};
use kdv_core::kernel::Kernel;
use kdv_core::method::{ExactScan, PixelEvaluator};
use kdv_core::raster::RasterSpec;
use kdv_data::Dataset;
use kdv_geom::PointSet;
use kdv_index::KdTree;
use kdv_telemetry::fault::POISON_MSG;
use kdv_telemetry::{FaultPlan, FaultProbe};
use kdv_viz::parallel::try_render_eps_parallel;
use kdv_viz::render::render_eps;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

struct Fixture {
    points: PointSet,
    kernel: Kernel,
    raster: RasterSpec,
}

fn fixture(n: usize, seed: u64) -> Fixture {
    let points = Dataset::Crime.generate(n, seed);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let raster = RasterSpec::try_covering(&points, 14, 10, 0.05).expect("finite input");
    Fixture {
        points,
        kernel,
        raster,
    }
}

/// Forced resyncs are semantically idempotent: a resync swaps the
/// incrementally-tracked bound sums for freshly recomputed ones, which
/// may shift a result by a few ulps of accumulated rounding — but the
/// faulted render must stay inside the ε contract, stay within the
/// engine's own rounding envelope of the unfaulted render, and be
/// bit-for-bit deterministic for a given fault schedule.
#[test]
fn forced_resyncs_preserve_guarantees_and_determinism() {
    let fx = fixture(2500, 11);
    let tree = KdTree::try_build_default(&fx.points).expect("finite input");
    let mut clean_ev = RefineEvaluator::new(&tree, fx.kernel, BoundFamily::Quadratic);
    let clean = render_eps(&mut clean_ev, &fx.raster, 0.01);
    let exact = ExactScan::new(&fx.points, fx.kernel);

    for seed in [0u64, 1, 99] {
        let run = || {
            let mut probe = FaultProbe::new(FaultPlan {
                seed,
                resync_every: Some(2),
                ..FaultPlan::default()
            });
            let mut ev = RefineEvaluator::new(&tree, fx.kernel, BoundFamily::Quadratic);
            let mut out = Vec::new();
            for row in 0..fx.raster.height() {
                for col in 0..fx.raster.width() {
                    out.push(ev.eval_eps_with(&fx.raster.pixel_center(col, row), 0.01, &mut probe));
                }
            }
            (out, probe.forced_resyncs)
        };
        let (a, fired) = run();
        let (b, _) = run();
        assert!(fired > 0, "fault never fired: proves nothing");
        for (i, (&va, &vb)) in a.iter().zip(&b).enumerate() {
            let (col, row) = (i as u32 % fx.raster.width(), i as u32 / fx.raster.width());
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "seed {seed}: same schedule, different output at ({col},{row})"
            );
            let f = exact.density(&fx.raster.pixel_center(col, row));
            assert!(
                (va - f).abs() <= 0.5 * 0.01 * f.abs() + 1e-12,
                "seed {seed}: resync broke the ε contract at ({col},{row}): {va} vs {f}"
            );
            let c = clean.get(col, row);
            assert!(
                (va - c).abs() <= 1e-9 * (1.0 + c.abs()),
                "seed {seed}: drift beyond rounding at ({col},{row}): {va} vs clean {c}"
            );
        }
    }
}

/// Slow nodes + a deadline: the render terminates promptly, flags
/// exhaustion, and its best-effort brackets still contain the truth.
#[test]
fn slow_nodes_degrade_deadline_renders_instead_of_hanging() {
    let fx = fixture(4000, 23);
    let tree = KdTree::try_build_default(&fx.points).expect("finite input");
    let exact = ExactScan::new(&fx.points, fx.kernel);
    let mut probe = FaultProbe::new(FaultPlan {
        seed: 5,
        slow_pop_every: Some(1),
        slow_pop_sleep_us: 100,
        ..FaultPlan::default()
    });
    let mut ev = RefineEvaluator::new(&tree, fx.kernel, BoundFamily::Quadratic);
    // A deadline far below what the injected sleeps allow, and an ε
    // far below what the deadline allows: exhaustion is certain.
    let mut budget = RenderBudget::unlimited().with_deadline(Duration::from_millis(20));
    let mut exhausted_pixels = 0u64;
    for row in 0..fx.raster.height() {
        for col in 0..fx.raster.width() {
            let q = fx.raster.pixel_center(col, row);
            let e = ev
                .eval_eps_budgeted_with(&q, 1e-12, &mut budget, &mut probe)
                .expect("valid query");
            let f = exact.density(&q);
            let tol = 1e-9 * (1.0 + f.abs());
            assert!(
                e.lb <= f + tol && f <= e.ub + tol,
                "bracket [{}, {}] misses F = {f} at ({col},{row})",
                e.lb,
                e.ub
            );
            assert!(
                (e.estimate() - f).abs() <= e.half_gap() + tol,
                "error map does not cover the estimate's true error"
            );
            if e.exhausted {
                exhausted_pixels += 1;
            }
        }
    }
    assert!(budget.is_exhausted(), "deadline must trip");
    assert!(exhausted_pixels > 0, "no pixel was flagged degraded");
    assert!(
        probe.injected_sleeps > 0,
        "fault never fired: proves nothing"
    );
}

/// Wraps a real evaluator with a poisoned fault probe. The probe
/// panics after `poison_bound_after` node-bound evaluations.
struct PoisonedEvaluator<'a> {
    inner: RefineEvaluator<'a>,
    probe: FaultProbe,
}

impl PixelEvaluator for PoisonedEvaluator<'_> {
    fn eval_eps(&mut self, q: &[f64], eps: f64) -> f64 {
        self.inner.eval_eps_with(q, eps, &mut self.probe)
    }
    fn eval_tau(&mut self, q: &[f64], tau: f64) -> bool {
        self.inner.eval_tau_with(q, tau, &mut self.probe)
    }
}

/// A poisoned bound evaluation in one worker: the parallel renderer
/// retries the band sequentially and the output is exactly the
/// unfaulted render.
#[test]
fn poisoned_bound_evaluation_costs_one_band_retry() {
    let fx = fixture(2000, 31);
    let tree = KdTree::try_build_default(&fx.points).expect("finite input");
    let mut seq_ev = RefineEvaluator::new(&tree, fx.kernel, BoundFamily::Quadratic);
    let seq = render_eps(&mut seq_ev, &fx.raster, 0.01);

    let instances = AtomicUsize::new(0);
    let outcome = try_render_eps_parallel(
        || {
            // Only the first-constructed evaluator is poisoned; the
            // retry (and the other workers) run clean.
            let poisoned = instances.fetch_add(1, Ordering::SeqCst) == 0;
            PoisonedEvaluator {
                inner: RefineEvaluator::new(&tree, fx.kernel, BoundFamily::Quadratic),
                probe: FaultProbe::new(FaultPlan {
                    seed: 3,
                    poison_bound_after: poisoned.then_some(7),
                    ..FaultPlan::default()
                }),
            }
        },
        &fx.raster,
        0.01,
        3,
    )
    .expect("retry must recover the poisoned band");
    assert_eq!(outcome.band_retries, 1, "exactly one band was poisoned");
    assert_eq!(outcome.grid, seq, "retried render must match the clean one");
}

/// A *deterministically* poisoned evaluator (every instance fails) is
/// reported as a structured error carrying the injected panic payload
/// — never swallowed, never an abort.
#[test]
fn deterministic_poison_is_flagged_with_the_injected_message() {
    let fx = fixture(800, 37);
    let tree = KdTree::try_build_default(&fx.points).expect("finite input");
    let (err, payload) = try_render_eps_parallel(
        || PoisonedEvaluator {
            inner: RefineEvaluator::new(&tree, fx.kernel, BoundFamily::Quadratic),
            probe: FaultProbe::new(FaultPlan {
                seed: 13,
                poison_bound_after: Some(0),
                ..FaultPlan::default()
            }),
        },
        &fx.raster,
        0.01,
        2,
    )
    .expect_err("all-instances-poisoned cannot succeed");
    assert!(matches!(err, kdv_core::KdvError::WorkerPanicked { .. }));
    let msg = payload
        .as_ref()
        .and_then(|p| p.downcast_ref::<String>())
        .cloned()
        .expect("panic payload preserved");
    assert!(
        msg.starts_with(POISON_MSG),
        "payload is the injected fault, not a masked real bug: {msg:?}"
    );
}

/// The headline chaos sweep: under *every* fault plan in a seeded
/// grid — forced resyncs, slow pops, tiny work caps, and their
/// combinations — every query terminates with output that is either
/// correct (unexhausted, within ε) or flagged (exhausted, bracket
/// still containing the truth).
#[test]
fn every_injected_fault_terminates_correct_or_flagged() {
    let fx = fixture(1500, 41);
    let tree = KdTree::try_build_default(&fx.points).expect("finite input");
    let exact = ExactScan::new(&fx.points, fx.kernel);
    let eps = 0.01;

    let mut plans = Vec::new();
    for seed in [1u64, 2, 3] {
        for resync_every in [None, Some(2), Some(7)] {
            for slow_pop_every in [None, Some(3)] {
                plans.push(FaultPlan {
                    seed,
                    resync_every,
                    slow_pop_every,
                    slow_pop_sleep_us: 0, // schedule only: keep the sweep fast
                    ..FaultPlan::default()
                });
            }
        }
    }
    let caps = [Some(40u64), Some(4000), None];

    let mut flagged = 0u64;
    let mut correct = 0u64;
    for plan in plans {
        for cap in caps {
            let mut probe = FaultProbe::new(plan);
            let mut ev = RefineEvaluator::new(&tree, fx.kernel, BoundFamily::Quadratic);
            let mut budget = match cap {
                Some(units) => RenderBudget::unlimited().with_max_work(units),
                None => RenderBudget::unlimited(),
            };
            for (col, row) in [(0u32, 0u32), (7, 5), (13, 9)] {
                let q = fx.raster.pixel_center(col, row);
                let e = ev
                    .eval_eps_budgeted_with(&q, eps, &mut budget, &mut probe)
                    .expect("valid query");
                let f = exact.density(&q);
                let tol = 1e-9 * (1.0 + f.abs());
                assert!(
                    e.lb <= f + tol && f <= e.ub + tol,
                    "{plan:?} cap {cap:?}: bracket [{}, {}] misses F = {f}",
                    e.lb,
                    e.ub
                );
                if e.exhausted {
                    flagged += 1; // flagged: budget ran out, bracket valid
                } else {
                    correct += 1; // correct: the ε contract held
                    assert!(
                        (e.estimate() - f).abs() <= 0.5 * eps * f.abs() + tol,
                        "{plan:?} cap {cap:?}: unflagged result misses ε contract"
                    );
                }
            }
        }
    }
    assert!(flagged > 0, "the tiny cap never tripped: proves nothing");
    assert!(correct > 0, "no plan completed cleanly: proves nothing");
}

//! Full-raster rendering: εKDV density grids and τKDV binary masks.

use crate::progressive::progressive_order;
use kdv_core::engine::{RefineEvaluator, RenderBudget};
use kdv_core::error::KdvError;
use kdv_core::method::PixelEvaluator;
use kdv_core::raster::{DensityGrid, RasterSpec};
use std::time::{Duration, Instant};

/// A row-major grid of booleans (τKDV output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryGrid {
    width: u32,
    height: u32,
    values: Vec<bool>,
}

impl BinaryGrid {
    /// Creates an all-false grid.
    pub fn falses(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            values: vec![false; width as usize * height as usize],
        }
    }

    /// Grid width.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Value at `(col, row)`.
    #[inline]
    pub fn get(&self, col: u32, row: u32) -> bool {
        self.values[row as usize * self.width as usize + col as usize]
    }

    /// Sets value at `(col, row)`.
    #[inline]
    pub fn set(&mut self, col: u32, row: u32, v: bool) {
        self.values[row as usize * self.width as usize + col as usize] = v;
    }

    /// Number of `true` (hot) pixels.
    pub fn count_hot(&self) -> usize {
        self.values.iter().filter(|&&b| b).count()
    }

    /// Fraction of pixels that differ from `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn disagreement(&self, other: &BinaryGrid) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let diff = self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a != b)
            .count();
        diff as f64 / self.values.len() as f64
    }
}

/// Renders a full εKDV density grid in row-major order.
pub fn render_eps(ev: &mut dyn PixelEvaluator, raster: &RasterSpec, eps: f64) -> DensityGrid {
    let mut grid = DensityGrid::zeros(raster.width(), raster.height());
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            grid.set(col, row, ev.eval_eps(&q, eps));
        }
    }
    grid
}

/// Renders a full τKDV binary mask in row-major order.
pub fn render_tau(ev: &mut dyn PixelEvaluator, raster: &RasterSpec, tau: f64) -> BinaryGrid {
    let mut grid = BinaryGrid::falses(raster.width(), raster.height());
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            grid.set(col, row, ev.eval_tau(&q, tau));
        }
    }
    grid
}

/// Outcome of a budget-capped εKDV render (graceful degradation).
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetedRender {
    /// Density estimates: converged pixels hold their ε-accurate value,
    /// degraded pixels the best-effort bracket midpoint.
    pub grid: DensityGrid,
    /// Per-pixel *achieved*-error map: a certified upper bound on
    /// `|grid(q) − F(q)|` (the bracket half-gap at termination). Always
    /// populated; converged pixels simply carry tiny values.
    pub error_map: DensityGrid,
    /// Pixels whose refinement was cut short by the budget.
    pub degraded_pixels: u64,
}

impl BudgetedRender {
    /// Whether every pixel met the query's own stop rule.
    pub fn is_complete(&self) -> bool {
        self.degraded_pixels == 0
    }
}

/// Outcome of a budget-capped τKDV render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetedTauRender {
    /// The classification mask; undecided pixels hold the best-effort
    /// midpoint guess.
    pub mask: BinaryGrid,
    /// Marks pixels whose bracket had not cleared τ when the budget ran
    /// out — only those may be misclassified.
    pub undecided_map: BinaryGrid,
    /// Number of undecided pixels.
    pub undecided: u64,
}

/// Renders εKDV under a [`RenderBudget`]: refinement stops per pixel
/// when its ε contract holds *or* the (render-wide) budget runs out,
/// whichever comes first. Never panics, never spins — an exhausted
/// budget degrades every remaining pixel to its root-bound midpoint.
///
/// Takes a concrete [`RefineEvaluator`] because degradation is a
/// bound-bracket notion: the error map is the certified half-gap.
pub fn render_eps_budgeted(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: &mut RenderBudget,
) -> Result<BudgetedRender, KdvError> {
    let mut grid = DensityGrid::zeros(raster.width(), raster.height());
    let mut error_map = DensityGrid::zeros(raster.width(), raster.height());
    let mut degraded_pixels = 0u64;
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let e = ev.eval_eps_budgeted(&q, eps, budget)?;
            grid.set(col, row, e.estimate());
            error_map.set(col, row, e.half_gap());
            degraded_pixels += u64::from(e.exhausted);
        }
    }
    Ok(BudgetedRender {
        grid,
        error_map,
        degraded_pixels,
    })
}

/// Renders τKDV under a [`RenderBudget`] (see
/// [`render_eps_budgeted`]); undecided pixels are flagged rather than
/// silently guessed.
pub fn render_tau_budgeted(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    tau: f64,
    budget: &mut RenderBudget,
) -> Result<BudgetedTauRender, KdvError> {
    let mut mask = BinaryGrid::falses(raster.width(), raster.height());
    let mut undecided_map = BinaryGrid::falses(raster.width(), raster.height());
    let mut undecided = 0u64;
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let t = ev.eval_tau_budgeted(&q, tau, budget)?;
            mask.set(col, row, t.hot);
            undecided_map.set(col, row, !t.decided);
            undecided += u64::from(!t.decided);
        }
    }
    Ok(BudgetedTauRender {
        mask,
        undecided_map,
        undecided,
    })
}

/// Outcome of a progressive render.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveRender {
    /// The (possibly partial) density grid; unevaluated pixels carry
    /// their enclosing block's representative value, so the grid is
    /// always fully painted (§6).
    pub grid: DensityGrid,
    /// Number of pixels actually evaluated before the deadline.
    pub evaluated: usize,
    /// Whether every pixel was evaluated exactly.
    pub complete: bool,
}

/// Renders εKDV in the §6 progressive order, stopping after `budget`
/// (the "user terminates the process at time t" of Fig 20/21).
///
/// Every prefix paints the full raster: step values fill their whole
/// quad-tree block and finer steps overwrite sub-blocks.
pub fn render_eps_progressive(
    ev: &mut dyn PixelEvaluator,
    raster: &RasterSpec,
    eps: f64,
    budget: Option<Duration>,
) -> ProgressiveRender {
    let steps = progressive_order(raster.width(), raster.height());
    let mut canvas = ProgressiveCanvas::new(raster.width(), raster.height());
    let start = Instant::now();
    let mut evaluated = 0usize;
    for step in &steps {
        if let Some(b) = budget {
            if evaluated > 0 && start.elapsed() >= b {
                break;
            }
        }
        let q = raster.pixel_center(step.col, step.row);
        let v = ev.eval_eps(&q, eps);
        evaluated += 1;
        canvas.apply(step, v);
    }
    ProgressiveRender {
        grid: canvas.into_grid(),
        complete: evaluated == steps.len(),
        evaluated,
    }
}

/// Progressive rendering under a [`RenderBudget`] — work-unit and
/// deadline caps instead of (or alongside) the wall-clock `Duration` of
/// [`render_eps_progressive`]. The coarse-to-fine order makes this the
/// natural degradation mode: exhaustion stops descent and the canvas
/// stays fully painted at the coarsest completed level, and pixels
/// evaluated *while* the budget ran out degrade to bracket midpoints
/// individually.
pub fn render_eps_progressive_budgeted(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: &mut RenderBudget,
) -> Result<ProgressiveRender, KdvError> {
    let steps = progressive_order(raster.width(), raster.height());
    let mut canvas = ProgressiveCanvas::new(raster.width(), raster.height());
    let mut evaluated = 0usize;
    for step in &steps {
        if evaluated > 0 && budget.is_exhausted() {
            break;
        }
        let q = raster.pixel_center(step.col, step.row);
        let e = ev.eval_eps_budgeted(&q, eps, budget)?;
        evaluated += 1;
        canvas.apply(step, e.estimate());
    }
    Ok(ProgressiveRender {
        grid: canvas.into_grid(),
        complete: evaluated == steps.len() && !budget.is_exhausted(),
        evaluated,
    })
}

/// Incremental canvas for progressive rendering.
///
/// Applying a step paints its block with the representative's value —
/// except over pixels whose *own* evaluation already happened at a
/// coarser level, which keep their exact values. After all steps, every
/// pixel holds exactly its own evaluated density.
#[derive(Debug, Clone)]
pub struct ProgressiveCanvas {
    grid: DensityGrid,
    evaluated: Vec<bool>,
}

impl ProgressiveCanvas {
    /// Creates an empty canvas.
    pub fn new(width: u32, height: u32) -> Self {
        Self {
            grid: DensityGrid::zeros(width, height),
            evaluated: vec![false; width as usize * height as usize],
        }
    }

    /// Applies one progressive step with its evaluated density.
    pub fn apply(&mut self, step: &crate::progressive::ProgressiveStep, value: f64) {
        let width = self.grid.width() as usize;
        let (x0, y0) = step.block_origin;
        let (w, h) = step.block_size;
        for row in y0..y0 + h {
            for col in x0..x0 + w {
                if !self.evaluated[row as usize * width + col as usize] {
                    self.grid.set(col, row, value);
                }
            }
        }
        // The representative's value is final; mark it after the fill so
        // the loop above paints it too.
        self.grid.set(step.col, step.row, value);
        self.evaluated[step.row as usize * width + step.col as usize] = true;
    }

    /// Read access to the (partial) grid.
    pub fn grid(&self) -> &DensityGrid {
        &self.grid
    }

    /// Consumes the canvas, returning the grid.
    pub fn into_grid(self) -> DensityGrid {
        self.grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::bandwidth::scott_gamma;
    use kdv_core::bounds::BoundFamily;
    use kdv_core::engine::RefineEvaluator;
    use kdv_core::kernel::Kernel;
    use kdv_core::method::ExactScan;
    use kdv_data::Dataset;
    use kdv_index::KdTree;

    fn setup() -> (kdv_geom::PointSet, Kernel, RasterSpec) {
        let ps = Dataset::Crime.generate(4000, 77);
        let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
        let raster = RasterSpec::covering(&ps, 24, 18, 0.05);
        (ps, kernel, raster)
    }

    #[test]
    fn eps_render_matches_exact_within_tolerance() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut exact = ExactScan::new(&ps, kernel);
        let eps = 0.01;
        let approx = render_eps(&mut quad, &raster, eps);
        let truth = render_eps(&mut exact, &raster, eps);
        assert!(approx.mean_relative_error(&truth) <= eps);
    }

    #[test]
    fn tau_render_agrees_with_exact() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut exact = ExactScan::new(&ps, kernel);
        // A mid-range threshold away from any single pixel's F (margin
        // comes from using a quantile of the exact grid).
        let truth_grid = render_eps(&mut exact, &raster, 0.01);
        let (lo, hi) = truth_grid.min_max().expect("non-empty");
        let tau = lo + 0.4 * (hi - lo);
        let mask_quad = render_tau(&mut quad, &raster, tau);
        let mask_exact = render_tau(&mut ExactScan::new(&ps, kernel), &raster, tau);
        assert!(
            mask_quad.disagreement(&mask_exact) < 0.01,
            "τ masks disagree on too many pixels"
        );
        assert!(mask_quad.count_hot() > 0, "threshold should mark hotspots");
        assert!(mask_quad.count_hot() < raster.num_pixels());
    }

    #[test]
    fn unbudgeted_progressive_equals_row_major() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut a = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut b = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let full = render_eps(&mut a, &raster, 0.01);
        let prog = render_eps_progressive(&mut b, &raster, 0.01, None);
        assert!(prog.complete);
        assert_eq!(prog.evaluated, raster.num_pixels());
        // Same evaluator determinism → identical grids.
        assert_eq!(prog.grid, full);
    }

    #[test]
    fn budgeted_progressive_paints_every_pixel() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let prog = render_eps_progressive(&mut ev, &raster, 0.01, Some(Duration::from_micros(200)));
        assert!(prog.evaluated >= 1);
        // Even a tiny budget yields a fully-painted (coarse) grid whose
        // error against exact is finite and reasonable.
        let mut exact = ExactScan::new(&ps, kernel);
        let truth = render_eps(&mut exact, &raster, 0.01);
        let err = prog.grid.mean_relative_error(&truth);
        assert!(err.is_finite());
    }

    #[test]
    fn progressive_error_decreases_with_budget() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut exact = ExactScan::new(&ps, kernel);
        let truth = render_eps(&mut exact, &raster, 0.01);

        // Drive by evaluated-pixel prefixes rather than wall clock for
        // determinism: emulate budgets via step-limited replays.
        let steps = progressive_order(raster.width(), raster.height());
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut errors = Vec::new();
        for limit in [1usize, 16, 64, steps.len()] {
            let mut canvas = ProgressiveCanvas::new(raster.width(), raster.height());
            for step in &steps[..limit] {
                let q = raster.pixel_center(step.col, step.row);
                let v = kdv_core::method::PixelEvaluator::eval_eps(&mut ev, &q, 0.01);
                canvas.apply(step, v);
            }
            errors.push(canvas.grid().mean_relative_error(&truth));
        }
        assert!(
            errors[errors.len() - 1] <= errors[0],
            "finer prefixes must not be worse: {errors:?}"
        );
        assert!(errors[errors.len() - 1] <= 0.01, "full render meets ε");
    }

    #[test]
    fn unlimited_budgeted_render_matches_plain() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut a = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut b = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let plain = render_eps(&mut a, &raster, 0.01);
        let mut budget = RenderBudget::unlimited();
        let out = render_eps_budgeted(&mut b, &raster, 0.01, &mut budget).expect("valid input");
        assert!(out.is_complete());
        assert_eq!(out.grid, plain, "unlimited budget must not change output");
        // Error map is populated even for converged pixels, and honors ε.
        for row in 0..raster.height() {
            for col in 0..raster.width() {
                let err = out.error_map.get(col, row);
                let v = out.grid.get(col, row);
                assert!(err >= 0.0 && err <= 0.5 * 0.01 * v.abs() + 1e-12);
            }
        }
    }

    #[test]
    fn exhausted_budget_degrades_but_error_map_upper_bounds_truth() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut exact = ExactScan::new(&ps, kernel);
        let truth = render_eps(&mut exact, &raster, 0.01);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        // ~3 work units per pixel: enough for root bounds, far short of
        // ε = 1e-6 convergence.
        let cap = 3 * raster.num_pixels() as u64;
        let mut budget = RenderBudget::unlimited().with_max_work(cap);
        let out = render_eps_budgeted(&mut ev, &raster, 1e-6, &mut budget).expect("valid input");
        assert!(out.degraded_pixels > 0, "tiny budget must degrade pixels");
        assert!(budget.is_exhausted());
        for row in 0..raster.height() {
            for col in 0..raster.width() {
                let v = out.grid.get(col, row);
                let err = out.error_map.get(col, row);
                let f = truth.get(col, row);
                assert!(
                    (v - f).abs() <= err + 1e-9 * (1.0 + f.abs()),
                    "({col},{row}): |{v} − {f}| exceeds certified error {err}"
                );
            }
        }
    }

    #[test]
    fn budgeted_tau_flags_undecided_pixels() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut exact = ExactScan::new(&ps, kernel);
        let truth = render_eps(&mut exact, &raster, 0.01);
        let (lo, hi) = truth.min_max().expect("non-empty");
        let tau = lo + 0.4 * (hi - lo);

        // Unlimited: everything decided and matching the plain mask.
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut unlimited = RenderBudget::unlimited();
        let full = render_tau_budgeted(&mut ev, &raster, tau, &mut unlimited).expect("valid");
        assert_eq!(full.undecided, 0);
        let plain = render_tau(
            &mut RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            tau,
        );
        assert_eq!(full.mask, plain);

        // Tiny budget: every *decided* pixel still agrees with truth.
        let mut tiny = RenderBudget::unlimited().with_max_work(raster.num_pixels() as u64);
        let mut ev2 = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let out = render_tau_budgeted(&mut ev2, &raster, tau, &mut tiny).expect("valid");
        for row in 0..raster.height() {
            for col in 0..raster.width() {
                let f = truth.get(col, row);
                // Exactly-at-τ pixels depend on summation order; every
                // other decided pixel must match the exact answer.
                if !out.undecided_map.get(col, row) && (f - tau).abs() > 1e-9 * (1.0 + f.abs()) {
                    assert_eq!(
                        out.mask.get(col, row),
                        f >= tau,
                        "decided pixel ({col},{row}) must be correct"
                    );
                }
            }
        }
    }

    #[test]
    fn progressive_budgeted_paints_fully_under_tiny_budget() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut tiny = RenderBudget::unlimited().with_max_work(50);
        let out = render_eps_progressive_budgeted(&mut ev, &raster, 0.01, &mut tiny)
            .expect("valid input");
        assert!(!out.complete);
        assert!(out.evaluated >= 1);
        assert!(out.grid.min_max().is_some(), "grid fully painted");

        let mut ev2 = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut unlimited = RenderBudget::unlimited();
        let full = render_eps_progressive_budgeted(&mut ev2, &raster, 0.01, &mut unlimited)
            .expect("valid input");
        assert!(full.complete);
        assert_eq!(full.evaluated, raster.num_pixels());
    }

    #[test]
    fn budgeted_render_rejects_bad_eps() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut budget = RenderBudget::unlimited();
        assert!(render_eps_budgeted(&mut ev, &raster, 0.0, &mut budget).is_err());
        assert!(render_eps_budgeted(&mut ev, &raster, f64::NAN, &mut budget).is_err());
        assert!(render_tau_budgeted(&mut ev, &raster, -1.0, &mut budget).is_err());
    }

    #[test]
    fn binary_grid_disagreement_counts() {
        let mut a = BinaryGrid::falses(2, 2);
        let b = BinaryGrid::falses(2, 2);
        a.set(0, 0, true);
        assert!((a.disagreement(&b) - 0.25).abs() < 1e-12);
        assert_eq!(a.count_hot(), 1);
    }
}

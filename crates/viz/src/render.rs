//! Full-raster rendering: εKDV density grids and τKDV binary masks.

use crate::progressive::progressive_order;
use kdv_core::method::PixelEvaluator;
use kdv_core::raster::{DensityGrid, RasterSpec};
use std::time::{Duration, Instant};

/// A row-major grid of booleans (τKDV output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryGrid {
    width: u32,
    height: u32,
    values: Vec<bool>,
}

impl BinaryGrid {
    /// Creates an all-false grid.
    pub fn falses(width: u32, height: u32) -> Self {
        Self {
            width,
            height,
            values: vec![false; width as usize * height as usize],
        }
    }

    /// Grid width.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Value at `(col, row)`.
    #[inline]
    pub fn get(&self, col: u32, row: u32) -> bool {
        self.values[row as usize * self.width as usize + col as usize]
    }

    /// Sets value at `(col, row)`.
    #[inline]
    pub fn set(&mut self, col: u32, row: u32, v: bool) {
        self.values[row as usize * self.width as usize + col as usize] = v;
    }

    /// Number of `true` (hot) pixels.
    pub fn count_hot(&self) -> usize {
        self.values.iter().filter(|&&b| b).count()
    }

    /// Fraction of pixels that differ from `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn disagreement(&self, other: &BinaryGrid) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let diff = self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a != b)
            .count();
        diff as f64 / self.values.len() as f64
    }
}

/// Renders a full εKDV density grid in row-major order.
pub fn render_eps(ev: &mut dyn PixelEvaluator, raster: &RasterSpec, eps: f64) -> DensityGrid {
    let mut grid = DensityGrid::zeros(raster.width(), raster.height());
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            grid.set(col, row, ev.eval_eps(&q, eps));
        }
    }
    grid
}

/// Renders a full τKDV binary mask in row-major order.
pub fn render_tau(ev: &mut dyn PixelEvaluator, raster: &RasterSpec, tau: f64) -> BinaryGrid {
    let mut grid = BinaryGrid::falses(raster.width(), raster.height());
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            grid.set(col, row, ev.eval_tau(&q, tau));
        }
    }
    grid
}

/// Outcome of a progressive render.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveRender {
    /// The (possibly partial) density grid; unevaluated pixels carry
    /// their enclosing block's representative value, so the grid is
    /// always fully painted (§6).
    pub grid: DensityGrid,
    /// Number of pixels actually evaluated before the deadline.
    pub evaluated: usize,
    /// Whether every pixel was evaluated exactly.
    pub complete: bool,
}

/// Renders εKDV in the §6 progressive order, stopping after `budget`
/// (the "user terminates the process at time t" of Fig 20/21).
///
/// Every prefix paints the full raster: step values fill their whole
/// quad-tree block and finer steps overwrite sub-blocks.
pub fn render_eps_progressive(
    ev: &mut dyn PixelEvaluator,
    raster: &RasterSpec,
    eps: f64,
    budget: Option<Duration>,
) -> ProgressiveRender {
    let steps = progressive_order(raster.width(), raster.height());
    let mut canvas = ProgressiveCanvas::new(raster.width(), raster.height());
    let start = Instant::now();
    let mut evaluated = 0usize;
    for step in &steps {
        if let Some(b) = budget {
            if evaluated > 0 && start.elapsed() >= b {
                break;
            }
        }
        let q = raster.pixel_center(step.col, step.row);
        let v = ev.eval_eps(&q, eps);
        evaluated += 1;
        canvas.apply(step, v);
    }
    ProgressiveRender {
        grid: canvas.into_grid(),
        complete: evaluated == steps.len(),
        evaluated,
    }
}

/// Incremental canvas for progressive rendering.
///
/// Applying a step paints its block with the representative's value —
/// except over pixels whose *own* evaluation already happened at a
/// coarser level, which keep their exact values. After all steps, every
/// pixel holds exactly its own evaluated density.
#[derive(Debug, Clone)]
pub struct ProgressiveCanvas {
    grid: DensityGrid,
    evaluated: Vec<bool>,
}

impl ProgressiveCanvas {
    /// Creates an empty canvas.
    pub fn new(width: u32, height: u32) -> Self {
        Self {
            grid: DensityGrid::zeros(width, height),
            evaluated: vec![false; width as usize * height as usize],
        }
    }

    /// Applies one progressive step with its evaluated density.
    pub fn apply(&mut self, step: &crate::progressive::ProgressiveStep, value: f64) {
        let width = self.grid.width() as usize;
        let (x0, y0) = step.block_origin;
        let (w, h) = step.block_size;
        for row in y0..y0 + h {
            for col in x0..x0 + w {
                if !self.evaluated[row as usize * width + col as usize] {
                    self.grid.set(col, row, value);
                }
            }
        }
        // The representative's value is final; mark it after the fill so
        // the loop above paints it too.
        self.grid.set(step.col, step.row, value);
        self.evaluated[step.row as usize * width + step.col as usize] = true;
    }

    /// Read access to the (partial) grid.
    pub fn grid(&self) -> &DensityGrid {
        &self.grid
    }

    /// Consumes the canvas, returning the grid.
    pub fn into_grid(self) -> DensityGrid {
        self.grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::bandwidth::scott_gamma;
    use kdv_core::bounds::BoundFamily;
    use kdv_core::engine::RefineEvaluator;
    use kdv_core::kernel::Kernel;
    use kdv_core::method::ExactScan;
    use kdv_data::Dataset;
    use kdv_index::KdTree;

    fn setup() -> (kdv_geom::PointSet, Kernel, RasterSpec) {
        let ps = Dataset::Crime.generate(4000, 77);
        let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
        let raster = RasterSpec::covering(&ps, 24, 18, 0.05);
        (ps, kernel, raster)
    }

    #[test]
    fn eps_render_matches_exact_within_tolerance() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut exact = ExactScan::new(&ps, kernel);
        let eps = 0.01;
        let approx = render_eps(&mut quad, &raster, eps);
        let truth = render_eps(&mut exact, &raster, eps);
        assert!(approx.mean_relative_error(&truth) <= eps);
    }

    #[test]
    fn tau_render_agrees_with_exact() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut quad = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut exact = ExactScan::new(&ps, kernel);
        // A mid-range threshold away from any single pixel's F (margin
        // comes from using a quantile of the exact grid).
        let truth_grid = render_eps(&mut exact, &raster, 0.01);
        let (lo, hi) = truth_grid.min_max().expect("non-empty");
        let tau = lo + 0.4 * (hi - lo);
        let mask_quad = render_tau(&mut quad, &raster, tau);
        let mask_exact = render_tau(&mut ExactScan::new(&ps, kernel), &raster, tau);
        assert!(
            mask_quad.disagreement(&mask_exact) < 0.01,
            "τ masks disagree on too many pixels"
        );
        assert!(mask_quad.count_hot() > 0, "threshold should mark hotspots");
        assert!(mask_quad.count_hot() < raster.num_pixels());
    }

    #[test]
    fn unbudgeted_progressive_equals_row_major() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut a = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut b = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let full = render_eps(&mut a, &raster, 0.01);
        let prog = render_eps_progressive(&mut b, &raster, 0.01, None);
        assert!(prog.complete);
        assert_eq!(prog.evaluated, raster.num_pixels());
        // Same evaluator determinism → identical grids.
        assert_eq!(prog.grid, full);
    }

    #[test]
    fn budgeted_progressive_paints_every_pixel() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let prog = render_eps_progressive(&mut ev, &raster, 0.01, Some(Duration::from_micros(200)));
        assert!(prog.evaluated >= 1);
        // Even a tiny budget yields a fully-painted (coarse) grid whose
        // error against exact is finite and reasonable.
        let mut exact = ExactScan::new(&ps, kernel);
        let truth = render_eps(&mut exact, &raster, 0.01);
        let err = prog.grid.mean_relative_error(&truth);
        assert!(err.is_finite());
    }

    #[test]
    fn progressive_error_decreases_with_budget() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut exact = ExactScan::new(&ps, kernel);
        let truth = render_eps(&mut exact, &raster, 0.01);

        // Drive by evaluated-pixel prefixes rather than wall clock for
        // determinism: emulate budgets via step-limited replays.
        let steps = progressive_order(raster.width(), raster.height());
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut errors = Vec::new();
        for limit in [1usize, 16, 64, steps.len()] {
            let mut canvas = ProgressiveCanvas::new(raster.width(), raster.height());
            for step in &steps[..limit] {
                let q = raster.pixel_center(step.col, step.row);
                let v = kdv_core::method::PixelEvaluator::eval_eps(&mut ev, &q, 0.01);
                canvas.apply(step, v);
            }
            errors.push(canvas.grid().mean_relative_error(&truth));
        }
        assert!(
            errors[errors.len() - 1] <= errors[0],
            "finer prefixes must not be worse: {errors:?}"
        );
        assert!(errors[errors.len() - 1] <= 0.01, "full render meets ε");
    }

    #[test]
    fn binary_grid_disagreement_counts() {
        let mut a = BinaryGrid::falses(2, 2);
        let b = BinaryGrid::falses(2, 2);
        a.set(0, 0, true);
        assert!((a.disagreement(&b) - 0.25).abs() < 1e-12);
        assert_eq!(a.count_hot(), 1);
    }
}

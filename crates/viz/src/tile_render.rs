//! Tile-window rendering: the z/x/y slippy pyramid over a data window.
//!
//! A web map consumes a density field as a pyramid of fixed-size
//! square tiles: level `z` divides the base window into `2^z × 2^z`
//! tiles of `tile_size²` pixels each, addressed `(z, x, y)` with
//! `y = 0` at the **top** (matching both slippy-map convention and
//! [`RasterSpec`]'s row-0-on-top orientation). [`pyramid_raster`] maps
//! an address to the raster of exactly that window — via
//! [`RasterSpec::sub_window`], the same pixel→data-space arithmetic
//! the tiled τ renderer splits quadrants with — and the two
//! `render_tile_*` helpers produce colormapped tile images under a
//! per-request [`RenderBudget`], degrading to certified midpoints
//! instead of overrunning.

use crate::colormap::ColorMap;
use crate::image::RgbImage;
use crate::metered::{render_eps_budgeted_metered_probed, render_tau_budgeted_metered_probed};
use crate::render::BinaryGrid;
use kdv_core::engine::{NoProbe, Probe, RefineEvaluator, RenderBudget, TileEvaluator};
use kdv_core::error::KdvError;
use kdv_core::query::{validate_eps, validate_tau};
use kdv_core::raster::{DensityGrid, RasterSpec};
use kdv_telemetry::{RenderMetrics, TracingProbe};
use std::time::Instant;

/// Deepest zoom level a pyramid address may name. `tile_size << z`
/// must fit a `u32` raster dimension; 20 levels over a 256-px tile is
/// a 268-million-pixel-wide virtual raster — far beyond any realistic
/// deployment, while keeping every shift well-defined.
pub const MAX_PYRAMID_Z: u8 = 20;

/// The raster of tile `(z, x, y)` in the pyramid over `base`.
///
/// `base` is the level-0 window: one `tile_size × tile_size` raster
/// covering the whole dataset (its data window is typically
/// [`RasterSpec::try_covering`]'s). Level `z` is the virtual
/// `(tile_size·2^z)²` raster over the same window; tile `(x, y)` is
/// its `sub_window` at pixel offset `(x·tile_size, y·tile_size)`.
///
/// Rejects `z > MAX_PYRAMID_Z`, `x`/`y` outside `[0, 2^z)`, and a
/// non-square or zero-sized `base` with a structured [`KdvError`].
pub fn pyramid_raster(base: &RasterSpec, z: u8, x: u32, y: u32) -> Result<RasterSpec, KdvError> {
    let tile_size = base.width();
    if tile_size == 0 || base.height() != tile_size {
        return Err(KdvError::DegenerateRaster {
            message: format!(
                "pyramid base must be a square tile, got {}x{}",
                base.width(),
                base.height()
            ),
        });
    }
    if z > MAX_PYRAMID_Z {
        return Err(KdvError::invalid(
            "z",
            format!("zoom {z} exceeds the maximum pyramid depth {MAX_PYRAMID_Z}"),
        ));
    }
    let tiles_per_side = 1u32 << z;
    if x >= tiles_per_side || y >= tiles_per_side {
        return Err(KdvError::invalid(
            "tile",
            format!(
                "tile ({x}, {y}) outside the {tiles_per_side}x{tiles_per_side} grid of zoom {z}"
            ),
        ));
    }
    if tile_size.checked_shl(z as u32).is_none() || (tile_size as u64) << z > u32::MAX as u64 {
        return Err(KdvError::invalid(
            "tile_size",
            format!("tile size {tile_size} at zoom {z} overflows the virtual raster"),
        ));
    }
    base.with_resolution(tile_size << z, tile_size << z)
        .sub_window(x * tile_size, y * tile_size, tile_size, tile_size)
}

/// A rendered tile: the image plus how much of it is best-effort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileImage {
    /// The colormapped tile.
    pub image: RgbImage,
    /// Pixels whose refinement was cut short by the budget (εKDV) or
    /// whose classification had not cleared τ (τKDV). Zero means the
    /// tile is exact to its quality contract.
    pub degraded_pixels: u64,
}

impl TileImage {
    /// Whether every pixel met its quality contract.
    pub fn is_complete(&self) -> bool {
        self.degraded_pixels == 0
    }
}

/// Renders one εKDV tile under `budget`, colormapped against the
/// map-wide density range `(lo, hi)` (see [`ColorMap::render_scaled`]
/// for why tiles must not self-normalize). Refinement telemetry
/// accumulates into `metrics` — a long-running server merges these
/// per-tile metrics into its live `/metrics` aggregate.
pub fn render_tile_eps(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: &mut RenderBudget,
    cm: &ColorMap,
    scale: (f64, f64),
    metrics: &mut RenderMetrics,
) -> Result<TileImage, KdvError> {
    render_tile_eps_probed(ev, raster, eps, budget, cm, scale, metrics, &mut NoProbe)
}

/// [`render_tile_eps`] with an additional caller-supplied probe teed
/// into the refinement loop — how the tile server attributes one
/// request's work (e.g. a [`kdv_telemetry::DepthProfile`]) without
/// touching the shared metrics aggregate. [`NoProbe`] reduces it to
/// the plain tile renderer.
#[allow(clippy::too_many_arguments)]
pub fn render_tile_eps_probed<X: Probe>(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: &mut RenderBudget,
    cm: &ColorMap,
    scale: (f64, f64),
    metrics: &mut RenderMetrics,
    extra: &mut X,
) -> Result<TileImage, KdvError> {
    let out = render_eps_budgeted_metered_probed(ev, raster, eps, budget, metrics, extra)?;
    Ok(TileImage {
        image: cm.render_scaled(&out.grid, scale.0, scale.1, true),
        degraded_pixels: out.degraded_pixels,
    })
}

/// Renders one τKDV tile under `budget` with the paper's two-color
/// convention; undecided pixels count as degraded. Telemetry
/// accumulates into `metrics` as in [`render_tile_eps`].
pub fn render_tile_tau(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    tau: f64,
    budget: &mut RenderBudget,
    metrics: &mut RenderMetrics,
) -> Result<TileImage, KdvError> {
    render_tile_tau_probed(ev, raster, tau, budget, metrics, &mut NoProbe)
}

/// [`render_tile_tau`] with an additional caller-supplied probe,
/// exactly as [`render_tile_eps_probed`].
pub fn render_tile_tau_probed<X: Probe>(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    tau: f64,
    budget: &mut RenderBudget,
    metrics: &mut RenderMetrics,
    extra: &mut X,
) -> Result<TileImage, KdvError> {
    let out = render_tau_budgeted_metered_probed(ev, raster, tau, budget, metrics, extra)?;
    Ok(TileImage {
        image: crate::colormap::render_binary(&out.mask),
        degraded_pixels: out.undecided,
    })
}

/// [`render_tile_eps`] on the tile-batched refinement path: one shared
/// node frontier per pixel block instead of a fresh root-to-leaf
/// refinement per pixel (see [`TileEvaluator`]). Same per-pixel ε
/// contract, same budget accounting, same colormap pipeline — the
/// cold-tile fast path the server uses unless `--no-batch` disables it.
pub fn render_tile_eps_batched(
    tev: &mut TileEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: &mut RenderBudget,
    cm: &ColorMap,
    scale: (f64, f64),
    metrics: &mut RenderMetrics,
) -> Result<TileImage, KdvError> {
    render_tile_eps_batched_probed(tev, raster, eps, budget, cm, scale, metrics, &mut NoProbe)
}

/// [`render_tile_eps_batched`] with an additional caller-supplied
/// probe, mirroring [`render_tile_eps_probed`].
///
/// Per-pixel latency is not individually attributable on the batched
/// path (block-level work is shared), so the latency histogram
/// receives zeros; wall time and every event counter stay accurate.
#[allow(clippy::too_many_arguments)]
pub fn render_tile_eps_batched_probed<X: Probe>(
    tev: &mut TileEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: &mut RenderBudget,
    cm: &ColorMap,
    scale: (f64, f64),
    metrics: &mut RenderMetrics,
    extra: &mut X,
) -> Result<TileImage, KdvError> {
    validate_eps(eps)?;
    let start = Instant::now();
    let tile = tev.eval_tile_eps_with(
        raster,
        eps,
        budget,
        &mut TracingProbe::new(&mut metrics.events, &mut *extra),
    );
    let mut grid = DensityGrid::zeros(raster.width(), raster.height());
    let mut degraded_pixels = 0u64;
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let idx = (row * raster.width() + col) as usize;
            let e = tile.evals[idx];
            grid.set(col, row, e.estimate());
            metrics.record_pixel(col, row, &tile.stats[idx], 0);
            if e.exhausted {
                degraded_pixels += 1;
                metrics.mark_degraded_pixel();
            }
        }
    }
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    Ok(TileImage {
        image: cm.render_scaled(&grid, scale.0, scale.1, true),
        degraded_pixels,
    })
}

/// [`render_tile_tau`] on the tile-batched refinement path; with an
/// unlimited budget the mask is bit-identical to the per-pixel path's.
pub fn render_tile_tau_batched(
    tev: &mut TileEvaluator<'_>,
    raster: &RasterSpec,
    tau: f64,
    budget: &mut RenderBudget,
    metrics: &mut RenderMetrics,
) -> Result<TileImage, KdvError> {
    render_tile_tau_batched_probed(tev, raster, tau, budget, metrics, &mut NoProbe)
}

/// [`render_tile_tau_batched`] with an additional caller-supplied
/// probe, exactly as [`render_tile_eps_batched_probed`].
pub fn render_tile_tau_batched_probed<X: Probe>(
    tev: &mut TileEvaluator<'_>,
    raster: &RasterSpec,
    tau: f64,
    budget: &mut RenderBudget,
    metrics: &mut RenderMetrics,
    extra: &mut X,
) -> Result<TileImage, KdvError> {
    validate_tau(tau)?;
    let start = Instant::now();
    let tile = tev.eval_tile_tau_with(
        raster,
        tau,
        budget,
        &mut TracingProbe::new(&mut metrics.events, &mut *extra),
    );
    let mut mask = BinaryGrid::falses(raster.width(), raster.height());
    let mut undecided = 0u64;
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let idx = (row * raster.width() + col) as usize;
            let t = tile.taus[idx];
            mask.set(col, row, t.hot);
            metrics.record_pixel(col, row, &tile.stats[idx], 0);
            if !t.decided {
                undecided += 1;
                metrics.mark_degraded_pixel();
            }
        }
    }
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    Ok(TileImage {
        image: crate::colormap::render_binary(&mask),
        degraded_pixels: undecided,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdv_core::bandwidth::scott_gamma;
    use kdv_core::bounds::BoundFamily;
    use kdv_core::kernel::Kernel;
    use kdv_data::Dataset;
    use kdv_index::KdTree;

    fn setup() -> (kdv_geom::PointSet, Kernel, RasterSpec) {
        let ps = Dataset::Crime.generate(2000, 11);
        let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
        let base = RasterSpec::covering(&ps, 16, 16, 0.05);
        (ps, kernel, base)
    }

    #[test]
    fn pyramid_tiles_partition_each_level() {
        let (_, _, base) = setup();
        // Level 0 is the base itself.
        assert_eq!(pyramid_raster(&base, 0, 0, 0).expect("root"), base);
        // Level 2: 16 tiles tiling the base window exactly.
        let ((bx0, bx1), (by0, by1)) = base.window();
        let mut x_edges = Vec::new();
        for x in 0..4 {
            let t = pyramid_raster(&base, 2, x, 0).expect("tile");
            assert_eq!((t.width(), t.height()), (16, 16));
            x_edges.push(t.window().0);
        }
        assert!((x_edges[0].0 - bx0).abs() < 1e-12);
        assert!((x_edges[3].1 - bx1).abs() < 1e-12);
        for w in x_edges.windows(2) {
            assert!(
                (w[0].1 - w[1].0).abs() < 1e-12,
                "adjacent tiles must share an edge: {w:?}"
            );
        }
        // y = 0 is the top of the map (maximum data-space y).
        let top = pyramid_raster(&base, 1, 0, 0).expect("top");
        let bottom = pyramid_raster(&base, 1, 0, 1).expect("bottom");
        assert!((top.window().1 .1 - by1).abs() < 1e-12);
        assert!((bottom.window().1 .0 - by0).abs() < 1e-12);
        assert!(top.window().1 .0 > bottom.window().1 .0);
    }

    #[test]
    fn pyramid_rejects_bad_addresses() {
        let (_, _, base) = setup();
        assert!(pyramid_raster(&base, 1, 2, 0).is_err(), "x out of range");
        assert!(pyramid_raster(&base, 1, 0, 2).is_err(), "y out of range");
        assert!(pyramid_raster(&base, 0, 1, 0).is_err(), "root has one tile");
        assert!(
            pyramid_raster(&base, MAX_PYRAMID_Z + 1, 0, 0).is_err(),
            "zoom too deep"
        );
        let rect = RasterSpec::new(16, 8, (0.0, 1.0), (0.0, 1.0));
        assert!(pyramid_raster(&rect, 0, 0, 0).is_err(), "non-square base");
    }

    #[test]
    fn tile_renders_match_full_raster_windows() {
        let (ps, kernel, base) = setup();
        let tree = KdTree::build_default(&ps);
        // Render the whole level-1 raster in one pass…
        let full_raster = base.with_resolution(32, 32);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let full = crate::render::render_eps(&mut ev, &full_raster, 0.01);
        let (lo, hi) = full.min_max().expect("non-empty");
        let cm = ColorMap::heat();
        let reference = cm.render_scaled(&full, lo, hi, true);
        // …then tile by tile; the mosaic must match pixel-for-pixel.
        for ty in 0..2u32 {
            for tx in 0..2u32 {
                let raster = pyramid_raster(&base, 1, tx, ty).expect("tile");
                let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
                let mut budget = RenderBudget::unlimited();
                let mut metrics = RenderMetrics::new();
                let tile = render_tile_eps(
                    &mut ev,
                    &raster,
                    0.01,
                    &mut budget,
                    &cm,
                    (lo, hi),
                    &mut metrics,
                )
                .expect("tile render");
                assert!(tile.is_complete());
                assert_eq!(metrics.pixels, 16 * 16, "every tile pixel is metered");
                for row in 0..16 {
                    for col in 0..16 {
                        assert_eq!(
                            tile.image.get(col, row),
                            reference.get(tx * 16 + col, ty * 16 + row),
                            "tile ({tx},{ty}) pixel ({col},{row})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_tau_tile_image_matches_per_pixel_path() {
        let (ps, kernel, base) = setup();
        let tree = KdTree::build_default(&ps);
        let raster = pyramid_raster(&base, 0, 0, 0).expect("root");
        // A τ from a quick ε render, safely between observed values.
        let mut probe_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let grid = crate::render::render_eps(&mut probe_ev, &raster, 0.05);
        let (lo, hi) = grid.min_max().expect("non-empty");
        let tau = lo + 0.35 * (hi - lo);

        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut b1 = RenderBudget::unlimited();
        let mut m1 = RenderMetrics::new();
        let per_pixel = render_tile_tau(&mut ev, &raster, tau, &mut b1, &mut m1).expect("tau");

        let mut tev = TileEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut b2 = RenderBudget::unlimited();
        let mut m2 = RenderMetrics::new();
        let batched =
            render_tile_tau_batched(&mut tev, &raster, tau, &mut b2, &mut m2).expect("tau");

        assert_eq!(per_pixel.image, batched.image, "τ masks must be identical");
        assert_eq!(batched.degraded_pixels, 0);
        assert!(
            m2.frontier_reuse > 0,
            "batched tile must report shared-frontier reuse"
        );
        assert!(m2.simd_lanes >= 1);
    }

    #[test]
    fn batched_eps_tile_is_complete_and_meters_pixels() {
        let (ps, kernel, base) = setup();
        let tree = KdTree::build_default(&ps);
        let raster = pyramid_raster(&base, 1, 1, 0).expect("tile");
        let cm = ColorMap::heat();
        let mut tev = TileEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut budget = RenderBudget::unlimited();
        let mut metrics = RenderMetrics::new();
        let tile = render_tile_eps_batched(
            &mut tev,
            &raster,
            0.05,
            &mut budget,
            &cm,
            (0.0, 1.0),
            &mut metrics,
        )
        .expect("tile render");
        assert!(tile.is_complete());
        assert_eq!(metrics.pixels, 16 * 16, "every tile pixel is metered");
        assert!(render_tile_eps_batched(
            &mut tev,
            &raster,
            -1.0,
            &mut budget,
            &cm,
            (0.0, 1.0),
            &mut metrics,
        )
        .is_err());
    }

    #[test]
    fn budget_exhaustion_degrades_instead_of_failing() {
        let (ps, kernel, base) = setup();
        let tree = KdTree::build_default(&ps);
        let raster = pyramid_raster(&base, 0, 0, 0).expect("root");
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut tiny = RenderBudget::unlimited().with_max_work(3 * raster.num_pixels() as u64);
        let mut metrics = RenderMetrics::new();
        let tile = render_tile_eps(
            &mut ev,
            &raster,
            1e-7,
            &mut tiny,
            &ColorMap::heat(),
            (0.0, 1.0),
            &mut metrics,
        )
        .expect("degrades, not errors");
        assert!(tile.degraded_pixels > 0);
        assert!(!tile.is_complete());
        assert_eq!(metrics.degraded_pixels, tile.degraded_pixels);

        let mut ev2 = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut tiny2 = RenderBudget::unlimited().with_max_work(raster.num_pixels() as u64);
        let mut metrics2 = RenderMetrics::new();
        let tau_tile = render_tile_tau(&mut ev2, &raster, 1e-3, &mut tiny2, &mut metrics2)
            .expect("tau degrades");
        assert!(tau_tile.degraded_pixels > 0);
    }
}

//! Tile-level τKDV: classify whole pixel blocks at once.
//!
//! An extension beyond the paper. τKDV maps are spatially coherent —
//! vast regions are uniformly hot or cold — yet the §3.2 framework
//! decides every pixel independently. This renderer exploits coherence
//! hierarchically:
//!
//! 1. take a rectangular tile of pixels and its data-space bounding box,
//! 2. refine *box* bounds ([`kdv_core::bounds::box_bounds`]) of the
//!    kernel aggregation that hold for **every** pixel center in the
//!    tile simultaneously (box-to-box distances to index nodes; leaves
//!    refine to exact per-point box distances),
//! 3. if the global bounds clear τ on either side, paint the whole tile;
//!    otherwise split into quadrants and recurse — child tiles **inherit
//!    the parent's node frontier** instead of re-descending from the
//!    root (bounds valid for the parent box are valid for any sub-box),
//! 4. small tiles that remain undecided fall back
//!    to the per-pixel engine, which handles the τ-boundary band.
//!
//! The output is bit-identical to [`crate::render::render_tau`] (both
//! resolve boundary pixels with the same per-pixel engine); only the
//! work changes — see the `tiles` bench.

use crate::render::BinaryGrid;
use kdv_core::bounds::box_bounds;
use kdv_core::bounds::BoundFamily;
use kdv_core::engine::RefineEvaluator;
use kdv_core::kernel::Kernel;
use kdv_core::raster::RasterSpec;
use kdv_geom::Mbr;
use kdv_index::{KdTree, NodeId, NodeKind};

/// Node expansions per tile before giving up and splitting.
const TILE_REFINE_BUDGET: usize = 48;

/// Frontier-size cap: an undecided frontier this large means the tile
/// straddles fine structure — splitting beats refining.
const FRONTIER_CAP: usize = 192;

/// Outcome of one box-level τ certification (see [`certify_box`]).
#[derive(Debug, Clone)]
pub enum BoxCertification {
    /// The kernel aggregation clears τ on one side for **every** point
    /// of the box: `true` = uniformly hot, `false` = uniformly cold.
    Decided(bool),
    /// Bounds did not clear τ within the refinement allowance; carries
    /// the refined node frontier, valid for any sub-box of the input
    /// box (hand it to the children — that inheritance is the reuse
    /// that makes hierarchical splitting cheap).
    Undecided(Vec<NodeId>),
}

/// Refines box bounds of the kernel aggregation over `tile_box`,
/// starting from an inherited node `frontier`, until the bounds clear
/// `tau` on either side or the per-box refinement allowance runs out.
///
/// This is the primitive behind both [`render_tau_tiled`]'s quadrant
/// recursion and `kdv-server`'s parent→child tile seeding: bounds
/// certified for a parent box hold for any sub-box, so a child tile
/// starts from the parent's frontier instead of re-descending from the
/// kd-tree root.
pub fn certify_box(
    tree: &KdTree,
    kernel: Kernel,
    tau: f64,
    tile_box: &Mbr,
    frontier: &[NodeId],
) -> BoxCertification {
    // (gap, id, lb, ub) — a small working set with linear
    // max-extraction; boxes rarely hold more than a few dozen entries,
    // so this beats heap churn.
    let mut work: Vec<(f64, NodeId, f64, f64)> = Vec::with_capacity(frontier.len() + 16);
    let mut lb_sum = 0.0;
    let mut ub_sum = 0.0;
    for &id in frontier {
        let node = tree.node(id);
        let b = box_bounds(&kernel, &node.stats, &node.mbr, tile_box);
        lb_sum += b.lb;
        ub_sum += b.ub;
        work.push((b.gap(), id, b.lb, b.ub));
    }
    // `done` holds leaves refined to point granularity (their ids stay
    // in the child frontier; point-level bounds are not transferable
    // across boxes).
    let mut done: Vec<NodeId> = Vec::new();

    for _ in 0..TILE_REFINE_BUDGET {
        if lb_sum >= tau {
            return BoxCertification::Decided(true);
        }
        if ub_sum < tau {
            return BoxCertification::Decided(false);
        }
        if work.len() + done.len() > FRONTIER_CAP {
            break;
        }
        let Some(widest) = work
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(i, _)| i)
        else {
            break;
        };
        let (_, id, lb, ub) = work.swap_remove(widest);
        match tree.node(id).kind {
            NodeKind::Leaf { .. } => {
                let (lp, up) = leaf_point_bounds(tree, kernel, id, tile_box);
                lb_sum += lp - lb;
                ub_sum += up - ub;
                done.push(id);
            }
            NodeKind::Internal { left, right } => {
                for child in [left, right] {
                    let node = tree.node(child);
                    let b = box_bounds(&kernel, &node.stats, &node.mbr, tile_box);
                    lb_sum += b.lb;
                    ub_sum += b.ub;
                    work.push((b.gap(), child, b.lb, b.ub));
                }
                lb_sum -= lb;
                ub_sum -= ub;
            }
        }
    }
    if lb_sum >= tau {
        return BoxCertification::Decided(true);
    }
    if ub_sum < tau {
        return BoxCertification::Decided(false);
    }
    let mut next: Vec<NodeId> = work.into_iter().map(|(_, id, _, _)| id).collect();
    next.extend(done);
    BoxCertification::Undecided(next)
}

/// Point-granularity uniform bounds for one leaf over the tile box.
fn leaf_point_bounds(tree: &KdTree, kernel: Kernel, id: NodeId, tile_box: &Mbr) -> (f64, f64) {
    let mut lb = 0.0;
    let mut ub = 0.0;
    for (p, w) in tree.leaf_points(id) {
        lb += w * kernel.eval_dist2(tile_box.max_dist2(p));
        ub += w * kernel.eval_dist2(tile_box.min_dist2(p));
    }
    (lb, ub)
}

/// Undecided tiles at or below this pixel count go straight to the
/// per-pixel engine (the engine is already efficient at boundary
/// pixels; further tiling only adds overhead).
const MIN_TILE_PIXELS: u32 = 64;

/// Statistics of a tiled render (for the ablation/bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileStats {
    /// Tiles classified wholesale (all sizes).
    pub tiles_decided: usize,
    /// Pixels painted through wholesale tiles.
    pub pixels_via_tiles: usize,
    /// Pixels that fell through to the per-pixel engine.
    pub pixels_via_engine: usize,
}

/// Renders a τKDV mask using hierarchical tile pruning.
///
/// `family` selects the bound family of the per-pixel fallback engine
/// (tile-level bounds always use the robust interval family).
pub fn render_tau_tiled(
    tree: &KdTree,
    kernel: Kernel,
    family: BoundFamily,
    raster: &RasterSpec,
    tau: f64,
) -> (BinaryGrid, TileStats) {
    let mut ctx = TileCtx {
        tree,
        kernel,
        raster,
        tau,
        grid: BinaryGrid::falses(raster.width(), raster.height()),
        stats: TileStats::default(),
        pixel_engine: RefineEvaluator::new(tree, kernel, family),
    };
    let root_frontier = vec![tree.root()];
    ctx.classify_tile(0, 0, raster.width(), raster.height(), &root_frontier);
    (ctx.grid, ctx.stats)
}

struct TileCtx<'a> {
    tree: &'a KdTree,
    kernel: Kernel,
    raster: &'a RasterSpec,
    tau: f64,
    grid: BinaryGrid,
    stats: TileStats,
    pixel_engine: RefineEvaluator<'a>,
}

impl TileCtx<'_> {
    fn classify_tile(&mut self, col0: u32, row0: u32, w: u32, h: u32, frontier: &[NodeId]) {
        // Data-space box spanned by the tile's pixel centers, via the
        // shared sub-window mapping (one pixel→data-space code path
        // with kdv-server's tile extraction).
        let sub = self
            .raster
            .sub_window(col0, row0, w, h)
            .expect("quadrant rect is always inside the raster");
        let a = sub.pixel_center(0, 0);
        let b = sub.pixel_center(w - 1, h - 1);
        let tile_box = Mbr::new(
            vec![a[0].min(b[0]), a[1].min(b[1])],
            vec![a[0].max(b[0]), a[1].max(b[1])],
        );

        match certify_box(self.tree, self.kernel, self.tau, &tile_box, frontier) {
            BoxCertification::Decided(hot) => {
                for row in row0..row0 + h {
                    for col in col0..col0 + w {
                        self.grid.set(col, row, hot);
                    }
                }
                self.stats.tiles_decided += 1;
                self.stats.pixels_via_tiles += (w * h) as usize;
            }
            BoxCertification::Undecided(next_frontier) => {
                if w * h <= MIN_TILE_PIXELS {
                    for row in row0..row0 + h {
                        for col in col0..col0 + w {
                            let q = self.raster.pixel_center(col, row);
                            let hot = self.pixel_engine.eval_tau(&q, self.tau);
                            self.grid.set(col, row, hot);
                        }
                    }
                    self.stats.pixels_via_engine += (w * h) as usize;
                    return;
                }
                // Quadrant split; zero-sized halves vanish.
                let (wl, wr) = (w / 2, w - w / 2);
                let (ht, hb) = (h / 2, h - h / 2);
                for (c, cw) in [(col0, wl), (col0 + wl, wr)] {
                    for (r, ch) in [(row0, ht), (row0 + ht, hb)] {
                        if cw > 0 && ch > 0 {
                            self.classify_tile(c, r, cw, ch, &next_frontier);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render_tau;
    use kdv_core::bandwidth::scott_gamma;
    use kdv_core::threshold::estimate_levels;
    use kdv_data::Dataset;

    #[test]
    fn tiled_mask_matches_per_pixel_mask() {
        let raw = Dataset::Crime.generate(8000, 21);
        let bw = scott_gamma(&raw);
        let mut points = raw;
        points.scale_weights(bw.weight);
        let kernel = Kernel::gaussian(bw.gamma);
        let tree = KdTree::build_default(&points);
        // Resolution matters: pixels must be fine relative to the
        // kernel bandwidth for level sets to be tile-coherent (at the
        // paper's 1280×960 the ratio is far more favorable still).
        let raster = RasterSpec::covering(&points, 160, 120, 0.02);
        let levels = estimate_levels(&tree, kernel, &raster, 16, 12);
        for k in [-0.1, 0.1] {
            let tau = levels.tau(k);
            let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
            let reference = render_tau(&mut ev, &raster, tau);
            let (tiled, stats) =
                render_tau_tiled(&tree, kernel, BoundFamily::Quadratic, &raster, tau);
            assert_eq!(tiled, reference, "tiled mask differs at τ = µ{k:+}σ");
            // Uniform bounds can only certify tiles away from the τ
            // level set; the boundary band always falls through to the
            // per-pixel engine. A quarter of the raster decided
            // wholesale is already a large constant-factor win.
            assert!(
                stats.pixels_via_tiles > raster.num_pixels() / 4,
                "tile pruning should decide a large share, got {stats:?}"
            );
        }
    }

    #[test]
    fn degenerate_rasters_work() {
        let raw = Dataset::Hep.generate(500, 3);
        let bw = scott_gamma(&raw);
        let mut points = raw;
        points.scale_weights(bw.weight);
        let kernel = Kernel::gaussian(bw.gamma);
        let tree = KdTree::build_default(&points);
        for (w, h) in [(1u32, 1u32), (1, 7), (9, 1), (5, 3)] {
            let raster = RasterSpec::covering(&points, w, h, 0.02);
            let (tiled, _) = render_tau_tiled(&tree, kernel, BoundFamily::Quadratic, &raster, 1e-3);
            let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
            let reference = render_tau(&mut ev, &raster, 1e-3);
            assert_eq!(tiled, reference, "{w}x{h}");
        }
    }

    #[test]
    fn extreme_taus_decide_at_the_root_tile() {
        let raw = Dataset::Home.generate(2000, 5);
        let bw = scott_gamma(&raw);
        let mut points = raw;
        points.scale_weights(bw.weight);
        let kernel = Kernel::gaussian(bw.gamma);
        let tree = KdTree::build_default(&points);
        let raster = RasterSpec::covering(&points, 32, 32, 0.02);
        // τ far above any density: everything cold, one tile decision.
        let (mask, stats) = render_tau_tiled(&tree, kernel, BoundFamily::Quadratic, &raster, 1e9);
        assert_eq!(mask.count_hot(), 0);
        assert_eq!(stats.tiles_decided, 1);
        assert_eq!(stats.pixels_via_engine, 0);
        // τ ≤ 0: F ≥ 0 ≥ τ always holds — everything hot at the root.
        let (mask, stats) = render_tau_tiled(&tree, kernel, BoundFamily::Quadratic, &raster, -1.0);
        assert_eq!(mask.count_hot(), raster.num_pixels());
        assert_eq!(stats.tiles_decided, 1);
    }
}

//! Iso-density contour extraction (marching squares).
//!
//! Hotspot analysts often want the *outline* of the region
//! `F_P(q) ≥ τ` overlaid on a base map, not a filled mask (the red
//! boundary of the paper's Fig 1). This module extracts iso-contours
//! from a rendered [`DensityGrid`] with the classic marching-squares
//! algorithm: every grid cell whose corners straddle the level
//! contributes one or two line segments, positioned by linear
//! interpolation along the cell edges.
//!
//! Segments are returned in pixel coordinates (fractional, suitable for
//! overlay on the corresponding image) and can be stamped into an
//! [`crate::image::RgbImage`] with [`draw_contour`].

use crate::image::RgbImage;
use kdv_core::raster::DensityGrid;

/// A contour line segment in fractional pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point `(x, y)` in pixel space.
    pub a: (f64, f64),
    /// End point `(x, y)` in pixel space.
    pub b: (f64, f64),
}

/// Linear interpolation parameter of `level` between two corner values.
#[inline]
fn interp(v0: f64, v1: f64, level: f64) -> f64 {
    let span = v1 - v0;
    if span.abs() < 1e-300 {
        0.5
    } else {
        ((level - v0) / span).clamp(0.0, 1.0)
    }
}

/// Extracts the iso-contour of `grid` at `level` as line segments.
///
/// # Examples
/// ```
/// use kdv_core::raster::DensityGrid;
/// use kdv_viz::contour::extract_contour;
///
/// // A single hot pixel in a 3×3 grid yields a small closed loop.
/// let mut g = DensityGrid::zeros(3, 3);
/// g.set(1, 1, 1.0);
/// let segs = extract_contour(&g, 0.5);
/// assert!(!segs.is_empty());
/// ```
///
/// # Panics
/// Panics if `level` is not finite.
pub fn extract_contour(grid: &DensityGrid, level: f64) -> Vec<Segment> {
    assert!(level.is_finite(), "contour level must be finite");
    let (w, h) = (grid.width(), grid.height());
    let mut segments = Vec::new();
    if w < 2 || h < 2 {
        return segments;
    }
    for row in 0..h - 1 {
        for col in 0..w - 1 {
            // Corner values, clockwise from top-left.
            let tl = grid.get(col, row);
            let tr = grid.get(col + 1, row);
            let br = grid.get(col + 1, row + 1);
            let bl = grid.get(col, row + 1);
            let code = (usize::from(tl >= level))
                | (usize::from(tr >= level) << 1)
                | (usize::from(br >= level) << 2)
                | (usize::from(bl >= level) << 3);
            if code == 0 || code == 15 {
                continue;
            }
            let x = col as f64;
            let y = row as f64;
            // Edge crossing points (top, right, bottom, left).
            let top = (x + interp(tl, tr, level), y);
            let right = (x + 1.0, y + interp(tr, br, level));
            let bottom = (x + interp(bl, br, level), y + 1.0);
            let left = (x, y + interp(tl, bl, level));
            let mut push = |a: (f64, f64), b: (f64, f64)| segments.push(Segment { a, b });
            // The 16-case marching-squares table (ambiguous saddles 5 and
            // 10 resolved by the cell-center average).
            match code {
                1 => push(left, top),
                2 => push(top, right),
                3 => push(left, right),
                4 => push(right, bottom),
                5 => {
                    let center = (tl + tr + br + bl) / 4.0;
                    if center >= level {
                        push(left, bottom);
                        push(top, right);
                    } else {
                        push(left, top);
                        push(right, bottom);
                    }
                }
                6 => push(top, bottom),
                7 => push(left, bottom),
                8 => push(bottom, left),
                9 => push(top, bottom),
                10 => {
                    let center = (tl + tr + br + bl) / 4.0;
                    if center >= level {
                        push(left, top);
                        push(right, bottom);
                    } else {
                        push(left, bottom);
                        push(top, right);
                    }
                }
                11 => push(right, bottom),
                12 => push(right, left),
                13 => push(top, right),
                14 => push(left, top),
                _ => unreachable!("codes 0 and 15 are skipped"),
            }
        }
    }
    segments
}

/// Stamps contour segments onto an image (simple DDA line rasterizer).
pub fn draw_contour(img: &mut RgbImage, segments: &[Segment], color: [u8; 3]) {
    for s in segments {
        let dx = s.b.0 - s.a.0;
        let dy = s.b.1 - s.a.1;
        let steps = dx.abs().max(dy.abs()).ceil().max(1.0) as usize * 2;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            let x = s.a.0 + t * dx;
            let y = s.a.1 + t * dy;
            let (cx, cy) = (x.round() as i64, y.round() as i64);
            if cx >= 0 && cy >= 0 && (cx as u32) < img.width() && (cy as u32) < img.height() {
                img.set(cx as u32, cy as u32, color);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump_grid(n: u32) -> DensityGrid {
        // Radially symmetric bump centered on the grid.
        let mut g = DensityGrid::zeros(n, n);
        let c = (n - 1) as f64 / 2.0;
        for row in 0..n {
            for col in 0..n {
                let d2 = (col as f64 - c).powi(2) + (row as f64 - c).powi(2);
                g.set(col, row, (-d2 / (n as f64)).exp());
            }
        }
        g
    }

    #[test]
    fn flat_grid_has_no_contour() {
        let g = DensityGrid::from_values(4, 4, vec![1.0; 16]);
        assert!(extract_contour(&g, 0.5).is_empty());
        assert!(extract_contour(&g, 2.0).is_empty());
    }

    #[test]
    fn tiny_grids_are_empty() {
        let g = DensityGrid::zeros(1, 5);
        assert!(extract_contour(&g, 0.5).is_empty());
    }

    #[test]
    fn bump_contour_is_closed_and_circular() {
        let g = bump_grid(33);
        let level = 0.5;
        let segs = extract_contour(&g, level);
        assert!(!segs.is_empty());
        // Segment endpoints all lie near the true iso-radius
        // r = √(n·ln 2) of the bump.
        let r_true = (33.0f64 * 2.0f64.ln()).sqrt();
        let c = 16.0;
        for s in &segs {
            for (x, y) in [s.a, s.b] {
                let r = ((x - c).powi(2) + (y - c).powi(2)).sqrt();
                assert!(
                    (r - r_true).abs() < 1.0,
                    "endpoint ({x:.2}, {y:.2}) at radius {r:.2}, expected ≈{r_true:.2}"
                );
            }
        }
        // Closed curve: every endpoint appears an even number of times
        // (each crossing is shared between neighboring cells).
        let mut counts = std::collections::HashMap::new();
        for s in &segs {
            for p in [s.a, s.b] {
                *counts
                    .entry((p.0.to_bits(), p.1.to_bits()))
                    .or_insert(0usize) += 1;
            }
        }
        assert!(
            counts.values().all(|&c| c % 2 == 0),
            "open contour endpoints found"
        );
    }

    #[test]
    fn segments_scale_with_level_radius() {
        // Lower level → larger iso-circle → more segments.
        let g = bump_grid(33);
        let hi = extract_contour(&g, 0.8).len();
        let lo = extract_contour(&g, 0.3).len();
        assert!(
            lo > hi,
            "lower level must give a longer contour: {lo} vs {hi}"
        );
    }

    #[test]
    fn draw_contour_marks_pixels_inside_bounds_only() {
        let mut img = RgbImage::new(8, 8);
        let segs = [
            Segment {
                a: (1.0, 1.0),
                b: (6.0, 1.0),
            },
            Segment {
                a: (-5.0, -5.0),
                b: (20.0, 20.0),
            }, // partially off-image
        ];
        draw_contour(&mut img, &segs, [255, 0, 0]);
        assert_eq!(img.get(3, 1), [255, 0, 0]);
        // Off-image parts silently clipped, no panic; on-diagonal pixel hit.
        assert_eq!(img.get(4, 4), [255, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_level_panics() {
        extract_contour(&DensityGrid::zeros(3, 3), f64::NAN);
    }
}

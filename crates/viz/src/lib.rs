//! Color-map rendering and the progressive visualization framework.
//!
//! This crate turns the per-pixel query engine of [`kdv_core`] into the
//! artifacts the QUAD paper actually shows:
//!
//! * [`render`] — full-raster εKDV density grids and τKDV binary masks,
//!   in row-major or progressive order; `*_budgeted` variants thread a
//!   [`kdv_core::engine::RenderBudget`] through and degrade gracefully
//!   (best-effort midpoints plus a per-pixel achieved-error map)
//!   instead of overrunning a deadline or work cap,
//! * [`progressive`] — the coarse-to-fine quad-tree pixel ordering of
//!   the paper's §6 / Fig 13, generalized to arbitrary resolutions,
//! * [`colormap`] — the continuous color ramp of Figs 1–2 and the
//!   two-color τKDV map; [`contour`] — marching-squares iso-density
//!   outlines (the hotspot boundaries of Fig 1),
//! * [`image`] — dependency-free binary PPM/PGM writers,
//! * [`parallel`] — a multi-threaded row renderer (the paper's "future
//!   work" §8; off in every paper reproduction, which is single-core)
//!   with per-band panic isolation: a crashed worker's band is retried
//!   sequentially and reported, never aborting the whole render,
//! * [`metered`] — the same renderers instrumented with
//!   [`kdv_telemetry`]: event counters, per-pixel histograms, cost
//!   maps, and time-to-quality checkpoints,
//! * [`tile_render`] — the z/x/y slippy tile pyramid over a data
//!   window (budgeted, fixed-scale colormapped tiles for
//!   `kdv-server`); [`tiles`] — hierarchical box-bound τ
//!   certification, whose frontier inheritance also seeds the server's
//!   parent→child tile reuse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colormap;
pub mod contour;
pub mod image;
pub mod metered;
pub mod parallel;
pub mod png;
pub mod progressive;
pub mod render;
pub mod tile_render;
pub mod tiles;

pub use colormap::ColorMap;
pub use image::RgbImage;
pub use metered::{
    render_eps_budgeted_metered, render_eps_metered, render_eps_parallel_budgeted_metered,
    render_eps_parallel_metered, render_eps_progressive_metered, render_tau_budgeted_metered,
    render_tau_metered,
};
pub use parallel::{try_render_eps_parallel, ParallelOutcome};
pub use progressive::{progressive_order, ProgressiveStep};
pub use render::{
    render_eps, render_eps_budgeted, render_eps_progressive, render_eps_progressive_budgeted,
    render_tau, render_tau_budgeted, BinaryGrid, BudgetedRender, BudgetedTauRender,
};
pub use tile_render::{pyramid_raster, render_tile_eps, render_tile_tau, TileImage};
pub use tiles::{certify_box, render_tau_tiled, BoxCertification};

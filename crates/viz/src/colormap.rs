//! Color ramps for density fields.
//!
//! The paper's color maps (Figs 1–2, 19, 21) use the classic
//! blue→green→yellow→red "heat" ramp; τKDV maps use exactly two colors
//! (§1, Fig 2c). Densities are normalized with a gamma-ish square-root
//! stretch option because KDE fields are heavily skewed — without it
//! all but the hottest pixels render near the bottom color.

use kdv_core::raster::DensityGrid;

use crate::image::RgbImage;

/// An RGB color.
pub type Rgb = [u8; 3];

/// A piecewise-linear color ramp over `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorMap {
    /// Control points `(t, color)` with strictly increasing `t`,
    /// starting at 0 and ending at 1.
    stops: Vec<(f64, Rgb)>,
}

impl ColorMap {
    /// Builds a ramp from control points.
    ///
    /// # Panics
    /// Panics unless stops start at `t = 0`, end at `t = 1`, and are
    /// strictly increasing.
    pub fn new(stops: Vec<(f64, Rgb)>) -> Self {
        assert!(stops.len() >= 2, "need at least two stops");
        assert_eq!(stops[0].0, 0.0, "first stop must be at 0");
        assert_eq!(stops[stops.len() - 1].0, 1.0, "last stop must be at 1");
        for w in stops.windows(2) {
            assert!(w[0].0 < w[1].0, "stops must strictly increase");
        }
        Self { stops }
    }

    /// The heat ramp used throughout the paper's figures.
    pub fn heat() -> Self {
        Self::new(vec![
            (0.00, [13, 8, 135]),   // deep blue
            (0.25, [30, 120, 180]), // blue
            (0.50, [60, 180, 90]),  // green
            (0.75, [245, 200, 50]), // yellow
            (1.00, [215, 25, 28]),  // red
        ])
    }

    /// A perceptually-flat grayscale ramp (useful for PGM diffing).
    pub fn grayscale() -> Self {
        Self::new(vec![(0.0, [0, 0, 0]), (1.0, [255, 255, 255])])
    }

    /// Samples the ramp at `t ∈ [0, 1]` (clamped).
    pub fn sample(&self, t: f64) -> Rgb {
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        let mut prev = self.stops[0];
        for &stop in &self.stops[1..] {
            if t <= stop.0 {
                let span = stop.0 - prev.0;
                let f = if span > 0.0 { (t - prev.0) / span } else { 0.0 };
                return [
                    lerp(prev.1[0], stop.1[0], f),
                    lerp(prev.1[1], stop.1[1], f),
                    lerp(prev.1[2], stop.1[2], f),
                ];
            }
            prev = stop;
        }
        self.stops[self.stops.len() - 1].1
    }

    /// Renders a density grid to an RGB image, normalizing by the
    /// grid's min/max and applying a square-root stretch when
    /// `sqrt_stretch` (recommended for KDE fields).
    pub fn render(&self, grid: &DensityGrid, sqrt_stretch: bool) -> RgbImage {
        let (lo, hi) = grid.min_max().unwrap_or((0.0, 1.0));
        self.render_scaled(grid, lo, hi, sqrt_stretch)
    }

    /// Renders with an **explicit** normalization range instead of the
    /// grid's own min/max. This is what tile pyramids need: every tile
    /// sees only a window of the density field, so per-tile min/max
    /// normalization would give each tile its own color scale and the
    /// seams between adjacent tiles would jump. Fixing `(lo, hi)`
    /// map-wide keeps the ramp continuous across tile boundaries.
    /// Values outside the range clamp to the ramp's ends.
    pub fn render_scaled(
        &self,
        grid: &DensityGrid,
        lo: f64,
        hi: f64,
        sqrt_stretch: bool,
    ) -> RgbImage {
        let span = (hi - lo).max(1e-300);
        let mut img = RgbImage::new(grid.width(), grid.height());
        for row in 0..grid.height() {
            for col in 0..grid.width() {
                let mut t = ((grid.get(col, row) - lo) / span).clamp(0.0, 1.0);
                if sqrt_stretch {
                    t = t.sqrt();
                }
                img.set(col, row, self.sample(t));
            }
        }
        img
    }
}

#[inline]
fn lerp(a: u8, b: u8, f: f64) -> u8 {
    (a as f64 + (b as f64 - a as f64) * f)
        .round()
        .clamp(0.0, 255.0) as u8
}

/// Renders a τKDV binary mask with the paper's two-color convention
/// (hot = red, cold = light blue, cf. Fig 2c).
pub fn render_binary(mask: &crate::render::BinaryGrid) -> RgbImage {
    let hot: Rgb = [215, 25, 28];
    let cold: Rgb = [170, 200, 230];
    let mut img = RgbImage::new(mask.width(), mask.height());
    for row in 0..mask.height() {
        for col in 0..mask.width() {
            img.set(col, row, if mask.get(col, row) { hot } else { cold });
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_stops() {
        let cm = ColorMap::heat();
        assert_eq!(cm.sample(0.0), [13, 8, 135]);
        assert_eq!(cm.sample(1.0), [215, 25, 28]);
    }

    #[test]
    fn out_of_range_clamps() {
        let cm = ColorMap::grayscale();
        assert_eq!(cm.sample(-5.0), [0, 0, 0]);
        assert_eq!(cm.sample(9.0), [255, 255, 255]);
        assert_eq!(cm.sample(f64::NAN), [0, 0, 0]);
    }

    #[test]
    fn midpoint_interpolates() {
        let cm = ColorMap::grayscale();
        let mid = cm.sample(0.5);
        assert!((mid[0] as i32 - 128).abs() <= 1);
    }

    #[test]
    fn ramp_is_monotone_in_luminance_for_grayscale() {
        let cm = ColorMap::grayscale();
        let mut prev = -1i32;
        for i in 0..=100 {
            let v = cm.sample(i as f64 / 100.0)[0] as i32;
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn render_normalizes_by_min_max() {
        let grid = DensityGrid::from_values(2, 1, vec![1.0, 3.0]);
        let img = ColorMap::grayscale().render(&grid, false);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
        assert_eq!(img.get(1, 0), [255, 255, 255]);
    }

    #[test]
    #[should_panic(expected = "first stop")]
    fn missing_zero_stop_panics() {
        ColorMap::new(vec![(0.5, [0, 0, 0]), (1.0, [255, 255, 255])]);
    }

    #[test]
    fn binary_render_uses_two_colors() {
        let mut mask = crate::render::BinaryGrid::falses(2, 1);
        mask.set(1, 0, true);
        let img = render_binary(&mask);
        assert_ne!(img.get(0, 0), img.get(1, 0));
        assert_eq!(img.get(1, 0), [215, 25, 28], "hot pixel is red");
    }

    #[test]
    fn render_scaled_is_continuous_across_a_tile_split() {
        // One 4×1 grid vs the same values split into two 2×1 tiles
        // rendered under the shared scale: identical colors. Per-tile
        // min/max normalization (plain `render`) would disagree.
        let full = DensityGrid::from_values(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let left = DensityGrid::from_values(2, 1, vec![0.0, 1.0]);
        let right = DensityGrid::from_values(2, 1, vec![2.0, 3.0]);
        let cm = ColorMap::heat();
        let whole = cm.render_scaled(&full, 0.0, 3.0, true);
        let l = cm.render_scaled(&left, 0.0, 3.0, true);
        let r = cm.render_scaled(&right, 0.0, 3.0, true);
        for col in 0..2 {
            assert_eq!(whole.get(col, 0), l.get(col, 0));
            assert_eq!(whole.get(col + 2, 0), r.get(col, 0));
        }
        // Out-of-range values clamp instead of wrapping or panicking.
        let img = cm.render_scaled(&full, 1.0, 2.0, false);
        assert_eq!(img.get(0, 0), cm.sample(0.0));
        assert_eq!(img.get(3, 0), cm.sample(1.0));
    }

    #[test]
    fn sqrt_stretch_brightens_midrange() {
        let grid = DensityGrid::from_values(3, 1, vec![0.0, 0.25, 1.0]);
        let cm = ColorMap::grayscale();
        let plain = cm.render(&grid, false);
        let stretched = cm.render(&grid, true);
        // Endpoints identical, midrange strictly brighter with sqrt.
        assert_eq!(plain.get(0, 0), stretched.get(0, 0));
        assert_eq!(plain.get(2, 0), stretched.get(2, 0));
        assert!(stretched.get(1, 0)[0] > plain.get(1, 0)[0]);
    }

    #[test]
    fn constant_grid_renders_uniformly() {
        let grid = DensityGrid::from_values(2, 2, vec![5.0; 4]);
        let img = ColorMap::heat().render(&grid, true);
        let c = img.get(0, 0);
        for row in 0..2 {
            for col in 0..2 {
                assert_eq!(img.get(col, row), c);
            }
        }
    }
}

//! The coarse-to-fine pixel evaluation order of the paper's §6.
//!
//! Instead of row-major evaluation, pixels are visited in generalized
//! quad-tree order (Fig 13): the representative (center) pixel of the
//! whole raster first, then the representatives of its four quadrants,
//! and so on. Applying step `k`'s density value to its whole block
//! yields a complete — coarse but ever-sharper — color map after *any*
//! prefix of the steps, which is what lets a user stop at 0.5 s with a
//! presentable image.
//!
//! The paper describes the `2^r × 2^r` case and notes the method
//! "can also handle all other resolutions"; this implementation works
//! for arbitrary `W × H` by splitting blocks at their pixel midpoint
//! (empty halves vanish) and skipping representatives that an earlier,
//! coarser block already emitted.

/// One step of the progressive schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressiveStep {
    /// Column of the pixel to evaluate.
    pub col: u32,
    /// Row of the pixel to evaluate.
    pub row: u32,
    /// Top-left corner of the block this value temporarily paints.
    pub block_origin: (u32, u32),
    /// Width × height of the painted block.
    pub block_size: (u32, u32),
}

/// Computes the full progressive schedule for a `width × height`
/// raster: a permutation of all pixels, coarse blocks first.
///
/// # Examples
/// ```
/// use kdv_viz::progressive::progressive_order;
///
/// let steps = progressive_order(8, 8);
/// assert_eq!(steps.len(), 64);               // every pixel exactly once
/// assert_eq!((steps[0].col, steps[0].row), (4, 4)); // global center first
/// assert_eq!(steps[0].block_size, (8, 8));   // ...painting everything
/// ```
///
/// # Panics
/// Panics on a zero-sized raster.
pub fn progressive_order(width: u32, height: u32) -> Vec<ProgressiveStep> {
    assert!(width > 0 && height > 0, "raster must be non-empty");
    let n = width as usize * height as usize;
    let mut visited = vec![false; n];
    let mut steps = Vec::with_capacity(n);
    // Breadth-first over blocks keeps coarse levels strictly before
    // finer ones.
    let mut queue = std::collections::VecDeque::new();
    queue.push_back((0u32, 0u32, width, height));
    while let Some((x0, y0, w, h)) = queue.pop_front() {
        let rep_col = x0 + w / 2;
        let rep_row = y0 + h / 2;
        let idx = rep_row as usize * width as usize + rep_col as usize;
        if !visited[idx] {
            visited[idx] = true;
            steps.push(ProgressiveStep {
                col: rep_col,
                row: rep_row,
                block_origin: (x0, y0),
                block_size: (w, h),
            });
        }
        if w == 1 && h == 1 {
            continue;
        }
        let (wl, wr) = (w / 2, w - w / 2);
        let (ht, hb) = (h / 2, h - h / 2);
        // Children in Z order: NW, NE, SW, SE; zero-sized halves vanish.
        for (cx, cy, cw, ch) in [
            (x0, y0, wl, ht),
            (x0 + wl, y0, wr, ht),
            (x0, y0 + ht, wl, hb),
            (x0 + wl, y0 + ht, wr, hb),
        ] {
            if cw > 0 && ch > 0 {
                queue.push_back((cx, cy, cw, ch));
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_step_is_global_center() {
        let steps = progressive_order(8, 8);
        assert_eq!(steps[0].col, 4);
        assert_eq!(steps[0].row, 4);
        assert_eq!(steps[0].block_origin, (0, 0));
        assert_eq!(steps[0].block_size, (8, 8));
    }

    #[test]
    fn power_of_two_square_matches_fig13_level_counts() {
        // For 2^r × 2^r, level k contributes at most 4^k new pixels; the
        // first five steps are the center plus the 4 quadrant centers.
        let steps = progressive_order(16, 16);
        assert_eq!(steps.len(), 256);
        let quadrant_reps: Vec<(u32, u32)> = steps[1..5].iter().map(|s| (s.col, s.row)).collect();
        assert!(quadrant_reps.contains(&(4, 4)));
        assert!(quadrant_reps.contains(&(12, 4)));
        assert!(quadrant_reps.contains(&(4, 12)));
        assert!(quadrant_reps.contains(&(12, 12)));
    }

    #[test]
    fn blocks_shrink_monotonically_in_bfs_order() {
        let steps = progressive_order(32, 32);
        let mut prev_area = u64::MAX;
        for s in &steps {
            let area = s.block_size.0 as u64 * s.block_size.1 as u64;
            assert!(area <= prev_area, "coarser block after finer one");
            prev_area = area;
        }
    }

    #[test]
    fn single_pixel_raster() {
        let steps = progressive_order(1, 1);
        assert_eq!(steps.len(), 1);
        assert_eq!((steps[0].col, steps[0].row), (0, 0));
    }

    #[test]
    fn rep_is_inside_its_block() {
        for (w, h) in [(7, 5), (13, 1), (1, 9), (640, 3)] {
            for s in progressive_order(w, h) {
                assert!(s.col >= s.block_origin.0 && s.col < s.block_origin.0 + s.block_size.0);
                assert!(s.row >= s.block_origin.1 && s.row < s.block_origin.1 + s.block_size.1);
            }
        }
    }

    proptest! {
        /// The schedule is a permutation of all pixels, at any resolution
        /// (the paper's "all other resolutions" claim).
        #[test]
        fn schedule_is_permutation(w in 1u32..40, h in 1u32..40) {
            let steps = progressive_order(w, h);
            prop_assert_eq!(steps.len(), (w * h) as usize);
            let mut seen = vec![false; (w * h) as usize];
            for s in &steps {
                let idx = (s.row * w + s.col) as usize;
                prop_assert!(!seen[idx], "pixel visited twice");
                seen[idx] = true;
            }
            prop_assert!(seen.iter().all(|&b| b));
        }
    }
}

//! Metered rendering: the renderers of [`crate::render`] and
//! [`crate::parallel`], instrumented with [`kdv_telemetry`].
//!
//! These take a concrete [`RefineEvaluator`] rather than a
//! `dyn PixelEvaluator` because metering is a refinement-engine notion:
//! the evaluator's probe hooks and [`RefineStats`] feed the metrics.
//! The un-metered renderers stay exactly as they were — the engine loop
//! is monomorphized over the probe, so they compile to the same code as
//! before this module existed.
//!
//! Event counters accumulate *live* through the probe
//! (`&mut metrics.events`) during evaluation; per-pixel histograms and
//! the cost map are fed from [`RefineStats`] after each pixel. Nothing
//! is counted twice.

use crate::progressive::progressive_order;
use crate::render::{BinaryGrid, ProgressiveCanvas, ProgressiveRender};
use kdv_core::engine::RefineEvaluator;
use kdv_core::raster::{DensityGrid, RasterSpec};
use kdv_telemetry::RenderMetrics;
use std::time::{Duration, Instant};

/// Renders a full εKDV density grid, accumulating metrics.
///
/// Bit-identical to [`crate::render::render_eps`] on the same
/// evaluator: the probe only observes.
pub fn render_eps_metered(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    metrics: &mut RenderMetrics,
) -> DensityGrid {
    let start = Instant::now();
    let mut grid = DensityGrid::zeros(raster.width(), raster.height());
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let t0 = Instant::now();
            let v = ev.eval_eps_with(&q, eps, &mut metrics.events);
            let latency = t0.elapsed().as_nanos() as u64;
            grid.set(col, row, v);
            metrics.record_pixel(col, row, &ev.last_stats(), latency);
        }
    }
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    grid
}

/// Renders a full τKDV binary mask, accumulating metrics.
pub fn render_tau_metered(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    tau: f64,
    metrics: &mut RenderMetrics,
) -> BinaryGrid {
    let start = Instant::now();
    let mut grid = BinaryGrid::falses(raster.width(), raster.height());
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let t0 = Instant::now();
            let v = ev.eval_tau_with(&q, tau, &mut metrics.events);
            let latency = t0.elapsed().as_nanos() as u64;
            grid.set(col, row, v);
            metrics.record_pixel(col, row, &ev.last_stats(), latency);
        }
    }
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    grid
}

/// Renders εKDV on `threads` worker threads, accumulating metrics.
///
/// Each thread gets an evaluator from `make_evaluator` and a sibling of
/// `metrics`; siblings merge back in band order after all threads join,
/// so every field except the latency histograms and wall time is
/// deterministic and equal to a sequential metered render.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn render_eps_parallel_metered<'t, F>(
    make_evaluator: F,
    raster: &RasterSpec,
    eps: f64,
    threads: usize,
    metrics: &mut RenderMetrics,
) -> DensityGrid
where
    F: Fn() -> RefineEvaluator<'t> + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let start = Instant::now();
    let width = raster.width();
    let height = raster.height() as usize;
    let mut values = vec![0.0f64; width as usize * height];

    let band_metrics = std::thread::scope(|scope| {
        let rows_per_band = height.div_ceil(threads);
        let mut rest: &mut [f64] = &mut values;
        let mut band_start = 0usize;
        let mut handles = Vec::new();
        while band_start < height {
            let rows = rows_per_band.min(height - band_start);
            let (band, tail) = rest.split_at_mut(rows * width as usize);
            rest = tail;
            let first_row = band_start;
            let make = &make_evaluator;
            let mut local = metrics.sibling();
            handles.push(scope.spawn(move || {
                let band_t0 = Instant::now();
                let mut ev = make();
                for (r, row_vals) in band.chunks_mut(width as usize).enumerate() {
                    let row = (first_row + r) as u32;
                    for (col, slot) in row_vals.iter_mut().enumerate() {
                        let q = raster.pixel_center(col as u32, row);
                        let t0 = Instant::now();
                        *slot = ev.eval_eps_with(&q, eps, &mut local.events);
                        let latency = t0.elapsed().as_nanos() as u64;
                        local.record_pixel(col as u32, row, &ev.last_stats(), latency);
                    }
                }
                local.set_wall_ns(band_t0.elapsed().as_nanos() as u64);
                local
            }));
            band_start += rows;
        }
        // Joining in spawn order keeps the merge deterministic.
        handles
            .into_iter()
            .map(|h| h.join().expect("render worker panicked"))
            .collect::<Vec<_>>()
    });

    for band in &band_metrics {
        metrics.merge(band);
    }
    metrics.threads = band_metrics.len() as u32;
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    DensityGrid::from_values(width, raster.height(), values)
}

/// Renders εKDV in the §6 progressive order with metrics and
/// time-to-quality checkpoints.
///
/// A checkpoint is recorded whenever the evaluated-pixel count reaches
/// a power of two, plus one final checkpoint — so the metrics document
/// traces quality-over-time (Fig 20/21) with logarithmically many
/// entries.
pub fn render_eps_progressive_metered(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: Option<Duration>,
    metrics: &mut RenderMetrics,
) -> ProgressiveRender {
    let steps = progressive_order(raster.width(), raster.height());
    let mut canvas = ProgressiveCanvas::new(raster.width(), raster.height());
    let start = Instant::now();
    let mut evaluated = 0usize;
    for step in &steps {
        if let Some(b) = budget {
            if evaluated > 0 && start.elapsed() >= b {
                break;
            }
        }
        let q = raster.pixel_center(step.col, step.row);
        let t0 = Instant::now();
        let v = ev.eval_eps_with(&q, eps, &mut metrics.events);
        let latency = t0.elapsed().as_nanos() as u64;
        metrics.record_pixel(step.col, step.row, &ev.last_stats(), latency);
        evaluated += 1;
        canvas.apply(step, v);
        if evaluated.is_power_of_two() {
            metrics.checkpoint(evaluated as u64, start.elapsed().as_nanos() as u64);
        }
    }
    let wall = start.elapsed().as_nanos() as u64;
    if !evaluated.is_power_of_two() || evaluated == 0 {
        metrics.checkpoint(evaluated as u64, wall);
    }
    metrics.set_wall_ns(wall);
    ProgressiveRender {
        grid: canvas.into_grid(),
        complete: evaluated == steps.len(),
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::render_eps_parallel;
    use crate::render::{render_eps, render_eps_progressive, render_tau};
    use kdv_core::bandwidth::scott_gamma;
    use kdv_core::bounds::BoundFamily;
    use kdv_data::Dataset;
    use kdv_index::KdTree;

    fn setup() -> (kdv_geom::PointSet, kdv_core::kernel::Kernel, RasterSpec) {
        let ps = Dataset::Crime.generate(3000, 42);
        let kernel = kdv_core::kernel::Kernel::gaussian(scott_gamma(&ps).gamma);
        let raster = RasterSpec::covering(&ps, 20, 16, 0.05);
        (ps, kernel, raster)
    }

    #[test]
    fn metered_eps_render_is_bit_identical_to_plain() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut plain = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut metered = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut metrics = RenderMetrics::with_cost_map(raster.width(), raster.height());
        let a = render_eps(&mut plain, &raster, 0.01);
        let b = render_eps_metered(&mut metered, &raster, 0.01, &mut metrics);
        assert_eq!(a, b, "metering changed the rendered grid");
        assert_eq!(metrics.pixels, raster.num_pixels() as u64);
        assert!(metrics.events.heap_pops > 0);
        assert!(metrics.events.point_evals > 0);
        assert_eq!(metrics.iterations.count(), metrics.pixels);
    }

    #[test]
    fn metered_tau_render_is_identical_to_plain() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut plain = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut metered = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        // Pick a mid-range τ from a quick ε render.
        let grid = render_eps(
            &mut RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.05,
        );
        let (lo, hi) = grid.min_max().expect("non-empty");
        let tau = lo + 0.4 * (hi - lo);
        let mut metrics = RenderMetrics::new();
        let a = render_tau(&mut plain, &raster, tau);
        let b = render_tau_metered(&mut metered, &raster, tau, &mut metrics);
        assert_eq!(a, b);
        assert_eq!(metrics.pixels, raster.num_pixels() as u64);
    }

    #[test]
    fn parallel_metrics_merge_equals_sequential() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut seq_metrics = RenderMetrics::with_cost_map(raster.width(), raster.height());
        let mut seq_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let seq_grid = render_eps_metered(&mut seq_ev, &raster, 0.01, &mut seq_metrics);

        for threads in [1usize, 2, 4] {
            let mut par_metrics = RenderMetrics::with_cost_map(raster.width(), raster.height());
            let par_grid = render_eps_parallel_metered(
                || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
                &raster,
                0.01,
                threads,
                &mut par_metrics,
            );
            assert_eq!(par_grid, seq_grid, "{threads} threads changed the grid");
            // Deterministic fields must match the sequential render
            // exactly; latency histograms and wall time are wall-clock
            // noise and excluded by design.
            assert_eq!(par_metrics.events, seq_metrics.events);
            assert_eq!(par_metrics.pixels, seq_metrics.pixels);
            assert_eq!(par_metrics.iterations, seq_metrics.iterations);
            assert_eq!(par_metrics.cost_map(), seq_metrics.cost_map());
        }
    }

    #[test]
    fn parallel_metered_matches_unmetered_parallel() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let plain = render_eps_parallel(
            || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.01,
            3,
        );
        let mut metrics = RenderMetrics::new();
        let metered = render_eps_parallel_metered(
            || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.01,
            3,
            &mut metrics,
        );
        assert_eq!(plain, metered);
        assert_eq!(metrics.threads, 3);
    }

    #[test]
    fn cost_map_dims_match_raster_and_covers_pixels() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut metrics = RenderMetrics::with_cost_map(raster.width(), raster.height());
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        render_eps_metered(&mut ev, &raster, 0.01, &mut metrics);
        let map = metrics.cost_map().expect("cost map requested");
        assert_eq!(map.width(), raster.width());
        assert_eq!(map.height(), raster.height());
        // Every pixel did at least the root bound evaluation.
        let (lo, _) = map.min_max().expect("non-empty");
        assert!(lo >= 1.0, "cost map has an un-accounted pixel: min {lo}");
    }

    #[test]
    fn progressive_metered_matches_plain_and_checkpoints_are_monotone() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut a = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut b = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let plain = render_eps_progressive(&mut a, &raster, 0.01, None);
        let mut metrics = RenderMetrics::new();
        let metered = render_eps_progressive_metered(&mut b, &raster, 0.01, None, &mut metrics);
        assert_eq!(plain, metered);
        assert!(metered.complete);

        let cps = &metrics.checkpoints;
        assert!(!cps.is_empty());
        assert_eq!(
            cps.last().expect("final checkpoint").pixels,
            raster.num_pixels() as u64
        );
        for w in cps.windows(2) {
            assert!(w[1].pixels > w[0].pixels, "pixel counts must increase");
            assert!(w[1].elapsed_ns >= w[0].elapsed_ns, "time must not go back");
        }
        // Power-of-two cadence: log₂(pixels) + final ≥ entries ≥ 2.
        assert!(cps.len() >= 2);
        assert!(cps.len() as u32 <= 64);
    }
}

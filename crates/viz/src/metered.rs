//! Metered rendering: the renderers of [`crate::render`] and
//! [`crate::parallel`], instrumented with [`kdv_telemetry`].
//!
//! These take a concrete [`RefineEvaluator`] rather than a
//! `dyn PixelEvaluator` because metering is a refinement-engine notion:
//! the evaluator's probe hooks and [`RefineStats`] feed the metrics.
//! The un-metered renderers stay exactly as they were — the engine loop
//! is monomorphized over the probe, so they compile to the same code as
//! before this module existed.
//!
//! Event counters accumulate *live* through the probe
//! (`&mut metrics.events`) during evaluation; per-pixel histograms and
//! the cost map are fed from [`RefineStats`] after each pixel. Nothing
//! is counted twice.

use crate::progressive::progressive_order;
use crate::render::{
    BinaryGrid, BudgetedRender, BudgetedTauRender, ProgressiveCanvas, ProgressiveRender,
};
use kdv_core::engine::{NoProbe, Probe, RefineEvaluator, RenderBudget};
use kdv_core::error::KdvError;
use kdv_core::query::validate_eps;
use kdv_core::raster::{DensityGrid, RasterSpec};
use kdv_telemetry::{RenderMetrics, TracingProbe};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Renders a full εKDV density grid, accumulating metrics.
///
/// Bit-identical to [`crate::render::render_eps`] on the same
/// evaluator: the probe only observes.
pub fn render_eps_metered(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    metrics: &mut RenderMetrics,
) -> DensityGrid {
    let start = Instant::now();
    let mut grid = DensityGrid::zeros(raster.width(), raster.height());
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let t0 = Instant::now();
            let v = ev.eval_eps_with(&q, eps, &mut metrics.events);
            let latency = t0.elapsed().as_nanos() as u64;
            grid.set(col, row, v);
            metrics.record_pixel(col, row, &ev.last_stats(), latency);
        }
    }
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    grid
}

/// Renders a full τKDV binary mask, accumulating metrics.
pub fn render_tau_metered(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    tau: f64,
    metrics: &mut RenderMetrics,
) -> BinaryGrid {
    let start = Instant::now();
    let mut grid = BinaryGrid::falses(raster.width(), raster.height());
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let t0 = Instant::now();
            let v = ev.eval_tau_with(&q, tau, &mut metrics.events);
            let latency = t0.elapsed().as_nanos() as u64;
            grid.set(col, row, v);
            metrics.record_pixel(col, row, &ev.last_stats(), latency);
        }
    }
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    grid
}

/// Renders εKDV on `threads` worker threads, accumulating metrics.
///
/// Each thread gets an evaluator from `make_evaluator` and a sibling of
/// `metrics`; siblings merge back in band order after all threads join,
/// so every field except the latency histograms and wall time is
/// deterministic and equal to a sequential metered render.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn render_eps_parallel_metered<'t, F>(
    make_evaluator: F,
    raster: &RasterSpec,
    eps: f64,
    threads: usize,
    metrics: &mut RenderMetrics,
) -> DensityGrid
where
    F: Fn() -> RefineEvaluator<'t> + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let start = Instant::now();
    let width = raster.width();
    let height = raster.height() as usize;
    let mut values = vec![0.0f64; width as usize * height];

    let band_metrics = std::thread::scope(|scope| {
        let rows_per_band = height.div_ceil(threads);
        let mut rest: &mut [f64] = &mut values;
        let mut band_start = 0usize;
        let mut handles = Vec::new();
        while band_start < height {
            let rows = rows_per_band.min(height - band_start);
            let (band, tail) = rest.split_at_mut(rows * width as usize);
            rest = tail;
            let first_row = band_start;
            let make = &make_evaluator;
            let mut local = metrics.sibling();
            handles.push(scope.spawn(move || {
                let band_t0 = Instant::now();
                let mut ev = make();
                for (r, row_vals) in band.chunks_mut(width as usize).enumerate() {
                    let row = (first_row + r) as u32;
                    for (col, slot) in row_vals.iter_mut().enumerate() {
                        let q = raster.pixel_center(col as u32, row);
                        let t0 = Instant::now();
                        *slot = ev.eval_eps_with(&q, eps, &mut local.events);
                        let latency = t0.elapsed().as_nanos() as u64;
                        local.record_pixel(col as u32, row, &ev.last_stats(), latency);
                    }
                }
                local.set_wall_ns(band_t0.elapsed().as_nanos() as u64);
                local
            }));
            band_start += rows;
        }
        // Joining in spawn order keeps the merge deterministic.
        handles
            .into_iter()
            .map(|h| h.join().expect("render worker panicked"))
            .collect::<Vec<_>>()
    });

    for band in &band_metrics {
        metrics.merge(band);
    }
    metrics.threads = band_metrics.len() as u32;
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    DensityGrid::from_values(width, raster.height(), values)
}

/// Renders εKDV under a [`RenderBudget`] with metrics: degraded pixels
/// are counted ([`RenderMetrics::mark_degraded_pixel`]), dropping the
/// metrics' status to `Degraded`, and the returned
/// [`BudgetedRender`] carries the per-pixel achieved-error map.
pub fn render_eps_budgeted_metered(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: &mut RenderBudget,
    metrics: &mut RenderMetrics,
) -> Result<BudgetedRender, KdvError> {
    render_eps_budgeted_metered_probed(ev, raster, eps, budget, metrics, &mut NoProbe)
}

/// [`render_eps_budgeted_metered`] with an additional caller-supplied
/// probe teed alongside the metrics' event counters — the tile
/// server's hook for per-request work attribution (e.g. a
/// [`kdv_telemetry::DepthProfile`]). With [`NoProbe`] this
/// monomorphizes to exactly the un-probed renderer.
pub fn render_eps_budgeted_metered_probed<X: Probe>(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: &mut RenderBudget,
    metrics: &mut RenderMetrics,
    extra: &mut X,
) -> Result<BudgetedRender, KdvError> {
    let start = Instant::now();
    let mut grid = DensityGrid::zeros(raster.width(), raster.height());
    let mut error_map = DensityGrid::zeros(raster.width(), raster.height());
    let mut degraded_pixels = 0u64;
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let t0 = Instant::now();
            let e = ev.eval_eps_budgeted_with(
                &q,
                eps,
                budget,
                &mut TracingProbe::new(&mut metrics.events, &mut *extra),
            )?;
            let latency = t0.elapsed().as_nanos() as u64;
            grid.set(col, row, e.estimate());
            error_map.set(col, row, e.half_gap());
            metrics.record_pixel(col, row, &ev.last_stats(), latency);
            if e.exhausted {
                degraded_pixels += 1;
                metrics.mark_degraded_pixel();
            }
        }
    }
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    Ok(BudgetedRender {
        grid,
        error_map,
        degraded_pixels,
    })
}

/// Renders τKDV under a [`RenderBudget`] with metrics: undecided
/// pixels (bracket had not cleared τ at exhaustion) are counted as
/// degraded, exactly mirroring [`render_eps_budgeted_metered`]. This
/// is the tile server's τ path: per-tile budgets, live metrics.
pub fn render_tau_budgeted_metered(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    tau: f64,
    budget: &mut RenderBudget,
    metrics: &mut RenderMetrics,
) -> Result<BudgetedTauRender, KdvError> {
    render_tau_budgeted_metered_probed(ev, raster, tau, budget, metrics, &mut NoProbe)
}

/// [`render_tau_budgeted_metered`] with an additional caller-supplied
/// probe, exactly as [`render_eps_budgeted_metered_probed`].
pub fn render_tau_budgeted_metered_probed<X: Probe>(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    tau: f64,
    budget: &mut RenderBudget,
    metrics: &mut RenderMetrics,
    extra: &mut X,
) -> Result<BudgetedTauRender, KdvError> {
    let start = Instant::now();
    let mut mask = BinaryGrid::falses(raster.width(), raster.height());
    let mut undecided_map = BinaryGrid::falses(raster.width(), raster.height());
    let mut undecided = 0u64;
    for row in 0..raster.height() {
        for col in 0..raster.width() {
            let q = raster.pixel_center(col, row);
            let t0 = Instant::now();
            let t = ev.eval_tau_budgeted_with(
                &q,
                tau,
                budget,
                &mut TracingProbe::new(&mut metrics.events, &mut *extra),
            )?;
            let latency = t0.elapsed().as_nanos() as u64;
            mask.set(col, row, t.hot);
            undecided_map.set(col, row, !t.decided);
            metrics.record_pixel(col, row, &ev.last_stats(), latency);
            if !t.decided {
                undecided += 1;
                metrics.mark_degraded_pixel();
            }
        }
    }
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    Ok(BudgetedTauRender {
        mask,
        undecided_map,
        undecided,
    })
}

/// Renders εKDV on `threads` workers under one render-wide
/// [`RenderBudget`], with metrics and full fault containment.
///
/// Each band receives a proportional [`RenderBudget::split`] of the
/// remaining work cap (the deadline is shared); spent child budgets are
/// absorbed back so `budget` accounts the whole render. A panicking
/// worker's band is retried sequentially with a fresh evaluator and a
/// fresh budget share, recorded via
/// [`RenderMetrics::record_band_retry`]; a band failing twice yields
/// [`KdvError::WorkerPanicked`].
pub fn render_eps_parallel_budgeted_metered<'t, F>(
    make_evaluator: F,
    raster: &RasterSpec,
    eps: f64,
    threads: usize,
    budget: &mut RenderBudget,
    metrics: &mut RenderMetrics,
) -> Result<BudgetedRender, KdvError>
where
    F: Fn() -> RefineEvaluator<'t> + Sync,
{
    if threads == 0 {
        return Err(KdvError::invalid("threads", "need at least one thread"));
    }
    validate_eps(eps)?;
    let start = Instant::now();
    let width = raster.width() as usize;
    let height = raster.height() as usize;
    let mut values = vec![0.0f64; width * height];
    let mut errors = vec![0.0f64; width * height];

    let rows_per_band = height.div_ceil(threads);
    struct BandSpec {
        first_row: usize,
        rows: usize,
    }
    let mut layout = Vec::new();
    {
        let mut first_row = 0usize;
        while first_row < height {
            let rows = rows_per_band.min(height - first_row);
            layout.push(BandSpec { first_row, rows });
            first_row += rows;
        }
    }
    // All splits are taken before any child spends, so each band owns
    // its share of the *initial* remaining cap.
    let shares: Vec<RenderBudget> = layout
        .iter()
        .map(|b| budget.split(b.rows as f64 / height as f64))
        .collect();

    // One band's work: fill value/error slices, return its metrics,
    // spent budget, and degraded count. Shared by workers and retries.
    let run_band = |band: &BandSpec,
                    vals: &mut [f64],
                    errs: &mut [f64],
                    mut child: RenderBudget,
                    mut local: RenderMetrics|
     -> Result<(RenderMetrics, RenderBudget, u64), KdvError> {
        let band_t0 = Instant::now();
        let mut ev = make_evaluator();
        let mut degraded = 0u64;
        for (r, (row_vals, row_errs)) in vals
            .chunks_mut(width)
            .zip(errs.chunks_mut(width))
            .enumerate()
        {
            let row = (band.first_row + r) as u32;
            for col in 0..width {
                let q = raster.pixel_center(col as u32, row);
                let t0 = Instant::now();
                let e = ev.eval_eps_budgeted_with(&q, eps, &mut child, &mut local.events)?;
                let latency = t0.elapsed().as_nanos() as u64;
                row_vals[col] = e.estimate();
                row_errs[col] = e.half_gap();
                local.record_pixel(col as u32, row, &ev.last_stats(), latency);
                if e.exhausted {
                    degraded += 1;
                    local.mark_degraded_pixel();
                }
            }
        }
        local.set_wall_ns(band_t0.elapsed().as_nanos() as u64);
        Ok((local, child, degraded))
    };

    // Phase 1: parallel. Per band: Ok(worker result) or Err(panicked).
    #[allow(clippy::large_enum_variant)] // one value per band; size is irrelevant
    enum BandOutcome {
        Done(Result<(RenderMetrics, RenderBudget, u64), KdvError>),
        Panicked,
    }
    let outcomes: Vec<BandOutcome> = std::thread::scope(|scope| {
        let mut rest_v: &mut [f64] = &mut values;
        let mut rest_e: &mut [f64] = &mut errors;
        let mut handles = Vec::new();
        for (band, share) in layout.iter().zip(&shares) {
            let (vals, tail_v) = rest_v.split_at_mut(band.rows * width);
            let (errs, tail_e) = rest_e.split_at_mut(band.rows * width);
            rest_v = tail_v;
            rest_e = tail_e;
            let local = metrics.sibling();
            let child = share.clone();
            let run = &run_band;
            handles.push(scope.spawn(move || run(band, vals, errs, child, local)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(res) => BandOutcome::Done(res),
                Err(_) => BandOutcome::Panicked,
            })
            .collect()
    });

    // Phase 2: merge results in band order; retry panicked bands
    // sequentially with fresh evaluators and budget shares.
    let mut degraded_pixels = 0u64;
    let mut worker_count = 0u32;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let band = &layout[i];
        let result = match outcome {
            BandOutcome::Done(res) => res,
            BandOutcome::Panicked => {
                metrics.record_band_retry();
                let start_idx = band.first_row * width;
                let end = start_idx + band.rows * width;
                let vals = &mut values[start_idx..end];
                let errs = &mut errors[start_idx..end];
                let child = budget.split(band.rows as f64 / height as f64);
                let local = metrics.sibling();
                catch_unwind(AssertUnwindSafe(|| {
                    run_band(band, vals, errs, child, local)
                }))
                .map_err(|_| KdvError::WorkerPanicked { band: i })?
            }
        };
        let (local, child, degraded) = result?;
        metrics.merge(&local);
        budget.absorb(&child);
        degraded_pixels += degraded;
        worker_count += 1;
    }
    metrics.threads = worker_count;
    metrics.set_wall_ns(start.elapsed().as_nanos() as u64);
    Ok(BudgetedRender {
        grid: DensityGrid::from_values(raster.width(), raster.height(), values),
        error_map: DensityGrid::from_values(raster.width(), raster.height(), errors),
        degraded_pixels,
    })
}

/// Renders εKDV in the §6 progressive order with metrics and
/// time-to-quality checkpoints.
///
/// A checkpoint is recorded whenever the evaluated-pixel count reaches
/// a power of two, plus one final checkpoint — so the metrics document
/// traces quality-over-time (Fig 20/21) with logarithmically many
/// entries.
pub fn render_eps_progressive_metered(
    ev: &mut RefineEvaluator<'_>,
    raster: &RasterSpec,
    eps: f64,
    budget: Option<Duration>,
    metrics: &mut RenderMetrics,
) -> ProgressiveRender {
    let steps = progressive_order(raster.width(), raster.height());
    let mut canvas = ProgressiveCanvas::new(raster.width(), raster.height());
    let start = Instant::now();
    let mut evaluated = 0usize;
    for step in &steps {
        if let Some(b) = budget {
            if evaluated > 0 && start.elapsed() >= b {
                break;
            }
        }
        let q = raster.pixel_center(step.col, step.row);
        let t0 = Instant::now();
        let v = ev.eval_eps_with(&q, eps, &mut metrics.events);
        let latency = t0.elapsed().as_nanos() as u64;
        metrics.record_pixel(step.col, step.row, &ev.last_stats(), latency);
        evaluated += 1;
        canvas.apply(step, v);
        if evaluated.is_power_of_two() {
            metrics.checkpoint(evaluated as u64, start.elapsed().as_nanos() as u64);
        }
    }
    let wall = start.elapsed().as_nanos() as u64;
    if !evaluated.is_power_of_two() || evaluated == 0 {
        metrics.checkpoint(evaluated as u64, wall);
    }
    metrics.set_wall_ns(wall);
    ProgressiveRender {
        grid: canvas.into_grid(),
        complete: evaluated == steps.len(),
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::render_eps_parallel;
    use crate::render::{render_eps, render_eps_progressive, render_tau};
    use kdv_core::bandwidth::scott_gamma;
    use kdv_core::bounds::BoundFamily;
    use kdv_data::Dataset;
    use kdv_index::KdTree;

    fn setup() -> (kdv_geom::PointSet, kdv_core::kernel::Kernel, RasterSpec) {
        let ps = Dataset::Crime.generate(3000, 42);
        let kernel = kdv_core::kernel::Kernel::gaussian(scott_gamma(&ps).gamma);
        let raster = RasterSpec::covering(&ps, 20, 16, 0.05);
        (ps, kernel, raster)
    }

    #[test]
    fn metered_eps_render_is_bit_identical_to_plain() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut plain = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut metered = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut metrics = RenderMetrics::with_cost_map(raster.width(), raster.height());
        let a = render_eps(&mut plain, &raster, 0.01);
        let b = render_eps_metered(&mut metered, &raster, 0.01, &mut metrics);
        assert_eq!(a, b, "metering changed the rendered grid");
        assert_eq!(metrics.pixels, raster.num_pixels() as u64);
        assert!(metrics.events.heap_pops > 0);
        assert!(metrics.events.point_evals > 0);
        assert_eq!(metrics.iterations.count(), metrics.pixels);
    }

    #[test]
    fn metered_tau_render_is_identical_to_plain() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut plain = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut metered = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        // Pick a mid-range τ from a quick ε render.
        let grid = render_eps(
            &mut RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.05,
        );
        let (lo, hi) = grid.min_max().expect("non-empty");
        let tau = lo + 0.4 * (hi - lo);
        let mut metrics = RenderMetrics::new();
        let a = render_tau(&mut plain, &raster, tau);
        let b = render_tau_metered(&mut metered, &raster, tau, &mut metrics);
        assert_eq!(a, b);
        assert_eq!(metrics.pixels, raster.num_pixels() as u64);
    }

    #[test]
    fn parallel_metrics_merge_equals_sequential() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut seq_metrics = RenderMetrics::with_cost_map(raster.width(), raster.height());
        let mut seq_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let seq_grid = render_eps_metered(&mut seq_ev, &raster, 0.01, &mut seq_metrics);

        for threads in [1usize, 2, 4] {
            let mut par_metrics = RenderMetrics::with_cost_map(raster.width(), raster.height());
            let par_grid = render_eps_parallel_metered(
                || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
                &raster,
                0.01,
                threads,
                &mut par_metrics,
            );
            assert_eq!(par_grid, seq_grid, "{threads} threads changed the grid");
            // Deterministic fields must match the sequential render
            // exactly; latency histograms and wall time are wall-clock
            // noise and excluded by design.
            assert_eq!(par_metrics.events, seq_metrics.events);
            assert_eq!(par_metrics.pixels, seq_metrics.pixels);
            assert_eq!(par_metrics.iterations, seq_metrics.iterations);
            assert_eq!(par_metrics.cost_map(), seq_metrics.cost_map());
        }
    }

    #[test]
    fn parallel_metered_matches_unmetered_parallel() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let plain = render_eps_parallel(
            || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.01,
            3,
        );
        let mut metrics = RenderMetrics::new();
        let metered = render_eps_parallel_metered(
            || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.01,
            3,
            &mut metrics,
        );
        assert_eq!(plain, metered);
        assert_eq!(metrics.threads, 3);
    }

    #[test]
    fn cost_map_dims_match_raster_and_covers_pixels() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut metrics = RenderMetrics::with_cost_map(raster.width(), raster.height());
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        render_eps_metered(&mut ev, &raster, 0.01, &mut metrics);
        let map = metrics.cost_map().expect("cost map requested");
        assert_eq!(map.width(), raster.width());
        assert_eq!(map.height(), raster.height());
        // Every pixel did at least the root bound evaluation.
        let (lo, _) = map.min_max().expect("non-empty");
        assert!(lo >= 1.0, "cost map has an un-accounted pixel: min {lo}");
    }

    #[test]
    fn budgeted_metered_marks_degraded_status() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut metrics = RenderMetrics::new();
        let cap = 3 * raster.num_pixels() as u64;
        let mut budget = kdv_core::engine::RenderBudget::unlimited().with_max_work(cap);
        let out = render_eps_budgeted_metered(&mut ev, &raster, 1e-7, &mut budget, &mut metrics)
            .expect("valid input");
        assert!(out.degraded_pixels > 0);
        assert_eq!(metrics.status, kdv_telemetry::RenderStatus::Degraded);
        assert_eq!(metrics.degraded_pixels, out.degraded_pixels);
        assert_eq!(metrics.pixels, raster.num_pixels() as u64);

        // Unlimited budget: complete status, grid matches the plain
        // budgeted renderer.
        let mut ev2 = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut m2 = RenderMetrics::new();
        let mut unlimited = kdv_core::engine::RenderBudget::unlimited();
        let full = render_eps_budgeted_metered(&mut ev2, &raster, 0.01, &mut unlimited, &mut m2)
            .expect("valid input");
        assert_eq!(full.degraded_pixels, 0);
        assert_eq!(m2.status, kdv_telemetry::RenderStatus::Complete);
        let plain = render_eps(
            &mut RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.01,
        );
        // Budgeted path reports midpoints of the same brackets the plain
        // path averages, so the grids agree bit-for-bit.
        assert_eq!(full.grid, plain);
    }

    #[test]
    fn parallel_budgeted_metered_accounts_work_and_matches_sequential() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);

        let mut unlimited = kdv_core::engine::RenderBudget::unlimited();
        let mut metrics = RenderMetrics::with_cost_map(raster.width(), raster.height());
        let par = render_eps_parallel_budgeted_metered(
            || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.01,
            3,
            &mut unlimited,
            &mut metrics,
        )
        .expect("valid input");
        assert_eq!(par.degraded_pixels, 0);
        assert!(unlimited.work_done() > 0, "children absorbed into parent");

        let mut seq_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut seq_budget = kdv_core::engine::RenderBudget::unlimited();
        let mut seq_metrics = RenderMetrics::with_cost_map(raster.width(), raster.height());
        let seq = render_eps_budgeted_metered(
            &mut seq_ev,
            &raster,
            0.01,
            &mut seq_budget,
            &mut seq_metrics,
        )
        .expect("valid input");
        assert_eq!(par.grid, seq.grid, "threading must not change output");
        assert_eq!(par.error_map, seq.error_map);
        assert_eq!(metrics.events, seq_metrics.events);
        assert_eq!(metrics.cost_map(), seq_metrics.cost_map());
        assert_eq!(unlimited.work_done(), seq_budget.work_done());

        // A capped parallel render degrades but terminates, and the
        // budget never runs away past cap + per-band overshoot.
        let cap = 2 * raster.num_pixels() as u64;
        let mut capped = kdv_core::engine::RenderBudget::unlimited().with_max_work(cap);
        let mut m3 = RenderMetrics::new();
        let deg = render_eps_parallel_budgeted_metered(
            || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            1e-7,
            3,
            &mut capped,
            &mut m3,
        )
        .expect("valid input");
        assert!(deg.degraded_pixels > 0);
        assert_eq!(m3.status, kdv_telemetry::RenderStatus::Degraded);
    }

    #[test]
    fn probed_budgeted_render_is_bit_identical_and_attributes_depths() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);

        let mut plain_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut plain_budget = kdv_core::engine::RenderBudget::unlimited();
        let mut plain_metrics = RenderMetrics::new();
        let plain = render_eps_budgeted_metered(
            &mut plain_ev,
            &raster,
            0.01,
            &mut plain_budget,
            &mut plain_metrics,
        )
        .expect("valid input");

        let mut probed_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut probed_budget = kdv_core::engine::RenderBudget::unlimited();
        let mut probed_metrics = RenderMetrics::new();
        let mut depth = kdv_telemetry::DepthProfile::new();
        let probed = render_eps_budgeted_metered_probed(
            &mut probed_ev,
            &raster,
            0.01,
            &mut probed_budget,
            &mut probed_metrics,
            &mut depth,
        )
        .expect("valid input");

        // The extra probe only observes: grids and shared counters are
        // bit-identical to the un-probed render.
        assert_eq!(plain.grid, probed.grid);
        assert_eq!(plain.error_map, probed.error_map);
        assert_eq!(plain_metrics.events, probed_metrics.events);
        // Every heap pop lands in exactly one depth bin.
        assert_eq!(depth.total(), probed_metrics.events.heap_pops);
        assert!(depth.nonzero().len() > 1, "work spans multiple depths");
    }

    #[test]
    fn probed_tau_render_attributes_every_pop() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let grid = render_eps(
            &mut RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.05,
        );
        let (lo, hi) = grid.min_max().expect("non-empty");
        let tau = lo + 0.4 * (hi - lo);

        let mut ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut budget = kdv_core::engine::RenderBudget::unlimited();
        let mut metrics = RenderMetrics::new();
        let mut depth = kdv_telemetry::DepthProfile::new();
        let out = render_tau_budgeted_metered_probed(
            &mut ev,
            &raster,
            tau,
            &mut budget,
            &mut metrics,
            &mut depth,
        )
        .expect("valid input");
        assert_eq!(out.undecided, 0);
        assert_eq!(depth.total(), metrics.events.heap_pops);
    }

    #[test]
    fn progressive_metered_matches_plain_and_checkpoints_are_monotone() {
        let (ps, kernel, raster) = setup();
        let tree = KdTree::build_default(&ps);
        let mut a = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let mut b = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let plain = render_eps_progressive(&mut a, &raster, 0.01, None);
        let mut metrics = RenderMetrics::new();
        let metered = render_eps_progressive_metered(&mut b, &raster, 0.01, None, &mut metrics);
        assert_eq!(plain, metered);
        assert!(metered.complete);

        let cps = &metrics.checkpoints;
        assert!(!cps.is_empty());
        assert_eq!(
            cps.last().expect("final checkpoint").pixels,
            raster.num_pixels() as u64
        );
        for w in cps.windows(2) {
            assert!(w[1].pixels > w[0].pixels, "pixel counts must increase");
            assert!(w[1].elapsed_ns >= w[0].elapsed_ns, "time must not go back");
        }
        // Power-of-two cadence: log₂(pixels) + final ≥ entries ≥ 2.
        assert!(cps.len() >= 2);
        assert!(cps.len() as u32 <= 64);
    }
}

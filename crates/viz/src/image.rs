//! Dependency-free image output (binary PPM / PGM).
//!
//! PPM (`P6`) and PGM (`P5`) are the simplest raster formats that every
//! image viewer and converter understands; using them keeps the
//! workspace inside its approved dependency set.

use std::fs;
use std::io;
use std::path::Path;

/// An 8-bit RGB raster image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    width: u32,
    height: u32,
    /// Row-major RGB triples.
    data: Vec<u8>,
}

impl RgbImage {
    /// Creates a black image.
    ///
    /// # Panics
    /// Panics on zero dimensions.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Self {
            width,
            height,
            data: vec![0; width as usize * height as usize * 3],
        }
    }

    /// Image width.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel color at `(col, row)`.
    #[inline]
    pub fn get(&self, col: u32, row: u32) -> [u8; 3] {
        let i = (row as usize * self.width as usize + col as usize) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Sets the pixel at `(col, row)`.
    #[inline]
    pub fn set(&mut self, col: u32, row: u32, rgb: [u8; 3]) {
        let i = (row as usize * self.width as usize + col as usize) * 3;
        self.data[i..i + 3].copy_from_slice(&rgb);
    }

    /// Serializes to binary PPM (`P6`).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.data);
        out
    }

    /// Writes a binary PPM file.
    pub fn save_ppm(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_ppm())
    }

    /// Serializes the red channel as binary PGM (`P5`) — handy for
    /// grayscale renders where all channels are equal.
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(self.data.chunks_exact(3).map(|px| px[0]));
        out
    }

    /// Writes a binary PGM file.
    pub fn save_pgm(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_pgm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixels_roundtrip() {
        let mut img = RgbImage::new(3, 2);
        img.set(2, 1, [10, 20, 30]);
        assert_eq!(img.get(2, 1), [10, 20, 30]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = RgbImage::new(4, 3);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(ppm.len(), 11 + 4 * 3 * 3);
    }

    #[test]
    fn pgm_takes_red_channel() {
        let mut img = RgbImage::new(2, 1);
        img.set(0, 0, [7, 100, 200]);
        img.set(1, 0, [9, 0, 0]);
        let pgm = img.to_pgm();
        assert!(pgm.starts_with(b"P5\n2 1\n255\n"));
        assert_eq!(&pgm[pgm.len() - 2..], &[7, 9]);
    }

    #[test]
    fn save_and_size_on_disk() {
        let dir = std::env::temp_dir().join("kdv_img_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("t.ppm");
        let img = RgbImage::new(5, 5);
        img.save_ppm(&path).expect("save");
        let len = std::fs::metadata(&path).expect("stat").len();
        assert_eq!(len as usize, img.to_ppm().len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_panics() {
        RgbImage::new(0, 4);
    }
}

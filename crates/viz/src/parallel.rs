//! Multi-threaded rendering — the paper's future-work extension (§8).
//!
//! The paper's headline results are deliberately single-machine,
//! single-core ("without using GPU and parallel computation"), and every
//! figure reproduction in this workspace honors that. This module adds
//! the obvious next step for library users: pixel rows are embarrassingly
//! parallel, so a handful of `std::thread`s with per-thread evaluators
//! scales rendering near-linearly. No shared mutable state — each thread
//! builds its own evaluator from the factory and writes disjoint rows.

use kdv_core::method::PixelEvaluator;
use kdv_core::raster::{DensityGrid, RasterSpec};

/// Renders a full εKDV grid using `threads` worker threads.
///
/// `make_evaluator` is called once per thread to build an independent
/// evaluator (evaluators are stateful and `!Sync` by design).
///
/// # Panics
/// Panics if `threads == 0`.
pub fn render_eps_parallel<'t, E, F>(
    make_evaluator: F,
    raster: &RasterSpec,
    eps: f64,
    threads: usize,
) -> DensityGrid
where
    E: PixelEvaluator + 't,
    F: Fn() -> E + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let width = raster.width();
    let height = raster.height() as usize;
    let mut values = vec![0.0f64; width as usize * height];

    std::thread::scope(|scope| {
        // Split the value buffer into disjoint row bands, one per chunk.
        let rows_per_band = height.div_ceil(threads);
        let mut rest: &mut [f64] = &mut values;
        let mut band_start = 0usize;
        let mut handles = Vec::new();
        while band_start < height {
            let rows = rows_per_band.min(height - band_start);
            let (band, tail) = rest.split_at_mut(rows * width as usize);
            rest = tail;
            let first_row = band_start;
            let make = &make_evaluator;
            handles.push(scope.spawn(move || {
                let mut ev = make();
                for (r, row_vals) in band.chunks_mut(width as usize).enumerate() {
                    let row = (first_row + r) as u32;
                    for (col, slot) in row_vals.iter_mut().enumerate() {
                        let q = raster.pixel_center(col as u32, row);
                        *slot = ev.eval_eps(&q, eps);
                    }
                }
            }));
            band_start += rows;
        }
        for h in handles {
            h.join().expect("render worker panicked");
        }
    });

    DensityGrid::from_values(width, raster.height(), values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render_eps;
    use kdv_core::bandwidth::scott_gamma;
    use kdv_core::bounds::BoundFamily;
    use kdv_core::engine::RefineEvaluator;
    use kdv_core::kernel::Kernel;
    use kdv_data::Dataset;
    use kdv_index::KdTree;

    #[test]
    fn parallel_render_matches_sequential() {
        let ps = Dataset::Home.generate(3000, 5);
        let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
        let tree = KdTree::build_default(&ps);
        let raster = kdv_core::raster::RasterSpec::covering(&ps, 20, 15, 0.05);

        let mut seq_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let seq = render_eps(&mut seq_ev, &raster, 0.01);
        for threads in [1, 2, 4] {
            let par = render_eps_parallel(
                || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
                &raster,
                0.01,
                threads,
            );
            assert_eq!(par, seq, "thread count {threads} changed the output");
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let ps = Dataset::Hep.generate(500, 6);
        let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
        let tree = KdTree::build_default(&ps);
        let raster = kdv_core::raster::RasterSpec::covering(&ps, 8, 3, 0.05);
        let grid = render_eps_parallel(
            || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.05,
            16,
        );
        assert_eq!(grid.width(), 8);
        assert_eq!(grid.height(), 3);
    }
}

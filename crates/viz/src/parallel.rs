//! Multi-threaded rendering — the paper's future-work extension (§8).
//!
//! The paper's headline results are deliberately single-machine,
//! single-core ("without using GPU and parallel computation"), and every
//! figure reproduction in this workspace honors that. This module adds
//! the obvious next step for library users: pixel rows are embarrassingly
//! parallel, so a handful of `std::thread`s with per-thread evaluators
//! scales rendering near-linearly. No shared mutable state — each thread
//! builds its own evaluator from the factory and writes disjoint rows.
//!
//! Fault containment: a panic in one worker must not abort the whole
//! render (in a service, that turns one poisoned pixel into a lost
//! frame). Each band's panic is caught at `join`, the band is retried
//! *sequentially* on the caller's thread, and only a second failure —
//! the fault is deterministic, not thread-related — propagates. The
//! chaos suite drives this path with `kdv_telemetry`'s fault probe.

use kdv_core::error::KdvError;
use kdv_core::method::PixelEvaluator;
use kdv_core::raster::{DensityGrid, RasterSpec};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A parallel render's result plus its fault-containment diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelOutcome {
    /// The rendered grid.
    pub grid: DensityGrid,
    /// Bands whose worker panicked and were recomputed sequentially.
    pub band_retries: u32,
}

/// One band's extent: rows `[first_row, first_row + rows)`.
#[derive(Debug, Clone, Copy)]
struct Band {
    first_row: usize,
    rows: usize,
}

/// Splits `height` rows into at most `threads` contiguous bands.
fn bands(height: usize, threads: usize) -> Vec<Band> {
    let rows_per_band = height.div_ceil(threads);
    let mut out = Vec::new();
    let mut first_row = 0usize;
    while first_row < height {
        let rows = rows_per_band.min(height - first_row);
        out.push(Band { first_row, rows });
        first_row += rows;
    }
    out
}

/// Fills one band's value slice (shared by workers and retries).
fn fill_band<E: PixelEvaluator>(
    ev: &mut E,
    band: Band,
    slice: &mut [f64],
    raster: &RasterSpec,
    eps: f64,
) {
    let width = raster.width() as usize;
    for (r, row_vals) in slice.chunks_mut(width).enumerate() {
        let row = (band.first_row + r) as u32;
        for (col, slot) in row_vals.iter_mut().enumerate() {
            let q = raster.pixel_center(col as u32, row);
            *slot = ev.eval_eps(&q, eps);
        }
    }
}

/// Renders a full εKDV grid using `threads` worker threads.
///
/// `make_evaluator` is called once per thread to build an independent
/// evaluator (evaluators are stateful and `!Sync` by design).
///
/// A panicking worker is contained: its band is retried sequentially,
/// and the render succeeds if the retry does (see the module docs).
///
/// # Panics
/// Panics if `threads == 0`, or if a band fails *twice* — the original
/// panic payload is re-raised so deterministic bugs stay loud.
pub fn render_eps_parallel<'t, E, F>(
    make_evaluator: F,
    raster: &RasterSpec,
    eps: f64,
    threads: usize,
) -> DensityGrid
where
    E: PixelEvaluator + 't,
    F: Fn() -> E + Sync,
{
    assert!(threads > 0, "need at least one thread");
    match try_render_eps_parallel(make_evaluator, raster, eps, threads) {
        Ok(outcome) => outcome.grid,
        Err((_, Some(payload))) => resume_unwind(payload),
        Err((e, None)) => panic!("{e}"),
    }
}

/// [`render_eps_parallel`] with full fault containment: worker panics
/// are retried sequentially and *reported* ([`ParallelOutcome`]); a
/// band failing twice yields `KdvError::WorkerPanicked` (with the
/// retry's panic payload so callers may re-raise) instead of aborting.
///
/// Returns `Err` with [`KdvError::InvalidParameter`] when
/// `threads == 0`.
#[allow(clippy::type_complexity)]
pub fn try_render_eps_parallel<'t, E, F>(
    make_evaluator: F,
    raster: &RasterSpec,
    eps: f64,
    threads: usize,
) -> Result<ParallelOutcome, (KdvError, Option<Box<dyn std::any::Any + Send>>)>
where
    E: PixelEvaluator + 't,
    F: Fn() -> E + Sync,
{
    if threads == 0 {
        return Err((
            KdvError::invalid("threads", "need at least one thread"),
            None,
        ));
    }
    let width = raster.width() as usize;
    let height = raster.height() as usize;
    let mut values = vec![0.0f64; width * height];
    let layout = bands(height, threads);

    // Phase 1: parallel, one band per worker; collect panics per band.
    let failed: Vec<usize> = std::thread::scope(|scope| {
        let mut rest: &mut [f64] = &mut values;
        let mut handles = Vec::new();
        for band in &layout {
            let (slice, tail) = rest.split_at_mut(band.rows * width);
            rest = tail;
            let make = &make_evaluator;
            handles.push(scope.spawn(move || {
                let mut ev = make();
                fill_band(&mut ev, *band, slice, raster, eps);
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .filter_map(|(i, h)| h.join().is_err().then_some(i))
            .collect()
    });

    // Phase 2: sequential retry of failed bands on this thread. The
    // retry uses a fresh evaluator — a panic can leave the worker's one
    // in an arbitrary internal state.
    let mut band_retries = 0u32;
    for &i in &failed {
        let band = layout[i];
        let start = band.first_row * width;
        let slice = &mut values[start..start + band.rows * width];
        band_retries += 1;
        let retry = catch_unwind(AssertUnwindSafe(|| {
            let mut ev = make_evaluator();
            fill_band(&mut ev, band, slice, raster, eps);
        }));
        if let Err(payload) = retry {
            return Err((KdvError::WorkerPanicked { band: i }, Some(payload)));
        }
    }

    Ok(ParallelOutcome {
        grid: DensityGrid::from_values(raster.width(), raster.height(), values),
        band_retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render_eps;
    use kdv_core::bandwidth::scott_gamma;
    use kdv_core::bounds::BoundFamily;
    use kdv_core::engine::RefineEvaluator;
    use kdv_core::kernel::Kernel;
    use kdv_data::Dataset;
    use kdv_index::KdTree;

    #[test]
    fn parallel_render_matches_sequential() {
        let ps = Dataset::Home.generate(3000, 5);
        let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
        let tree = KdTree::build_default(&ps);
        let raster = kdv_core::raster::RasterSpec::covering(&ps, 20, 15, 0.05);

        let mut seq_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let seq = render_eps(&mut seq_ev, &raster, 0.01);
        for threads in [1, 2, 4] {
            let par = render_eps_parallel(
                || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
                &raster,
                0.01,
                threads,
            );
            assert_eq!(par, seq, "thread count {threads} changed the output");
        }
    }

    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Wraps a real evaluator; instance 0 panics on its first pixel,
    /// later instances (the sequential retries) work.
    struct FlakyOnce<'a> {
        inner: RefineEvaluator<'a>,
        poisoned: bool,
    }

    impl PixelEvaluator for FlakyOnce<'_> {
        fn eval_eps(&mut self, q: &[f64], eps: f64) -> f64 {
            assert!(!self.poisoned, "injected fault: poisoned worker");
            self.inner.eval_eps(q, eps)
        }
        fn eval_tau(&mut self, q: &[f64], tau: f64) -> bool {
            self.inner.eval_tau(q, tau)
        }
    }

    #[test]
    fn worker_panic_is_contained_and_band_retried() {
        let ps = Dataset::Crime.generate(2000, 8);
        let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
        let tree = KdTree::build_default(&ps);
        let raster = kdv_core::raster::RasterSpec::covering(&ps, 16, 12, 0.05);
        let mut seq_ev = RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic);
        let seq = render_eps(&mut seq_ev, &raster, 0.01);

        let instances = AtomicUsize::new(0);
        let outcome = try_render_eps_parallel(
            || FlakyOnce {
                inner: RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
                poisoned: instances.fetch_add(1, Ordering::SeqCst) == 0,
            },
            &raster,
            0.01,
            3,
        )
        .expect("retry must recover the band");
        assert_eq!(outcome.band_retries, 1, "exactly one band was poisoned");
        assert_eq!(outcome.grid, seq, "retried band must be correct");
    }

    #[test]
    fn deterministic_panic_is_reported_not_swallowed() {
        let ps = Dataset::Crime.generate(500, 9);
        let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
        let tree = KdTree::build_default(&ps);
        let raster = kdv_core::raster::RasterSpec::covering(&ps, 8, 6, 0.05);
        // Every instance is poisoned → the retry fails too.
        let err = try_render_eps_parallel(
            || FlakyOnce {
                inner: RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
                poisoned: true,
            },
            &raster,
            0.01,
            2,
        )
        .expect_err("double failure must be an error");
        assert!(matches!(err.0, kdv_core::KdvError::WorkerPanicked { .. }));
        assert!(err.1.is_some(), "panic payload preserved for re-raise");
    }

    #[test]
    fn zero_threads_is_an_error_not_a_panic() {
        let ps = Dataset::Crime.generate(100, 10);
        let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
        let tree = KdTree::build_default(&ps);
        let raster = kdv_core::raster::RasterSpec::covering(&ps, 4, 4, 0.05);
        let err = try_render_eps_parallel(
            || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.01,
            0,
        )
        .expect_err("zero threads rejected");
        assert!(matches!(
            err.0,
            kdv_core::KdvError::InvalidParameter {
                name: "threads",
                ..
            }
        ));
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let ps = Dataset::Hep.generate(500, 6);
        let kernel = Kernel::gaussian(scott_gamma(&ps).gamma);
        let tree = KdTree::build_default(&ps);
        let raster = kdv_core::raster::RasterSpec::covering(&ps, 8, 3, 0.05);
        let grid = render_eps_parallel(
            || RefineEvaluator::new(&tree, kernel, BoundFamily::Quadratic),
            &raster,
            0.05,
            16,
        );
        assert_eq!(grid.width(), 8);
        assert_eq!(grid.height(), 3);
    }
}

//! Dependency-free PNG encoding (stored-deflate).
//!
//! PPM is simple but not universally viewable; PNG is. This encoder
//! writes valid, if uncompressed, PNGs: zlib streams made of *stored*
//! deflate blocks (RFC 1951 §3.2.4) need no compression machinery, only
//! CRC-32 (chunks) and Adler-32 (zlib) checksums — both implemented and
//! tested here. Output is ~`3·w·h` bytes, same as PPM.

use crate::image::RgbImage;
use std::fs;
use std::io;
use std::path::Path;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, slot) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 of a byte stream (PNG chunk checksum).
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Adler-32 of a byte stream (zlib checksum).
pub fn adler32(data: &[u8]) -> u32 {
    const MOD: u32 = 65_521;
    let mut a = 1u32;
    let mut b = 0u32;
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

fn push_chunk(out: &mut Vec<u8>, kind: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(payload);
    let mut crc_input = Vec::with_capacity(4 + payload.len());
    crc_input.extend_from_slice(kind);
    crc_input.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&crc_input).to_be_bytes());
}

/// Encodes the image as a PNG byte stream (8-bit RGB, no compression).
pub fn encode(img: &RgbImage) -> Vec<u8> {
    let (w, h) = (img.width(), img.height());
    // Raw scanlines: one filter byte (0 = None) then RGB triples.
    let stride = 1 + 3 * w as usize;
    let mut raw = Vec::with_capacity(stride * h as usize);
    for row in 0..h {
        raw.push(0u8);
        for col in 0..w {
            raw.extend_from_slice(&img.get(col, row));
        }
    }

    // zlib stream: header, stored-deflate blocks, Adler-32.
    let mut z = Vec::with_capacity(raw.len() + raw.len() / 65_535 * 5 + 16);
    z.push(0x78); // CMF: deflate, 32K window
    z.push(0x01); // FLG: no dict, fastest (FCHECK makes it a multiple of 31)
    let mut chunks = raw.chunks(65_535).peekable();
    while let Some(block) = chunks.next() {
        let last = chunks.peek().is_none();
        z.push(u8::from(last)); // BFINAL + BTYPE=00 (stored)
        let len = block.len() as u16;
        z.extend_from_slice(&len.to_le_bytes());
        z.extend_from_slice(&(!len).to_le_bytes());
        z.extend_from_slice(block);
    }
    z.extend_from_slice(&adler32(&raw).to_be_bytes());

    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&w.to_be_bytes());
    ihdr.extend_from_slice(&h.to_be_bytes());
    ihdr.extend_from_slice(&[8, 2, 0, 0, 0]); // 8-bit, RGB, deflate, none, none

    let mut out = Vec::with_capacity(z.len() + 128);
    out.extend_from_slice(b"\x89PNG\r\n\x1a\n");
    push_chunk(&mut out, b"IHDR", &ihdr);
    push_chunk(&mut out, b"IDAT", &z);
    push_chunk(&mut out, b"IEND", &[]);
    out
}

/// Writes the image as a PNG file.
pub fn save_png(img: &RgbImage, path: &Path) -> io::Result<()> {
    fs::write(path, encode(img))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector plus the famous IEND chunk CRC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"IEND"), 0xae42_6082);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn adler32_known_vectors() {
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11e6_0398);
    }

    #[test]
    fn png_structure_is_valid() {
        let mut img = RgbImage::new(3, 2);
        img.set(0, 0, [255, 0, 0]);
        img.set(2, 1, [0, 0, 255]);
        let png = encode(&img);
        assert!(png.starts_with(b"\x89PNG\r\n\x1a\n"));
        // IHDR directly after the signature, 13-byte payload.
        assert_eq!(&png[8..16], &[0, 0, 0, 13, b'I', b'H', b'D', b'R']);
        // Width 3, height 2, big-endian.
        assert_eq!(&png[16..24], &[0, 0, 0, 3, 0, 0, 0, 2]);
        // Ends with the canonical IEND chunk.
        assert_eq!(
            &png[png.len() - 12..],
            &[0, 0, 0, 0, b'I', b'E', b'N', b'D', 0xae, 0x42, 0x60, 0x82]
        );
    }

    #[test]
    fn zlib_stream_decodes_as_stored_blocks() {
        // Decode our own stored-deflate stream and compare with the raw
        // scanlines — a self-contained round trip.
        let mut img = RgbImage::new(2, 2);
        img.set(1, 1, [9, 8, 7]);
        let png = encode(&img);
        // Locate the IDAT payload.
        let idat_len = u32::from_be_bytes(png[33..37].try_into().expect("len")) as usize;
        assert_eq!(&png[37..41], b"IDAT");
        let z = &png[41..41 + idat_len];
        assert_eq!(z[0], 0x78);
        // Stored block: final flag, LE length, complement, then data.
        assert_eq!(z[2], 1);
        let len = u16::from_le_bytes([z[3], z[4]]) as usize;
        let nlen = u16::from_le_bytes([z[5], z[6]]);
        assert_eq!(nlen, !(len as u16));
        let data = &z[7..7 + len];
        // Expected raw: 2 rows × (filter byte + 2 RGB triples).
        let expect = [
            0u8, 0, 0, 0, 0, 0, 0, // row 0
            0, 0, 0, 0, 9, 8, 7, // row 1
        ];
        assert_eq!(data, expect);
        // Adler of the raw scanlines closes the stream.
        let adler = u32::from_be_bytes(z[7 + len..11 + len].try_into().expect("adler"));
        assert_eq!(adler, adler32(&expect));
    }

    #[test]
    fn large_image_splits_into_multiple_blocks() {
        // > 65535 raw bytes → at least two stored blocks.
        let img = RgbImage::new(200, 120); // 200*3+1 = 601 B/row × 120 = 72120 B
        let png = encode(&img);
        let idat_len = u32::from_be_bytes(png[33..37].try_into().expect("len")) as usize;
        let z = &png[41..41 + idat_len];
        // First block must not be final.
        assert_eq!(z[2], 0);
    }

    #[test]
    fn save_roundtrip() {
        let dir = std::env::temp_dir().join("kdv_png_test");
        std::fs::create_dir_all(&dir).expect("tmp");
        let path = dir.join("t.png");
        save_png(&RgbImage::new(4, 4), &path).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        assert!(bytes.starts_with(b"\x89PNG"));
        let _ = std::fs::remove_file(&path);
    }
}

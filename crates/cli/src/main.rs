//! `kdv` — command-line kernel density visualization.
//!
//! ```text
//! kdv synth --dataset crime --n 100000 --out crime.csv
//! kdv stats crime.csv
//! kdv render crime.csv --out map.ppm --eps 0.01 --width 640 --height 480
//! kdv render crime.csv --threads 4 --metrics m.json --cost-map cost.ppm --verbose
//! kdv hotspot crime.csv --out hot.ppm --tau-sigma 0.1
//! kdv progressive crime.csv --out quick.ppm --budget-ms 500
//! kdv sample crime.csv --out coreset.csv --eps 0.02 --delta 0.2
//! kdv serve crime.csv --addr 127.0.0.1:8080 --tile-size 256 --max-z 5
//! ```
//!
//! All subcommands read 2-D CSV points (`x,y` per line, optional third
//! weight column with `--weights`); rendering uses QUAD's quadratic
//! bounds with Scott's-rule parameters unless overridden.

mod args;
mod commands;

use std::process::ExitCode;

fn usage() -> &'static str {
    "kdv — QUAD-accelerated kernel density visualization

usage: kdv <command> [args]

commands:
  render       εKDV heat map from CSV points (PPM out)
  hotspot      τKDV two-color hotspot map (PPM out)
  progressive  time-budgeted coarse-to-fine render (PPM out)
  sample       Z-order (ε, δ) coreset extraction (CSV out)
  index        build / inspect / verify KDVS index snapshots
  serve        HTTP tile server: cached z/x/y pyramid + /metrics
  router       consistent-hash reverse proxy over running shards
  cluster      spawn N shards + router: one-command scale-out
  stats        dataset statistics and recommended parameters
  synth        generate an emulated benchmark dataset (CSV out)

run `kdv <command> --help` for flags
"
}

/// Exit code for usage and input-validation errors (the conventional
/// "incorrect usage" code; 1 is reserved for internal failures).
const EXIT_USAGE: u8 = 2;

fn main() -> ExitCode {
    // Every malformed input is supposed to surface as a structured
    // `Err` long before anything can panic; this guard is the last
    // line of defense so that even a bug reports one line instead of
    // a backtrace. The hook stays silent — the catch site prints.
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::panic::catch_unwind(run);
    match outcome {
        Ok(code) => code,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("unknown panic");
            eprintln!("internal error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first() else {
        eprint!("{}", usage());
        return ExitCode::from(EXIT_USAGE);
    };
    let rest = &raw[1..];
    let parsed = match args::Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let result = match command.as_str() {
        "render" => commands::render(&parsed),
        "hotspot" => commands::hotspot(&parsed),
        "progressive" => commands::progressive(&parsed),
        "sample" => commands::sample(&parsed),
        "index" => commands::index(&parsed),
        "serve" => commands::serve(&parsed),
        "router" => commands::router(&parsed),
        "cluster" => commands::cluster(&parsed),
        "stats" => commands::stats(&parsed),
        "synth" => commands::synth(&parsed),
        "--help" | "-h" | "help" => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    };
    match result {
        Ok(()) => {
            let unknown = parsed.unknown_flags();
            if !unknown.is_empty() {
                eprintln!("warning: unused flags: --{}", unknown.join(", --"));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

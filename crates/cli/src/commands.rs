//! Subcommand implementations.

use crate::args::Args;
use kdv_cluster::{Router, RouterConfig, Supervisor, SupervisorConfig};
use kdv_core::bandwidth::{try_scott_gamma_for, Bandwidth};
use kdv_core::bounds::BoundFamily;
use kdv_core::engine::{BudgetPolicy, RefineEvaluator, RenderBudget};
use kdv_core::kernel::{Kernel, KernelType};
use kdv_core::query::{
    validate_eps, validate_gamma, validate_raster_dims, validate_tau, validate_threads,
};
use kdv_core::raster::RasterSpec;
use kdv_core::threshold::estimate_levels;
use kdv_data::{csv, sanitize, Dataset};
use kdv_geom::PointSet;
use kdv_index::KdTree;
use kdv_pyramid::{geometric_ladder, PyramidBuilder, PyramidConfig};
use kdv_sampling::{sample_size_for, zorder_sample};
use kdv_server::{ServerConfig, TileServer};
use kdv_store::{Snapshot, SnapshotWriter};
use kdv_telemetry::RenderMetrics;
use kdv_viz::colormap::{render_binary, ColorMap};
use kdv_viz::metered::{
    render_eps_budgeted_metered, render_eps_metered, render_eps_parallel_budgeted_metered,
    render_eps_parallel_metered, render_eps_progressive_metered, render_tau_metered,
};
use kdv_viz::parallel::render_eps_parallel;
use kdv_viz::render::{render_eps, render_eps_progressive, render_tau};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// SIGTERM-to-flag plumbing for the long-running serving commands
/// (`serve`, `router`, `cluster`): orchestrators (and the cluster
/// supervisor itself) stop services with SIGTERM and expect a drain,
/// not an abort. The handler only flips an atomic — every
/// async-signal-unsafe consequence (closing sockets, fsyncing WALs)
/// runs on the main thread's poll loop.
#[cfg(unix)]
mod term {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        // SAFETY: installing a handler that only stores to a static
        // atomic — async-signal-safe by construction.
        unsafe {
            signal(SIGTERM, on_term as *const () as usize);
        }
    }

    pub fn requested() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod term {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

/// Loaded, weight-normalized input plus derived parameters.
struct Input {
    points: PointSet,
    kernel: Kernel,
    /// `None` when Scott's rule degenerates (zero spread on every
    /// axis); `--gamma` then becomes mandatory.
    bandwidth: Option<Bandwidth>,
}

fn kernel_type(name: &str) -> Result<KernelType, String> {
    Ok(match name {
        "gaussian" => KernelType::Gaussian,
        "triangular" => KernelType::Triangular,
        "cosine" => KernelType::Cosine,
        "exponential" => KernelType::Exponential,
        "epanechnikov" => KernelType::Epanechnikov,
        "quartic" => KernelType::Quartic,
        other => return Err(format!("unknown kernel {other:?}")),
    })
}

fn load_input(args: &Args) -> Result<Input, String> {
    let [path] = args.positional() else {
        return Err("expected exactly one input CSV path".into());
    };
    load_input_from(Path::new(path), args)
}

/// [`load_input`] with the CSV path supplied by the caller (the `index`
/// subcommands carry their own positional grammar).
fn load_input_from(path: &Path, args: &Args) -> Result<Input, String> {
    let has_weights = args.has("weights");
    let points = csv::load(path, 2, has_weights).map_err(|e| e.to_string())?;
    if points.is_empty() {
        return Err("input contains no points".into());
    }
    // The CSV parser already rejects non-finite fields; this re-check
    // guards every other path into `Input` (and future loaders).
    sanitize::validate(&points).map_err(|e| e.to_string())?;
    let ty = kernel_type(args.get("kernel").unwrap_or("gaussian"))?;
    let bandwidth = try_scott_gamma_for(&points, ty).ok();
    let gamma = match &bandwidth {
        Some(bw) => args.get_parsed("gamma", bw.gamma)?,
        // Scott degenerated (all points identical): the user must pick
        // the kernel scale, but everything downstream still works.
        None => match args.get("gamma") {
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --gamma: cannot parse {v:?}"))?,
            None => {
                return Err(
                    "dataset has zero spread on every axis, so Scott's rule cannot pick \
                     a bandwidth; pass --gamma to set the kernel scale explicitly"
                        .into(),
                )
            }
        },
    };
    validate_gamma(gamma).map_err(|e| e.to_string())?;
    let mut points = points;
    if !has_weights {
        let n = points.len() as f64;
        points.scale_weights(1.0 / n);
    }
    Ok(Input {
        points,
        kernel: Kernel::new(ty, gamma),
        bandwidth,
    })
}

fn raster_for(args: &Args, points: &PointSet) -> Result<RasterSpec, String> {
    let width = args.get_parsed("width", 640u32)?;
    let height = args.get_parsed("height", 480u32)?;
    validate_raster_dims(width, height).map_err(|e| e.to_string())?;
    RasterSpec::try_covering(points, width, height, 0.03).map_err(|e| e.to_string())
}

/// Render-budget flags shared by the εKDV render path. `None` when no
/// budget flag was given (the unbudgeted renderers run).
fn budget_from_args(args: &Args) -> Result<Option<RenderBudget>, String> {
    let max_work: Option<u64> = match args.get("max-work") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("flag --max-work: cannot parse {v:?}"))?,
        ),
        None => None,
    };
    let deadline_ms: Option<u64> = match args.get("deadline-ms") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("flag --deadline-ms: cannot parse {v:?}"))?,
        ),
        None => None,
    };
    if max_work == Some(0) {
        return Err("--max-work must be positive".into());
    }
    if deadline_ms == Some(0) {
        return Err("--deadline-ms must be positive".into());
    }
    if max_work.is_none() && deadline_ms.is_none() {
        return Ok(None);
    }
    let mut budget = RenderBudget::unlimited();
    if let Some(units) = max_work {
        budget = budget.with_max_work(units);
    }
    if let Some(ms) = deadline_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    Ok(Some(budget))
}

fn out_path(args: &Args, default: &str) -> PathBuf {
    PathBuf::from(args.get("out").unwrap_or(default))
}

/// Writes an image as PNG or PPM depending on the path extension.
fn save_image(img: &kdv_viz::RgbImage, path: &Path) -> Result<(), String> {
    let is_png = path
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("png"));
    if is_png {
        kdv_viz::png::save_png(img, path).map_err(|e| e.to_string())
    } else {
        img.save_ppm(path).map_err(|e| e.to_string())
    }
}

/// Telemetry-related flags shared by the rendering subcommands.
struct Telemetry {
    metrics_path: Option<PathBuf>,
    cost_map_path: Option<PathBuf>,
    verbose: bool,
}

impl Telemetry {
    fn from_args(args: &Args) -> Self {
        Self {
            metrics_path: args.get("metrics").map(PathBuf::from),
            cost_map_path: args.get("cost-map").map(PathBuf::from),
            verbose: args.has("verbose"),
        }
    }

    /// Whether any flag asks for the instrumented render path.
    fn wanted(&self) -> bool {
        self.metrics_path.is_some() || self.cost_map_path.is_some() || self.verbose
    }

    /// Metrics sized for the raster, with a cost map iff one will be
    /// written.
    fn new_metrics(&self, raster: &RasterSpec) -> RenderMetrics {
        if self.cost_map_path.is_some() {
            RenderMetrics::with_cost_map(raster.width(), raster.height())
        } else {
            RenderMetrics::new()
        }
    }

    /// Writes the JSON document / cost-map image / summary line.
    fn emit(&self, metrics: &RenderMetrics, query: &str) -> Result<(), String> {
        if let Some(path) = &self.metrics_path {
            std::fs::write(path, metrics.to_json(query).render())
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            println!("metrics → {}", path.display());
        }
        if let Some(path) = &self.cost_map_path {
            let map = metrics
                .cost_map()
                .expect("cost map was requested at construction");
            save_image(&ColorMap::heat().render(map, true), path)?;
            println!("cost map → {}", path.display());
        }
        if self.verbose {
            println!("{}", metrics.summary());
        }
        Ok(())
    }
}

/// `kdv render` — εKDV heat map.
pub fn render(args: &Args) -> Result<(), String> {
    if args.has("help") {
        println!(
            "kdv render <points.csv> [--out map.ppm] [--eps 0.01] [--width 640] [--height 480]\n\
             \x20          [--kernel gaussian|triangular|cosine|exponential|epanechnikov|quartic]\n\
             \x20          [--gamma G] [--weights] [--grayscale] [--threads 1]\n\
             \x20          [--max-work UNITS] [--deadline-ms MS] [--error-map err.ppm]\n\
             \x20          [--metrics m.json] [--cost-map cost.ppm] [--verbose]"
        );
        return Ok(());
    }
    let input = load_input(args)?;
    let eps: f64 = args.get_parsed("eps", 0.01)?;
    validate_eps(eps).map_err(|e| e.to_string())?;
    let threads = args.get_parsed("threads", 1usize)?;
    validate_threads(threads).map_err(|e| e.to_string())?;
    let error_map_path = args.get("error-map").map(PathBuf::from);
    let telemetry = Telemetry::from_args(args);
    let raster = raster_for(args, &input.points)?;
    let tree = KdTree::try_build_default(&input.points).map_err(|e| e.to_string())?;
    let make_ev = || RefineEvaluator::new(&tree, input.kernel, BoundFamily::Quadratic);
    let t0 = Instant::now();
    let mut metrics = telemetry.new_metrics(&raster);
    // A deadline starts ticking here, after parsing and indexing: the
    // budget governs rendering work, not input preparation.
    let budget = budget_from_args(args)?;
    let grid = match budget {
        Some(mut budget) => {
            let out = if threads == 1 {
                render_eps_budgeted_metered(&mut make_ev(), &raster, eps, &mut budget, &mut metrics)
            } else {
                render_eps_parallel_budgeted_metered(
                    make_ev,
                    &raster,
                    eps,
                    threads,
                    &mut budget,
                    &mut metrics,
                )
            }
            .map_err(|e| e.to_string())?;
            if out.degraded_pixels > 0 {
                println!(
                    "budget exhausted after {} work units: {} of {} pixels are \
                     best-effort midpoints (see --error-map for certified bounds)",
                    budget.work_done(),
                    out.degraded_pixels,
                    raster.num_pixels()
                );
            }
            if let Some(path) = &error_map_path {
                save_image(&ColorMap::heat().render(&out.error_map, true), path)?;
                println!("error map → {}", path.display());
            }
            out.grid
        }
        None => {
            if error_map_path.is_some() {
                return Err("--error-map needs a budget (--max-work or --deadline-ms); \
                     an unbudgeted render's certified error is ε everywhere"
                    .into());
            }
            match (telemetry.wanted(), threads) {
                (true, 1) => render_eps_metered(&mut make_ev(), &raster, eps, &mut metrics),
                (true, _) => {
                    render_eps_parallel_metered(make_ev, &raster, eps, threads, &mut metrics)
                }
                (false, 1) => render_eps(&mut make_ev(), &raster, eps),
                (false, _) => render_eps_parallel(make_ev, &raster, eps, threads),
            }
        }
    };
    let elapsed = t0.elapsed();
    let cm = if args.has("grayscale") {
        ColorMap::grayscale()
    } else {
        ColorMap::heat()
    };
    let out = out_path(args, "map.ppm");
    save_image(&cm.render(&grid, true), &out)?;
    let (lo, hi) = grid.min_max().unwrap_or((0.0, 0.0));
    println!(
        "rendered {}x{} εKDV (ε = {eps}) over {} points in {elapsed:.2?}\n\
         density ∈ [{lo:.3e}, {hi:.3e}] → {}",
        raster.width(),
        raster.height(),
        input.points.len(),
        out.display()
    );
    telemetry.emit(&metrics, "eps")?;
    Ok(())
}

/// `kdv hotspot` — τKDV two-color map.
pub fn hotspot(args: &Args) -> Result<(), String> {
    if args.has("help") {
        println!(
            "kdv hotspot <points.csv> [--out hot.ppm] [--tau T | --tau-sigma K] [--tiled]\n\
             \x20           [--width 640] [--height 480] [--kernel ...] [--gamma G] [--weights]\n\
             \x20           [--metrics m.json] [--cost-map cost.ppm] [--verbose]"
        );
        return Ok(());
    }
    let input = load_input(args)?;
    let telemetry = Telemetry::from_args(args);
    if args.has("tiled") && telemetry.wanted() {
        return Err(
            "--tiled decides pixels wholesale outside the refinement engine; \
             it cannot be combined with --metrics/--cost-map/--verbose"
                .into(),
        );
    }
    let raster = raster_for(args, &input.points)?;
    let tree = KdTree::try_build_default(&input.points).map_err(|e| e.to_string())?;
    let tau = match args.get("tau") {
        Some(v) => {
            let tau = v
                .parse::<f64>()
                .map_err(|_| format!("--tau: cannot parse {v:?}"))?;
            validate_tau(tau).map_err(|e| e.to_string())?
        }
        None => {
            let k = args.get_parsed("tau-sigma", 0.1)?;
            let levels = estimate_levels(&tree, input.kernel, &raster, 48, 36);
            println!(
                "pixel densities: µ = {:.4e}, σ = {:.4e} → τ = µ + {k}σ = {:.4e}",
                levels.mu,
                levels.sigma,
                levels.tau(k)
            );
            levels.tau(k)
        }
    };
    let t0 = Instant::now();
    let mask = if args.has("tiled") {
        let (mask, stats) = kdv_viz::tiles::render_tau_tiled(
            &tree,
            input.kernel,
            BoundFamily::Quadratic,
            &raster,
            tau,
        );
        println!(
            "tile pruning: {} tiles decided {} pixels wholesale, {} per-pixel",
            stats.tiles_decided, stats.pixels_via_tiles, stats.pixels_via_engine
        );
        mask
    } else {
        let mut ev = RefineEvaluator::new(&tree, input.kernel, BoundFamily::Quadratic);
        if telemetry.wanted() {
            let mut metrics = telemetry.new_metrics(&raster);
            let mask = render_tau_metered(&mut ev, &raster, tau, &mut metrics);
            telemetry.emit(&metrics, "tau")?;
            mask
        } else {
            render_tau(&mut ev, &raster, tau)
        }
    };
    let elapsed = t0.elapsed();
    let out = out_path(args, "hotspot.ppm");
    save_image(&render_binary(&mask), &out)?;
    println!(
        "τKDV in {elapsed:.2?}: {} of {} pixels hot → {}",
        mask.count_hot(),
        raster.num_pixels(),
        out.display()
    );
    Ok(())
}

/// `kdv progressive` — §6 time-budgeted render.
pub fn progressive(args: &Args) -> Result<(), String> {
    if args.has("help") {
        println!(
            "kdv progressive <points.csv> [--out quick.ppm] [--budget-ms 500] [--eps 0.01]\n\
             \x20               [--width 640] [--height 480] [--kernel ...] [--weights]\n\
             \x20               [--metrics m.json] [--cost-map cost.ppm] [--verbose]"
        );
        return Ok(());
    }
    let input = load_input(args)?;
    let eps: f64 = args.get_parsed("eps", 0.01)?;
    validate_eps(eps).map_err(|e| e.to_string())?;
    let budget_ms = args.get_parsed("budget-ms", 500u64)?;
    let telemetry = Telemetry::from_args(args);
    let raster = raster_for(args, &input.points)?;
    let tree = KdTree::try_build_default(&input.points).map_err(|e| e.to_string())?;
    let mut ev = RefineEvaluator::new(&tree, input.kernel, BoundFamily::Quadratic);
    let budget = Some(Duration::from_millis(budget_ms));
    let out = if telemetry.wanted() {
        let mut metrics = telemetry.new_metrics(&raster);
        let out = render_eps_progressive_metered(&mut ev, &raster, eps, budget, &mut metrics);
        telemetry.emit(&metrics, "progressive")?;
        out
    } else {
        render_eps_progressive(&mut ev, &raster, eps, budget)
    };
    let path = out_path(args, "progressive.ppm");
    save_image(&ColorMap::heat().render(&out.grid, true), &path)?;
    println!(
        "progressive render: {} of {} pixels in ≤ {budget_ms} ms ({}) → {}",
        out.evaluated,
        raster.num_pixels(),
        if out.complete {
            "complete"
        } else {
            "partial, fully painted"
        },
        path.display()
    );
    Ok(())
}

/// `kdv serve` — HTTP tile server over the dataset (or, with
/// `--store`, over a whole catalog of snapshot-backed datasets).
pub fn serve(args: &Args) -> Result<(), String> {
    if args.has("help") {
        println!(
            "kdv serve <points.csv> [--addr 127.0.0.1:8080] [--tile-size 256] [--max-z 5]\n\
             \x20         [--pyramid-max-z 4]\n\
             \x20         [--eps 0.05] [--tau T | --tau-sigma K] [--kernel ...] [--gamma G]\n\
             \x20         [--weights] [--workers 4] [--queue 64] [--cache-mb 64]\n\
             \x20         [--cache-shards 8] [--tile-max-work UNITS] [--tile-deadline-ms MS]\n\
             \x20         [--no-trace] [--no-simd] [--no-batch]\n\
             \x20         [--trace-ring 128] [--slow-ms 100]\n\
             \x20         [--access-log PATH|-] [--allow-shutdown] [--debug-sleep]\n\
             \x20         [--port-file PATH]\n\
             kdv serve --store <dir> [--store-budget-mb MB] [--tau T] [--preload]\n\
             \x20         [--fsync every|batch] [--memtable-points N] [--compact-points N]\n\
             \x20         [--ingest-max-kb KB] [same serving flags]\n\
             \n\
             Serves GET /tiles/{{eps|tau}}/{{z}}/{{x}}/{{y}}.png, /metrics (JSON, or\n\
             Prometheus text with ?format=prometheus), /healthz, /readyz, and — while\n\
             tracing is on (the default) — /debug/traces and /debug/slow. Every\n\
             response echoes its X-Kdv-Trace-Id; requests at or over --slow-ms are\n\
             retained preferentially. --access-log writes one JSON line per request\n\
             (per-stage latency included) to PATH, or stdout with `-`.\n\
             With --store: scans <dir> for {{name}}.kdvs snapshots (built by `kdv index\n\
             build`) and {{name}}.csv fallbacks, serves them under\n\
             /tiles/{{name}}/{{eps|tau}}/…, loading each dataset lazily on first touch\n\
             (--preload materializes all of them in the background; /readyz answers\n\
             503 until the sweep finishes).\n\
             Budget-degraded tiles answer 200 with an X-Kdv-Degraded header; a full\n\
             accept queue answers 429 with Retry-After. --port-file writes the bound\n\
             address once the listener is live (supervisors discover `--addr :0`\n\
             ports this way). SIGTERM drains: in-flight requests finish, WALs fsync,\n\
             then the process exits 0.\n\
             Snapshot-backed datasets accept durable writes: POST\n\
             /datasets/{{name}}/points with {{\"append\": [[x,y,w],…], \"remove\":\n\
             [[x,y],…]}} acks only after the WAL record is durable under --fsync\n\
             (every: fsync per write; batch: group commit). GET /datasets/{{name}}/stats\n\
             reports the WAL/memtable watermarks."
        );
        return Ok(());
    }
    let store_dir = args.get("store").map(PathBuf::from);
    let input = match &store_dir {
        Some(_) => {
            if !args.positional().is_empty() {
                return Err("--store serves a directory; drop the CSV argument".into());
            }
            None
        }
        None => {
            let load_started = Instant::now();
            let input = load_input(args)?;
            Some((input, load_started.elapsed().as_millis() as u64))
        }
    };
    let eps: f64 = args.get_parsed("eps", 0.05)?;
    validate_eps(eps).map_err(|e| e.to_string())?;
    let tile_size = args.get_parsed("tile-size", 256u32)?;
    let max_z = args.get_parsed("max-z", 5u8)?;
    let pyramid_max_z = args.get_parsed("pyramid-max-z", 4u8)?;
    let workers = args.get_parsed("workers", 4usize)?;
    let queue = args.get_parsed("queue", 64usize)?;
    let cache_mb = args.get_parsed("cache-mb", 64usize)?;
    let cache_shards = args.get_parsed("cache-shards", 8usize)?;
    let store_budget_mb = args.get_parsed("store-budget-mb", 0u64)?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080").to_string();
    let fsync = match args.get("fsync").unwrap_or("every") {
        "every" => kdv_store::FsyncPolicy::Every,
        "batch" => kdv_store::FsyncPolicy::Batch,
        other => return Err(format!("--fsync must be 'every' or 'batch', got {other:?}")),
    };
    let memtable_points = args.get_parsed("memtable-points", 8192usize)?;
    let compact_points = args.get_parsed("compact-points", 2048usize)?;
    let ingest_max_kb = args.get_parsed("ingest-max-kb", 1024u64)?;

    let tau = match args.get("tau") {
        Some(v) => {
            let tau = v
                .parse::<f64>()
                .map_err(|_| format!("--tau: cannot parse {v:?}"))?;
            validate_tau(tau).map_err(|e| e.to_string())?
        }
        None => match &input {
            Some((input, _)) => {
                let k = args.get_parsed("tau-sigma", 0.1)?;
                let tree = KdTree::try_build_default(&input.points).map_err(|e| e.to_string())?;
                let raster = RasterSpec::try_covering(&input.points, tile_size, tile_size, 0.05)
                    .map_err(|e| e.to_string())?;
                let levels = estimate_levels(&tree, input.kernel, &raster, 48, 36);
                println!(
                    "pixel densities: µ = {:.4e}, σ = {:.4e} → τ = µ + {k}σ = {:.4e}",
                    levels.mu,
                    levels.sigma,
                    levels.tau(k)
                );
                levels.tau(k)
            }
            // No dataset is loaded at boot in store mode, so there is
            // nothing to calibrate τ against; require an explicit
            // level rather than estimating from whichever dataset
            // happens to be touched first.
            None => return Err("--store requires an explicit --tau level".into()),
        },
    };

    let mut policy = BudgetPolicy::unlimited();
    if let Some(v) = args.get("tile-max-work") {
        let units: u64 = v
            .parse()
            .map_err(|_| format!("flag --tile-max-work: cannot parse {v:?}"))?;
        if units == 0 {
            return Err("--tile-max-work must be positive".into());
        }
        policy = policy.with_max_work(units);
    }
    if let Some(v) = args.get("tile-deadline-ms") {
        let ms: u64 = v
            .parse()
            .map_err(|_| format!("flag --tile-deadline-ms: cannot parse {v:?}"))?;
        if ms == 0 {
            return Err("--tile-deadline-ms must be positive".into());
        }
        policy = policy.with_deadline(Duration::from_millis(ms));
    }

    let config = ServerConfig {
        addr,
        tile_size,
        max_z,
        pyramid_max_z,
        eps,
        tau,
        workers,
        queue,
        cache_bytes: cache_mb << 20,
        cache_shards,
        policy,
        margin_frac: 0.05,
        allow_shutdown: args.has("allow-shutdown"),
        debug_sleep: args.has("debug-sleep"),
        data_load_ms: input.as_ref().map_or(0, |(_, ms)| *ms),
        store_budget_bytes: store_budget_mb << 20,
        trace: !args.has("no-trace"),
        trace_ring: args.get_parsed("trace-ring", 128usize)?,
        slow_ms: args.get_parsed("slow-ms", 100u64)?,
        access_log: args.get("access-log").map(str::to_string),
        preload: args.has("preload"),
        fsync,
        ingest_max_body: ingest_max_kb << 10,
        memtable_points,
        compact_points,
        simd: !args.has("no-simd"),
        batch: !args.has("no-batch"),
    };
    if config.preload && store_dir.is_none() {
        return Err("--preload only applies to --store serving".into());
    }
    let trace_on = config.trace || config.access_log.is_some();
    let slow_ms = config.slow_ms;
    let server = match (&store_dir, &input) {
        (Some(dir), _) => TileServer::start_with_store(config, dir),
        (None, Some((input, _))) => TileServer::start(config, &input.points, input.kernel),
        (None, None) => unreachable!("one of --store and the CSV path is always present"),
    }
    .map_err(|e| e.to_string())?;
    let bound = server.local_addr();
    match (&store_dir, &input) {
        (Some(dir), _) => {
            let names = server.dataset_names();
            println!(
                "serving {} dataset(s) from {}: ε = {eps}, τ = {tau:.4e}, {tile_size}px tiles \
                 to z ≤ {max_z}, {workers} workers, queue {queue}, cache {cache_mb} MiB",
                names.len(),
                dir.display()
            );
            println!("  datasets: {}", names.join(", "));
            println!(
                "  tiles:    http://{bound}/tiles/{}/eps/0/0/0.png   (kinds: eps, tau)",
                names.first().map(String::as_str).unwrap_or("{dataset}")
            );
        }
        (None, Some((input, _))) => {
            println!(
                "serving {} points: ε = {eps}, τ = {tau:.4e}, {tile_size}px tiles to z ≤ {max_z}, \
                 {workers} workers, queue {queue}, cache {cache_mb} MiB",
                input.points.len()
            );
            println!("  tiles:   http://{bound}/tiles/eps/0/0/0.png   (kinds: eps, tau)");
        }
        (None, None) => unreachable!(),
    }
    let su = server.startup();
    println!(
        "  startup: {} ms (data load {} ms, index {} ms, warm {} ms, source {})",
        su.total_ms, su.data_load_ms, su.index_ms, su.warm_ms, su.source
    );
    println!("  metrics: http://{bound}/metrics  (Prometheus: /metrics?format=prometheus)");
    if trace_on {
        println!("  traces:  http://{bound}/debug/traces  (slow ≥ {slow_ms} ms: /debug/slow)");
    }
    // The port file is how supervisors discover a `--addr 127.0.0.1:0`
    // shard's actual port; written only once the listener is live, so
    // the file's existence doubles as a readiness signal.
    if let Some(path) = args.get("port-file") {
        std::fs::write(path, format!("{bound}\n")).map_err(|e| format!("--port-file: {e}"))?;
    }
    term::install();
    loop {
        if term::requested() {
            // Graceful drain: stop accepting, finish in-flight
            // requests, fsync the WALs, then exit 0.
            server.stop();
            break;
        }
        if server.is_shutdown() {
            // `/shutdown` (when allowed) flips the same flag.
            server.join();
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("server stopped");
    Ok(())
}

/// `kdv router` — the cluster tier's consistent-hash reverse proxy
/// over an externally managed set of shards.
pub fn router(args: &Args) -> Result<(), String> {
    if args.has("help") {
        println!(
            "kdv router --shards HOST:PORT,HOST:PORT,... [--addr 127.0.0.1:8090]\n\
             \x20         [--workers 8] [--queue 128] [--max-inflight 64]\n\
             \x20         [--probe-ms 250] [--max-z 24] [--ingest-max-kb 1024]\n\
             \n\
             Fronts N `kdv serve` shards: routes each tile to its rendezvous-hash\n\
             owner (per-shard cache partitioning), probes /readyz, retries a dead\n\
             shard's tiles once on the hash ring's runner-up (X-Kdv-Failover), and\n\
             pins ingest-mutable datasets wholly to their owner shard. /metrics\n\
             merges every shard's document plus a summed rollup\n\
             (schema kdv-cluster-metrics/1; Prometheus with ?format=prometheus).\n\
             Shard order is identity: keep the --shards list stable across router\n\
             restarts or tile ownership reshuffles."
        );
        return Ok(());
    }
    let shards: Vec<String> = args
        .require::<String>("shards")?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if shards.is_empty() {
        return Err("--shards needs at least one HOST:PORT".into());
    }
    let config = RouterConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8090").to_string(),
        shards,
        workers: args.get_parsed("workers", 8usize)?,
        queue: args.get_parsed("queue", 128usize)?,
        max_inflight: args.get_parsed("max-inflight", 64usize)?,
        probe_ms: args.get_parsed("probe-ms", 250u64)?,
        max_z: args.get_parsed("max-z", 24u8)?,
        max_body: args.get_parsed("ingest-max-kb", 1024u64)? << 10,
    };
    let n = config.shards.len();
    let router = Router::start(config).map_err(|e| e.to_string())?;
    let bound = router.local_addr();
    println!("routing {n} shard(s) at http://{bound}/  (metrics: /metrics)");
    term::install();
    while !term::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    router.stop();
    println!("router stopped");
    Ok(())
}

/// `kdv cluster` — one-command scale-out: spawn N shard processes
/// over a shared store, babysit them, and front them with a router.
pub fn cluster(args: &Args) -> Result<(), String> {
    if args.has("help") {
        println!(
            "kdv cluster --shards N --store <dir> --tau T [--addr 127.0.0.1:8090]\n\
             \x20          [--port-dir DIR] [--workers 8] [--queue 128]\n\
             \x20          [--max-inflight 64] [--probe-ms 250] [--ingest-max-kb 1024]\n\
             \x20          [--shard-flags \"...\"]\n\
             \n\
             Spawns N `kdv serve --store <dir>` shard processes on loopback, then a\n\
             router in this process. Crashed shards respawn automatically (same ring\n\
             index, so tile ownership never moves); SIGTERM drains the whole fleet.\n\
             --shard-flags passes extra space-separated flags to every shard, e.g.:\n\
             \x20 kdv cluster --shards 4 --store data/ --tau 2e-4 \\\n\
             \x20             --shard-flags \"--cache-mb 128 --fsync batch\""
        );
        return Ok(());
    }
    let shards: usize = args.get_parsed("shards", 2usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let store: String = args.require("store")?;
    let tau: f64 = args.require("tau")?;
    validate_tau(tau).map_err(|e| e.to_string())?;
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate kdv binary: {e}"))?;
    let port_dir = match args.get("port-dir") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("kdv-cluster-{}", std::process::id())),
    };
    let mut shard_args = vec![
        "--store".to_string(),
        store.clone(),
        "--tau".to_string(),
        tau.to_string(),
    ];
    if let Some(extra) = args.get("shard-flags") {
        shard_args.extend(extra.split_whitespace().map(str::to_string));
    }

    let sup_config = SupervisorConfig {
        exe,
        shards,
        shard_args,
        port_dir,
    };
    // The router comes up after the shards (it needs their ports), but
    // the supervisor needs somewhere to publish respawned addresses
    // from day one — hence the shared slot.
    let router_slot: std::sync::Arc<std::sync::Mutex<Option<Router>>> =
        std::sync::Arc::new(std::sync::Mutex::new(None));
    let respawn_slot = std::sync::Arc::clone(&router_slot);
    let sup = Supervisor::start(
        sup_config,
        Box::new(move |shard, addr| {
            if let Some(router) = respawn_slot.lock().expect("router slot").as_ref() {
                router.set_shard_addr(shard, addr);
            }
        }),
    )
    .map_err(|e| e.to_string())?;
    let addrs = sup.addrs();
    println!("spawned {shards} shard(s): {}", addrs.join(", "));
    let config = RouterConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8090").to_string(),
        shards: addrs,
        workers: args.get_parsed("workers", 8usize)?,
        queue: args.get_parsed("queue", 128usize)?,
        max_inflight: args.get_parsed("max-inflight", 64usize)?,
        probe_ms: args.get_parsed("probe-ms", 250u64)?,
        max_z: args.get_parsed("max-z", 24u8)?,
        max_body: args.get_parsed("ingest-max-kb", 1024u64)? << 10,
    };
    let router = match Router::start(config) {
        Ok(router) => router,
        Err(e) => {
            sup.stop();
            return Err(e.to_string());
        }
    };
    let bound = router.local_addr();
    *router_slot.lock().expect("router slot") = Some(router);
    println!("cluster at http://{bound}/  (merged metrics: /metrics)");
    term::install();
    while !term::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    if let Some(router) = router_slot.lock().expect("router slot").take() {
        router.stop();
    }
    sup.stop();
    println!("cluster stopped");
    Ok(())
}

/// `kdv index` — build, inspect, and verify KDVS snapshots.
pub fn index(args: &Args) -> Result<(), String> {
    let help = || {
        println!(
            "kdv index build <points.csv> [--out points.kdvs] [--kernel ...] [--gamma G]\n\
             \x20          [--weights] [--coresets N1,N2,...] [--pyramid] [--pyramid-delta D]\n\
             kdv index inspect <file.kdvs>\n\
             kdv index verify <file.kdvs>\n\
             \n\
             build    serialize the kd-tree + QUAD moments to a KDVS snapshot;\n\
             \x20        --pyramid certifies a coreset ladder (geometric sizes, or\n\
             \x20        --coresets overrides) with per-level sampling bounds ε_s\n\
             inspect  print header, section table, metadata, and pyramid levels\n\
             verify   full load + deep re-validation of moments and topology"
        );
    };
    if args.has("help") {
        help();
        return Ok(());
    }
    match args.positional() {
        [sub, path] => {
            let path = Path::new(path);
            match sub.as_str() {
                "build" => index_build(args, path),
                "inspect" => index_inspect(path),
                "verify" => index_verify(path),
                other => Err(format!(
                    "unknown index subcommand {other:?} (want build, inspect, or verify)"
                )),
            }
        }
        _ => {
            help();
            Err("expected: kdv index <build|inspect|verify> <path>".into())
        }
    }
}

fn index_build(args: &Args, csv_path: &Path) -> Result<(), String> {
    let input = load_input_from(csv_path, args)?;
    let build_started = Instant::now();
    let tree = KdTree::try_build_default(&input.points).map_err(|e| e.to_string())?;
    let build_ms = build_started.elapsed().as_millis();

    let mut writer = SnapshotWriter::new(&tree, input.kernel);
    let sizes = match args.get("coresets") {
        Some(spec) => {
            let mut sizes = Vec::new();
            for part in spec.split(',') {
                let size: usize = part
                    .trim()
                    .parse()
                    .map_err(|_| format!("--coresets: cannot parse {part:?}"))?;
                if size == 0 || size > input.points.len() {
                    return Err(format!(
                        "--coresets: size {size} outside [1, {}]",
                        input.points.len()
                    ));
                }
                sizes.push(size);
            }
            Some(sizes)
        }
        None => None,
    };
    if args.has("pyramid") {
        // Certified ladder: sample, index, and *validate* each level
        // against the exact KDE before persisting its ε_s bound.
        let delta = args.get_parsed("pyramid-delta", 1e-6)?;
        if !(delta > 0.0 && delta < 1.0) {
            return Err("--pyramid-delta must be in (0, 1)".into());
        }
        let mut ladder = sizes.unwrap_or_else(|| geometric_ladder(input.points.len()));
        if ladder.is_empty() {
            return Err(format!(
                "--pyramid: {} points is too small for the default ladder \
                 (needs ≥ 4096); pass explicit sizes via --coresets",
                input.points.len()
            ));
        }
        ladder.sort_unstable();
        let config = PyramidConfig {
            sizes: ladder,
            delta,
            ..PyramidConfig::default()
        };
        let certify_started = Instant::now();
        let (pyramid, report) = PyramidBuilder::new(&tree, input.kernel)
            .with_config(config)
            .build()
            .map_err(|e| format!("--pyramid: {e}"))?;
        println!(
            "pyramid: {} level(s) certified in {} ms (δ = {delta:.1e})",
            pyramid.len(),
            certify_started.elapsed().as_millis()
        );
        for (i, lv) in report.levels.iter().enumerate() {
            println!(
                "  level {i}: {:>8} points  ε_s = {:.5} (hoeffding {:.5}, measured {:.5})",
                lv.size, lv.certified_eps, lv.hoeffding_eps, lv.measured_eps
            );
        }
        writer = writer.with_pyramid(
            pyramid
                .levels()
                .iter()
                .map(|lv| (lv.tree.points().clone(), lv.eps_s))
                .collect(),
        );
    } else if let Some(sizes) = sizes {
        let levels: Vec<_> = sizes
            .iter()
            .map(|&s| zorder_sample(tree.points(), s, 0.25))
            .collect();
        writer = writer.with_coresets(levels);
    }

    let out = match args.get("out") {
        Some(p) => PathBuf::from(p),
        None => csv_path.with_extension(kdv_store::EXTENSION),
    };
    let write_started = Instant::now();
    let bytes = writer.write_to(&out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} points, {} nodes, {bytes} bytes) — build {build_ms} ms, write {} ms",
        out.display(),
        input.points.len(),
        tree.num_nodes(),
        write_started.elapsed().as_millis()
    );
    Ok(())
}

fn index_inspect(path: &Path) -> Result<(), String> {
    let info = Snapshot::inspect(path).map_err(|e| e.to_string())?;
    println!("{}: KDVS version {}", path.display(), info.version);
    let mut flag_names = Vec::new();
    for (bit, name) in [
        (kdv_store::FLAG_CORESETS, "coresets"),
        (kdv_store::FLAG_INGEST, "ingest"),
        (kdv_store::FLAG_PYRAMID, "pyramid"),
    ] {
        if info.flags & bit != 0 {
            flag_names.push(name);
        }
    }
    println!(
        "  flags: {:#06x}{}",
        info.flags,
        if flag_names.is_empty() {
            String::new()
        } else {
            format!(" ({})", flag_names.join(", "))
        }
    );
    println!("  file length: {} bytes", info.file_len);
    println!("  sections:");
    for s in &info.sections {
        println!(
            "    {:4}  offset {:>10}  len {:>10}  crc32 {:#010x}",
            s.name, s.offset, s.len, s.crc
        );
    }
    let m = &info.meta;
    println!(
        "  dataset: {} points (dim {}), {} nodes, root {}, leaf capacity {}, split {:?}",
        m.point_count, m.dim, m.node_count, m.root, m.leaf_capacity, m.split
    );
    println!(
        "  kernel: {:?}, γ = {}, coreset levels: {}",
        m.kernel, m.gamma, m.coreset_levels
    );
    if m.coreset_levels > 0 {
        // Per-level detail lives in the CORE/PYRA payloads, so this
        // needs a full (checksummed) load, not just the header.
        let snap = Snapshot::open(path).map_err(|e| e.to_string())?;
        let d = snap.tree.points().dim() as u64;
        println!("  levels:");
        for (i, level) in snap.coresets.iter().enumerate() {
            let bytes = 8 + 8 * level.len() as u64 * (d + 1);
            let bound = match snap.level_bounds.get(i) {
                Some(eps_s) => format!("ε_s = {eps_s:.5} (certified)"),
                None => "uncertified".to_string(),
            };
            println!(
                "    level {i}: {:>8} points  {:>10} bytes  {bound}",
                level.len(),
                bytes
            );
        }
    }
    Ok(())
}

fn index_verify(path: &Path) -> Result<(), String> {
    let load_started = Instant::now();
    let snap = Snapshot::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let load_ms = load_started.elapsed().as_millis();
    let deep_started = Instant::now();
    snap.verify_deep()
        .map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "{}: ok — {} points, {} nodes, {} coreset level(s){}; load {load_ms} ms, deep verify {} ms",
        path.display(),
        snap.meta.point_count,
        snap.meta.node_count,
        snap.coresets.len(),
        if snap.level_bounds.is_empty() {
            ""
        } else {
            " with certified pyramid bounds"
        },
        deep_started.elapsed().as_millis()
    );
    Ok(())
}

/// `kdv sample` — Z-order coreset.
pub fn sample(args: &Args) -> Result<(), String> {
    if args.has("help") {
        println!(
            "kdv sample <points.csv> [--out coreset.csv] [--eps 0.02] [--delta 0.2]\n\
             \x20          [--size N] [--weights]"
        );
        return Ok(());
    }
    let [path] = args.positional() else {
        return Err("expected exactly one input CSV path".into());
    };
    let has_weights = args.has("weights");
    let points = csv::load(Path::new(path), 2, has_weights).map_err(|e| e.to_string())?;
    if points.is_empty() {
        return Err("input contains no points".into());
    }
    let size = match args.get("size") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("--size: cannot parse {v:?}"))?,
        None => {
            let eps = args.get_parsed("eps", 0.02)?;
            let delta = args.get_parsed("delta", 0.2)?;
            sample_size_for(eps, delta)
        }
    };
    let coreset = zorder_sample(&points, size, 0.5);
    let out = out_path(args, "coreset.csv");
    csv::save(&out, &coreset, true).map_err(|e| e.to_string())?;
    println!(
        "coreset: {} of {} points (weights rescaled) → {}",
        coreset.len(),
        points.len(),
        out.display()
    );
    Ok(())
}

/// `kdv stats` — dataset summary and recommended parameters.
pub fn stats(args: &Args) -> Result<(), String> {
    if args.has("help") {
        println!("kdv stats <points.csv> [--weights] [--kernel ...]");
        return Ok(());
    }
    let input = load_input(args)?;
    let ps = &input.points;
    let mbr = kdv_geom::Mbr::of_set(ps).expect("non-empty");
    let mean = ps.mean().expect("non-empty");
    let std = ps.std_dev().expect("non-empty");
    println!("points:        {}", ps.len());
    println!("total weight:  {:.6}", ps.total_weight());
    println!(
        "x:             [{:.6}, {:.6}]  mean {:.6}  σ {:.6}",
        mbr.lo()[0],
        mbr.hi()[0],
        mean[0],
        std[0]
    );
    println!(
        "y:             [{:.6}, {:.6}]  mean {:.6}  σ {:.6}",
        mbr.lo()[1],
        mbr.hi()[1],
        mean[1],
        std[1]
    );
    match input.bandwidth {
        Some(bw) => {
            println!("Scott h:       {:.6}", bw.h);
            println!(
                "recommended:   --kernel {} --gamma {:.6}",
                input.kernel.ty.name(),
                input.kernel.gamma
            );
        }
        None => println!("Scott h:       undefined (zero spread on every axis)"),
    }
    let tree = KdTree::build_default(ps);
    println!(
        "kd-tree:       {} nodes, {} leaves, depth {}",
        tree.num_nodes(),
        tree.num_leaves(),
        tree.depth()
    );
    Ok(())
}

/// `kdv synth` — emulated benchmark dataset.
pub fn synth(args: &Args) -> Result<(), String> {
    if args.has("help") {
        println!(
            "kdv synth --dataset elnino|crime|home|hep [--n 100000] [--seed 42] [--out data.csv]"
        );
        return Ok(());
    }
    let name: String = args.require("dataset")?;
    let ds = match name.as_str() {
        "elnino" | "el_nino" => Dataset::ElNino,
        "crime" => Dataset::Crime,
        "home" => Dataset::Home,
        "hep" => Dataset::Hep,
        other => return Err(format!("unknown dataset {other:?}")),
    };
    let n = args.get_parsed("n", 100_000usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    if n == 0 {
        return Err("--n must be positive".into());
    }
    let points = ds.generate(n, seed);
    let out = out_path(args, "data.csv");
    csv::save(&out, &points, false).map_err(|e| e.to_string())?;
    println!("wrote {} {} points → {}", n, ds.name(), out.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(items: &[&str]) -> Args {
        let raw: Vec<String> = items.iter().map(|s| s.to_string()).collect();
        Args::parse(&raw).expect("parse")
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("kdv_cli_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn synth_then_render_roundtrip() {
        let csv_path = tmp("synth.csv");
        let map_path = tmp("synth.ppm");
        synth(&args(&[
            "--dataset",
            "crime",
            "--n",
            "800",
            "--out",
            csv_path.to_str().expect("utf8"),
        ]))
        .expect("synth");
        assert!(csv_path.exists());

        render(&args(&[
            csv_path.to_str().expect("utf8"),
            "--out",
            map_path.to_str().expect("utf8"),
            "--width",
            "32",
            "--height",
            "24",
            "--eps",
            "0.05",
        ]))
        .expect("render");
        let bytes = std::fs::read(&map_path).expect("read ppm");
        assert!(bytes.starts_with(b"P6\n32 24\n255\n"));

        // PNG output selected by extension.
        let png_path = tmp("synth.png");
        render(&args(&[
            csv_path.to_str().expect("utf8"),
            "--out",
            png_path.to_str().expect("utf8"),
            "--width",
            "16",
            "--height",
            "12",
            "--eps",
            "0.05",
        ]))
        .expect("render png");
        let bytes = std::fs::read(&png_path).expect("read png");
        assert!(bytes.starts_with(b"\x89PNG\r\n\x1a\n"));
    }

    #[test]
    fn hotspot_and_progressive_and_sample_and_stats() {
        let csv_path = tmp("all.csv");
        synth(&args(&[
            "--dataset",
            "home",
            "--n",
            "600",
            "--out",
            csv_path.to_str().expect("utf8"),
        ]))
        .expect("synth");
        let p = csv_path.to_str().expect("utf8");

        let hot = tmp("hot.ppm");
        hotspot(&args(&[
            p,
            "--out",
            hot.to_str().expect("utf8"),
            "--width",
            "16",
            "--height",
            "12",
            "--tau-sigma",
            "0.1",
        ]))
        .expect("hotspot");
        assert!(hot.exists());

        let prog = tmp("prog.ppm");
        progressive(&args(&[
            p,
            "--out",
            prog.to_str().expect("utf8"),
            "--width",
            "16",
            "--height",
            "12",
            "--budget-ms",
            "50",
        ]))
        .expect("progressive");
        assert!(prog.exists());

        let core = tmp("core.csv");
        sample(&args(&[
            p,
            "--out",
            core.to_str().expect("utf8"),
            "--size",
            "100",
        ]))
        .expect("sample");
        let coreset = csv::load(&core, 2, true).expect("load coreset");
        assert_eq!(coreset.len(), 100);
        assert!((coreset.total_weight() - 600.0).abs() < 1e-6);

        stats(&args(&[p])).expect("stats");
    }

    #[test]
    fn render_with_metrics_threads_and_cost_map() {
        let csv_path = tmp("metrics.csv");
        synth(&args(&[
            "--dataset",
            "crime",
            "--n",
            "700",
            "--out",
            csv_path.to_str().expect("utf8"),
        ]))
        .expect("synth");
        let p = csv_path.to_str().expect("utf8");

        let map = tmp("metrics_map.ppm");
        let metrics_json = tmp("metrics.json");
        let cost_map = tmp("metrics_cost.ppm");
        render(&args(&[
            p,
            "--out",
            map.to_str().expect("utf8"),
            "--width",
            "16",
            "--height",
            "12",
            "--eps",
            "0.05",
            "--threads",
            "2",
            "--metrics",
            metrics_json.to_str().expect("utf8"),
            "--cost-map",
            cost_map.to_str().expect("utf8"),
            "--verbose",
        ]))
        .expect("metered render");

        // The cost map is a PPM raster with the render's dimensions.
        let cost_bytes = std::fs::read(&cost_map).expect("read cost map");
        assert!(cost_bytes.starts_with(b"P6\n16 12\n255\n"));

        // The metrics document parses and carries the headline counters.
        let text = std::fs::read_to_string(&metrics_json).expect("read metrics");
        let doc = kdv_telemetry::json::parse(&text).expect("metrics JSON parses");
        use kdv_telemetry::json::Value;
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("kdv-metrics/1")
        );
        assert_eq!(doc.get("query").and_then(Value::as_str), Some("eps"));
        assert_eq!(doc.get("pixels").and_then(Value::as_f64), Some(16.0 * 12.0));
        assert_eq!(doc.get("threads").and_then(Value::as_f64), Some(2.0));
        let counters = doc.get("counters").expect("counters object");
        for key in ["heap_pops", "node_bounds", "leaf_scans", "point_evals"] {
            let v = counters.get(key).and_then(Value::as_f64).expect(key);
            assert!(v > 0.0, "{key} should be positive");
        }
        assert!(
            doc.get("iterations")
                .and_then(|h| h.get("buckets"))
                .and_then(Value::as_arr)
                .is_some_and(|b| !b.is_empty()),
            "iteration histogram should have mass"
        );
    }

    #[test]
    fn progressive_metrics_include_checkpoints() {
        let csv_path = tmp("prog_metrics.csv");
        synth(&args(&[
            "--dataset",
            "home",
            "--n",
            "500",
            "--out",
            csv_path.to_str().expect("utf8"),
        ]))
        .expect("synth");
        let metrics_json = tmp("prog_metrics.json");
        progressive(&args(&[
            csv_path.to_str().expect("utf8"),
            "--out",
            tmp("prog_metrics.ppm").to_str().expect("utf8"),
            "--width",
            "16",
            "--height",
            "12",
            "--budget-ms",
            "10000",
            "--metrics",
            metrics_json.to_str().expect("utf8"),
        ]))
        .expect("progressive");
        let text = std::fs::read_to_string(&metrics_json).expect("read metrics");
        let doc = kdv_telemetry::json::parse(&text).expect("parse");
        use kdv_telemetry::json::Value;
        let cps = doc
            .get("checkpoints")
            .and_then(Value::as_arr)
            .expect("checkpoints");
        assert!(!cps.is_empty(), "progressive metrics record checkpoints");
    }

    #[test]
    fn hotspot_rejects_tiled_with_metrics() {
        let csv_path = tmp("tiled_metrics.csv");
        std::fs::write(&csv_path, "0.0,0.0\n1.0,1.0\n0.5,0.5\n").expect("write");
        let err = hotspot(&args(&[
            csv_path.to_str().expect("utf8"),
            "--tiled",
            "--metrics",
            tmp("nope.json").to_str().expect("utf8"),
        ]))
        .expect_err("tiled + metrics must be rejected");
        assert!(err.contains("--tiled"), "unexpected error: {err}");
    }

    #[test]
    fn render_rejects_bad_eps_and_kernel() {
        let csv_path = tmp("bad.csv");
        std::fs::write(&csv_path, "0.0,0.0\n1.0,1.0\n").expect("write");
        let p = csv_path.to_str().expect("utf8");
        assert!(render(&args(&[p, "--eps", "-1"])).is_err());
        assert!(render(&args(&[p, "--eps", "0"])).is_err());
        assert!(render(&args(&[p, "--eps", "inf"])).is_err());
        assert!(render(&args(&[p, "--kernel", "nope"])).is_err());
        assert!(render(&args(&[p, "--threads", "0"])).is_err());
        assert!(render(&args(&[p, "--gamma", "-2"])).is_err());
        assert!(render(&args(&[p, "--width", "0"])).is_err());
        assert!(render(&args(&[p, "--height", "0"])).is_err());
        assert!(render(&args(&[p, "--max-work", "0"])).is_err());
        assert!(render(&args(&[p, "--deadline-ms", "0"])).is_err());
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        // Corrupt CSV: non-numeric field.
        let garbled = tmp("garbled.csv");
        std::fs::write(&garbled, "0.0,0.0\n1.0,banana\n").expect("write");
        let err =
            render(&args(&[garbled.to_str().expect("utf8")])).expect_err("corrupt CSV rejected");
        assert!(err.contains("line 2"), "error names the line: {err}");

        // NaN coordinates.
        let nans = tmp("nans.csv");
        std::fs::write(&nans, "0.0,0.0\nNaN,1.0\n").expect("write");
        let err =
            render(&args(&[nans.to_str().expect("utf8")])).expect_err("NaN coordinate rejected");
        assert!(err.contains("non-finite"), "unexpected error: {err}");

        // Empty input.
        let empty = tmp("empty.csv");
        std::fs::write(&empty, "").expect("write");
        assert!(render(&args(&[empty.to_str().expect("utf8")])).is_err());

        // Negative τ.
        let ok = tmp("tau.csv");
        std::fs::write(&ok, "0.0,0.0\n1.0,1.0\n0.5,0.5\n").expect("write");
        let p = ok.to_str().expect("utf8");
        assert!(hotspot(&args(&[p, "--tau", "-0.5"])).is_err());
        assert!(hotspot(&args(&[p, "--tau", "nan"])).is_err());
    }

    #[test]
    fn zero_spread_dataset_needs_explicit_gamma() {
        // All points identical: Scott's rule has no bandwidth to offer.
        let dup = tmp("dup.csv");
        std::fs::write(&dup, "1.0,2.0\n1.0,2.0\n1.0,2.0\n1.0,2.0\n").expect("write");
        let p = dup.to_str().expect("utf8");
        let err = render(&args(&[p])).expect_err("Scott must degenerate");
        assert!(err.contains("--gamma"), "error suggests the fix: {err}");
        // With an explicit scale the pipeline runs end to end.
        let out = tmp("dup.ppm");
        render(&args(&[
            p,
            "--gamma",
            "1.0",
            "--out",
            out.to_str().expect("utf8"),
            "--width",
            "6",
            "--height",
            "5",
        ]))
        .expect("explicit gamma renders duplicates");
        assert!(out.exists());
    }

    #[test]
    fn budgeted_render_degrades_and_writes_error_map() {
        let csv_path = tmp("budget.csv");
        synth(&args(&[
            "--dataset",
            "crime",
            "--n",
            "900",
            "--out",
            csv_path.to_str().expect("utf8"),
        ]))
        .expect("synth");
        let p = csv_path.to_str().expect("utf8");

        let map = tmp("budget_map.ppm");
        let err_map = tmp("budget_err.ppm");
        // 16×12 pixels with only ~2 work units each and a harsh ε: the
        // cap is certain to run out, yet the render must succeed.
        render(&args(&[
            p,
            "--out",
            map.to_str().expect("utf8"),
            "--width",
            "16",
            "--height",
            "12",
            "--eps",
            "0.000001",
            "--max-work",
            "400",
            "--error-map",
            err_map.to_str().expect("utf8"),
        ]))
        .expect("budgeted render succeeds");
        let bytes = std::fs::read(&err_map).expect("read error map");
        assert!(bytes.starts_with(b"P6\n16 12\n255\n"));

        // Budgeted + threads exercises the parallel budgeted path.
        render(&args(&[
            p,
            "--out",
            map.to_str().expect("utf8"),
            "--width",
            "16",
            "--height",
            "12",
            "--eps",
            "0.05",
            "--threads",
            "2",
            "--max-work",
            "1000000000",
        ]))
        .expect("parallel budgeted render succeeds");

        // --error-map without a budget is a usage error.
        assert!(render(&args(&[p, "--error-map", err_map.to_str().expect("utf8")])).is_err());
    }

    #[test]
    fn missing_input_is_reported() {
        assert!(render(&args(&["/nonexistent/definitely.csv"])).is_err());
        assert!(render(&args(&[])).is_err());
    }

    #[test]
    fn serve_rejects_bad_configuration_before_binding() {
        let csv_path = tmp("serve_bad.csv");
        std::fs::write(&csv_path, "0.0,0.0\n1.0,1.0\n0.5,0.5\n").expect("write");
        let p = csv_path.to_str().expect("utf8");
        assert!(serve(&args(&[p, "--workers", "0", "--tau", "0.5"])).is_err());
        assert!(serve(&args(&[p, "--queue", "0", "--tau", "0.5"])).is_err());
        assert!(serve(&args(&[p, "--tile-size", "4", "--tau", "0.5"])).is_err());
        assert!(serve(&args(&[p, "--tau", "-1"])).is_err());
        assert!(serve(&args(&[p, "--tau", "0.5", "--tile-max-work", "0"])).is_err());
        assert!(serve(&args(&[p, "--tau", "0.5", "--tile-deadline-ms", "0"])).is_err());
        assert!(serve(&args(&[p, "--tau", "0.5", "--eps", "-1"])).is_err());
        assert!(serve(&args(&[
            p,
            "--tau",
            "0.5",
            "--addr",
            "definitely-not-an-addr"
        ]))
        .is_err());
    }

    #[test]
    fn synth_requires_dataset() {
        assert!(synth(&args(&["--n", "10"])).is_err());
        assert!(synth(&args(&["--dataset", "mars"])).is_err());
    }
}

//! Tiny dependency-free flag parser shared by every subcommand.

use std::collections::BTreeMap;

/// Parsed command line: positional arguments and `--flag value` /
/// `--flag` pairs.
#[derive(Debug, Default, Clone)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Flags that take no value.
const BOOLEAN_FLAGS: [&str; 12] = [
    "help",
    "weights",
    "grayscale",
    "tiled",
    "verbose",
    "allow-shutdown",
    "debug-sleep",
    "no-trace",
    "no-simd",
    "no-batch",
    "preload",
    "pyramid",
];

impl Args {
    /// Parses raw arguments (everything after the subcommand).
    ///
    /// Unknown flags are kept and reported by [`Args::unknown_flags`]
    /// so subcommands can reject typos instead of ignoring them.
    pub fn parse(raw: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                if name.is_empty() {
                    return Err("stray `--`".into());
                }
                if BOOLEAN_FLAGS.contains(&name) {
                    out.flags.insert(name.to_string(), "true".to_string());
                } else {
                    i += 1;
                    let Some(v) = raw.get(i) else {
                        return Err(format!("flag --{name} needs a value"));
                    };
                    out.flags.insert(name.to_string(), v.clone());
                }
            } else {
                out.positional.push(a.clone());
            }
            i += 1;
        }
        Ok(out)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Raw string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.flags.get(name).map(String::as_str)
    }

    /// Boolean flag presence.
    pub fn has(&self, name: &str) -> bool {
        self.consumed.borrow_mut().push(name.to_string());
        self.flags.contains_key(name)
    }

    /// Typed flag with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
        }
    }

    /// Required typed flag.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let Some(v) = self.get(name) else {
            return Err(format!("missing required flag --{name}"));
        };
        v.parse()
            .map_err(|_| format!("flag --{name}: cannot parse {v:?}"))
    }

    /// Flags that were given but never read by the subcommand.
    pub fn unknown_flags(&self) -> Vec<String> {
        let consumed = self.consumed.borrow();
        self.flags
            .keys()
            .filter(|k| !consumed.contains(k))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Args {
        let raw: Vec<String> = items.iter().map(|s| s.to_string()).collect();
        Args::parse(&raw).expect("parse")
    }

    #[test]
    fn positional_and_flags_mix() {
        let a = parse(&["input.csv", "--eps", "0.02", "--weights", "out.ppm"]);
        assert_eq!(a.positional(), ["input.csv", "out.ppm"]);
        assert_eq!(a.get("eps"), Some("0.02"));
        assert!(a.has("weights"));
        assert!(!a.has("grayscale"));
    }

    #[test]
    fn typed_access_with_default() {
        let a = parse(&["--eps", "0.05"]);
        assert_eq!(a.get_parsed("eps", 0.01).expect("f64"), 0.05);
        assert_eq!(a.get_parsed("width", 320u32).expect("u32"), 320);
    }

    #[test]
    fn missing_value_is_error() {
        let raw = vec!["--eps".to_string()];
        assert!(Args::parse(&raw).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&[]);
        let err = a.require::<f64>("tau").expect_err("missing");
        assert!(err.contains("--tau"));
    }

    #[test]
    fn unknown_flags_are_tracked() {
        let a = parse(&["--eps", "0.01", "--typo", "x"]);
        let _ = a.get("eps");
        assert_eq!(a.unknown_flags(), vec!["typo".to_string()]);
    }

    #[test]
    fn bad_parse_is_reported() {
        let a = parse(&["--eps", "abc"]);
        assert!(a.get_parsed("eps", 0.01f64).is_err());
    }
}

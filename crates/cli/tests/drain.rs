//! SIGTERM drain contract for `kdv serve`.
//!
//! Orchestrators (including `kdv cluster`'s supervisor) stop shards
//! with SIGTERM and expect a graceful drain, not an abort:
//!
//! * the accept socket closes (new connections get nothing),
//! * requests already in flight complete with real responses,
//! * WALs are fsynced so every acked write survives the restart,
//! * the process exits 0.
//!
//! The in-flight guarantee is exercised with `/debug/sleep`: a request
//! parked inside a worker when the signal lands must still answer 200.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use kdv_core::bandwidth::scott_gamma;
use kdv_core::kernel::Kernel;
use kdv_data::Dataset;
use kdv_index::KdTree;
use kdv_store::SnapshotWriter;
use kdv_telemetry::json::{self, Value};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdv-drain-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn seed_store(dir: &Path) {
    let mut points = Dataset::Crime.generate(400, 11);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let tree = KdTree::build_default(&points);
    SnapshotWriter::new(&tree, kernel)
        .write_to(dir.join("crime.kdvs"))
        .expect("write snapshot");
}

/// Spawns a serve child discovering its port through `--port-file` —
/// the same mechanism the cluster supervisor uses.
fn spawn_server(dir: &Path, extra: &[&str]) -> (Child, SocketAddr) {
    let port_file = dir.join("serve.port");
    let _ = std::fs::remove_file(&port_file);
    let mut child = Command::new(env!("CARGO_BIN_EXE_kdv"))
        .arg("serve")
        .arg("--store")
        .arg(dir)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--tau",
            "1e-3",
            "--tile-size",
            "32",
            "--max-z",
            "2",
        ])
        .arg("--port-file")
        .arg(&port_file)
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn kdv serve");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            let text = text.trim();
            if !text.is_empty() {
                break text.parse::<SocketAddr>().expect("bound address");
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("server died during startup: {status}");
        }
        assert!(Instant::now() < deadline, "port file never appeared");
        std::thread::sleep(Duration::from_millis(10));
    };
    (child, addr)
}

fn sigterm(child: &Child) {
    let ok = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(ok, "kill -TERM failed");
}

fn request(addr: SocketAddr, raw: String) -> Option<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    stream.write_all(raw.as_bytes()).ok()?;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).ok()?;
    let split = bytes.windows(4).position(|w| w == b"\r\n\r\n")?;
    let status: u16 = std::str::from_utf8(&bytes[..split])
        .ok()?
        .split(' ')
        .nth(1)?
        .parse()
        .ok()?;
    Some((status, bytes[split + 4..].to_vec()))
}

fn get(addr: SocketAddr, path: &str) -> Option<(u16, Vec<u8>)> {
    request(addr, format!("GET {path} HTTP/1.1\r\nHost: kdv\r\n\r\n"))
}

fn post_point(addr: SocketAddr, x: f64) -> bool {
    let body = format!("{{\"append\":[[{x},30.0,0.002]]}}");
    let raw = format!(
        "POST /datasets/crime/points HTTP/1.1\r\nHost: kdv\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    matches!(request(addr, raw), Some((200, _)))
}

fn wait_exit(mut child: Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("server did not exit within 30s of SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigterm_drains_inflight_requests_and_exits_zero() {
    let dir = temp_dir("inflight");
    seed_store(&dir);
    let (child, addr) = spawn_server(&dir, &["--debug-sleep"]);
    assert_eq!(get(addr, "/readyz").expect("readyz").0, 200);

    // Park a request inside a worker, then signal mid-sleep.
    let slow = std::thread::spawn(move || get(addr, "/debug/sleep/1500"));
    std::thread::sleep(Duration::from_millis(300));
    sigterm(&child);
    let (status, _) = slow
        .join()
        .expect("slow request thread")
        .expect("in-flight request must get a response");
    assert_eq!(status, 200, "in-flight request must complete through drain");

    let exit = wait_exit(child);
    assert_eq!(exit.code(), Some(0), "drain must exit 0, got {exit}");

    // The accept socket is gone: a fresh request finds nobody home.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "socket still accepting after drain"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_fsyncs_acked_writes_before_exit() {
    let dir = temp_dir("durable");
    seed_store(&dir);
    let (child, addr) = spawn_server(&dir, &["--fsync", "batch"]);
    assert_eq!(get(addr, "/readyz").expect("readyz").0, 200);
    let mut acked = 0u64;
    for i in 0..40 {
        if post_point(addr, 20.0 + 0.001 * i as f64) {
            acked += 1;
        }
    }
    assert!(acked > 0, "no write was acked");
    sigterm(&child);
    let exit = wait_exit(child);
    assert_eq!(exit.code(), Some(0), "drain must exit 0, got {exit}");

    // Reboot the store: every acked point must have survived — the
    // drain fsyncs the WAL even under --fsync batch.
    let (kill_me, addr) = spawn_server(&dir, &[]);
    let (status, body) = get(addr, "/datasets/crime/stats").expect("stats");
    assert_eq!(status, 200);
    let doc = json::parse(std::str::from_utf8(&body).expect("utf8")).expect("stats JSON");
    let live = doc
        .get("points_live")
        .and_then(Value::as_f64)
        .expect("points_live") as u64;
    assert!(
        live >= 400 + acked,
        "drain lost acked writes: {acked} acked, {live} live (base 400)"
    );
    let mut kill_me = kill_me;
    let _ = kill_me.kill();
    let _ = kill_me.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

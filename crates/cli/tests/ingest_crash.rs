//! Kill-anywhere fault harness for durable streaming ingest.
//!
//! A real `kdv serve` child process takes a write storm and is
//! SIGKILLed at varied points — mid-append, mid-fsync, mid-compaction
//! — under both fsync policies. After every kill the store directory
//! is rebooted and checked against the client-side ack log:
//!
//! * every acknowledged point is present (`points_live ≥ base + acked`),
//! * nothing unacked beyond the in-flight window survives
//!   (`points_live ≤ base + acked + writers`),
//! * the recovered state renders bit-for-bit like a from-scratch boot
//!   of the same files.
//!
//! A separate sweep truncates and bit-flips a WAL at *every* byte
//! offset and asserts replay never panics and only ever yields a
//! prefix of the original records.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use kdv_core::bandwidth::scott_gamma;
use kdv_core::kernel::Kernel;
use kdv_data::Dataset;
use kdv_geom::PointSet;
use kdv_index::KdTree;
use kdv_store::{SnapshotWriter, WalOp, WalRecord, WalWriter};
use kdv_telemetry::json::{self, Value};

const BASE_POINTS: usize = 500;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdv-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn seed_store(dir: &Path) -> PointSet {
    let mut points = Dataset::Crime.generate(BASE_POINTS, 7);
    points.scale_weights(1.0 / points.len() as f64);
    let kernel = Kernel::gaussian(scott_gamma(&points).gamma);
    let tree = KdTree::build_default(&points);
    SnapshotWriter::new(&tree, kernel)
        .write_to(dir.join("crime.kdvs"))
        .expect("write snapshot");
    points
}

/// Spawns a child server on an ephemeral port and parses the bound
/// address out of its startup banner.
fn spawn_server(dir: &Path, fsync: &str, extra: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kdv"))
        .arg("serve")
        .arg("--store")
        .arg(dir)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--tau",
            "1e-3",
            "--tile-size",
            "32",
            "--max-z",
            "2",
            "--fsync",
            fsync,
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn kdv serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        assert!(
            Instant::now() < deadline,
            "server never printed its address"
        );
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read banner");
        assert!(n > 0, "server exited before printing its address");
        if let Some(rest) = line.split("http://").nth(1) {
            let host = rest.split('/').next().expect("authority");
            break host.parse::<SocketAddr>().expect("bound address");
        }
    };
    // Keep draining the banner so the child never blocks on the pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, addr)
}

fn request(addr: SocketAddr, raw: String) -> Option<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    stream.write_all(raw.as_bytes()).ok()?;
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).ok()?;
    let split = bytes.windows(4).position(|w| w == b"\r\n\r\n")?;
    let status: u16 = std::str::from_utf8(&bytes[..split])
        .ok()?
        .split(' ')
        .nth(1)?
        .parse()
        .ok()?;
    Some((status, bytes[split + 4..].to_vec()))
}

fn get(addr: SocketAddr, path: &str) -> Option<(u16, Vec<u8>)> {
    request(addr, format!("GET {path} HTTP/1.1\r\nHost: kdv\r\n\r\n"))
}

fn post_point(addr: SocketAddr, x: f64, y: f64) -> bool {
    let body = format!("{{\"append\":[[{x},{y},0.002]]}}");
    let raw = format!(
        "POST /datasets/crime/points HTTP/1.1\r\nHost: kdv\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    matches!(request(addr, raw), Some((200, _)))
}

fn stats(addr: SocketAddr) -> Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some((200, body)) = get(addr, "/datasets/crime/stats") {
            return json::parse(std::str::from_utf8(&body).expect("utf8")).expect("stats JSON");
        }
        assert!(Instant::now() < deadline, "stats endpoint never came up");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn num(doc: &Value, key: &str) -> u64 {
    doc.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("numeric field {key:?} in {doc:?}")) as u64
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("mkdir copy");
    for entry in std::fs::read_dir(src).expect("read store dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy store file");
    }
}

/// One kill iteration: storm the server, SIGKILL it after `delay`,
/// reboot, and verify the ack log against recovered state and tiles.
fn kill_iteration(fsync: &str, extra: &[&str], delay: Duration, tag: &str) {
    let dir = temp_dir(tag);
    seed_store(&dir);

    let (mut child, addr) = spawn_server(&dir, fsync, extra);
    const WRITERS: u64 = 2;
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        handles.push(std::thread::spawn(move || {
            let mut acked = 0u64;
            for i in 0..100_000u64 {
                // Distinct coordinates per write so every durable
                // append is a distinct live point.
                let x = 20.0 + w as f64 + 0.0001 * i as f64;
                if !post_point(addr, x, 30.0) {
                    break;
                }
                acked += 1;
            }
            acked
        }));
    }
    std::thread::sleep(delay);
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");
    let acked: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("writer thread"))
        .sum();

    // Reboot the same directory: the WAL replays over the snapshot.
    let (mut child, addr) = spawn_server(&dir, fsync, extra);
    let doc = stats(addr);
    let live = num(&doc, "points_live");
    let base = BASE_POINTS as u64;
    assert!(
        live >= base + acked,
        "{tag}: lost acked writes: {acked} acked, {live} live (base {base})"
    );
    assert!(
        live <= base + acked + WRITERS,
        "{tag}: phantom writes: {acked} acked (+{WRITERS} in flight), {live} live"
    );
    let (status, recovered_tile) = get(addr, "/tiles/crime/eps/0/0/0.png").expect("tile request");
    assert_eq!(status, 200, "{tag}: recovered tile");
    child.kill().expect("stop recovered server");
    child.wait().expect("reap recovered server");

    // A from-scratch boot of the same durable bytes must render the
    // exact same tile: recovery is deterministic.
    let copy = temp_dir(&format!("{tag}-copy"));
    copy_dir(&dir, &copy);
    let (mut child, addr) = spawn_server(&copy, fsync, extra);
    let (status, rebuilt_tile) = get(addr, "/tiles/crime/eps/0/0/0.png").expect("tile request");
    assert_eq!(status, 200, "{tag}: rebuilt tile");
    assert_eq!(
        recovered_tile, rebuilt_tile,
        "{tag}: recovered render is not bit-for-bit reproducible"
    );
    child.kill().expect("stop rebuilt server");
    child.wait().expect("reap rebuilt server");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&copy);
}

#[test]
fn sigkill_under_write_storm_loses_nothing_acked_fsync_every() {
    for (i, delay_ms) in [40u64, 150].into_iter().enumerate() {
        kill_iteration(
            "every",
            &[],
            Duration::from_millis(delay_ms),
            &format!("every-{i}"),
        );
    }
}

#[test]
fn sigkill_under_write_storm_loses_nothing_acked_fsync_batch() {
    for (i, delay_ms) in [40u64, 150].into_iter().enumerate() {
        kill_iteration(
            "batch",
            &[],
            Duration::from_millis(delay_ms),
            &format!("batch-{i}"),
        );
    }
}

/// Aggressive compaction thresholds so the SIGKILL has a real chance
/// of landing mid-fold — the positional crash-safety argument
/// (snapshot first, then WAL rotation) is what keeps this green.
#[test]
fn sigkill_during_compaction_churn_loses_nothing_acked() {
    kill_iteration(
        "every",
        &["--compact-points", "24", "--memtable-points", "4096"],
        Duration::from_millis(250),
        "compact",
    );
}

/// Tampering sweep: a WAL truncated at every length and bit-flipped
/// at every byte offset never panics replay and never yields anything
/// but a prefix of the original records.
#[test]
fn tampered_wals_replay_to_a_valid_prefix_at_every_offset() {
    let dir = temp_dir("tamper");
    let wal_path = dir.join("crime.wal");
    let mut writer = WalWriter::create(&wal_path).expect("create WAL");
    for seq in 1..=8u64 {
        let op = if seq % 3 == 0 {
            WalOp::Tombstone(vec![[seq as f64, 2.0]])
        } else {
            WalOp::Append(vec![[seq as f64, 1.0, 0.5], [seq as f64, 4.0, 0.25]])
        };
        writer.append(&WalRecord { seq, op }).expect("append");
    }
    writer.sync().expect("sync");
    drop(writer);
    let pristine = std::fs::read(&wal_path).expect("read WAL");
    let original = kdv_store::wal::replay(&wal_path).expect("pristine replay");
    assert_eq!(original.records.len(), 8);
    assert!(!original.torn);

    let is_prefix = |records: &[WalRecord]| {
        records.len() <= original.records.len()
            && records
                .iter()
                .zip(&original.records)
                .all(|(a, b)| a.seq == b.seq && a.op == b.op)
    };

    let scratch = dir.join("tampered.wal");
    for cut in 0..=pristine.len() {
        std::fs::write(&scratch, &pristine[..cut]).expect("write truncation");
        if let Ok(replay) = kdv_store::wal::replay(&scratch) {
            assert!(
                is_prefix(&replay.records),
                "truncation at {cut} yielded a non-prefix"
            );
            assert!(
                replay.valid_len <= cut as u64,
                "truncation at {cut}: valid_len past EOF"
            );
        } // Err (e.g. a mangled header) is fine — it must only not panic.
    }
    for offset in 0..pristine.len() {
        let mut flipped = pristine.clone();
        flipped[offset] ^= 0x01;
        std::fs::write(&scratch, &flipped).expect("write bit flip");
        if let Ok(replay) = kdv_store::wal::replay(&scratch) {
            assert!(
                is_prefix(&replay.records),
                "bit flip at {offset} yielded a non-prefix"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tampered WAL behind a *live server*: boot on a torn tail, serve
/// stats and tiles, and confirm only the valid prefix was applied.
#[test]
fn server_boots_and_serves_on_a_torn_wal_tail() {
    let dir = temp_dir("torn-boot");
    let points = seed_store(&dir);
    let wal_path = dir.join("crime.wal");
    let anchor = points.point(10);
    let mut writer = WalWriter::create(&wal_path).expect("create WAL");
    for seq in 1..=4u64 {
        writer
            .append(&WalRecord {
                seq,
                op: WalOp::Append(vec![[anchor[0], anchor[1], 0.01]]),
            })
            .expect("append");
    }
    writer.sync().expect("sync");
    drop(writer);
    // Tear the last record mid-payload: three records survive.
    let pristine = std::fs::read(&wal_path).expect("read WAL");
    std::fs::write(&wal_path, &pristine[..pristine.len() - 5]).expect("tear tail");

    let (mut child, addr) = spawn_server(&dir, "every", &[]);
    let doc = stats(addr);
    assert_eq!(num(&doc, "points_live"), BASE_POINTS as u64 + 3);
    let ingest = doc.get("ingest").expect("ingest block");
    assert_eq!(num(ingest, "last_seq"), 3, "torn record must not apply");
    let (status, _) = get(addr, "/tiles/crime/eps/0/0/0.png").expect("tile request");
    assert_eq!(status, 200);
    child.kill().expect("stop server");
    child.wait().expect("reap server");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Emulations of the paper's four evaluation datasets (Table 5).
//!
//! | name | n (paper) | attributes (paper) | spatial character emulated |
//! |---|---|---|---|
//! | El nino | 178,080 | sea surface temperature at depth 0 / 500 | curved correlated bands (oceanographic regimes) |
//! | crime | 270,688 | latitude / longitude | many compact urban hotspots over sparse background |
//! | home | 919,438 | temperature / humidity | one dense anisotropic mass with seasonal side lobes |
//! | hep | 7,000,000 | 1st / 2nd feature dims | two broad heavily-overlapping classes |
//!
//! Pruning behavior of every KDV method depends on how *clustered* the
//! data is (clusters → tight node MBRs far from most pixels → strong
//! pruning), which these mixtures reproduce; see `DESIGN.md`
//! substitution #1. Generation is deterministic per (dataset, n, seed).

use crate::synthetic::{gaussian_mixture, uniform, MixtureComponent};
use kdv_geom::PointSet;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// One of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// El nino buoy readings (178,080 × 2).
    ElNino,
    /// Atlanta crime coordinates (270,688 × 2).
    Crime,
    /// Home sensor readings (919,438 × 2).
    Home,
    /// HEPMASS features (7,000,000 × 2).
    Hep,
}

impl Dataset {
    /// All four datasets in the paper's Table 5 order.
    pub const ALL: [Dataset; 4] = [Dataset::ElNino, Dataset::Crime, Dataset::Home, Dataset::Hep];

    /// The dataset's cardinality in the paper.
    pub fn paper_size(self) -> usize {
        match self {
            Dataset::ElNino => 178_080,
            Dataset::Crime => 270_688,
            Dataset::Home => 919_438,
            Dataset::Hep => 7_000_000,
        }
    }

    /// Name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::ElNino => "El nino",
            Dataset::Crime => "crime",
            Dataset::Home => "home",
            Dataset::Hep => "hep",
        }
    }

    /// Generates the 2-D emulation at paper cardinality.
    pub fn generate_paper(self, seed: u64) -> PointSet {
        self.generate(self.paper_size(), seed)
    }

    /// Generates the 2-D emulation with `n` points.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn generate(self, n: usize, seed: u64) -> PointSet {
        assert!(n > 0, "dataset size must be positive");
        match self {
            Dataset::ElNino => el_nino(n, seed),
            Dataset::Crime => crime(n, seed),
            Dataset::Home => home(n, seed),
            Dataset::Hep => hep(n, seed),
        }
    }

    /// Generates a `d`-dimensional variant for the Fig 24 sweep (only
    /// meaningful for `Home` and `Hep`, whose real counterparts have
    /// ≥ 10 attributes; accepted for all datasets).
    ///
    /// The first two axes reproduce the 2-D emulation's structure; the
    /// remaining axes are correlated responses plus noise, giving PCA a
    /// non-trivial spectrum to reduce.
    ///
    /// # Panics
    /// Panics if `n == 0` or `d < 2`.
    pub fn generate_highdim(self, n: usize, d: usize, seed: u64) -> PointSet {
        assert!(d >= 2, "high-dimensional variant needs d ≥ 2");
        let base = self.generate(n, seed);
        if d == 2 {
            return base;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut out = PointSet::with_capacity(d, n);
        let mut coords = vec![0.0; d];
        // Fixed random linear responses make extra axes correlated with
        // the base plane (realistic sensor redundancy) at varied scales.
        let responses: Vec<(f64, f64, f64)> = (2..d)
            .map(|_| {
                (
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(0.2..1.5),
                )
            })
            .collect();
        for i in 0..n {
            let p = base.point(i);
            coords[0] = p[0];
            coords[1] = p[1];
            for (j, &(a, b, noise)) in responses.iter().enumerate() {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                coords[2 + j] = a * p[0] + b * p[1] + noise * z;
            }
            out.push(&coords);
        }
        out
    }
}

/// Curved correlated bands: three anisotropic regimes along a diagonal.
fn el_nino(n: usize, seed: u64) -> PointSet {
    let comps = [
        MixtureComponent {
            mean: vec![22.0, 8.0],
            std: vec![1.8, 1.1],
            weight: 3.0,
        },
        MixtureComponent {
            mean: vec![26.0, 10.5],
            std: vec![1.2, 0.8],
            weight: 4.0,
        },
        MixtureComponent {
            mean: vec![29.0, 12.0],
            std: vec![0.9, 1.4],
            weight: 2.0,
        },
    ];
    gaussian_mixture(n, &comps, seed)
}

/// Urban hotspots: ~40 compact clusters of varied intensity over a
/// sparse uniform background (cf. the Arlington map of Fig 1).
fn crime(n: usize, seed: u64) -> PointSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut comps = Vec::with_capacity(40);
    for _ in 0..40 {
        comps.push(MixtureComponent::isotropic(
            vec![rng.gen_range(-84.55..-84.25), rng.gen_range(33.64..33.89)],
            rng.gen_range(0.0015..0.008),
            rng.gen_range(0.5..4.0),
        ));
    }
    let n_bg = n / 10; // 10% diffuse background
    let n_hot = n - n_bg;
    let hot = gaussian_mixture(n_hot, &comps, seed.wrapping_add(1));
    let mut out = hot;
    let bg_x = uniform(n_bg, 1, -84.55, -84.25, seed.wrapping_add(2));
    let bg_y = uniform(n_bg, 1, 33.64, 33.89, seed.wrapping_add(3));
    for i in 0..n_bg {
        out.push(&[bg_x.point(i)[0], bg_y.point(i)[0]]);
    }
    out
}

/// One dense anisotropic mass with overlapping seasonal lobes.
fn home(n: usize, seed: u64) -> PointSet {
    let comps = [
        MixtureComponent {
            mean: vec![21.0, 45.0],
            std: vec![1.5, 6.0],
            weight: 6.0,
        },
        MixtureComponent {
            mean: vec![24.0, 38.0],
            std: vec![2.0, 5.0],
            weight: 3.0,
        },
        MixtureComponent {
            mean: vec![18.5, 55.0],
            std: vec![1.2, 4.5],
            weight: 2.0,
        },
        MixtureComponent {
            mean: vec![27.0, 30.0],
            std: vec![2.5, 4.0],
            weight: 1.0,
        },
    ];
    gaussian_mixture(n, &comps, seed)
}

/// Two broad, heavily overlapping classes (signal vs background).
fn hep(n: usize, seed: u64) -> PointSet {
    let comps = [
        MixtureComponent {
            mean: vec![0.0, 0.0],
            std: vec![1.0, 1.0],
            weight: 1.0,
        },
        MixtureComponent {
            mean: vec![1.2, 0.8],
            std: vec![1.3, 1.1],
            weight: 1.0,
        },
    ];
    gaussian_mixture(n, &comps, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_table5() {
        assert_eq!(Dataset::ElNino.paper_size(), 178_080);
        assert_eq!(Dataset::Crime.paper_size(), 270_688);
        assert_eq!(Dataset::Home.paper_size(), 919_438);
        assert_eq!(Dataset::Hep.paper_size(), 7_000_000);
    }

    #[test]
    fn all_datasets_generate_2d() {
        for ds in Dataset::ALL {
            let ps = ds.generate(500, 1);
            assert_eq!(ps.len(), 500, "{ds:?}");
            assert_eq!(ps.dim(), 2);
            assert!(ps.weights().iter().all(|&w| w == 1.0));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Crime.generate(1000, 5);
        let b = Dataset::Crime.generate(1000, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn crime_is_more_clustered_than_hep() {
        // Clusteredness proxy: coefficient of variation of local counts
        // on a coarse grid over the 1%–99% quantile window (trimming
        // keeps the metric from being dominated by a few tail points).
        fn clumpiness(ps: &PointSet) -> f64 {
            let n = ps.len();
            let mut xs: Vec<f64> = (0..n).map(|i| ps.point(i)[0]).collect();
            let mut ys: Vec<f64> = (0..n).map(|i| ps.point(i)[1]).collect();
            xs.sort_by(f64::total_cmp);
            ys.sort_by(f64::total_cmp);
            let (x0, x1) = (xs[n / 100], xs[n - 1 - n / 100]);
            let (y0, y1) = (ys[n / 100], ys[n - 1 - n / 100]);
            let g = 16usize;
            let mut counts = vec![0.0f64; g * g];
            for i in 0..n {
                let p = ps.point(i);
                if p[0] < x0 || p[0] > x1 || p[1] < y0 || p[1] > y1 {
                    continue;
                }
                let cx = (((p[0] - x0) / (x1 - x0 + 1e-12)) * g as f64) as usize;
                let cy = (((p[1] - y0) / (y1 - y0 + 1e-12)) * g as f64) as usize;
                counts[cy.min(g - 1) * g + cx.min(g - 1)] += 1.0;
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            let var =
                counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
            var.sqrt() / mean
        }
        let crime = Dataset::Crime.generate(20_000, 2);
        let hep = Dataset::Hep.generate(20_000, 2);
        assert!(
            clumpiness(&crime) > 1.4 * clumpiness(&hep),
            "crime must be markedly more clustered than hep: {} vs {}",
            clumpiness(&crime),
            clumpiness(&hep)
        );
    }

    #[test]
    fn highdim_extends_base_plane() {
        let ps = Dataset::Home.generate_highdim(300, 6, 9);
        assert_eq!(ps.dim(), 6);
        let base = Dataset::Home.generate(300, 9);
        for i in 0..10 {
            assert_eq!(&ps.point(i)[..2], base.point(i));
        }
    }

    #[test]
    fn highdim_axes_are_correlated() {
        let ps = Dataset::Hep.generate_highdim(5000, 4, 10);
        // Axis 2 is a linear response to axes 0/1 plus noise; its
        // correlation with the plane must be visible.
        let mean = ps.mean().expect("non-empty");
        let mut cov02 = 0.0;
        let mut var0 = 0.0;
        let mut var2 = 0.0;
        for i in 0..ps.len() {
            let p = ps.point(i);
            cov02 += (p[0] - mean[0]) * (p[2] - mean[2]);
            var0 += (p[0] - mean[0]).powi(2);
            var2 += (p[2] - mean[2]).powi(2);
        }
        let corr = cov02 / (var0.sqrt() * var2.sqrt());
        assert!(corr.abs() > 0.05, "extra axes should correlate, got {corr}");
    }
}

//! Dataset generation and I/O for the QUAD reproduction.
//!
//! The paper evaluates on four real datasets (Table 5): *El nino*
//! (178,080 sea-temperature readings), *crime* (270,688 Atlanta
//! incident coordinates), *home* (919,438 sensor readings) and *hep*
//! (7,000,000 HEPMASS feature vectors). Those downloads are not
//! available in this offline reproduction, so [`emulate`] generates
//! synthetic stand-ins with the same cardinality, dimensionality and
//! spatial character — documented substitution #1 in `DESIGN.md`. The
//! building blocks (Gaussian mixtures, uniform noise, rings) live in
//! [`synthetic`], and [`csv`] reads/writes simple coordinate files so
//! users can run the library on their own data. [`sanitize`] rejects or
//! filters non-finite coordinates and invalid weights at the ingestion
//! boundary before they can corrupt index statistics downstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod emulate;
pub mod sanitize;
pub mod synthetic;

pub use emulate::Dataset;

//! Dataset sanitation at the ingestion boundary.
//!
//! Everything downstream of this crate — kd-tree moments, MBR distance
//! intervals, kernel sums — silently produces garbage (or panics deep
//! inside a render) when fed NaN/infinite coordinates or weights. The
//! CSV parser rejects such values at the line level; this module covers
//! point sets arriving through the library API, with two policies:
//! [`validate`] rejects the first defect (fail-fast, for pipelines
//! where corrupt input is a bug) and [`drop_invalid`] filters the
//! defective rows out and reports how many were lost (best-effort, for
//! dirty real-world feeds).

use kdv_geom::PointSet;
use std::fmt;

/// The first defect found in a point set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Defect {
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate {
        /// Row index of the offending point.
        point: usize,
        /// Axis of the offending coordinate.
        axis: usize,
    },
    /// A weight was NaN or infinite.
    NonFiniteWeight {
        /// Row index of the offending point.
        point: usize,
    },
    /// A weight was negative (densities must be non-negative sums).
    NegativeWeight {
        /// Row index of the offending point.
        point: usize,
    },
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Defect::NonFiniteCoordinate { point, axis } => {
                write!(f, "point {point}: non-finite coordinate on axis {axis}")
            }
            Defect::NonFiniteWeight { point } => write!(f, "point {point}: non-finite weight"),
            Defect::NegativeWeight { point } => write!(f, "point {point}: negative weight"),
        }
    }
}

impl std::error::Error for Defect {}

/// Checks a single point row; `Ok` when all coordinates and the weight
/// are finite and the weight is non-negative.
///
/// The weight arms are defense in depth: every current [`PointSet`]
/// constructor asserts finite non-negative weights already, so only
/// the coordinate defect is reachable through the public API today.
fn check_row(coords: &[f64], weight: f64, point: usize) -> Result<(), Defect> {
    if let Some(axis) = coords.iter().position(|c| !c.is_finite()) {
        return Err(Defect::NonFiniteCoordinate { point, axis });
    }
    if !weight.is_finite() {
        return Err(Defect::NonFiniteWeight { point });
    }
    if weight < 0.0 {
        return Err(Defect::NegativeWeight { point });
    }
    Ok(())
}

/// Fail-fast validation: returns the first [`Defect`], or `Ok` for a
/// clean set. An empty set is clean here — emptiness is a *query-time*
/// error (`kdv_core::KdvError::EmptyDataset`), not a data defect.
pub fn validate(ps: &PointSet) -> Result<(), Defect> {
    for i in 0..ps.len() {
        check_row(ps.point(i), ps.weight(i), i)?;
    }
    Ok(())
}

/// Best-effort filtering: returns a new set with every defective row
/// removed, plus the number of rows dropped. Row order is preserved.
pub fn drop_invalid(ps: &PointSet) -> (PointSet, usize) {
    let mut out = PointSet::new(ps.dim());
    let mut dropped = 0usize;
    for i in 0..ps.len() {
        let (coords, weight) = (ps.point(i), ps.weight(i));
        if check_row(coords, weight, i).is_ok() {
            out.push_weighted(coords, weight);
        } else {
            dropped += 1;
        }
    }
    (out, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Coordinate defects only: `PointSet` constructors assert weights
    /// finite and non-negative, so dirty weights cannot be built.
    fn dirty_set() -> PointSet {
        let mut ps = PointSet::new(2);
        ps.push_weighted(&[0.0, 0.0], 1.0);
        ps.push_weighted(&[f64::NAN, 1.0], 1.0);
        ps.push_weighted(&[2.0, f64::INFINITY], 1.5);
        ps.push_weighted(&[f64::NEG_INFINITY, 3.0], 0.5);
        ps.push_weighted(&[4.0, 4.0], 2.0);
        ps
    }

    #[test]
    fn validate_reports_first_defect() {
        assert_eq!(
            validate(&dirty_set()),
            Err(Defect::NonFiniteCoordinate { point: 1, axis: 0 })
        );
        let clean = PointSet::from_rows(2, &[0.0, 0.0, 1.0, 1.0]);
        assert_eq!(validate(&clean), Ok(()));
        assert_eq!(validate(&PointSet::new(3)), Ok(()), "empty set is clean");
    }

    #[test]
    fn validate_catches_weight_defects() {
        // Through the private row check: the public constructors make
        // these rows unbuildable (see `check_row`'s docs).
        assert_eq!(
            check_row(&[0.0], f64::NEG_INFINITY, 3),
            Err(Defect::NonFiniteWeight { point: 3 })
        );
        assert_eq!(
            check_row(&[0.0], -1.0, 4),
            Err(Defect::NegativeWeight { point: 4 })
        );
        assert_eq!(check_row(&[0.0], 1.0, 0), Ok(()));
    }

    #[test]
    fn drop_invalid_keeps_clean_rows_in_order() {
        let (clean, dropped) = drop_invalid(&dirty_set());
        assert_eq!(dropped, 3);
        assert_eq!(clean.len(), 2);
        assert_eq!(clean.point(0), &[0.0, 0.0]);
        assert_eq!(clean.point(1), &[4.0, 4.0]);
        assert_eq!(clean.weight(1), 2.0);
        assert_eq!(validate(&clean), Ok(()));
    }

    #[test]
    fn defects_display_their_location() {
        assert_eq!(
            Defect::NonFiniteCoordinate { point: 5, axis: 1 }.to_string(),
            "point 5: non-finite coordinate on axis 1"
        );
    }
}

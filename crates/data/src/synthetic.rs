//! Synthetic point-cloud building blocks.

use kdv_geom::PointSet;
use rand::distributions::Distribution as _;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use rand_distr_normal::Normal;

/// Minimal normal sampler (Box–Muller) so we stay within the approved
/// dependency set (`rand` ships no Gaussian distribution by itself).
mod rand_distr_normal {
    use rand::Rng;

    /// A normal distribution `N(mean, std²)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Normal {
        mean: f64,
        std: f64,
    }

    impl Normal {
        /// Creates the distribution.
        ///
        /// # Panics
        /// Panics if `std` is negative or non-finite.
        pub fn new(mean: f64, std: f64) -> Self {
            assert!(std.is_finite() && std >= 0.0, "std must be ≥ 0");
            Self { mean, std }
        }
    }

    impl rand::distributions::Distribution<f64> for Normal {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // Box–Muller; one value per call keeps the code simple and
            // deterministic under seeding.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            self.mean + self.std * z
        }
    }
}

/// One component of a Gaussian mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureComponent {
    /// Component mean (dimensionality sets the output dimensionality).
    pub mean: Vec<f64>,
    /// Per-axis standard deviation.
    pub std: Vec<f64>,
    /// Relative sampling weight (need not be normalized).
    pub weight: f64,
}

impl MixtureComponent {
    /// Convenience constructor for an isotropic component.
    pub fn isotropic(mean: Vec<f64>, std: f64, weight: f64) -> Self {
        let d = mean.len();
        Self {
            mean,
            std: vec![std; d],
            weight,
        }
    }
}

/// Samples `n` points from a Gaussian mixture.
///
/// # Panics
/// Panics if the component list is empty, components disagree in
/// dimensionality, or all weights are zero.
pub fn gaussian_mixture(n: usize, components: &[MixtureComponent], seed: u64) -> PointSet {
    assert!(!components.is_empty(), "mixture needs components");
    let d = components[0].mean.len();
    for c in components {
        assert_eq!(c.mean.len(), d, "component dimensionality mismatch");
        assert_eq!(c.std.len(), d, "std dimensionality mismatch");
        assert!(c.weight >= 0.0, "negative component weight");
    }
    let total: f64 = components.iter().map(|c| c.weight).sum();
    assert!(total > 0.0, "all component weights are zero");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = PointSet::with_capacity(d, n);
    let mut coords = vec![0.0; d];
    for _ in 0..n {
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = &components[0];
        for c in components {
            if pick < c.weight {
                chosen = c;
                break;
            }
            pick -= c.weight;
        }
        for (j, c) in coords.iter_mut().enumerate() {
            *c = Normal::new(chosen.mean[j], chosen.std[j]).sample(&mut rng);
        }
        out.push(&coords);
    }
    out
}

/// Samples `n` points uniformly from the box `[lo, hi]^d`.
///
/// # Panics
/// Panics if `lo >= hi` or `dim == 0`.
pub fn uniform(n: usize, dim: usize, lo: f64, hi: f64, seed: u64) -> PointSet {
    assert!(lo < hi, "uniform range must be non-empty");
    assert!(dim > 0, "dimensionality must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = PointSet::with_capacity(dim, n);
    let mut coords = vec![0.0; dim];
    for _ in 0..n {
        for c in coords.iter_mut() {
            *c = rng.gen_range(lo..hi);
        }
        out.push(&coords);
    }
    out
}

/// Samples `n` 2-D points on an annulus of radius `radius ± thickness`.
///
/// # Panics
/// Panics on negative radius/thickness.
pub fn ring(n: usize, center: [f64; 2], radius: f64, thickness: f64, seed: u64) -> PointSet {
    assert!(radius >= 0.0 && thickness >= 0.0, "invalid ring geometry");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = PointSet::with_capacity(2, n);
    for _ in 0..n {
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = radius + Normal::new(0.0, thickness).sample(&mut rng);
        out.push(&[center[0] + r * angle.cos(), center[1] + r * angle.sin()]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_has_requested_shape() {
        let comps = [
            MixtureComponent::isotropic(vec![0.0, 0.0], 1.0, 1.0),
            MixtureComponent::isotropic(vec![10.0, 10.0], 1.0, 1.0),
        ];
        let ps = gaussian_mixture(1000, &comps, 42);
        assert_eq!(ps.len(), 1000);
        assert_eq!(ps.dim(), 2);
    }

    #[test]
    fn mixture_is_deterministic_under_seed() {
        let comps = [MixtureComponent::isotropic(vec![0.0, 0.0], 1.0, 1.0)];
        let a = gaussian_mixture(100, &comps, 7);
        let b = gaussian_mixture(100, &comps, 7);
        assert_eq!(a, b);
        let c = gaussian_mixture(100, &comps, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn mixture_components_balance() {
        let comps = [
            MixtureComponent::isotropic(vec![-50.0], 1.0, 1.0),
            MixtureComponent::isotropic(vec![50.0], 1.0, 3.0),
        ];
        let ps = gaussian_mixture(8000, &comps, 11);
        let right = (0..ps.len()).filter(|&i| ps.point(i)[0] > 0.0).count();
        let frac = right as f64 / ps.len() as f64;
        assert!(
            (frac - 0.75).abs() < 0.03,
            "weight 3:1 → 75% right, got {frac}"
        );
    }

    #[test]
    fn mixture_sample_moments_match() {
        let comps = [MixtureComponent {
            mean: vec![2.0, -1.0],
            std: vec![0.5, 2.0],
            weight: 1.0,
        }];
        let ps = gaussian_mixture(20000, &comps, 13);
        let mean = ps.mean().expect("non-empty");
        let std = ps.std_dev().expect("non-empty");
        assert!((mean[0] - 2.0).abs() < 0.05);
        assert!((mean[1] + 1.0).abs() < 0.1);
        assert!((std[0] - 0.5).abs() < 0.05);
        assert!((std[1] - 2.0).abs() < 0.1);
    }

    #[test]
    fn uniform_stays_in_box() {
        let ps = uniform(500, 3, -2.0, 5.0, 3);
        for i in 0..ps.len() {
            for &c in ps.point(i) {
                assert!((-2.0..5.0).contains(&c));
            }
        }
    }

    #[test]
    fn ring_points_near_radius() {
        let ps = ring(2000, [1.0, 2.0], 5.0, 0.1, 17);
        let mut mean_r = 0.0;
        for i in 0..ps.len() {
            let p = ps.point(i);
            mean_r += ((p[0] - 1.0).powi(2) + (p[1] - 2.0).powi(2)).sqrt();
        }
        mean_r /= ps.len() as f64;
        assert!((mean_r - 5.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "needs components")]
    fn empty_mixture_panics() {
        gaussian_mixture(10, &[], 0);
    }
}

//! Minimal CSV I/O for point sets.
//!
//! Format: one point per line, coordinates comma-separated, optional
//! trailing weight column when written with `with_weights = true`.
//! Lines starting with `#` are comments. No external CSV dependency —
//! the format is trivial and the parser is fully tested.

use kdv_geom::PointSet;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses a point set from CSV text.
///
/// `dim` columns of coordinates; if `has_weights`, one more column of
/// weights. Blank lines and `#` comments are skipped.
pub fn parse(text: &str, dim: usize, has_weights: bool) -> Result<PointSet, CsvError> {
    assert!(dim > 0, "dimensionality must be positive");
    let mut out = PointSet::new(dim);
    let expected = dim + usize::from(has_weights);
    let mut coords = vec![0.0; dim];
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let mut count = 0usize;
        let mut weight = 1.0;
        for (i, field) in fields.by_ref().enumerate() {
            let v: f64 = field.trim().parse().map_err(|e| CsvError::Parse {
                line: lineno + 1,
                message: format!("bad number {:?}: {e}", field.trim()),
            })?;
            if i < dim {
                // Rust's float parser accepts "inf"/"NaN" spellings;
                // those are data corruption for KDV (distances and
                // kernel sums become undefined), so reject them here
                // with the line number instead of deep in the engine.
                if !v.is_finite() {
                    return Err(CsvError::Parse {
                        line: lineno + 1,
                        message: format!("non-finite coordinate {:?}", field.trim()),
                    });
                }
                coords[i] = v;
            } else if has_weights && i == dim {
                weight = v;
            } else {
                return Err(CsvError::Parse {
                    line: lineno + 1,
                    message: format!("expected {expected} fields, found more"),
                });
            }
            count = i + 1;
        }
        if count != expected {
            return Err(CsvError::Parse {
                line: lineno + 1,
                message: format!("expected {expected} fields, found {count}"),
            });
        }
        if !(weight.is_finite() && weight >= 0.0) {
            return Err(CsvError::Parse {
                line: lineno + 1,
                message: format!("invalid weight {weight}"),
            });
        }
        out.push_weighted(&coords, weight);
    }
    Ok(out)
}

/// Serializes a point set to CSV text.
pub fn to_string(ps: &PointSet, with_weights: bool) -> String {
    let mut s = String::new();
    for i in 0..ps.len() {
        let p = ps.point(i);
        for (j, c) in p.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{c}");
        }
        if with_weights {
            let _ = write!(s, ",{}", ps.weight(i));
        }
        s.push('\n');
    }
    s
}

/// Loads a point set from a CSV file.
pub fn load(path: &Path, dim: usize, has_weights: bool) -> Result<PointSet, CsvError> {
    parse(&fs::read_to_string(path)?, dim, has_weights)
}

/// Saves a point set to a CSV file.
pub fn save(path: &Path, ps: &PointSet, with_weights: bool) -> Result<(), CsvError> {
    fs::write(path, to_string(ps, with_weights))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_without_weights() {
        let ps = PointSet::from_rows(2, &[1.0, 2.5, -3.25, 0.0]);
        let text = to_string(&ps, false);
        let back = parse(&text, 2, false).expect("parse");
        assert_eq!(back, ps);
    }

    #[test]
    fn roundtrip_with_weights() {
        let ps = PointSet::from_rows_weighted(3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[0.5, 2.0]);
        let text = to_string(&ps, true);
        let back = parse(&text, 3, true).expect("parse");
        assert_eq!(back, ps);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n1.0,2.0\n  # another\n3.0,4.0\n";
        let ps = parse(text, 2, false).expect("parse");
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn wrong_field_count_is_reported_with_line() {
        let err = parse("1.0,2.0\n3.0\n", 2, false).expect_err("error");
        match err {
            CsvError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_number_is_reported() {
        let err = parse("1.0,abc\n", 2, false).expect_err("error");
        assert!(err.to_string().contains("abc"));
    }

    #[test]
    fn negative_weight_rejected() {
        let err = parse("0.0,0.0,-1.0\n", 2, true).expect_err("error");
        assert!(err.to_string().contains("invalid weight"));
    }

    #[test]
    fn non_finite_coordinates_rejected_with_line_number() {
        for bad in ["inf", "-inf", "NaN", "nan", "infinity"] {
            let text = format!("1.0,2.0\n{bad},4.0\n");
            let err = parse(&text, 2, false).expect_err(bad);
            match &err {
                CsvError::Parse { line, message } => {
                    assert_eq!(*line, 2, "{bad}: wrong line");
                    assert!(
                        message.contains("non-finite coordinate"),
                        "{bad}: message {message:?}"
                    );
                }
                other => panic!("{bad}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_weight_rejected() {
        let err = parse("0.0,0.0,inf\n", 2, true).expect_err("error");
        assert!(err.to_string().contains("invalid weight"));
        let err = parse("0.0,0.0,NaN\n", 2, true).expect_err("error");
        assert!(err.to_string().contains("invalid weight"));
    }

    /// A set that serializes cleanly must re-parse; one with injected
    /// non-finite values must be rejected on the way back in.
    #[test]
    fn rejection_roundtrip() {
        let ps = PointSet::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        let clean = to_string(&ps, false);
        assert!(parse(&clean, 2, false).is_ok());
        // `to_string` prints 3.0 as "3"; poisoning it yields a line
        // "NaN,4" that parses as f64 NaN and must hit the finiteness
        // check, not merely a number-format error.
        let poisoned = clean.replace('3', "NaN");
        assert!(parse(&poisoned, 2, false).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("kdv_csv_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("pts.csv");
        let ps = PointSet::from_rows(2, &[9.0, 8.0, 7.0, 6.0]);
        save(&path, &ps, false).expect("save");
        let back = load(&path, 2, false).expect("load");
        assert_eq!(back, ps);
        let _ = std::fs::remove_file(&path);
    }
}

//! Snapshot serialization.
//!
//! The writer walks a built [`KdTree`] and emits the KDVS byte layout
//! described in `format`. It never re-derives moments — the bytes are
//! the builder's `f64`s verbatim, which is what makes the round-trip
//! property (`load(write(tree))` renders bit-identically) hold.

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::format::{kernel_code, split_code};
use crate::format::{
    put_f64, put_f64s, put_u16, put_u32, put_u64, section, FLAG_CORESETS, FLAG_INGEST,
    FLAG_PYRAMID, FORMAT_VERSION, HEADER_LEN, MAGIC, SECTION_ENTRY_LEN,
};
use kdv_core::Kernel;
use kdv_geom::PointSet;
use kdv_index::{KdTree, NodeKind};
use std::io::Write as _;
use std::path::Path;

/// Serializes one dataset's index (plus kernel metadata and optional
/// coreset levels) into a KDVS snapshot.
///
/// ```no_run
/// # use kdv_geom::PointSet;
/// # use kdv_index::KdTree;
/// # use kdv_core::Kernel;
/// # use kdv_store::SnapshotWriter;
/// # let points = PointSet::from_rows(2, &[0.0, 0.0, 1.0, 1.0]);
/// let tree = KdTree::build_default(&points);
/// SnapshotWriter::new(&tree, Kernel::gaussian(0.5))
///     .write_to("crime.kdvs")
///     .unwrap();
/// ```
pub struct SnapshotWriter<'a> {
    tree: &'a KdTree,
    kernel: Kernel,
    coresets: Vec<PointSet>,
    pyramid_bounds: Vec<f64>,
    applied_seq: u64,
}

impl<'a> SnapshotWriter<'a> {
    /// Prepares a writer for `tree` evaluated under `kernel`.
    pub fn new(tree: &'a KdTree, kernel: Kernel) -> Self {
        Self {
            tree,
            kernel,
            coresets: Vec::new(),
            pyramid_bounds: Vec::new(),
            applied_seq: 0,
        }
    }

    /// Records the WAL sequence number this snapshot has folded in
    /// (written as the optional INGS section when non-zero). Recovery
    /// skips WAL records at or below it, so a crash between publishing
    /// a compacted snapshot and rotating its WAL never double-applies.
    pub fn with_applied_seq(mut self, seq: u64) -> Self {
        self.applied_seq = seq;
        self
    }

    /// Attaches precomputed coreset levels (typically Z-order samples of
    /// decreasing size from `kdv-sampling`). Each level is stored as a
    /// self-contained re-weighted point set.
    ///
    /// # Panics
    /// Panics if a level's dimensionality differs from the tree's or a
    /// level is empty — writer inputs come from our own pipeline, so
    /// these are programming errors, not data errors.
    pub fn with_coresets(mut self, levels: Vec<PointSet>) -> Self {
        for l in &levels {
            assert_eq!(l.dim(), self.tree.points().dim(), "coreset dim mismatch");
            assert!(!l.is_empty(), "empty coreset level");
        }
        self.coresets = levels;
        self
    }

    /// Attaches a *certified pyramid*: coreset levels (smallest first,
    /// strictly increasing in size) each paired with its certified
    /// normalized sampling bound `ε_s` (from `kdv-pyramid`'s build-time
    /// validation). Written as CORE + PYRA with both flag bits set.
    ///
    /// # Panics
    /// Panics on empty/misordered levels, dimension mismatch, or an
    /// `ε_s` outside `(0, 8]` — pyramid inputs come from our own
    /// builder, so these are programming errors.
    pub fn with_pyramid(mut self, levels: Vec<(PointSet, f64)>) -> Self {
        assert!(!levels.is_empty(), "empty pyramid");
        let mut prev = 0usize;
        let mut coresets = Vec::with_capacity(levels.len());
        let mut bounds = Vec::with_capacity(levels.len());
        for (l, eps_s) in levels {
            assert_eq!(l.dim(), self.tree.points().dim(), "pyramid dim mismatch");
            assert!(l.len() > prev, "pyramid levels must grow strictly");
            assert!(
                eps_s.is_finite() && eps_s > 0.0 && eps_s <= 8.0,
                "certified ε_s out of range: {eps_s}"
            );
            prev = l.len();
            coresets.push(l);
            bounds.push(eps_s);
        }
        self.coresets = coresets;
        self.pyramid_bounds = bounds;
        self
    }

    /// Serializes the snapshot into memory.
    pub fn to_bytes(&self) -> Vec<u8> {
        let tree = self.tree;
        let ps = tree.points();
        let d = ps.dim();
        let nodes = tree.nodes();

        // META
        let mut meta = Vec::with_capacity(64);
        put_u32(&mut meta, d as u32);
        put_u64(&mut meta, ps.len() as u64);
        put_u64(&mut meta, nodes.len() as u64);
        put_u32(&mut meta, tree.root().0);
        put_u64(&mut meta, tree.config().leaf_capacity as u64);
        meta.push(split_code(tree.config().split));
        meta.push(kernel_code(self.kernel.ty));
        put_f64(&mut meta, self.kernel.gamma);
        put_u32(&mut meta, self.coresets.len() as u32);

        // PNTS: coords then weights, already in tree order.
        let mut pnts = Vec::with_capacity((ps.len() * (d + 1)) * 8);
        put_f64s(&mut pnts, ps.coords());
        put_f64s(&mut pnts, ps.weights());

        // TOPO: fixed 15-byte record + MBR corners per node.
        let mut topo = Vec::with_capacity(nodes.len() * (15 + 16 * d));
        for n in nodes {
            let (kind, a, b) = match n.kind {
                NodeKind::Leaf { start, end } => (0u8, start, end),
                NodeKind::Internal { left, right } => (1u8, left.0, right.0),
            };
            topo.push(kind);
            put_u32(&mut topo, a);
            put_u32(&mut topo, b);
            put_u16(&mut topo, n.depth);
            put_u32(&mut topo, n.count);
            put_f64s(&mut topo, n.mbr.lo());
            put_f64s(&mut topo, n.mbr.hi());
        }

        // MOMT: the shared center once, then per-node moment blocks.
        let mut momt = Vec::with_capacity(8 * (d + nodes.len() * (3 + 2 * d + d * d)));
        put_f64s(&mut momt, &nodes[tree.root().index()].stats.center);
        for n in nodes {
            let s = &n.stats;
            put_f64(&mut momt, s.weight);
            put_f64s(&mut momt, &s.sum);
            put_f64(&mut momt, s.sum_norm2);
            put_f64s(&mut momt, &s.sum_norm2_p);
            put_f64(&mut momt, s.sum_norm4);
            put_f64s(&mut momt, &s.moment2);
        }

        let mut sections: Vec<([u8; 4], Vec<u8>)> = vec![
            (section::META, meta),
            (section::PNTS, pnts),
            (section::TOPO, topo),
            (section::MOMT, momt),
        ];
        let mut flags = 0u16;
        if !self.coresets.is_empty() {
            let mut core = Vec::new();
            for level in &self.coresets {
                put_u64(&mut core, level.len() as u64);
                put_f64s(&mut core, level.coords());
                put_f64s(&mut core, level.weights());
            }
            sections.push((section::CORE, core));
            flags |= FLAG_CORESETS;
        }
        if !self.pyramid_bounds.is_empty() {
            debug_assert_eq!(self.pyramid_bounds.len(), self.coresets.len());
            let mut pyra = Vec::with_capacity(self.pyramid_bounds.len() * 8);
            put_f64s(&mut pyra, &self.pyramid_bounds);
            sections.push((section::PYRA, pyra));
            flags |= FLAG_PYRAMID;
        }
        if self.applied_seq > 0 {
            let mut ings = Vec::with_capacity(8);
            put_u64(&mut ings, self.applied_seq);
            sections.push((section::INGS, ings));
            flags |= FLAG_INGEST;
        }

        // Assemble: header, table, header CRC, contiguous payloads.
        let table_end = HEADER_LEN + SECTION_ENTRY_LEN * sections.len();
        let payload_start = table_end + 4;
        let total: usize = payload_start + sections.iter().map(|(_, p)| p.len()).sum::<usize>();

        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, FORMAT_VERSION);
        put_u16(&mut out, flags);
        put_u32(&mut out, sections.len() as u32);
        put_u64(&mut out, total as u64);
        let mut offset = payload_start as u64;
        for (id, payload) in &sections {
            out.extend_from_slice(id);
            put_u64(&mut out, offset);
            put_u64(&mut out, payload.len() as u64);
            put_u32(&mut out, crc32(payload));
            offset += payload.len() as u64;
        }
        debug_assert_eq!(out.len(), table_end);
        let header_crc = crc32(&out);
        put_u32(&mut out, header_crc);
        for (_, payload) in &sections {
            out.extend_from_slice(payload);
        }
        debug_assert_eq!(out.len(), total);
        out
    }

    /// Serializes to `path` atomically: the bytes land in a `.tmp`
    /// sibling first and are renamed into place, so a crash mid-write
    /// never leaves a half-snapshot under the published name.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<u64, StoreError> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        let display = path.display().to_string();
        let tmp = path.with_extension("kdvs.tmp");
        let io_err = |op: &'static str, p: &Path, source: std::io::Error| StoreError::Io {
            op,
            path: p.display().to_string(),
            source,
        };
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create snapshot", &tmp, e))?;
        f.write_all(&bytes)
            .and_then(|()| f.sync_all())
            .map_err(|e| io_err("write snapshot", &tmp, e))?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(|e| StoreError::Io {
            op: "publish snapshot",
            path: display,
            source: e,
        })?;
        // The rename itself lives in directory metadata: without this
        // fsync a power cut can roll the directory back to the old (or
        // no) entry even though the file's bytes are on disk.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            crate::wal::fsync_dir(dir)?;
        }
        Ok(bytes.len() as u64)
    }
}

//! Strict snapshot loading.
//!
//! `Snapshot::open` treats the file as untrusted input end to end:
//! container checks (magic → version → flags → lengths → CRCs) run
//! before any payload byte is interpreted, every decode goes through a
//! bounds-checked cursor, engine types with panicking constructors
//! (`PointSet`, `Mbr`, `Kernel`) are only built after their inputs are
//! validated, and the assembled parts pass through
//! `KdTree::try_from_parts` so a checksum-clean but semantically
//! inconsistent file is still rejected. The result: structured
//! [`StoreError`]s for hostile bytes, never a panic.

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::format::{
    kernel_from_code, section_name, split_from_code, Cursor, FLAG_CORESETS, FLAG_INGEST,
    FLAG_PYRAMID, FORMAT_VERSION, HEADER_LEN, KNOWN_FLAGS, MAGIC, MAX_SECTIONS, SECTION_ENTRY_LEN,
};
use kdv_core::{Kernel, KernelType};
use kdv_geom::{Mbr, PointSet};
use kdv_index::{BuildConfig, BuildError, KdTree, Node, NodeId, NodeKind, NodeStats, SplitRule};
use std::path::Path;

/// Decoded META section: everything about the snapshot except the bulk
/// payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// Point dimensionality.
    pub dim: usize,
    /// Number of points (tree order).
    pub point_count: usize,
    /// Number of kd-tree nodes.
    pub node_count: usize,
    /// Root node id (slot 0 for trees from our builder).
    pub root: u32,
    /// Build configuration the tree was constructed with.
    pub leaf_capacity: usize,
    /// Split rule the tree was constructed with.
    pub split: SplitRule,
    /// Kernel family the bandwidth was chosen for.
    pub kernel: KernelType,
    /// Kernel scale γ.
    pub gamma: f64,
    /// Number of coreset levels in the CORE section (0 if absent).
    pub coreset_levels: usize,
}

/// A fully-validated, query-ready snapshot.
pub struct Snapshot {
    /// Decoded metadata.
    pub meta: SnapshotMeta,
    /// The reassembled index, invariant-checked.
    pub tree: KdTree,
    /// Kernel (family + γ) recorded at write time.
    pub kernel: Kernel,
    /// Optional Z-order coreset levels, in written order (a certified
    /// pyramid writes them smallest first).
    pub coresets: Vec<PointSet>,
    /// Certified per-level sampling bounds `ε_s` from the optional
    /// PYRA section, parallel to `coresets`. Empty when the snapshot
    /// carries plain (uncertified) coresets or none at all.
    pub level_bounds: Vec<f64>,
    /// Highest WAL sequence number folded into this snapshot (0 when
    /// the snapshot predates streaming ingest or never saw a WAL).
    pub applied_seq: u64,
}

/// One row of [`SnapshotInfo::sections`].
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Section name (META/PNTS/…).
    pub name: &'static str,
    /// Byte offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC32 recorded in the section table (verified before reporting).
    pub crc: u32,
}

/// Container-level description returned by [`Snapshot::inspect`].
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    /// Format version of the file.
    pub version: u16,
    /// Feature flags.
    pub flags: u16,
    /// Total file size in bytes.
    pub file_len: u64,
    /// Section table, in file order.
    pub sections: Vec<SectionInfo>,
    /// Decoded metadata.
    pub meta: SnapshotMeta,
}

struct RawSection<'a> {
    name: &'static str,
    offset: u64,
    crc: u32,
    payload: &'a [u8],
}

/// Validates the container: header, section table, tiling, checksums.
/// Returns the flags and the CRC-verified sections in file order.
fn parse_container(bytes: &[u8]) -> Result<(u16, Vec<RawSection<'_>>), StoreError> {
    let available = bytes.len() as u64;
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            what: "header",
            needed: HEADER_LEN as u64,
            available,
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    if flags & !KNOWN_FLAGS != 0 {
        return Err(StoreError::UnsupportedFlags {
            flags: flags & !KNOWN_FLAGS,
        });
    }
    let section_count = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if section_count == 0 || section_count > MAX_SECTIONS {
        return Err(StoreError::Malformed {
            section: "header",
            detail: format!("section count {section_count} outside [1, {MAX_SECTIONS}]"),
        });
    }
    let file_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let table_end = HEADER_LEN + SECTION_ENTRY_LEN * section_count as usize;
    let payload_start = table_end as u64 + 4;
    if available < payload_start {
        return Err(StoreError::Truncated {
            what: "section table",
            needed: payload_start,
            available,
        });
    }
    if file_len != available {
        return Err(StoreError::LengthMismatch {
            stored: file_len,
            actual: available,
        });
    }
    let stored_crc = u32::from_le_bytes(bytes[table_end..table_end + 4].try_into().unwrap());
    let computed = crc32(&bytes[..table_end]);
    if stored_crc != computed {
        return Err(StoreError::ChecksumMismatch {
            section: "header",
            stored: stored_crc,
            computed,
        });
    }

    // The table is now trusted. Sections must tile [payload_start,
    // file_len) exactly — no gaps a flipped byte could hide in.
    let mut sections = Vec::with_capacity(section_count as usize);
    let mut expected_offset = payload_start;
    for i in 0..section_count as usize {
        let e = &bytes[HEADER_LEN + i * SECTION_ENTRY_LEN..];
        let id: [u8; 4] = e[0..4].try_into().unwrap();
        let offset = u64::from_le_bytes(e[4..12].try_into().unwrap());
        let len = u64::from_le_bytes(e[12..20].try_into().unwrap());
        let crc = u32::from_le_bytes(e[20..24].try_into().unwrap());
        let name = section_name(id).ok_or(StoreError::UnknownSection { id })?;
        if sections.iter().any(|s: &RawSection<'_>| s.name == name) {
            return Err(StoreError::DuplicateSection { section: name });
        }
        if offset != expected_offset {
            return Err(StoreError::SectionOutOfBounds {
                section: name,
                detail: format!(
                    "offset {offset}, expected {expected_offset} (sections must be contiguous)"
                ),
            });
        }
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= available)
            .ok_or_else(|| StoreError::SectionOutOfBounds {
                section: name,
                detail: format!(
                    "range [{offset}, {offset}+{len}) escapes the {available}-byte file"
                ),
            })?;
        expected_offset = end;
        sections.push(RawSection {
            name,
            offset,
            crc,
            payload: &bytes[offset as usize..end as usize],
        });
    }
    if expected_offset != available {
        return Err(StoreError::SectionOutOfBounds {
            section: sections.last().map(|s| s.name).unwrap_or("?"),
            detail: format!("sections end at {expected_offset} but the file has {available} bytes"),
        });
    }
    for s in &sections {
        let computed = crc32(s.payload);
        if computed != s.crc {
            return Err(StoreError::ChecksumMismatch {
                section: s.name,
                stored: s.crc,
                computed,
            });
        }
    }
    Ok((flags, sections))
}

fn find<'a, 'b>(
    sections: &'b [RawSection<'a>],
    name: &'static str,
) -> Result<&'b RawSection<'a>, StoreError> {
    sections
        .iter()
        .find(|s| s.name == name)
        .ok_or(StoreError::MissingSection { section: name })
}

fn decode_meta(payload: &[u8], flags: u16, has_core: bool) -> Result<SnapshotMeta, StoreError> {
    let malformed = |detail: String| StoreError::Malformed {
        section: "META",
        detail,
    };
    let mut c = Cursor::new(payload, "META");
    let dim = c.u32()?;
    if dim == 0 || dim > 64 {
        return Err(malformed(format!("dimensionality {dim} outside [1, 64]")));
    }
    let point_count = c.u64()?;
    if point_count == 0 || point_count > u32::MAX as u64 {
        return Err(malformed(format!(
            "point count {point_count} outside [1, 2³²)"
        )));
    }
    let node_count = c.u64()?;
    if node_count == 0 || node_count > 2 * point_count {
        return Err(malformed(format!(
            "node count {node_count} outside [1, 2·points]"
        )));
    }
    let root = c.u32()?;
    if root as u64 >= node_count {
        return Err(malformed(format!(
            "root id {root} outside the {node_count}-node arena"
        )));
    }
    let leaf_capacity = c.u64()?;
    if leaf_capacity == 0 || leaf_capacity > u32::MAX as u64 {
        return Err(malformed(format!("leaf capacity {leaf_capacity} invalid")));
    }
    let split_raw = c.u8()?;
    let split = split_from_code(split_raw)
        .ok_or_else(|| malformed(format!("unknown split-rule code {split_raw}")))?;
    let kernel_raw = c.u8()?;
    let kernel = kernel_from_code(kernel_raw)
        .ok_or_else(|| malformed(format!("unknown kernel code {kernel_raw}")))?;
    let gamma = c.f64()?;
    if !gamma.is_finite() || gamma <= 0.0 {
        return Err(malformed(format!(
            "γ = {gamma} is not a positive finite number"
        )));
    }
    let coreset_levels = c.u32()?;
    c.finish()?;
    let flagged = flags & FLAG_CORESETS != 0;
    if flagged != (coreset_levels > 0) || flagged != has_core {
        return Err(malformed(format!(
            "coreset flag, level count ({coreset_levels}) and CORE section presence disagree"
        )));
    }
    Ok(SnapshotMeta {
        dim: dim as usize,
        point_count: point_count as usize,
        node_count: node_count as usize,
        root,
        leaf_capacity: leaf_capacity as usize,
        split,
        kernel,
        gamma,
        coreset_levels: coreset_levels as usize,
    })
}

fn decode_points(payload: &[u8], meta: &SnapshotMeta) -> Result<PointSet, StoreError> {
    let (n, d) = (meta.point_count, meta.dim);
    let mut c = Cursor::new(payload, "PNTS");
    let mut coords = Vec::new();
    c.f64s(n * d, &mut coords)?;
    let mut weights = Vec::new();
    c.f64s(n, &mut weights)?;
    c.finish()?;
    // PointSet's constructors assert finite non-negative weights, so
    // hostile values must be turned into errors here, before it exists.
    for (i, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(StoreError::Malformed {
                section: "PNTS",
                detail: format!("weight {w} of point {i} is not finite and non-negative"),
            });
        }
    }
    for (k, &v) in coords.iter().enumerate() {
        if !v.is_finite() {
            return Err(StoreError::Malformed {
                section: "PNTS",
                detail: format!("non-finite coordinate at point {}, axis {}", k / d, k % d),
            });
        }
    }
    // `from_vecs` takes ownership: no second multi-megabyte copy of the
    // coordinate buffer on the cold-start path.
    Ok(PointSet::from_vecs(d, coords, weights))
}

/// Per-node topology fields, pre-`Node` (stats arrive from MOMT).
struct TopoRecord {
    kind: NodeKind,
    depth: u16,
    count: u32,
    mbr: Mbr,
}

fn decode_topo(payload: &[u8], meta: &SnapshotMeta) -> Result<Vec<TopoRecord>, StoreError> {
    let d = meta.dim;
    let mut c = Cursor::new(payload, "TOPO");
    let mut out = Vec::with_capacity(meta.node_count);
    for i in 0..meta.node_count {
        let malformed = |detail: String| StoreError::Malformed {
            section: "TOPO",
            detail: format!("node {i}: {detail}"),
        };
        let kind_raw = c.u8()?;
        let a = c.u32()?;
        let b = c.u32()?;
        let kind = match kind_raw {
            0 => NodeKind::Leaf { start: a, end: b },
            1 => NodeKind::Internal {
                left: NodeId(a),
                right: NodeId(b),
            },
            k => return Err(malformed(format!("unknown node kind {k}"))),
        };
        let depth = c.u16()?;
        let count = c.u32()?;
        let mut lo = Vec::new();
        c.f64s(d, &mut lo)?;
        let mut hi = Vec::new();
        c.f64s(d, &mut hi)?;
        // Mbr::new panics on inverted or non-finite corners; validate
        // before constructing.
        for j in 0..d {
            if !lo[j].is_finite() || !hi[j].is_finite() || lo[j] > hi[j] {
                return Err(malformed(format!(
                    "MBR axis {j} invalid: [{}, {}]",
                    lo[j], hi[j]
                )));
            }
        }
        out.push(TopoRecord {
            kind,
            depth,
            count,
            mbr: Mbr::new(lo, hi),
        });
    }
    c.finish()?;
    Ok(out)
}

fn decode_moments(payload: &[u8], meta: &SnapshotMeta) -> Result<Vec<NodeStats>, StoreError> {
    let d = meta.dim;
    let mut c = Cursor::new(payload, "MOMT");
    let mut center = Vec::new();
    c.f64s(d, &mut center)?;
    let mut out = Vec::with_capacity(meta.node_count);
    for _ in 0..meta.node_count {
        let weight = c.f64()?;
        let mut sum = Vec::new();
        c.f64s(d, &mut sum)?;
        let sum_norm2 = c.f64()?;
        let mut sum_norm2_p = Vec::new();
        c.f64s(d, &mut sum_norm2_p)?;
        let sum_norm4 = c.f64()?;
        let mut moment2 = Vec::new();
        c.f64s(d * d, &mut moment2)?;
        out.push(NodeStats {
            center: center.clone(),
            weight,
            sum,
            sum_norm2,
            sum_norm2_p,
            sum_norm4,
            moment2,
        });
    }
    c.finish()?;
    Ok(out)
}

/// Decodes the optional INGS section. The flag and the section must
/// agree (either both present or both absent), and a zero watermark is
/// rejected — the writer only emits the section for non-zero values.
fn decode_applied_seq(flags: u16, sections: &[RawSection<'_>]) -> Result<u64, StoreError> {
    let flagged = flags & FLAG_INGEST != 0;
    let present = sections.iter().any(|s| s.name == "INGS");
    if flagged != present {
        return Err(StoreError::Malformed {
            section: "INGS",
            detail: format!(
                "ingest flag ({flagged}) and INGS section presence ({present}) disagree"
            ),
        });
    }
    if !present {
        return Ok(0);
    }
    let mut c = Cursor::new(find(sections, "INGS")?.payload, "INGS");
    let seq = c.u64()?;
    c.finish()?;
    if seq == 0 {
        return Err(StoreError::Malformed {
            section: "INGS",
            detail: "zero ingest watermark (the section is omitted instead)".to_string(),
        });
    }
    Ok(seq)
}

/// Decodes the optional PYRA section: one certified `ε_s` per coreset
/// level. The flag and the section must agree, the flag requires
/// coresets to certify, every bound must be a usable certificate
/// (finite, in `(0, 8]`), and — since a pyramid's contract is "the
/// first fitting level is the cheapest" — the certified levels must
/// grow strictly in size.
fn decode_pyramid(
    flags: u16,
    sections: &[RawSection<'_>],
    meta: &SnapshotMeta,
    coresets: &[PointSet],
) -> Result<Vec<f64>, StoreError> {
    let flagged = flags & FLAG_PYRAMID != 0;
    let present = sections.iter().any(|s| s.name == "PYRA");
    if flagged != present {
        return Err(StoreError::Malformed {
            section: "PYRA",
            detail: format!(
                "pyramid flag ({flagged}) and PYRA section presence ({present}) disagree"
            ),
        });
    }
    if !present {
        return Ok(Vec::new());
    }
    let malformed = |detail: String| StoreError::Malformed {
        section: "PYRA",
        detail,
    };
    if meta.coreset_levels == 0 {
        return Err(malformed(
            "pyramid bounds without coreset levels to certify".to_string(),
        ));
    }
    let mut c = Cursor::new(find(sections, "PYRA")?.payload, "PYRA");
    let mut bounds = Vec::new();
    c.f64s(meta.coreset_levels, &mut bounds)?;
    c.finish()?;
    for (i, &eps_s) in bounds.iter().enumerate() {
        if !(eps_s.is_finite() && eps_s > 0.0 && eps_s <= 8.0) {
            return Err(malformed(format!(
                "level {i}: certified ε_s = {eps_s} outside (0, 8]"
            )));
        }
    }
    for (i, pair) in coresets.windows(2).enumerate() {
        if pair[1].len() <= pair[0].len() {
            return Err(malformed(format!(
                "certified levels must grow strictly: level {} has {} points, level {} has {}",
                i,
                pair[0].len(),
                i + 1,
                pair[1].len()
            )));
        }
    }
    Ok(bounds)
}

fn decode_coresets(payload: &[u8], meta: &SnapshotMeta) -> Result<Vec<PointSet>, StoreError> {
    let d = meta.dim;
    let mut c = Cursor::new(payload, "CORE");
    let mut levels = Vec::with_capacity(meta.coreset_levels);
    for level in 0..meta.coreset_levels {
        let malformed = |detail: String| StoreError::Malformed {
            section: "CORE",
            detail: format!("level {level}: {detail}"),
        };
        let size = c.u64()?;
        if size == 0 || size > meta.point_count as u64 {
            return Err(malformed(format!(
                "size {size} outside [1, {}]",
                meta.point_count
            )));
        }
        let size = size as usize;
        let mut coords = Vec::new();
        c.f64s(size * d, &mut coords)?;
        let mut weights = Vec::new();
        c.f64s(size, &mut weights)?;
        if let Some(k) = coords.iter().position(|v| !v.is_finite()) {
            return Err(malformed(format!(
                "non-finite coordinate at entry {}",
                k / d
            )));
        }
        if let Some(i) = weights.iter().position(|&w| !w.is_finite() || w < 0.0) {
            return Err(malformed(format!("invalid weight at entry {i}")));
        }
        levels.push(PointSet::from_rows_weighted(d, &coords, &weights));
    }
    c.finish()?;
    Ok(levels)
}

impl Snapshot {
    /// Loads and fully validates a snapshot file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| StoreError::Io {
            op: "read snapshot",
            path: path.display().to_string(),
            source: e,
        })?;
        Self::from_bytes(&bytes)
    }

    /// Decodes a snapshot from memory. See the module docs for the
    /// validation pipeline.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let (flags, sections) = parse_container(bytes)?;
        let has_core = sections.iter().any(|s| s.name == "CORE");
        let meta = decode_meta(find(&sections, "META")?.payload, flags, has_core)?;
        let points = decode_points(find(&sections, "PNTS")?.payload, &meta)?;
        let topo = decode_topo(find(&sections, "TOPO")?.payload, &meta)?;
        let stats = decode_moments(find(&sections, "MOMT")?.payload, &meta)?;
        let coresets = if meta.coreset_levels > 0 {
            decode_coresets(find(&sections, "CORE")?.payload, &meta)?
        } else {
            Vec::new()
        };
        let level_bounds = decode_pyramid(flags, &sections, &meta, &coresets)?;
        let applied_seq = decode_applied_seq(flags, &sections)?;
        let nodes: Vec<Node> = topo
            .into_iter()
            .zip(stats)
            .map(|(t, s)| Node {
                mbr: t.mbr,
                stats: s,
                kind: t.kind,
                depth: t.depth,
                count: t.count,
            })
            .collect();
        let config = BuildConfig {
            leaf_capacity: meta.leaf_capacity,
            split: meta.split,
        };
        let tree = KdTree::try_from_parts(points, nodes, NodeId(meta.root), config).map_err(
            |e| match e {
                BuildError::InvalidTopology { .. } | BuildError::InvalidMoments { .. } => {
                    StoreError::Inconsistent {
                        detail: e.to_string(),
                    }
                }
                other => StoreError::Inconsistent {
                    detail: other.to_string(),
                },
            },
        )?;
        // γ was range-checked in decode_meta, so this cannot panic.
        let kernel = Kernel::new(meta.kernel, meta.gamma);
        Ok(Snapshot {
            meta,
            tree,
            kernel,
            coresets,
            level_bounds,
            applied_seq,
        })
    }

    /// Parses the container and META without decoding the bulk payload.
    /// All checksums are still verified, so `inspect` doubles as a fast
    /// integrity check.
    pub fn inspect(path: impl AsRef<Path>) -> Result<SnapshotInfo, StoreError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| StoreError::Io {
            op: "read snapshot",
            path: path.display().to_string(),
            source: e,
        })?;
        let (flags, sections) = parse_container(&bytes)?;
        let has_core = sections.iter().any(|s| s.name == "CORE");
        let meta = decode_meta(find(&sections, "META")?.payload, flags, has_core)?;
        Ok(SnapshotInfo {
            version: FORMAT_VERSION,
            flags,
            file_len: bytes.len() as u64,
            sections: sections
                .iter()
                .map(|s| SectionInfo {
                    name: s.name,
                    offset: s.offset,
                    len: s.payload.len() as u64,
                    crc: s.crc,
                })
                .collect(),
            meta,
        })
    }

    /// Deep semantic verification beyond what loading already checks:
    /// recomputes every leaf's moments from its points (the load-time
    /// check only validates internal nodes against their children) and
    /// confirms each leaf's points lie inside its MBR and each internal
    /// MBR contains its children's. O(n·d²) — this is `kdv index verify
    /// --deep`, not part of the serving path.
    pub fn verify_deep(&self) -> Result<(), StoreError> {
        let tree = &self.tree;
        let ps = tree.points();
        let nodes = tree.nodes();
        let center = &nodes[tree.root().index()].stats.center;
        let close = |a: f64, b: f64, scale: f64| (a - b).abs() <= 1e-9 * (1.0 + scale.abs());
        for (i, node) in nodes.iter().enumerate() {
            match node.kind {
                NodeKind::Leaf { start, end } => {
                    let mut fresh = NodeStats::zero_at(center.clone());
                    for p in start..end {
                        let pt = ps.point(p as usize);
                        if !node.mbr.contains(pt) {
                            return Err(StoreError::Inconsistent {
                                detail: format!("leaf {i}: point {p} escapes the node MBR"),
                            });
                        }
                        fresh.accumulate(pt, ps.weight(p as usize));
                    }
                    let s = &node.stats;
                    let ok = close(s.weight, fresh.weight, fresh.weight)
                        && close(s.sum_norm2, fresh.sum_norm2, fresh.sum_norm2)
                        && close(s.sum_norm4, fresh.sum_norm4, fresh.sum_norm4)
                        && s.sum
                            .iter()
                            .zip(&fresh.sum)
                            .all(|(&a, &b)| close(a, b, fresh.sum_norm2))
                        && s.sum_norm2_p
                            .iter()
                            .zip(&fresh.sum_norm2_p)
                            .all(|(&a, &b)| close(a, b, fresh.sum_norm4))
                        && s.moment2
                            .iter()
                            .zip(&fresh.moment2)
                            .all(|(&a, &b)| close(a, b, fresh.sum_norm2));
                    if !ok {
                        return Err(StoreError::Inconsistent {
                            detail: format!("leaf {i}: stored moments differ from recomputation"),
                        });
                    }
                }
                NodeKind::Internal { left, right } => {
                    for child in [left, right] {
                        let c = &nodes[child.index()].mbr;
                        let inside = (0..ps.dim()).all(|j| {
                            node.mbr.lo()[j] <= c.lo()[j] && c.hi()[j] <= node.mbr.hi()[j]
                        });
                        if !inside {
                            return Err(StoreError::Inconsistent {
                                detail: format!(
                                    "internal {i}: child {} MBR escapes the parent's",
                                    child.0
                                ),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

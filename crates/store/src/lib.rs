//! Versioned, checksummed index snapshots — instant cold starts.
//!
//! Building the kd-tree and its QUAD moment blocks (paper §4, Eq. 3) is
//! an O(n log n) pass that dominates every `kdv` invocation and every
//! `kdv serve` boot. This crate persists the finished artifact — the
//! sanitized point set in tree order, the node arena, the per-node
//! moments, bandwidth metadata, and optional Z-order coreset levels —
//! in the **KDVS** binary format so the next process pays a sequential
//! read plus checksum instead of a rebuild.
//!
//! Two properties define the format:
//!
//! * **Bit-exact round-trip.** Moments are stored as the builder's
//!   `f64` bits, so a loaded tree renders `render_eps`/`render_tau`
//!   output identical to the tree it was written from.
//! * **Zero-surprise loading.** Every byte is covered by a CRC32
//!   (header or section), decode is bounds-checked, and the assembled
//!   tree passes `KdTree::try_from_parts` invariant checks — hostile
//!   bytes produce a structured [`StoreError`], never a panic and never
//!   a silently wrong density map.
//!
//! See DESIGN.md §10 for the byte-level wire specification, and
//! `kdv index build/inspect/verify` for the operator workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod error;
pub mod format;
pub mod reader;
pub mod wal;
pub mod writer;

pub use error::StoreError;
pub use format::{EXTENSION, FLAG_CORESETS, FLAG_INGEST, FLAG_PYRAMID, FORMAT_VERSION, MAGIC};
pub use reader::{SectionInfo, Snapshot, SnapshotInfo, SnapshotMeta};
pub use wal::{FsyncPolicy, WalOp, WalRecord, WalReplay, WalWriter, WAL_EXTENSION};
pub use writer::SnapshotWriter;

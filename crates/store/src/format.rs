//! KDVS wire-format constants and low-level decode helpers.
//!
//! Layout (all integers and floats little-endian; full byte-level spec
//! in DESIGN.md §10):
//!
//! ```text
//! header        magic "KDVS" · version u16 · flags u16 ·
//!               section_count u32 · file_len u64          (20 bytes)
//! section table section_count × { id u32 (4CC) · offset u64 ·
//!               len u64 · crc32 u32 }                     (24 bytes each)
//! header_crc    u32 over bytes [0, 20 + 24·section_count)
//! payload       section payloads, contiguous, in table order
//! ```
//!
//! Sections must exactly tile the payload region: every byte of the
//! file is covered either by `header_crc` or by exactly one section
//! CRC, so *any* single-byte corruption is detectable.

use crate::error::StoreError;
use kdv_core::KernelType;
use kdv_index::SplitRule;

/// The four magic bytes every snapshot starts with.
pub const MAGIC: [u8; 4] = *b"KDVS";
/// Format version this crate reads and writes.
pub const FORMAT_VERSION: u16 = 1;
/// Flag bit: the optional CORE (coreset levels) section is present.
pub const FLAG_CORESETS: u16 = 1 << 0;
/// Flag bit: the optional INGS (ingest watermark) section is present.
pub const FLAG_INGEST: u16 = 1 << 1;
/// Flag bit: the optional PYRA (certified pyramid bounds) section is
/// present. Implies [`FLAG_CORESETS`]: the bounds certify the CORE
/// levels, one f64 per level.
pub const FLAG_PYRAMID: u16 = 1 << 2;
/// All flag bits this version defines.
pub const KNOWN_FLAGS: u16 = FLAG_CORESETS | FLAG_INGEST | FLAG_PYRAMID;
/// Fixed header size (before the section table).
pub const HEADER_LEN: usize = 20;
/// Size of one section-table entry.
pub const SECTION_ENTRY_LEN: usize = 24;
/// Hard cap on the section count — v1 defines five sections, and a
/// hostile count would otherwise size the table allocation.
pub const MAX_SECTIONS: u32 = 16;
/// Conventional file extension (`<dataset>.kdvs`).
pub const EXTENSION: &str = "kdvs";

/// Section ids (four-character codes, stored as little-endian u32).
pub mod section {
    /// Dataset/tree metadata: dimensions, counts, kernel, γ, build config.
    pub const META: [u8; 4] = *b"META";
    /// Sanitized point set in tree order: coords then weights.
    pub const PNTS: [u8; 4] = *b"PNTS";
    /// Node arena in build order: kind, children/range, depth, count, MBR.
    pub const TOPO: [u8; 4] = *b"TOPO";
    /// QUAD moment blocks: shared center, then per-node moments.
    pub const MOMT: [u8; 4] = *b"MOMT";
    /// Optional Z-order coreset levels (flag bit 0).
    pub const CORE: [u8; 4] = *b"CORE";
    /// Optional ingest watermark (flag bit 1): the WAL sequence number
    /// this snapshot has folded in. Recovery skips WAL records at or
    /// below it, which is what makes compaction + crash idempotent.
    pub const INGS: [u8; 4] = *b"INGS";
    /// Optional certified pyramid bounds (flag bit 2): one f64 `ε_s`
    /// per CORE level, in level order. Turns the coreset ladder into a
    /// *certified* pyramid the server may substitute for the full
    /// index whenever `ε_s` fits the request's error budget.
    pub const PYRA: [u8; 4] = *b"PYRA";
}

/// Human-readable name for a section id, if this version defines it.
pub fn section_name(id: [u8; 4]) -> Option<&'static str> {
    match &id {
        b"META" => Some("META"),
        b"PNTS" => Some("PNTS"),
        b"TOPO" => Some("TOPO"),
        b"MOMT" => Some("MOMT"),
        b"CORE" => Some("CORE"),
        b"INGS" => Some("INGS"),
        b"PYRA" => Some("PYRA"),
        _ => None,
    }
}

/// Stable on-disk code for a kernel type. The mapping is part of the
/// wire format: never renumber, only append.
pub fn kernel_code(ty: KernelType) -> u8 {
    match ty {
        KernelType::Gaussian => 0,
        KernelType::Triangular => 1,
        KernelType::Cosine => 2,
        KernelType::Exponential => 3,
        KernelType::Epanechnikov => 4,
        KernelType::Quartic => 5,
    }
}

/// Inverse of [`kernel_code`].
pub fn kernel_from_code(code: u8) -> Option<KernelType> {
    Some(match code {
        0 => KernelType::Gaussian,
        1 => KernelType::Triangular,
        2 => KernelType::Cosine,
        3 => KernelType::Exponential,
        4 => KernelType::Epanechnikov,
        5 => KernelType::Quartic,
        _ => return None,
    })
}

/// Stable on-disk code for a split rule (same append-only contract).
pub fn split_code(rule: SplitRule) -> u8 {
    match rule {
        SplitRule::WidestAxisMedian => 0,
        SplitRule::MaxVarianceAxisMedian => 1,
        SplitRule::WidestAxisMidpoint => 2,
    }
}

/// Inverse of [`split_code`].
pub fn split_from_code(code: u8) -> Option<SplitRule> {
    Some(match code {
        0 => SplitRule::WidestAxisMedian,
        1 => SplitRule::MaxVarianceAxisMedian,
        2 => SplitRule::WidestAxisMidpoint,
        _ => return None,
    })
}

/// Bounds-checked little-endian reader over one section's payload.
///
/// Every decode path goes through this cursor, so an overrun surfaces
/// as [`StoreError::Malformed`] naming the section instead of a slice
/// panic — the core of the no-panic-on-hostile-bytes guarantee.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            section,
        }
    }

    fn overrun(&self, needed: usize) -> StoreError {
        StoreError::Malformed {
            section: self.section,
            detail: format!(
                "payload too short: need {needed} more bytes at offset {}, {} remain",
                self.pos,
                self.buf.len() - self.pos
            ),
        }
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.buf.len() - self.pos < n {
            return Err(self.overrun(n));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` f64 values into `out`.
    pub fn f64s(&mut self, n: usize, out: &mut Vec<f64>) -> Result<(), StoreError> {
        let bytes = self.take(n * 8)?;
        out.reserve(n);
        for chunk in bytes.chunks_exact(8) {
            out.push(f64::from_le_bytes(chunk.try_into().unwrap()));
        }
        Ok(())
    }

    /// Fails unless the payload was consumed exactly — trailing bytes
    /// in a section are as suspicious as missing ones.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(StoreError::Malformed {
                section: self.section,
                detail: format!(
                    "{} trailing bytes after the declared content",
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

/// Little-endian append helpers for the writer.
pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    out.reserve(vs.len() * 8);
    for &v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for ty in KernelType::ALL {
            assert_eq!(kernel_from_code(kernel_code(ty)), Some(ty));
        }
        assert_eq!(kernel_from_code(99), None);
        for rule in [
            SplitRule::WidestAxisMedian,
            SplitRule::MaxVarianceAxisMedian,
            SplitRule::WidestAxisMidpoint,
        ] {
            assert_eq!(split_from_code(split_code(rule)), Some(rule));
        }
        assert_eq!(split_from_code(3), None);
    }

    #[test]
    fn cursor_rejects_overrun_and_trailing_bytes() {
        let buf = [1u8, 2, 3, 4];
        let mut c = Cursor::new(&buf, "META");
        assert_eq!(c.u32().unwrap(), 0x0403_0201);
        assert!(matches!(
            c.u8(),
            Err(StoreError::Malformed {
                section: "META",
                ..
            })
        ));

        let mut c = Cursor::new(&buf, "META");
        c.u16().unwrap();
        assert!(matches!(
            c.finish(),
            Err(StoreError::Malformed {
                section: "META",
                ..
            })
        ));
    }
}

//! Structured load/store failures.
//!
//! The reader's contract is *zero surprise*: any byte sequence — hostile,
//! truncated, or stale — produces exactly one of these variants, never a
//! panic. Variants are ordered roughly by how early the reader can
//! detect them; each carries enough context to tell an operator what to
//! regenerate (the snapshot) versus what to upgrade (the binary).

use std::fmt;

/// Why a snapshot could not be written or loaded.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io {
        /// What the store was doing (`"read snapshot"`, …).
        op: &'static str,
        /// Path involved, as given by the caller.
        path: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with the `KDVS` magic — not a snapshot.
    BadMagic {
        /// The first four bytes actually found.
        found: [u8; 4],
    },
    /// The snapshot was written by a different format version. Version
    /// checks run *before* checksum verification so a newer writer's
    /// file reports "upgrade the reader", not "corrupt file".
    UnsupportedVersion {
        /// Version stored in the file.
        found: u16,
        /// Version this reader implements.
        supported: u16,
    },
    /// The header carries feature flags this reader does not know.
    UnsupportedFlags {
        /// The unrecognised flag bits.
        flags: u16,
    },
    /// The file ends before a structure it promises.
    Truncated {
        /// What the reader was trying to read.
        what: &'static str,
        /// Bytes that structure needs.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// The header's recorded file length disagrees with the actual file
    /// size (the usual signature of a torn or truncated write).
    LengthMismatch {
        /// Length recorded in the header.
        stored: u64,
        /// Actual file size.
        actual: u64,
    },
    /// A CRC32 check failed — the bytes changed after writing.
    ChecksumMismatch {
        /// Which region failed (`"header"` or a section name).
        section: &'static str,
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum of the bytes as read.
        computed: u32,
    },
    /// A section-table entry points outside the file, overlaps its
    /// neighbour, or leaves unchecksummed gap bytes.
    SectionOutOfBounds {
        /// The offending section's name (or `"?"` for unknown ids).
        section: &'static str,
        /// Detail of the bounds violation.
        detail: String,
    },
    /// A section required by this version (or by the header flags) is
    /// absent.
    MissingSection {
        /// Name of the missing section.
        section: &'static str,
    },
    /// The same section id appears twice in the table.
    DuplicateSection {
        /// Name of the duplicated section.
        section: &'static str,
    },
    /// The section table names an id this version does not define.
    UnknownSection {
        /// The unrecognised four-character code.
        id: [u8; 4],
    },
    /// A section's payload decoded to nonsense: wrong length for the
    /// counts it declares, out-of-range enum codes, non-finite or
    /// negative values where the engine requires otherwise.
    Malformed {
        /// Section the defect is in.
        section: &'static str,
        /// Human-readable description.
        detail: String,
    },
    /// Sections decoded cleanly but are mutually inconsistent — the
    /// kd-tree invariant checks (`KdTree::try_from_parts`) rejected the
    /// topology or moments.
    Inconsistent {
        /// Description forwarded from the index layer.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "{op} {path}: {source}")
            }
            StoreError::BadMagic { found } => {
                write!(f, "not a KDVS snapshot (magic {:02x?})", found)
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (reader implements {supported})"
            ),
            StoreError::UnsupportedFlags { flags } => {
                write!(f, "snapshot uses unknown feature flags {flags:#06x}")
            }
            StoreError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated snapshot: {what} needs {needed} bytes, {available} available"
            ),
            StoreError::LengthMismatch { stored, actual } => write!(
                f,
                "snapshot length mismatch: header records {stored} bytes, file has {actual}"
            ),
            StoreError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {section}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::SectionOutOfBounds { section, detail } => {
                write!(f, "section {section} out of bounds: {detail}")
            }
            StoreError::MissingSection { section } => {
                write!(f, "required section {section} is missing")
            }
            StoreError::DuplicateSection { section } => {
                write!(f, "section {section} appears more than once")
            }
            StoreError::UnknownSection { id } => {
                write!(f, "unknown section id {:?}", String::from_utf8_lossy(id))
            }
            StoreError::Malformed { section, detail } => {
                write!(f, "malformed {section} section: {detail}")
            }
            StoreError::Inconsistent { detail } => {
                write!(f, "inconsistent snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_defect() {
        let e = StoreError::ChecksumMismatch {
            section: "PNTS",
            stored: 0xDEAD_BEEF,
            computed: 0x0BAD_F00D,
        };
        assert_eq!(
            e.to_string(),
            "checksum mismatch in PNTS: stored 0xdeadbeef, computed 0x0badf00d"
        );
        let e = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
    }
}

//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), slice-by-16.
//!
//! The workspace is dependency-free by policy, so the snapshot format
//! carries its own checksum. Slice-by-16 processes sixteen input bytes
//! per loop iteration off sixteen precomputed tables — section payloads
//! reach tens of megabytes for million-point datasets, and the checksum
//! pass is on the cold-start critical path the snapshot exists to win
//! back, so bytes-per-iteration directly buys boot time.

const POLY: u32 = 0xEDB8_8320;

const fn make_tables() -> [[u32; 256]; 16] {
    let mut t = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 16 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

static TABLES: [[u32; 256]; 16] = make_tables();

/// CRC-32 of `data` (standard init/final XOR with `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(16);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        crc = TABLES[15][(lo & 0xFF) as usize]
            ^ TABLES[14][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[13][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[12][(lo >> 24) as usize]
            ^ TABLES[11][c[4] as usize]
            ^ TABLES[10][c[5] as usize]
            ^ TABLES[9][c[6] as usize]
            ^ TABLES[8][c[7] as usize]
            ^ TABLES[7][c[8] as usize]
            ^ TABLES[6][c[9] as usize]
            ^ TABLES[5][c[10] as usize]
            ^ TABLES[4][c[11] as usize]
            ^ TABLES[3][c[12] as usize]
            ^ TABLES[2][c[13] as usize]
            ^ TABLES[1][c[14] as usize]
            ^ TABLES[0][c[15] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn slice_by_16_agrees_with_bytewise_at_every_alignment() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 31 + 7) as u8).collect();
        let bytewise = |d: &[u8]| {
            let mut crc = !0u32;
            for &b in d {
                crc ^= b as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        POLY ^ (crc >> 1)
                    } else {
                        crc >> 1
                    };
                }
            }
            !crc
        };
        for start in 0..17 {
            for end in [start, start + 1, start + 15, start + 16, data.len()] {
                assert_eq!(crc32(&data[start..end]), bytewise(&data[start..end]));
            }
        }
    }
}

//! Write-ahead log for streaming ingest.
//!
//! The WAL is the durability half of the mini-LSM the serving layer
//! runs over KDVS snapshots: every accepted mutation (point appends or
//! coordinate tombstones) is appended here *before* it is acknowledged,
//! and a background compaction later folds the log into a fresh
//! snapshot via [`crate::SnapshotWriter`]'s atomic tmp+rename path.
//!
//! Layout (all integers and floats little-endian):
//!
//! ```text
//! header  magic "KDVW" · version u16 · flags u16            (8 bytes)
//! record  payload_len u32 · crc32(payload) u32 · payload    (repeated)
//! payload op u8 (1=append, 2=tombstone) · seq u64 ·
//!         count u32 · count × point
//!         point   append:    x f64 · y f64 · w f64
//!                 tombstone: x f64 · y f64
//! ```
//!
//! The contract mirrors the snapshot reader's: *no byte sequence ever
//! panics the replayer*. A torn tail — the usual result of `kill -9`
//! mid-append or of power loss — is detected by the length prefix and
//! per-record CRC; replay returns every record before the first invalid
//! byte and reports where the valid prefix ends so the writer can
//! truncate the garbage before appending again. Corruption *inside* the
//! valid region is indistinguishable from a torn tail by design: the
//! log is a prefix-valid structure, and everything at or after the
//! first bad byte is discarded.

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::format::{put_u16, put_u32, put_u64};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// The four magic bytes every WAL starts with.
pub const WAL_MAGIC: [u8; 4] = *b"KDVW";
/// WAL format version this crate reads and writes.
pub const WAL_VERSION: u16 = 1;
/// Fixed header size.
pub const WAL_HEADER_LEN: u64 = 8;
/// Conventional file extension (`<dataset>.wal`).
pub const WAL_EXTENSION: &str = "wal";
/// Per-record frame overhead (length prefix + CRC).
pub const WAL_FRAME_LEN: u64 = 8;
/// Hard cap on one record's payload — a batch this large should have
/// been rejected by admission control long before it reached the log,
/// so anything bigger is treated as corruption, not data.
pub const MAX_RECORD_LEN: u32 = 64 << 20;

/// One durable mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Monotone sequence number assigned at append time. Survives
    /// replay so recovery can re-establish the counter.
    pub seq: u64,
    /// What the record does to the dataset.
    pub op: WalOp,
}

/// The mutation a [`WalRecord`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Add weighted 2-D points: `[x, y, w]` each.
    Append(Vec<[f64; 3]>),
    /// Hide every point whose coordinates equal `[x, y]` exactly
    /// (bit-for-bit `f64` comparison, matching the snapshot round-trip
    /// guarantee).
    Tombstone(Vec<[f64; 2]>),
}

impl WalRecord {
    /// Serializes the record as one framed log entry.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16);
        match &self.op {
            WalOp::Append(pts) => {
                payload.push(1u8);
                put_u64(&mut payload, self.seq);
                put_u32(&mut payload, pts.len() as u32);
                for p in pts {
                    for v in p {
                        payload.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            WalOp::Tombstone(pts) => {
                payload.push(2u8);
                put_u64(&mut payload, self.seq);
                put_u32(&mut payload, pts.len() as u32);
                for p in pts {
                    for v in p {
                        payload.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(payload.len() + WAL_FRAME_LEN as usize);
        put_u32(&mut out, payload.len() as u32);
        put_u32(&mut out, crc32(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Number of points the record touches.
    pub fn point_count(&self) -> usize {
        match &self.op {
            WalOp::Append(p) => p.len(),
            WalOp::Tombstone(p) => p.len(),
        }
    }
}

/// When an append becomes durable (and therefore ackable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: lowest loss window, highest latency.
    Every,
    /// Group commit: records are batched and a single `fsync` covers
    /// all of them. Callers must still wait for the sync covering their
    /// record before acknowledging.
    Batch,
}

impl FsyncPolicy {
    /// Parses the CLI spelling (`every` | `batch`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "every" => Some(FsyncPolicy::Every),
            "batch" => Some(FsyncPolicy::Batch),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            FsyncPolicy::Every => "every",
            FsyncPolicy::Batch => "batch",
        }
    }
}

fn io_err(op: &'static str, path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.display().to_string(),
        source,
    }
}

/// Flushes directory metadata so a just-renamed or just-created file
/// survives power loss. On non-Unix targets this is a no-op (the
/// serving stack targets Linux; tests on other hosts still pass).
pub fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    #[cfg(unix)]
    {
        let d = File::open(dir).map_err(|e| io_err("open directory", dir, e))?;
        d.sync_all()
            .map_err(|e| io_err("fsync directory", dir, e))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Append-only writer half of the log.
///
/// The writer itself never fsyncs implicitly — [`WalWriter::append`]
/// only buffers into the OS; callers decide when [`WalWriter::sync`]
/// runs according to their [`FsyncPolicy`] and must not acknowledge a
/// record until a sync at or past its end offset has returned.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    len: u64,
}

impl WalWriter {
    /// Creates (or truncates) the log at `path`, writes the header,
    /// fsyncs it and the parent directory — after this returns the
    /// empty log itself is durable.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path).map_err(|e| io_err("create wal", &path, e))?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC);
        put_u16(&mut header, WAL_VERSION);
        put_u16(&mut header, 0);
        file.write_all(&header)
            .and_then(|()| file.sync_all())
            .map_err(|e| io_err("write wal header", &path, e))?;
        if let Some(dir) = path.parent() {
            fsync_dir(dir)?;
        }
        Ok(Self {
            file,
            path,
            len: WAL_HEADER_LEN,
        })
    }

    /// Opens an existing log for appending, first truncating it to
    /// `valid_len` (as reported by [`replay`]) so a torn tail is
    /// physically removed before new records can land after it. A
    /// prefix too short to hold even the header means nothing in the
    /// file is trustworthy — the log is recreated from scratch.
    pub fn open_at(path: impl AsRef<Path>, valid_len: u64) -> Result<Self, StoreError> {
        if valid_len < WAL_HEADER_LEN {
            return Self::create(path);
        }
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open wal", &path, e))?;
        file.set_len(valid_len)
            .and_then(|()| file.sync_all())
            .map_err(|e| io_err("truncate wal", &path, e))?;
        let mut w = Self {
            file,
            path,
            len: valid_len,
        };
        use std::io::Seek;
        w.file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err("seek wal", &w.path, e))?;
        Ok(w)
    }

    /// Appends one framed record and returns the log length after it —
    /// the offset a covering [`WalWriter::sync`] must reach before the
    /// record may be acknowledged. No fsync happens here.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, StoreError> {
        let bytes = rec.to_bytes();
        self.file
            .write_all(&bytes)
            .map_err(|e| io_err("append wal record", &self.path, e))?;
        self.len += bytes.len() as u64;
        Ok(self.len)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .sync_all()
            .map_err(|e| io_err("fsync wal", &self.path, e))
    }

    /// A second handle to the same open file, for group commit: the
    /// syncing thread fsyncs through the clone while appenders keep the
    /// writer itself (both handles share one file description, so a
    /// sync through either covers writes through both).
    pub fn sync_handle(&self) -> Result<File, StoreError> {
        self.file
            .try_clone()
            .map_err(|e| io_err("clone wal handle", &self.path, e))
    }

    /// Current log length in bytes (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records yet.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// What [`replay`] recovered from a log file.
#[derive(Debug)]
pub struct WalReplay {
    /// Every record in the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix. Pass to [`WalWriter::open_at`]
    /// to drop anything after it before appending resumes.
    pub valid_len: u64,
    /// True when bytes existed past `valid_len` — a torn tail (crash
    /// mid-append) or in-place corruption. Either way the tail was
    /// never acknowledgeable and is safe to discard.
    pub torn: bool,
    /// Total file length as found on disk.
    pub file_len: u64,
}

impl WalReplay {
    /// An empty recovery result (no log on disk).
    pub fn empty() -> Self {
        Self {
            records: Vec::new(),
            valid_len: 0,
            torn: false,
            file_len: 0,
        }
    }

    /// Highest sequence number seen, or 0 for an empty log.
    pub fn last_seq(&self) -> u64 {
        self.records.last().map(|r| r.seq).unwrap_or(0)
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    if payload.len() < 13 {
        return None;
    }
    let op = payload[0];
    let seq = u64::from_le_bytes(payload[1..9].try_into().unwrap());
    let count = u32::from_le_bytes(payload[9..13].try_into().unwrap()) as usize;
    let body = &payload[13..];
    let stride = match op {
        1 => 24,
        2 => 16,
        _ => return None,
    };
    if body.len() != count.checked_mul(stride)? {
        return None;
    }
    let mut vals = Vec::with_capacity(count * stride / 8);
    for chunk in body.chunks_exact(8) {
        let v = f64::from_le_bytes(chunk.try_into().unwrap());
        if !v.is_finite() {
            return None;
        }
        vals.push(v);
    }
    let op = if op == 1 {
        let pts: Vec<[f64; 3]> = vals.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
        // No writer ever logs a negative weight (admission rejects
        // them), so one here is corruption — and letting it through
        // would poison compaction, which asserts weights ≥ 0 when it
        // materializes the merged point set.
        if pts.iter().any(|p| p[2] < 0.0) {
            return None;
        }
        WalOp::Append(pts)
    } else {
        WalOp::Tombstone(vals.chunks_exact(2).map(|c| [c[0], c[1]]).collect())
    };
    Some(WalRecord { seq, op })
}

/// Replays a log from disk, tolerating any torn or hostile tail.
///
/// Returns `Err` only for filesystem failures; *content* problems are
/// never errors — they terminate the valid prefix instead. A missing
/// file replays as empty. A file whose header is damaged has an empty
/// valid prefix: nothing in it can be trusted, and `valid_len` is 0 so
/// the caller recreates the log from scratch.
pub fn replay(path: impl AsRef<Path>) -> Result<WalReplay, StoreError> {
    let path = path.as_ref();
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| io_err("read wal", path, e))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::empty()),
        Err(e) => return Err(io_err("open wal", path, e)),
    }
    Ok(replay_bytes(&bytes))
}

/// [`replay`] over an in-memory image (shared by tests and recovery).
pub fn replay_bytes(bytes: &[u8]) -> WalReplay {
    let file_len = bytes.len() as u64;
    let hdr_ok = bytes.len() >= WAL_HEADER_LEN as usize
        && bytes[..4] == WAL_MAGIC
        && u16::from_le_bytes([bytes[4], bytes[5]]) == WAL_VERSION
        && u16::from_le_bytes([bytes[6], bytes[7]]) == 0;
    if !hdr_ok {
        return WalReplay {
            records: Vec::new(),
            valid_len: 0,
            torn: file_len > 0,
            file_len,
        };
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut last_seq = 0u64;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return WalReplay {
                records,
                valid_len: pos as u64,
                torn: false,
                file_len,
            };
        }
        let valid = (|| {
            if rest.len() < 8 {
                return None;
            }
            let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
            if len > MAX_RECORD_LEN {
                return None;
            }
            let stored_crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
            let payload = rest.get(8..8 + len as usize)?;
            if crc32(payload) != stored_crc {
                return None;
            }
            let rec = decode_payload(payload)?;
            // Sequence numbers are assigned monotonically; a regression
            // means the frame is stale garbage that happens to checksum.
            if rec.seq <= last_seq {
                return None;
            }
            Some((rec, 8 + len as usize))
        })();
        match valid {
            Some((rec, consumed)) => {
                last_seq = rec.seq;
                records.push(rec);
                pos += consumed;
            }
            None => {
                return WalReplay {
                    records,
                    valid_len: pos as u64,
                    torn: true,
                    file_len,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kdv-wal-{}-{}", std::process::id(), name));
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                seq: 1,
                op: WalOp::Append(vec![[0.5, 0.5, 1.0], [0.25, 0.75, 2.0]]),
            },
            WalRecord {
                seq: 2,
                op: WalOp::Tombstone(vec![[0.5, 0.5]]),
            },
            WalRecord {
                seq: 3,
                op: WalOp::Append(vec![[0.1, 0.9, 0.5]]),
            },
        ]
    }

    #[test]
    fn round_trip_preserves_records_bit_for_bit() {
        let path = temp_path("roundtrip.wal");
        let mut w = WalWriter::create(&path).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.sync().unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records, sample_records());
        assert!(!replayed.torn);
        assert_eq!(replayed.valid_len, replayed.file_len);
        assert_eq!(replayed.last_seq(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_replays_empty() {
        let r = replay(temp_path("never-created.wal")).unwrap();
        assert!(r.records.is_empty());
        assert_eq!(r.valid_len, 0);
        assert!(!r.torn);
    }

    #[test]
    fn truncation_at_every_offset_keeps_exactly_the_full_records() {
        let mut image = Vec::new();
        image.extend_from_slice(&WAL_MAGIC);
        put_u16(&mut image, WAL_VERSION);
        put_u16(&mut image, 0);
        let recs = sample_records();
        let mut ends = vec![WAL_HEADER_LEN as usize];
        for r in &recs {
            image.extend_from_slice(&r.to_bytes());
            ends.push(image.len());
        }
        for cut in 0..=image.len() {
            let r = replay_bytes(&image[..cut]);
            let expect_full = ends.iter().filter(|&&e| e <= cut).count().saturating_sub(1);
            assert_eq!(
                r.records.len(),
                expect_full,
                "cut at {cut} should keep {expect_full} records"
            );
            assert_eq!(r.records[..], recs[..expect_full]);
            if cut < WAL_HEADER_LEN as usize {
                assert_eq!(r.valid_len, 0);
            } else {
                assert_eq!(r.valid_len as usize, ends[expect_full]);
            }
            // An empty file is "no log yet", not a torn one.
            assert_eq!(r.torn, cut != 0 && cut != ends[expect_full]);
        }
    }

    #[test]
    fn bit_flip_at_every_offset_never_panics_and_stops_before_the_flip() {
        let mut image = Vec::new();
        image.extend_from_slice(&WAL_MAGIC);
        put_u16(&mut image, WAL_VERSION);
        put_u16(&mut image, 0);
        let recs = sample_records();
        let mut ends = vec![WAL_HEADER_LEN as usize];
        for r in &recs {
            image.extend_from_slice(&r.to_bytes());
            ends.push(image.len());
        }
        for off in 0..image.len() {
            for bit in 0..8 {
                let mut bad = image.clone();
                bad[off] ^= 1 << bit;
                let r = replay_bytes(&bad);
                // Records wholly before the flipped byte must survive;
                // the flipped record and everything after must not.
                let intact = ends.iter().filter(|&&e| e <= off).count().saturating_sub(1);
                assert!(
                    r.records.len() <= recs.len(),
                    "flip at {off}.{bit} invented records"
                );
                assert!(
                    r.records.len() >= intact || r.valid_len == 0,
                    "flip at {off}.{bit} lost intact prefix records"
                );
                for (i, rec) in r.records.iter().enumerate().take(intact) {
                    assert_eq!(*rec, recs[i], "flip at {off}.{bit} corrupted record {i}");
                }
            }
        }
    }

    #[test]
    fn open_at_truncates_torn_tail_and_appends_cleanly() {
        let path = temp_path("reopen.wal");
        let mut w = WalWriter::create(&path).unwrap();
        let recs = sample_records();
        w.append(&recs[0]).unwrap();
        w.append(&recs[1]).unwrap();
        w.sync().unwrap();
        drop(w);
        // Simulate a torn append: garbage tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x55; 7]).unwrap();
        }
        let r = replay(&path).unwrap();
        assert_eq!(r.records.len(), 2);
        assert!(r.torn);
        let mut w = WalWriter::open_at(&path, r.valid_len).unwrap();
        w.append(&recs[2]).unwrap();
        w.sync().unwrap();
        drop(w);
        let r = replay(&path).unwrap();
        assert_eq!(r.records, recs);
        assert!(!r.torn);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn negative_weight_append_is_treated_as_corruption() {
        let mut image = Vec::new();
        image.extend_from_slice(&WAL_MAGIC);
        put_u16(&mut image, WAL_VERSION);
        put_u16(&mut image, 0);
        let good = WalRecord {
            seq: 1,
            op: WalOp::Append(vec![[0.1, 0.2, 1.0]]),
        };
        let poison = WalRecord {
            seq: 2,
            op: WalOp::Append(vec![[0.3, 0.4, -1.0]]),
        };
        image.extend_from_slice(&good.to_bytes());
        image.extend_from_slice(&poison.to_bytes());
        let r = replay_bytes(&image);
        assert_eq!(r.records, vec![good]);
        assert!(r.torn, "the poison record terminates the valid prefix");
    }

    #[test]
    fn stale_seq_frame_is_rejected() {
        let mut image = Vec::new();
        image.extend_from_slice(&WAL_MAGIC);
        put_u16(&mut image, WAL_VERSION);
        put_u16(&mut image, 0);
        let a = WalRecord {
            seq: 5,
            op: WalOp::Append(vec![[0.0, 0.0, 1.0]]),
        };
        let b = WalRecord {
            seq: 5,
            op: WalOp::Append(vec![[1.0, 1.0, 1.0]]),
        };
        image.extend_from_slice(&a.to_bytes());
        image.extend_from_slice(&b.to_bytes());
        let r = replay_bytes(&image);
        assert_eq!(r.records.len(), 1);
        assert!(r.torn);
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("every"), Some(FsyncPolicy::Every));
        assert_eq!(FsyncPolicy::parse("batch"), Some(FsyncPolicy::Batch));
        assert_eq!(FsyncPolicy::parse("nope"), None);
        assert_eq!(FsyncPolicy::Every.as_str(), "every");
    }
}
